#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spotfi {
namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// drawn with probability proportional to squared distance from the
/// nearest chosen centroid.
std::vector<std::size_t> seed_kmeanspp(const RMatrix& points, std::size_t k,
                                       Rng& rng) {
  const std::size_t n = points.rows();
  std::vector<std::size_t> seeds;
  seeds.push_back(rng.uniform_index(n));
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  while (seeds.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i],
                       squared_distance(points.row(i), points.row(seeds.back())));
      total += d2[i];
    }
    if (total <= 0.0) break;  // all remaining points coincide with seeds
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(chosen);
  }
  return seeds;
}

}  // namespace

KMeansResult kmeans(const RMatrix& points, std::size_t k, Rng& rng,
                    const KMeansConfig& config) {
  SPOTFI_EXPECTS(points.rows() >= 1, "kmeans needs at least one point");
  SPOTFI_EXPECTS(k >= 1, "kmeans needs at least one cluster");
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  k = std::min(k, n);

  const auto seeds = seed_kmeanspp(points, k, rng);
  const std::size_t k_eff = seeds.size();
  RMatrix centroids(k_eff, dim);
  for (std::size_t c = 0; c < k_eff; ++c) {
    const auto row = points.row(seeds[c]);
    std::copy(row.begin(), row.end(), centroids.row(c).begin());
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  std::vector<std::size_t> counts(k_eff);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k_eff; ++c) {
        const double d2 = squared_distance(points.row(i), centroids.row(c));
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update.
    RMatrix next(k_eff, dim);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) next(c, d) += points(i, d);
    }
    for (std::size_t c = 0; c < k_eff; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: keep the previous centroid.
        std::copy(centroids.row(c).begin(), centroids.row(c).end(),
                  next.row(c).begin());
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        next(c, d) /= static_cast<double>(counts[c]);
      }
    }
    const double shift = (next - centroids).max_abs();
    centroids = std::move(next);
    if (shift < config.centroid_tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        squared_distance(points.row(i), centroids.row(result.assignment[i]));
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace spotfi
