#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spotfi {
namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// drawn with probability proportional to squared distance from the
/// nearest chosen centroid. Fills at most `seeds.size()` entries of the
/// caller's buffer; returns the count actually seeded.
std::size_t seed_kmeanspp(ConstRMatrixView points, Rng& rng,
                          std::span<std::size_t> seeds, std::span<double> d2) {
  const std::size_t n = points.rows();
  std::size_t n_seeds = 0;
  seeds[n_seeds++] = rng.uniform_index(n);
  std::fill(d2.begin(), d2.end(), std::numeric_limits<double>::max());
  while (n_seeds < seeds.size()) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(
          d2[i], squared_distance(points.row(i), points.row(seeds[n_seeds - 1])));
      total += d2[i];
    }
    if (total <= 0.0) break;  // all remaining points coincide with seeds
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds[n_seeds++] = chosen;
  }
  return n_seeds;
}

}  // namespace

KMeansResult kmeans(const RMatrix& points, std::size_t k, Rng& rng,
                    const KMeansConfig& config) {
  return kmeans(ConstRMatrixView(points), k, rng, config, thread_workspace());
}

KMeansResult kmeans(ConstRMatrixView points, std::size_t k, Rng& rng,
                    const KMeansConfig& config, Workspace& ws) {
  SPOTFI_EXPECTS(points.rows() >= 1, "kmeans needs at least one point");
  SPOTFI_EXPECTS(k >= 1, "kmeans needs at least one cluster");
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  k = std::min(k, n);

  Workspace::Frame frame(ws);
  const std::span<std::size_t> seed_buf = ws.take<std::size_t>(k);
  const std::span<double> d2_buf = ws.take<double>(n);
  const std::size_t k_eff = seed_kmeanspp(points, rng, seed_buf, d2_buf);
  RMatrix centroids(k_eff, dim);
  for (std::size_t c = 0; c < k_eff; ++c) {
    const auto row = points.row(seed_buf[c]);
    std::copy(row.begin(), row.end(), centroids.row(c).begin());
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  const std::span<std::size_t> counts = ws.take<std::size_t>(k_eff);
  // Hoisted centroid accumulator: zeroed each iteration instead of
  // reallocated (the value-initialized RMatrix it replaces started at
  // zero too, so the sums are unchanged).
  const RMatrixView next = workspace_matrix<double>(ws, k_eff, dim);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k_eff; ++c) {
        const double d2 = squared_distance(points.row(i), centroids.row(c));
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update.
    for (std::size_t c = 0; c < k_eff; ++c) {
      std::fill(next.row(c).begin(), next.row(c).end(), 0.0);
    }
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) next(c, d) += points(i, d);
    }
    for (std::size_t c = 0; c < k_eff; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: keep the previous centroid.
        std::copy(centroids.row(c).begin(), centroids.row(c).end(),
                  next.row(c).begin());
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        next(c, d) /= static_cast<double>(counts[c]);
      }
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k_eff; ++c) {
      for (std::size_t d = 0; d < dim; ++d) {
        shift = std::max(shift, std::abs(next(c, d) - centroids(c, d)));
      }
    }
    for (std::size_t c = 0; c < k_eff; ++c) {
      std::copy(next.row(c).begin(), next.row(c).end(),
                centroids.row(c).begin());
    }
    if (shift < config.centroid_tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        squared_distance(points.row(i), centroids.row(result.assignment[i]));
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace spotfi
