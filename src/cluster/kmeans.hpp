// k-means clustering with k-means++ seeding.
//
// Used directly for quick clustering and as the initializer for the
// Gaussian-mixture EM that implements the paper's "Gaussian mean
// clustering" of (AoA, ToF) estimates (Sec. 3.2.3). Points are D-dim rows
// of a matrix; SpotFi uses D = 2 (normalized AoA, normalized ToF).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

struct KMeansConfig {
  std::size_t max_iterations = 100;
  /// Converged when no assignment changes between iterations.
  double centroid_tolerance = 1e-9;
};

struct KMeansResult {
  /// k x D centroid matrix (k can shrink if there are fewer distinct
  /// points than requested clusters).
  RMatrix centroids;
  /// Cluster index per input point.
  std::vector<std::size_t> assignment;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Clusters the rows of `points` (n x D) into at most `k` clusters.
/// Requires n >= 1, k >= 1. Deterministic given the RNG state.
[[nodiscard]] KMeansResult kmeans(const RMatrix& points, std::size_t k,
                                  Rng& rng, const KMeansConfig& config = {});

/// Workspace overload: all iteration scratch (seeding distances, counts,
/// the per-iteration centroid accumulator) lives on `ws`, so the loop
/// allocates nothing — only the returned result touches the heap. The
/// default overload wraps this one; results are bit-identical.
[[nodiscard]] KMeansResult kmeans(ConstRMatrixView points, std::size_t k,
                                  Rng& rng, const KMeansConfig& config,
                                  Workspace& ws);

}  // namespace spotfi
