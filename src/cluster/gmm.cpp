#include "cluster/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/constants.hpp"
#include "linalg/numerics.hpp"

namespace spotfi {
namespace {

/// log N(x | mean, diag(var)).
double log_gaussian(std::span<const double> x, const GmmComponent& c) {
  double acc = 0.0;
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double diff = x[d] - c.mean[d];
    acc += -0.5 * std::log(2.0 * kPi * c.variance[d]) -
           0.5 * diff * diff / c.variance[d];
  }
  return acc;
}

double log_sum_exp(std::span<const double> v) {
  const double m = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

GmmResult fit_gmm(const RMatrix& points, std::size_t k, Rng& rng,
                  const GmmConfig& config) {
  return fit_gmm(ConstRMatrixView(points), k, rng, config,
                 thread_workspace());
}

GmmResult fit_gmm(ConstRMatrixView points, std::size_t k, Rng& rng,
                  const GmmConfig& config, Workspace& ws) {
  SPOTFI_EXPECTS(points.rows() >= 1, "fit_gmm needs at least one point");
  SPOTFI_EXPECTS(k >= 1, "fit_gmm needs at least one component");
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();

  Workspace::Frame frame(ws);
  // Per-dimension data variance fixes the scale of the relative floor.
  const std::span<double> floor_d = ws.take<double>(dim);
  std::fill(floor_d.begin(), floor_d.end(), config.variance_floor);
  bool degenerate_data = n >= 2;
  {
    const std::span<double> data_mean = ws.take<double>(dim);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < dim; ++d) data_mean[d] += points(i, d);
    for (auto& m : data_mean) m /= static_cast<double>(n);
    for (std::size_t d = 0; d < dim; ++d) {
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double diff = points(i, d) - data_mean[d];
        var += diff * diff;
      }
      var /= static_cast<double>(n);
      if (std::isfinite(var)) {
        floor_d[d] = std::max(config.variance_floor,
                              config.relative_variance_floor * var);
      }
      if (!(var < config.variance_floor)) degenerate_data = false;
    }
  }
  // Coincident input — the whole dataset has (sub-floor) zero spread in
  // every dimension, so the fit is pinned at the variance floor and the
  // component "shapes" carry no information. A single *component* hitting
  // the floor is routine (grid-quantized estimates coincide by design);
  // all-points-coincident is the numerical event worth reporting.
  if (degenerate_data) {
    count_numerics(&NumericsCounters::gmm_variance_floored);
  }

  // Initialize from k-means: means = centroids, variances = per-cluster
  // scatter, weights = cluster fractions.
  const KMeansResult km = kmeans(points, k, rng, KMeansConfig{}, ws);
  const std::size_t k_eff = km.centroids.rows();

  GmmResult result;
  result.components.resize(k_eff);
  const std::span<std::size_t> counts = ws.take<std::size_t>(k_eff);
  for (std::size_t c = 0; c < k_eff; ++c) {
    auto& comp = result.components[c];
    comp.mean.assign(km.centroids.row(c).begin(), km.centroids.row(c).end());
    comp.variance.assign(floor_d.begin(), floor_d.end());
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = km.assignment[i];
    ++counts[c];
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = points(i, d) - result.components[c].mean[d];
      result.components[c].variance[d] += diff * diff;
    }
  }
  for (std::size_t c = 0; c < k_eff; ++c) {
    const double cnt = std::max<double>(1.0, static_cast<double>(counts[c]));
    for (std::size_t d = 0; d < dim; ++d) {
      auto& v = result.components[c].variance[d];
      v = std::max(v / cnt, floor_d[d]);
    }
    result.components[c].weight =
        static_cast<double>(std::max<std::size_t>(counts[c], 1)) /
        static_cast<double>(n);
  }

  // EM iterations with log-space responsibilities.
  const RMatrixView resp = workspace_matrix<double>(ws, n, k_eff);
  const std::span<double> logp = ws.take<double>(k_eff);
  double prev_ll = -std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // E step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k_eff; ++c) {
        logp[c] = std::log(std::max(result.components[c].weight, 1e-300)) +
                  log_gaussian(points.row(i), result.components[c]);
      }
      const double lse = log_sum_exp(logp);
      ll += lse;
      for (std::size_t c = 0; c < k_eff; ++c) {
        resp(i, c) = std::exp(logp[c] - lse);
      }
    }
    if (!std::isfinite(ll)) {
      // A poisoned likelihood means the responsibilities this iteration are
      // garbage; keep the last consistent parameters instead of smearing
      // NaN through the M step.
      count_numerics(&NumericsCounters::gmm_nonfinite);
      break;
    }
    result.log_likelihood = ll;
    // M step.
    for (std::size_t c = 0; c < k_eff; ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp(i, c);
      auto& comp = result.components[c];
      if (nk < 1e-12) {
        comp.weight = 1e-12;
        continue;  // component died; keep its parameters frozen
      }
      comp.weight = nk / static_cast<double>(n);
      for (std::size_t d = 0; d < dim; ++d) {
        double mean = 0.0;
        for (std::size_t i = 0; i < n; ++i) mean += resp(i, c) * points(i, d);
        comp.mean[d] = mean / nk;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        double var = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double diff = points(i, d) - comp.mean[d];
          var += resp(i, c) * diff * diff;
        }
        comp.variance[d] = std::max(var / nk, floor_d[d]);
      }
    }
    if (ll - prev_ll < config.log_likelihood_tolerance && iter > 0) break;
    prev_ll = ll;
  }

  // Hard assignment by maximum responsibility.
  result.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < k_eff; ++c) {
      if (resp(i, c) > resp(i, best)) best = c;
    }
    result.assignment[i] = best;
  }
  return result;
}

}  // namespace spotfi
