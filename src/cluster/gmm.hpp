// Gaussian mixture model fitted by expectation-maximization.
//
// Implements the paper's "Gaussian mean clustering algorithm with five
// clusters" (Sec. 3.2.3): the (AoA, ToF) estimates accumulated over
// packets are soft-clustered; each mixture component's mean estimates a
// propagation path's parameters and its variance feeds the direct-path
// likelihood of Eq. 8. Components use diagonal covariance (AoA and ToF
// errors are treated as independent).
#pragma once

#include <vector>

#include "cluster/kmeans.hpp"

namespace spotfi {

struct GmmConfig {
  std::size_t max_iterations = 200;
  /// Stop when the log-likelihood improves by less than this.
  double log_likelihood_tolerance = 1e-7;
  /// Absolute variance floor keeping components from collapsing onto one
  /// point.
  double variance_floor = 1e-8;
  /// Relative variance floor: per dimension, the effective floor is
  /// max(variance_floor, relative_variance_floor * data variance in that
  /// dimension). Keeps the floor meaningful when the data lives at a scale
  /// where 1e-8 is either enormous or invisible.
  double relative_variance_floor = 1e-10;
};

struct GmmComponent {
  RVector mean;      ///< D-dim component mean
  RVector variance;  ///< D-dim diagonal covariance
  double weight = 0.0;
};

struct GmmResult {
  std::vector<GmmComponent> components;
  /// Hard assignment (most responsible component) per point.
  std::vector<std::size_t> assignment;
  /// Total data log-likelihood at convergence.
  double log_likelihood = 0.0;
  std::size_t iterations = 0;
};

/// Fits a `k`-component diagonal GMM to the rows of `points` (n x D),
/// initialized from k-means++. The effective component count can be
/// smaller than `k` when there are fewer distinct points.
[[nodiscard]] GmmResult fit_gmm(const RMatrix& points, std::size_t k,
                                Rng& rng, const GmmConfig& config = {});

/// Workspace overload: EM scratch (responsibilities, per-point log
/// probabilities, variance floors) and the k-means initialization's
/// iteration buffers live on `ws`; only the returned result allocates.
/// The default overload wraps this one; results are bit-identical.
[[nodiscard]] GmmResult fit_gmm(ConstRMatrixView points, std::size_t k,
                                Rng& rng, const GmmConfig& config,
                                Workspace& ws);

}  // namespace spotfi
