#include "durability/codec.hpp"

namespace spotfi {
namespace {

void write_rng_state(ByteWriter& w, const RngState& state) {
  for (const std::uint64_t s : state.s) w.u64(s);
  w.boolean(state.have_cached_normal);
  w.f64(state.cached_normal);
}

RngState read_rng_state(ByteReader& r) {
  RngState state;
  for (std::uint64_t& s : state.s) s = r.u64();
  state.have_cached_normal = r.boolean();
  state.cached_normal = r.f64();
  return state;
}

void write_cost_state(ByteWriter& w, const RoundCostState& state) {
  for (const double c : state.cost_s) w.f64(c);
  for (const bool s : state.seen) w.boolean(s);
}

RoundCostState read_cost_state(ByteReader& r) {
  RoundCostState state;
  for (double& c : state.cost_s) c = r.f64();
  for (std::size_t i = 0; i < kShedLevelCount; ++i) {
    state.seen[i] = r.boolean();
  }
  return state;
}

void write_tracker_state(ByteWriter& w, const TrackerState& state) {
  w.boolean(state.initialized);
  w.boolean(state.last_rejected);
  w.f64(state.last_t);
  for (const double v : state.state) w.f64(v);
  for (const double v : state.cov) w.f64(v);
}

TrackerState read_tracker_state(ByteReader& r) {
  TrackerState state;
  state.initialized = r.boolean();
  state.last_rejected = r.boolean();
  state.last_t = r.f64();
  for (double& v : state.state) v = r.f64();
  for (double& v : state.cov) v = r.f64();
  return state;
}

void write_health_state(ByteWriter& w, const ApHealthState& state) {
  w.u8(static_cast<std::uint8_t>(state.health));
  w.f64(state.last_accepted_s);
  w.u64(state.accepted);
  w.u64(state.rejected);
  w.u64(state.recoveries);
}

ApHealthState read_health_state(ByteReader& r) {
  ApHealthState state;
  state.health = static_cast<ApHealth>(r.u8());
  state.last_accepted_s = r.f64();
  state.accepted = r.u64();
  state.rejected = r.u64();
  state.recoveries = r.u64();
  return state;
}

void write_streaming_state(ByteWriter& w, const StreamingState& state) {
  w.u32(static_cast<std::uint32_t>(state.aps.size()));
  for (const ApBufferState& ap : state.aps) {
    write_health_state(w, ap.health);
    w.u32(static_cast<std::uint32_t>(ap.packets.size()));
    for (const CsiPacket& packet : ap.packets) write_packet(w, packet);
  }
  write_tracker_state(w, state.tracker);
  write_ingest_report(w, state.ingest);
  w.u64(state.rejected);
  w.u64(state.shed_rounds);
  w.u64(state.failed_rounds);
  w.u64(state.fix_count);
  w.u8(static_cast<std::uint8_t>(state.fidelity));
  w.f64(state.now_s);
  w.boolean(state.has_stream_start);
  w.f64(state.stream_start_s);
  w.boolean(state.has_armed_since);
  w.f64(state.armed_since_s);
  w.f64(state.last_fix_time_s);
}

StreamingState read_streaming_state(ByteReader& r) {
  StreamingState state;
  const std::uint32_t n_aps = r.u32();
  if (!r.ok()) return state;
  state.aps.resize(n_aps);
  for (ApBufferState& ap : state.aps) {
    ap.health = read_health_state(r);
    const std::uint32_t n_packets = r.u32();
    if (!r.ok()) return state;
    ap.packets.reserve(n_packets);
    for (std::uint32_t p = 0; p < n_packets && r.ok(); ++p) {
      ap.packets.push_back(read_packet(r));
    }
  }
  state.tracker = read_tracker_state(r);
  state.ingest = read_ingest_report(r);
  state.rejected = r.u64();
  state.shed_rounds = r.u64();
  state.failed_rounds = r.u64();
  state.fix_count = r.u64();
  state.fidelity = static_cast<ShedLevel>(r.u8());
  state.now_s = r.f64();
  state.has_stream_start = r.boolean();
  state.stream_start_s = r.f64();
  state.has_armed_since = r.boolean();
  state.armed_since_s = r.f64();
  state.last_fix_time_s = r.f64();
  return state;
}

}  // namespace

void write_packet(ByteWriter& w, const CsiPacket& packet) {
  w.u32(static_cast<std::uint32_t>(packet.csi.rows()));
  w.u32(static_cast<std::uint32_t>(packet.csi.cols()));
  for (std::size_t i = 0; i < packet.csi.rows(); ++i) {
    for (std::size_t j = 0; j < packet.csi.cols(); ++j) {
      const cplx v = packet.csi(i, j);
      w.f64(v.real());
      w.f64(v.imag());
    }
  }
  w.f64(packet.rssi_dbm);
  w.f64(packet.timestamp_s);
}

CsiPacket read_packet(ByteReader& r) {
  CsiPacket packet;
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  // Shape sanity before allocating: a CSI matrix is antennas x
  // subcarriers, both small. Checksums catch corruption; this catches
  // decode drift without letting it turn into a giant allocation.
  if (!r.ok() || rows > 4096 || cols > 4096 ||
      r.remaining() < static_cast<std::size_t>(rows) * cols * 16) {
    (void)r.u64();  // force ok() = false on short payloads
    while (r.ok()) (void)r.u64();
    return packet;
  }
  packet.csi = CMatrix(rows, cols);
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      const double re = r.f64();
      const double im = r.f64();
      packet.csi(i, j) = cplx(re, im);
    }
  }
  packet.rssi_dbm = r.f64();
  packet.timestamp_s = r.f64();
  return packet;
}

void write_session_stats(ByteWriter& w, const SessionStats& stats) {
  w.u64(stats.offered);
  w.u64(stats.accepted);
  w.u64(stats.degraded_admissions);
  w.u64(stats.shed_packets);
  w.u64(stats.queue_high_water);
  w.u64(stats.queue_capacity);
  w.u64(stats.rounds_full);
  w.u64(stats.rounds_degraded);
  w.u64(stats.rounds_shed);
  w.u64(stats.deadline_limited_rounds);
  w.u64(stats.deadline_misses);
  w.u64(stats.fixes);
  w.u64(stats.failed_rounds);
}

SessionStats read_session_stats(ByteReader& r) {
  SessionStats stats;
  stats.offered = r.u64();
  stats.accepted = r.u64();
  stats.degraded_admissions = r.u64();
  stats.shed_packets = r.u64();
  stats.queue_high_water = static_cast<std::size_t>(r.u64());
  stats.queue_capacity = static_cast<std::size_t>(r.u64());
  stats.rounds_full = r.u64();
  stats.rounds_degraded = r.u64();
  stats.rounds_shed = r.u64();
  stats.deadline_limited_rounds = r.u64();
  stats.deadline_misses = r.u64();
  stats.fixes = r.u64();
  stats.failed_rounds = r.u64();
  return stats;
}

void write_transport_stats(ByteWriter& w, const TransportStats& stats) {
  w.u64(stats.sent);
  w.u64(stats.acked);
  w.u64(stats.pending);
  w.u64(stats.failed);
  w.u64(stats.transmissions);
  w.u64(stats.retransmissions);
  w.u64(stats.send_rejected);
  w.u64(stats.connect_attempts);
  w.u64(stats.reconnects);
  w.u64(stats.heartbeats_sent);
  w.u64(stats.received);
  w.u64(stats.delivered);
  w.u64(stats.duplicates);
  w.u64(stats.out_of_window);
  w.u64(stats.corrupt);
  w.u64(stats.buffered);
  w.u64(stats.acks_sent);
  w.u64(stats.heartbeats_seen);
  w.u64(stats.connects_seen);
  w.u64(stats.backpressure_deferrals);
}

TransportStats read_transport_stats(ByteReader& r) {
  TransportStats stats;
  stats.sent = r.u64();
  stats.acked = r.u64();
  stats.pending = r.u64();
  stats.failed = r.u64();
  stats.transmissions = r.u64();
  stats.retransmissions = r.u64();
  stats.send_rejected = r.u64();
  stats.connect_attempts = r.u64();
  stats.reconnects = r.u64();
  stats.heartbeats_sent = r.u64();
  stats.received = r.u64();
  stats.delivered = r.u64();
  stats.duplicates = r.u64();
  stats.out_of_window = r.u64();
  stats.corrupt = r.u64();
  stats.buffered = r.u64();
  stats.acks_sent = r.u64();
  stats.heartbeats_seen = r.u64();
  stats.connects_seen = r.u64();
  stats.backpressure_deferrals = r.u64();
  return stats;
}

void write_ingest_report(ByteWriter& w, const IngestReport& report) {
  w.u64(report.records_accepted);
  w.u64(report.records_recovered);
  for (const std::size_t d : report.dropped) w.u64(d);
  w.u64(report.frames_foreign);
  w.u64(report.resyncs);
  w.u64(report.bytes_accepted);
  w.u64(report.bytes_skipped);
}

IngestReport read_ingest_report(ByteReader& r) {
  IngestReport report;
  report.records_accepted = static_cast<std::size_t>(r.u64());
  report.records_recovered = static_cast<std::size_t>(r.u64());
  for (std::size_t& d : report.dropped) d = static_cast<std::size_t>(r.u64());
  report.frames_foreign = static_cast<std::size_t>(r.u64());
  report.resyncs = static_cast<std::size_t>(r.u64());
  report.bytes_accepted = r.u64();
  report.bytes_skipped = r.u64();
  return report;
}

void write_session_state(ByteWriter& w, const SessionDurableState& state) {
  w.u64(state.id);
  write_session_stats(w, state.stats);
  w.u64(state.applied_packets);
  w.u64(state.applied_polls);
  w.u64(state.emitted_fixes);
  write_rng_state(w, state.rng);
  write_cost_state(w, state.cost);
  write_streaming_state(w, state.streaming);
}

SessionDurableState read_session_state(ByteReader& r) {
  SessionDurableState state;
  state.id = r.u64();
  state.stats = read_session_stats(r);
  state.applied_packets = r.u64();
  state.applied_polls = r.u64();
  state.emitted_fixes = r.u64();
  state.rng = read_rng_state(r);
  state.cost = read_cost_state(r);
  state.streaming = read_streaming_state(r);
  return state;
}

void write_receiver_state(ByteWriter& w, const ReceiverRecoveryState& state) {
  w.u32(state.epoch);
  w.u64(state.next_expected);
  write_transport_stats(w, state.stats);
  w.u32(static_cast<std::uint32_t>(state.window.size()));
  for (const ReceiverRecoveryState::BufferedFrame& frame : state.window) {
    w.u64(frame.seq);
    w.u64(frame.ap_id);
    write_packet(w, frame.packet);
  }
}

ReceiverRecoveryState read_receiver_state(ByteReader& r) {
  ReceiverRecoveryState state;
  state.epoch = r.u32();
  state.next_expected = r.u64();
  state.stats = read_transport_stats(r);
  const std::uint32_t n = r.u32();
  if (!r.ok()) return state;
  state.window.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    ReceiverRecoveryState::BufferedFrame frame;
    frame.seq = r.u64();
    frame.ap_id = static_cast<std::size_t>(r.u64());
    frame.packet = read_packet(r);
    state.window.push_back(std::move(frame));
  }
  return state;
}

}  // namespace spotfi
