// Append-only write-ahead journal of accepted work (DESIGN.md §14).
//
// Every packet the session layer accepts, every timer poll, every fix it
// emits, and every session open/close is appended as one checksummed,
// length-prefixed record before the effect is acknowledged upstream.
// Recovery replays the journal suffix after the latest snapshot through
// the deterministic pipeline, which regenerates the exact fixes the
// crashed process had emitted.
//
// File layout:
//
//   [8B magic "SPFIWAL\0"][u32 version]
//   record*:  [u32 payload_len][u8 type][u64 fnv1a(type || payload)][payload]
//
// The journal is torn-tail tolerant in the PR-2 ingest style: a crash
// mid-append leaves a partial (or checksum-bad) final record, scanning
// stops at the first bad byte and reports the valid prefix, and recovery
// truncates the tail instead of replaying it. A record is visible iff it
// is complete — there is no state in which half a record replays.
//
// Failure taxonomy mirrors IngestError/TransportError: every refusal or
// abandoned byte is an enumerable DurabilityError, never silent loss.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "durability/codec.hpp"
#include "durability/crash.hpp"

namespace spotfi {

inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 12;   // magic + version
inline constexpr std::size_t kWalFrameBytes = 13;    // len + type + checksum
/// Per-record payload cap — generous for CSI packets, tight enough that
/// a corrupted length field can never drive a giant allocation.
inline constexpr std::uint32_t kWalMaxPayload = 1u << 28;

/// Why a durability operation refused or stopped. `detail` is a static
/// string; `offset` is the file offset involved (0 when not positional).
enum class DurabilityErrorKind : std::uint8_t {
  kIoError,        ///< open/read/write/rename/truncate failed (incl. ENOSPC)
  kBadFileHeader,  ///< magic/version mismatch or file shorter than a header
  kTornRecord,     ///< partial record at the tail (crash mid-append)
  kBadLength,      ///< length field exceeds the payload cap
  kBadChecksum,    ///< complete record whose checksum does not match
  kBadPayload,     ///< checksum ok but the payload does not decode
};

inline constexpr std::size_t kDurabilityErrorKindCount = 6;

[[nodiscard]] const char* to_string(DurabilityErrorKind kind);

struct DurabilityError {
  DurabilityErrorKind kind = DurabilityErrorKind::kIoError;
  const char* detail = "";
  std::uint64_t offset = 0;
};

/// Journal record types. Values are on-disk format; never renumber.
enum class WalRecordType : std::uint8_t {
  kSessionOpen = 1,
  kPacket = 2,
  kFix = 3,
  kPoll = 4,
  kSessionClose = 5,
};

[[nodiscard]] const char* to_string(WalRecordType type);

// -- record payloads --------------------------------------------------------

struct WalSessionOpen {
  SessionId session = 0;
};

struct WalSessionClose {
  SessionId session = 0;
};

/// One accepted packet. `index` is the session's 1-based accepted
/// ordinal (the replay skip mark against SessionStats::accepted).
/// `receiver_id`/`seq` bind the packet to the transport delivery that
/// carried it, so recovery can recompute each receiver's cumulative-ack
/// mark; both 0 for packets fed directly (no transport).
struct WalPacket {
  SessionId session = 0;
  std::uint64_t index = 0;
  std::size_t ap_id = 0;
  std::uint64_t receiver_id = 0;
  std::uint64_t seq = 0;
  CsiPacket packet;
};

/// One emitted fix: its durable output values plus their digest. Replay
/// regenerates post-snapshot fixes from the deterministic pipeline and
/// checks them against the journaled digest (the byte-identical witness,
/// RecoveryReport::fix_mismatches); fixes already *inside* the restored
/// snapshot are re-emitted straight from the journaled values — a crash
/// between snapshot publish and the caller consuming pump()'s return
/// must not lose the fix. A cadence snapshot records its journal scan
/// mark at the *head* of the emitting batch (SnapshotData::journal_bytes),
/// so every fix record of that batch stays inside the scanned suffix
/// and remains reconstructible.
struct WalFix {
  SessionId session = 0;
  std::uint64_t index = 0;  ///< LocationFix::durable_round_index
  std::uint64_t digest = 0;
  double time_s = 0.0;
  bool degraded = false;
  Vec2 raw;
  Vec2 tracked;
};

/// One applied timer poll. `index` is the session's 1-based poll
/// ordinal (skip mark against the snapshot's applied_polls).
struct WalPoll {
  SessionId session = 0;
  std::uint64_t index = 0;
  double now_s = 0.0;
};

/// Position-independent digest of a fix's durable outputs.
[[nodiscard]] std::uint64_t fix_digest(const LocationFix& fix);

// -- writer -----------------------------------------------------------------

/// Injectable write-side I/O faults, swept by the CI ENOSPC matrix.
struct WalIoFailurePlan {
  /// Total journal bytes (header included) the "disk" accepts before
  /// write() reports ENOSPC. 0 = unlimited.
  std::uint64_t fail_after_bytes = 0;
  /// When > 0, each write() call transfers at most this many bytes — a
  /// short write — exercising the writer's resume loop.
  std::size_t short_write_bytes = 0;
};

/// Appends framed records to the journal file. Single-threaded, like
/// the transport endpoints. The record buffer is preallocated and
/// reused, so steady-state appends perform no heap allocation once the
/// buffer reaches its working size (bench gates BM_JournalAppend_Steady).
///
/// A failed append (ENOSPC, I/O error) truncates the file back to the
/// last committed record, so the journal on disk is always well-formed:
/// an append either commits whole or leaves no trace. Crash injection
/// (torn appends) deliberately violates this — that is what recovery's
/// tail truncation is for.
class WalWriter {
 public:
  /// Opens (creating if needed) the journal at `path` and positions at
  /// the end of `valid_bytes` — recovery passes the scanned valid
  /// prefix; a fresh journal writes the header. `crash` may be null.
  /// `fsync_on_commit` fdatasyncs after every committed record,
  /// extending the durability scope from process crashes to power loss
  /// (DurabilityConfig::fsync).
  WalWriter(std::string path, CrashInjector* crash = nullptr,
            WalIoFailurePlan io = {}, bool fsync_on_commit = false);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// True when the file opened and the header is in place.
  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] const std::optional<DurabilityError>& open_error() const {
    return open_error_;
  }
  /// Bytes committed to the journal (header + whole records).
  [[nodiscard]] std::uint64_t committed_bytes() const { return committed_; }

  /// Two-phase append for the hot packet path: stage() hands out a
  /// ByteWriter over the reused record buffer so the caller can encode
  /// straight from a packet it is about to move into the ingest queue,
  /// and commit_staged() frames and writes it only once admission
  /// succeeded. A staged record that is never committed costs nothing.
  [[nodiscard]] ByteWriter stage() { return begin_record(); }
  Expected<std::uint64_t, DurabilityError> commit_staged(WalRecordType type) {
    return commit(type);
  }

  Expected<std::uint64_t, DurabilityError> append_open(
      const WalSessionOpen& record);
  Expected<std::uint64_t, DurabilityError> append_close(
      const WalSessionClose& record);
  Expected<std::uint64_t, DurabilityError> append_packet(
      const WalPacket& record);
  Expected<std::uint64_t, DurabilityError> append_fix(const WalFix& record);
  Expected<std::uint64_t, DurabilityError> append_poll(const WalPoll& record);

 private:
  /// Frames buf_ (payload already encoded past the frame prefix) and
  /// writes it; returns the new committed size.
  Expected<std::uint64_t, DurabilityError> commit(WalRecordType type);
  /// ByteWriter positioned after a frame-sized placeholder in buf_.
  [[nodiscard]] ByteWriter begin_record();

  std::string path_;
  int fd_ = -1;
  std::uint64_t committed_ = 0;
  std::vector<std::uint8_t> buf_;  ///< reused frame+payload buffer
  CrashInjector* crash_;
  WalIoFailurePlan io_;
  bool fsync_on_commit_ = false;
  std::optional<DurabilityError> open_error_;
};

// -- scanner ----------------------------------------------------------------

/// One decoded journal frame (payload still encoded).
struct WalRecord {
  WalRecordType type = WalRecordType::kPacket;
  std::uint64_t offset = 0;  ///< file offset of the frame start
  std::vector<std::uint8_t> payload;
};

struct WalScan {
  std::vector<WalRecord> records;
  /// Header plus every whole, checksum-good record — the prefix a
  /// recovering writer resumes behind (everything past it is torn).
  /// When the scan started at an offset, records below it are *assumed*
  /// valid (they were committed before the covering snapshot) and
  /// counted here without being read.
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  /// Bytes below the start offset that were never read (0 on a full
  /// scan) — the snapshot-bounded part of the journal.
  std::uint64_t skipped_bytes = 0;
  /// Why the scan stopped before the end of the file, if it did.
  std::optional<DurabilityError> tail_error;
};

/// Scans the journal, stopping at the first torn/corrupt byte. A
/// missing file is a valid empty journal (fresh start), not an error.
/// `start_offset` (a committed-bytes mark recorded in a snapshot)
/// bounds the scan: only the suffix past it is read or materialized,
/// so recovery cost is proportional to the journal written since the
/// snapshot, not since deployment. An offset that does not land inside
/// the file (journal wiped or recreated underneath the snapshot) falls
/// back to a full scan — replay skip marks make the extra records
/// harmless.
[[nodiscard]] WalScan scan_wal(const std::string& path,
                               std::uint64_t start_offset = 0);

/// Truncates the journal to its valid prefix (discarding a torn tail).
/// Reaches CrashPoint::kRecoveryTruncate first — a crash *during*
/// recovery leaves the torn tail in place for the next recovery.
Expected<std::uint64_t, DurabilityError> truncate_wal(
    const std::string& path, std::uint64_t valid_bytes,
    CrashInjector* crash = nullptr);

// -- payload codecs ---------------------------------------------------------

void encode_wal_open(ByteWriter& w, const WalSessionOpen& record);
void encode_wal_close(ByteWriter& w, const WalSessionClose& record);
void encode_wal_packet(ByteWriter& w, const WalPacket& record);
/// Field-wise variant for the staged hot path (no WalPacket aggregate,
/// so the CsiPacket is never copied).
void encode_wal_packet(ByteWriter& w, SessionId session, std::uint64_t index,
                       std::size_t ap_id, std::uint64_t receiver_id,
                       std::uint64_t seq, const CsiPacket& packet);
void encode_wal_fix(ByteWriter& w, const WalFix& record);
void encode_wal_poll(ByteWriter& w, const WalPoll& record);

[[nodiscard]] Expected<WalSessionOpen, DurabilityError> decode_wal_open(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<WalSessionClose, DurabilityError> decode_wal_close(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<WalPacket, DurabilityError> decode_wal_packet(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<WalFix, DurabilityError> decode_wal_fix(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<WalPoll, DurabilityError> decode_wal_poll(
    std::span<const std::uint8_t> payload);

}  // namespace spotfi
