#include "durability/durability.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "transport/transport.hpp"

namespace spotfi {
namespace {

/// Per-session replay skip marks derived from the snapshot: journal
/// records at or below a mark are already inside the restored state.
struct SkipMarks {
  std::uint64_t applied_packets = 0;
  std::uint64_t applied_polls = 0;
  /// Accepted count at snapshot time — packets with index at or below
  /// it were admission-counted before the snapshot (they may still need
  /// replaying if they sat in the queue, hence a separate mark).
  std::uint64_t counted_through = 0;
  std::uint64_t emitted_fixes = 0;
};

}  // namespace

DurableSessionManager::DurableSessionManager(
    LinkConfig link, SessionManagerConfig manager_config,
    DurabilityConfig durability)
    : manager_(std::move(link), manager_config), config_(std::move(durability)) {
  if (!config_.enabled) recovered_ = true;  // pass-through needs no recover()
}

std::string DurableSessionManager::journal_path() const {
  return (std::filesystem::path(config_.dir) / "journal.wal").string();
}

void DurableSessionManager::note_append(
    const Expected<std::uint64_t, DurabilityError>& result) {
  if (!result.has_value()) ++journal_failures_;
}

RecoveryReport DurableSessionManager::recover(const SessionConfigFn& config_of) {
  RecoveryReport report;
  if (!config_.enabled) {
    recovered_ = true;
    return report;
  }
  SPOTFI_EXPECTS(!recovered_, "recover() must run exactly once");
  SPOTFI_EXPECTS(manager_.session_count() == 0,
                 "recover() requires a fresh manager");

  // 1. Newest valid snapshot (falling back across corrupt ones).
  SnapshotLoadResult loaded = load_latest_snapshot(config_.dir);
  report.snapshots_discarded = loaded.discarded;
  snapshot_seq_ = loaded.max_seq_seen;  // never reuse a burned ordinal

  std::unordered_map<SessionId, SkipMarks> marks;
  std::unordered_set<SessionId> live;
  SessionId snapshot_horizon = 1;
  std::uint64_t scan_from = 0;

  if (loaded.data.has_value()) {
    SnapshotData& snap = *loaded.data;
    report.snapshot_loaded = true;
    report.snapshot_seq = snap.seq;
    scan_from = snap.journal_bytes;
    snapshot_horizon = snap.next_session_id;
    manager_.advance_session_ids(snap.next_session_id);
    manager_.restore_retired_stats(snap.retired);
    for (SessionDurableState& state : snap.sessions) {
      const SessionId id = state.id;
      SkipMarks m;
      m.applied_packets = state.applied_packets;
      m.applied_polls = state.applied_polls;
      m.counted_through = state.stats.accepted;
      m.emitted_fixes = state.emitted_fixes;
      manager_.reopen_session(id, config_of(id));
      manager_.restore_session_state(id, std::move(state));
      marks.emplace(id, m);
      live.insert(id);
      ++report.sessions_recovered;
    }
    for (SnapshotData::ReceiverEntry& entry : snap.receivers) {
      RecoveredReceiver rec;
      rec.next_expected = entry.state.next_expected;
      rec.state = std::move(entry.state);
      recovered_receivers_.emplace(entry.receiver_id, std::move(rec));
    }
  }

  // 2. Scan the journal — from the snapshot's scan mark, so scan cost
  //    and memory are bounded by the journal written since it — and cut
  //    off the torn tail before replaying: nothing past the first bad
  //    byte is ever applied.
  const std::string path = journal_path();
  WalScan scan = scan_wal(path, scan_from);
  report.journal_bytes_skipped = scan.skipped_bytes;
  report.tail_error = scan.tail_error;
  bool journal_usable = true;
  if (scan.file_bytes > scan.valid_bytes) {
    report.journal_bytes_truncated = scan.file_bytes - scan.valid_bytes;
    const auto truncated =
        truncate_wal(path, scan.valid_bytes, config_.crash);
    if (!truncated.has_value()) {
      // Could not cut the tail: replay the valid prefix from memory but
      // refuse to append behind an untrimmed torn tail.
      report.tail_error = truncated.error();
      journal_usable = false;
    }
  }

  // 3. Replay the suffix through the deterministic pipeline. Digests of
  //    regenerated fixes are checked against the journaled kFix records
  //    (the byte-identical witness).
  std::unordered_map<SessionId, std::unordered_map<std::uint64_t, std::uint64_t>>
      regenerated;
  const auto note_fix = [&](SessionId id, std::optional<LocationFix> fix) {
    if (!fix.has_value()) return;
    regenerated[id][fix->durable_round_index] = fix_digest(*fix);
    report.recovered_fixes.emplace_back(id, std::move(*fix));
  };

  for (WalRecord& record : scan.records) {
    switch (record.type) {
      case WalRecordType::kSessionOpen: {
        const auto rec = decode_wal_open(record.payload);
        if (!rec.has_value()) break;
        const SessionId id = rec->session;
        if (live.contains(id)) break;  // already restored from snapshot
        if (id < snapshot_horizon) break;  // opened and closed pre-snapshot
        manager_.reopen_session(id, config_of(id));
        marks.emplace(id, SkipMarks{});
        live.insert(id);
        ++report.sessions_recovered;
        ++report.records_replayed;
        break;
      }
      case WalRecordType::kPacket: {
        auto rec = decode_wal_packet(record.payload);
        if (!rec.has_value()) break;
        if (!live.contains(rec->session)) break;
        if (rec->receiver_id != 0) {
          // Journal-proven delivery: the recovered ack never retreats
          // below it, so the reconnecting sender cannot redeliver.
          RecoveredReceiver& rr = recovered_receivers_[rec->receiver_id];
          rr.next_expected = std::max(rr.next_expected, rec->seq + 1);
        }
        const SkipMarks& m = marks[rec->session];
        if (rec->index <= m.applied_packets) break;  // inside the snapshot
        note_fix(rec->session,
                 manager_.replay_packet(rec->session, rec->ap_id,
                                        std::move(rec->packet),
                                        rec->index > m.counted_through));
        ++report.packets_replayed;
        ++report.records_replayed;
        break;
      }
      case WalRecordType::kPoll: {
        const auto rec = decode_wal_poll(record.payload);
        if (!rec.has_value()) break;
        if (!live.contains(rec->session)) break;
        if (rec->index <= marks[rec->session].applied_polls) break;
        note_fix(rec->session,
                 manager_.replay_poll(rec->session, rec->now_s));
        ++report.polls_replayed;
        ++report.records_replayed;
        break;
      }
      case WalRecordType::kFix: {
        const auto rec = decode_wal_fix(record.payload);
        if (!rec.has_value()) break;
        if (!live.contains(rec->session)) break;
        if (rec->index <= marks[rec->session].emitted_fixes) {
          // Already inside the restored snapshot, so replay will not
          // regenerate it — but the crashed pump() may have died before
          // the caller consumed it (kSnapshotPublished sits between the
          // append and the return). Re-emit it from the journaled
          // values; consumers dedup by durable_round_index.
          LocationFix fix;
          fix.raw = rec->raw;
          fix.tracked = rec->tracked;
          fix.time_s = rec->time_s;
          fix.degraded = rec->degraded;
          fix.durable_round_index = rec->index;
          report.recovered_fixes.emplace_back(rec->session, std::move(fix));
          ++report.records_replayed;
          break;
        }
        ++report.records_replayed;
        const auto& digests = regenerated[rec->session];
        const auto it = digests.find(rec->index);
        if (it == digests.end() || it->second != rec->digest) {
          ++report.fix_mismatches;
        }
        break;
      }
      case WalRecordType::kSessionClose: {
        const auto rec = decode_wal_close(record.payload);
        if (!rec.has_value()) break;
        if (!live.contains(rec->session)) break;
        manager_.close_session(rec->session);
        live.erase(rec->session);
        ++report.records_replayed;
        break;
      }
    }
  }

  // 4. Reopen the journal for appending behind the valid prefix.
  if (journal_usable) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    auto writer = std::make_unique<WalWriter>(path, config_.crash, config_.io,
                                              config_.fsync);
    if (writer->ok()) {
      wal_ = std::move(writer);
    } else {
      ++journal_failures_;
    }
  } else {
    ++journal_failures_;
  }
  recovered_ = true;
  return report;
}

SessionId DurableSessionManager::open_session(const SessionConfig& config) {
  if (!config_.enabled) return manager_.open_session(config);
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  const SessionId id = manager_.open_session(config);
  if (wal_ != nullptr) {
    note_append(wal_->append_open({id}));
  } else {
    ++journal_failures_;
  }
  return id;
}

void DurableSessionManager::close_session(SessionId id) {
  if (!config_.enabled) {
    manager_.close_session(id);
    return;
  }
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  // Journal before effect, like packets: a crash between the two then
  // replays the close (idempotent) instead of resurrecting a session
  // whose caller already observed the close complete.
  if (wal_ != nullptr) {
    note_append(wal_->append_close({id}));
  } else {
    ++journal_failures_;
  }
  manager_.close_session(id);
}

AdmissionVerdict DurableSessionManager::offer(SessionId id, std::size_t ap_id,
                                              CsiPacket packet) {
  if (!config_.enabled) return manager_.offer(id, ap_id, std::move(packet));
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  // The accepted ordinal this packet gets if admitted. Safe to read
  // ahead of the offer: accepted is only ever advanced by this
  // (journal-serialized) producer path.
  const std::uint64_t index = manager_.session_stats(id).accepted + 1;
  if (wal_ != nullptr) {
    ByteWriter w = wal_->stage();
    encode_wal_packet(w, id, index, ap_id, /*receiver_id=*/0, /*seq=*/0,
                      packet);
  }
  const AdmissionVerdict verdict = manager_.offer(id, ap_id, std::move(packet));
  if (verdict.admitted()) {
    if (wal_ != nullptr) {
      note_append(wal_->commit_staged(WalRecordType::kPacket));
    } else {
      ++journal_failures_;
    }
  }
  return verdict;
}

std::vector<LocationFix> DurableSessionManager::pump(SessionId id) {
  if (!config_.enabled) return manager_.pump(id);
  // The lock spans the manager pump too (like poll): a cadence snapshot
  // on another session's thread reads *this* session's state, so the
  // pump must not mutate it concurrently.
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  const std::uint64_t batch_start = wal_ != nullptr ? wal_->committed_bytes() : 0;
  std::vector<LocationFix> fixes = manager_.pump(id);
  for (const LocationFix& fix : fixes) journal_fix(id, fix);
  // Cadence only after the whole batch is journaled: a snapshot taken
  // mid-batch would cover fixes whose records are not yet appended, and
  // a crash right after publish would lose them for good.
  maybe_snapshot_locked(batch_start);
  return fixes;
}

std::optional<LocationFix> DurableSessionManager::poll(SessionId id,
                                                       double now_s) {
  if (!config_.enabled) return manager_.poll(id, now_s);
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  const std::uint64_t batch_start = wal_ != nullptr ? wal_->committed_bytes() : 0;
  std::optional<LocationFix> fix = manager_.poll(id, now_s);
  const std::uint64_t index = manager_.applied_polls(id);
  if (wal_ != nullptr) {
    note_append(wal_->append_poll({id, index, now_s}));
  } else {
    ++journal_failures_;
  }
  if (fix.has_value()) journal_fix(id, *fix);
  maybe_snapshot_locked(batch_start);
  return fix;
}

TransportSink DurableSessionManager::make_sink(SessionId id,
                                               std::uint64_t receiver_id) {
  if (!config_.enabled) return make_session_sink(manager_, id);
  SPOTFI_EXPECTS(receiver_id != 0, "receiver_id 0 is reserved for direct feeds");
  return [this, id, receiver_id](std::size_t ap_id, CsiPacket& packet) {
    const std::lock_guard<std::mutex> lock(wal_mutex_);
    SPOTFI_EXPECTS(recovered_, "durable sink used before recover()");
    std::uint64_t seq = 0;
    if (const auto it = receivers_.find(receiver_id);
        it != receivers_.end() && it->second != nullptr) {
      seq = it->second->delivering_seq();
    }
    const std::uint64_t index = manager_.session_stats(id).accepted + 1;
    if (wal_ != nullptr) {
      ByteWriter w = wal_->stage();
      encode_wal_packet(w, id, index, ap_id, receiver_id, seq, packet);
    }
    IngestItem item;
    item.ap_id = ap_id;
    item.packet = std::move(packet);
    if (!manager_.offer_or_return(id, item).admitted()) {
      // Shed at the session queue: hand the payload back untouched so
      // the receiver retries later; nothing was journaled.
      packet = std::move(item.packet);
      return false;
    }
    if (wal_ != nullptr) {
      note_append(wal_->commit_staged(WalRecordType::kPacket));
    } else {
      ++journal_failures_;
    }
    return true;
  };
}

void DurableSessionManager::bind_receiver(std::uint64_t receiver_id,
                                          TransportReceiver* receiver) {
  SPOTFI_EXPECTS(receiver_id != 0, "receiver_id 0 is reserved for direct feeds");
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  receivers_[receiver_id] = receiver;
}

bool DurableSessionManager::restore_receiver(std::uint64_t receiver_id,
                                             TransportReceiver& receiver) {
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  const auto it = recovered_receivers_.find(receiver_id);
  if (it == recovered_receivers_.end()) return false;
  receiver.restore_recovery_state(std::move(it->second.state),
                                  it->second.next_expected);
  recovered_receivers_.erase(it);
  receivers_[receiver_id] = &receiver;
  return true;
}

void DurableSessionManager::journal_fix(SessionId id, const LocationFix& fix) {
  if (wal_ != nullptr) {
    note_append(wal_->append_fix({id, fix.durable_round_index, fix_digest(fix),
                                  fix.time_s, fix.degraded, fix.raw,
                                  fix.tracked}));
  } else {
    ++journal_failures_;
  }
  ++fixes_since_snapshot_;
}

void DurableSessionManager::maybe_snapshot_locked(
    std::uint64_t batch_start_bytes) {
  if (config_.snapshot_every_fixes == 0 ||
      fixes_since_snapshot_ < config_.snapshot_every_fixes) {
    return;
  }
  fixes_since_snapshot_ = 0;
  const auto result = snapshot_locked(batch_start_bytes);
  if (!result.has_value()) ++journal_failures_;
}

Expected<std::string, DurabilityError> DurableSessionManager::snapshot() {
  const std::lock_guard<std::mutex> lock(wal_mutex_);
  SPOTFI_EXPECTS(config_.enabled, "snapshot() requires durability enabled");
  SPOTFI_EXPECTS(recovered_, "durable manager used before recover()");
  // Quiesced: no batch is in flight, so the scan mark is the journal tip.
  return snapshot_locked(wal_ != nullptr ? wal_->committed_bytes() : 0);
}

Expected<std::string, DurabilityError> DurableSessionManager::snapshot_locked(
    std::uint64_t journal_mark) {
  SnapshotData data;
  data.seq = ++snapshot_seq_;
  data.journal_bytes = journal_mark;
  data.next_session_id = manager_.next_session_id();
  data.retired = manager_.retired_stats();
  for (const SessionId id : manager_.session_ids()) {
    data.sessions.push_back(manager_.export_session_state(id));
  }
  for (const auto& [receiver_id, receiver] : receivers_) {
    if (receiver == nullptr) continue;
    data.receivers.push_back({receiver_id, receiver->export_recovery_state()});
  }
  // Receiver iteration order is a hash map's; sort so the snapshot
  // bytes are a pure function of the state.
  std::sort(data.receivers.begin(), data.receivers.end(),
            [](const auto& a, const auto& b) {
              return a.receiver_id < b.receiver_id;
            });
  const auto result =
      write_snapshot(config_.dir, data, config_.snapshots_to_keep,
                     config_.crash, config_.fsync);
  if (result.has_value()) ++snapshots_written_;
  return result;
}

}  // namespace spotfi
