#include "durability/crash.hpp"

#include <string>

#include "common/rng.hpp"

namespace spotfi {

const char* to_string(CrashPoint point) {
  switch (point) {
    case CrashPoint::kJournalAppendStart: return "journal-append-start";
    case CrashPoint::kJournalAppendTorn: return "journal-append-torn";
    case CrashPoint::kJournalAppendDone: return "journal-append-done";
    case CrashPoint::kSnapshotBegin: return "snapshot-begin";
    case CrashPoint::kSnapshotTorn: return "snapshot-torn";
    case CrashPoint::kSnapshotWritten: return "snapshot-written";
    case CrashPoint::kSnapshotPublished: return "snapshot-published";
    case CrashPoint::kRecoveryTruncate: return "recovery-truncate";
  }
  return "unknown";
}

CrashInjected::CrashInjected(CrashPoint point)
    : std::runtime_error(std::string("injected crash at ") +
                         to_string(point)),
      point_(point) {}

void CrashInjector::arm(CrashPoint point, std::uint64_t nth_visit,
                        std::uint64_t seed) {
  armed_ = true;
  point_ = point;
  nth_ = nth_visit;
  seed_ = seed;
}

bool CrashInjector::due(CrashPoint point) const {
  return armed_ && point_ == point &&
         visits_[static_cast<std::size_t>(point)] == nth_;
}

void CrashInjector::reach(CrashPoint point) {
  ++visits_[static_cast<std::size_t>(point)];
  if (due(point)) throw CrashInjected(point);
}

std::optional<std::size_t> CrashInjector::reach_torn(
    CrashPoint point, std::size_t pending_bytes) {
  ++visits_[static_cast<std::size_t>(point)];
  if (!due(point)) return std::nullopt;
  if (pending_bytes == 0) return 0;
  // Seed the prefix from (seed, point, visit) so two torn points armed
  // from the same base seed still tear differently.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(point) + 1)));
  return static_cast<std::size_t>(rng.uniform_index(pending_bytes));
}

}  // namespace spotfi
