// Periodic snapshots of the full session-layer state (DESIGN.md §14).
//
// A snapshot bounds recovery time: instead of replaying the journal
// from the beginning, recovery loads the latest valid snapshot and
// replays only the WAL suffix past it. Each snapshot captures every
// live session's SessionDurableState, the manager's id horizon and
// retired-stats aggregate, and every bound TransportReceiver's epoch /
// cumulative-ack / reorder window — so a reconnecting sender resumes
// from the recovered ack and never redelivers.
//
// Publication is atomic: the snapshot is written to a temp file and
// rename()d into place, so a crash mid-write leaves a stray .tmp that
// recovery ignores, never a half-snapshot under the real name. The
// whole payload is checksummed; a corrupt snapshot is discarded and
// recovery falls back to the previous one (and from there to a full
// journal replay), counting every discard.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "durability/crash.hpp"
#include "durability/wal.hpp"

namespace spotfi {

inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Everything a cold process needs to rebuild the session layer.
struct SnapshotData {
  /// Monotone snapshot ordinal (also the file name), strictly above any
  /// snapshot the previous incarnation published.
  std::uint64_t seq = 0;
  /// Journal committed-bytes mark where recovery starts scanning:
  /// records below it are inside this snapshot's state, so the scan
  /// (and its memory) is bounded by the journal written since the
  /// snapshot, not since deployment. A cadence snapshot records the
  /// mark at the *head* of the pump()/poll() batch that tripped it, so
  /// the batch's own fix records stay inside the scanned suffix and can
  /// be re-emitted after a crash between publish and the caller
  /// consuming the batch. 0 = full scan.
  std::uint64_t journal_bytes = 0;
  /// SessionManager id horizon at capture time.
  SessionId next_session_id = 1;
  /// Closed-session aggregate at capture time.
  SessionStats retired;
  std::vector<SessionDurableState> sessions;
  struct ReceiverEntry {
    std::uint64_t receiver_id = 0;
    ReceiverRecoveryState state;
  };
  std::vector<ReceiverEntry> receivers;
};

/// Serializes `data` into `dir` as snapshot-<seq>.snap via temp + rename
/// and prunes to the newest `keep` snapshots (stray .tmp files are swept
/// too). Returns the published path. `fsync` additionally syncs the
/// temp file before the rename and the directory after it, extending
/// the publish guarantee from process crashes to power loss
/// (DurabilityConfig::fsync).
Expected<std::string, DurabilityError> write_snapshot(
    const std::string& dir, const SnapshotData& data, std::size_t keep,
    CrashInjector* crash = nullptr, bool fsync = false);

struct SnapshotLoadResult {
  /// The newest snapshot that verified and decoded; nullopt = none
  /// (fresh start or every candidate corrupt — full journal replay).
  std::optional<SnapshotData> data;
  /// Corrupt/torn snapshot files skipped on the way down.
  std::uint64_t discarded = 0;
  /// Highest snapshot seq present in the directory (valid or not), so a
  /// recovered writer never reuses a burned ordinal.
  std::uint64_t max_seq_seen = 0;
};

/// Walks `dir`'s snapshots newest-first and returns the first one whose
/// checksum verifies and whose payload decodes. A missing directory is
/// a fresh start, not an error.
[[nodiscard]] SnapshotLoadResult load_latest_snapshot(const std::string& dir);

}  // namespace spotfi
