// Binary codec for the durability subsystem (DESIGN.md §14).
//
// Journal records and snapshots must round-trip the session state
// *bit-exactly* — a recovered localizer continues the very double it
// left off at — so every scalar is written as its exact bit pattern
// (doubles via bit_cast, explicit little-endian byte order), never
// through text formatting. The writer appends into a caller-owned
// buffer that the WAL reuses across appends, so the steady accepted-
// packet path allocates nothing once the buffer has grown to its
// working size (bench/perf_durability.cpp gates this).
//
// The reader is fail-soft in the PR-2 ingest style: reads past the end
// of the payload latch a failure flag instead of throwing, and the
// caller checks ok() once at the end. Checksums are verified before
// decoding, so a latched failure means a version/logic mismatch, not
// random corruption — the caller treats it as a bad record.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "core/session_manager.hpp"
#include "transport/transport.hpp"

namespace spotfi {

/// FNV-1a over a byte span — the same construction packet_checksum()
/// uses on payload bit patterns, here applied to serialized records.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes,
    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Appends little-endian scalars to a caller-owned byte vector. The
/// vector is the reuse point: clear() it between records and its
/// capacity survives, so steady-state appends never allocate.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] std::size_t size() const { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian reads over a record payload. Overruns
/// latch fail() and return zeros; check ok() after decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!need(1)) return 0;
    return bytes_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(bytes_[pos_++]) << (8 * i));
    }
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  /// True when every read so far stayed in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the whole payload was consumed cleanly.
  [[nodiscard]] bool done() const { return ok_ && pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// -- aggregate codecs -------------------------------------------------------
// One write_/read_ pair per durable aggregate; readers return garbage on
// a latched failure (callers check ByteReader::ok()).

void write_packet(ByteWriter& w, const CsiPacket& packet);
[[nodiscard]] CsiPacket read_packet(ByteReader& r);

void write_session_stats(ByteWriter& w, const SessionStats& stats);
[[nodiscard]] SessionStats read_session_stats(ByteReader& r);

void write_transport_stats(ByteWriter& w, const TransportStats& stats);
[[nodiscard]] TransportStats read_transport_stats(ByteReader& r);

void write_ingest_report(ByteWriter& w, const IngestReport& report);
[[nodiscard]] IngestReport read_ingest_report(ByteReader& r);

void write_session_state(ByteWriter& w, const SessionDurableState& state);
[[nodiscard]] SessionDurableState read_session_state(ByteReader& r);

void write_receiver_state(ByteWriter& w, const ReceiverRecoveryState& state);
[[nodiscard]] ReceiverRecoveryState read_receiver_state(ByteReader& r);

}  // namespace spotfi
