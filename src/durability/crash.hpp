// Deterministic crash injection for the durability subsystem.
//
// Every durability I/O boundary calls into an injectable CrashPoint
// hook, the way the PR-7 chaos harness injects link faults: the test
// arms one (point, nth-visit) pair from a seed, runs the scenario, and
// the "process" dies — a CrashInjected exception unwinds out of the
// data path, the harness discards every in-memory object, and recovery
// starts from the files alone. Torn points additionally write a seeded
// prefix of the pending bytes before dying, modelling a power cut mid
// write(). The same seed reproduces the same crash exactly, so a CI
// failure is replayable from its printed (point, nth, seed) triple.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

namespace spotfi {

/// Every durability I/O boundary. The harness sweeps all of them.
enum class CrashPoint : std::uint8_t {
  kJournalAppendStart = 0,  ///< before any record byte reaches the file
  kJournalAppendTorn = 1,   ///< a prefix of the record reaches the file
  kJournalAppendDone = 2,   ///< record durable, before effects surface
  kSnapshotBegin = 3,       ///< before the temp snapshot file is created
  kSnapshotTorn = 4,        ///< a prefix of the temp snapshot is written
  kSnapshotWritten = 5,     ///< temp complete, before the publish rename
  kSnapshotPublished = 6,   ///< renamed, before old snapshots are pruned
  kRecoveryTruncate = 7,    ///< before recovery truncates a torn tail
};

inline constexpr std::size_t kCrashPointCount = 8;

[[nodiscard]] const char* to_string(CrashPoint point);

/// The simulated process death. Harnesses catch it at the top of the
/// drive loop and must then discard every in-memory object that touched
/// the durable state — recovery starts from the files.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(CrashPoint point);
  [[nodiscard]] CrashPoint point() const { return point_; }

 private:
  CrashPoint point_;
};

/// Counts visits to every crash point and, when armed, kills the
/// process at the nth visit of one of them. Not owned by the durability
/// objects (the test owns it and passes a pointer via DurabilityConfig);
/// null pointer = production, zero overhead.
class CrashInjector {
 public:
  /// Arms a crash at the `nth_visit` (1-based) of `point`. The seed
  /// drives the torn-write prefix length at torn points.
  void arm(CrashPoint point, std::uint64_t nth_visit, std::uint64_t seed);
  void disarm() { armed_ = false; }
  [[nodiscard]] bool armed() const { return armed_; }

  /// Records one visit; throws CrashInjected on the armed visit.
  void reach(CrashPoint point);

  /// Torn-point variant: records the visit and, on the armed one,
  /// returns the seeded number of bytes (in [0, pending_bytes)) the
  /// caller must still write before throwing CrashInjected itself —
  /// the torn prefix has to reach the file to model a mid-write cut.
  [[nodiscard]] std::optional<std::size_t> reach_torn(
      CrashPoint point, std::size_t pending_bytes);

  [[nodiscard]] std::uint64_t visits(CrashPoint point) const {
    return visits_[static_cast<std::size_t>(point)];
  }
  void reset_visits() { visits_.fill(0); }

 private:
  [[nodiscard]] bool due(CrashPoint point) const;

  std::array<std::uint64_t, kCrashPointCount> visits_{};
  bool armed_ = false;
  CrashPoint point_ = CrashPoint::kJournalAppendStart;
  std::uint64_t nth_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace spotfi
