#include "durability/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <utility>

#include "durability/codec.hpp"

namespace spotfi {
namespace {

namespace fs = std::filesystem;

constexpr std::array<std::uint8_t, 8> kSnapMagic = {'S', 'P', 'F', 'I',
                                                    'S', 'N', 'A', 'P'};
constexpr std::size_t kSnapHeaderBytes = 20;  // magic + version + checksum

std::string snapshot_name(std::uint64_t seq) {
  // Zero-padded so lexicographic file order matches seq order.
  char digits[21];
  std::snprintf(digits, sizeof digits, "%020llu",
                static_cast<unsigned long long>(seq));
  return std::string("snapshot-") + digits + ".snap";
}

/// Parses "snapshot-<seq>.snap"; nullopt for anything else.
std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  constexpr const char* kPrefix = "snapshot-";
  constexpr const char* kSuffix = ".snap";
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) {
    return std::nullopt;
  }
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (!name.ends_with(kSuffix)) return std::nullopt;
  const char* first = name.data() + std::strlen(kPrefix);
  const char* last = name.data() + name.size() - std::strlen(kSuffix);
  std::uint64_t seq = 0;
  const auto [ptr, ec] = std::from_chars(first, last, seq);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return seq;
}

void encode_snapshot(ByteWriter& w, const SnapshotData& data) {
  w.u64(data.seq);
  w.u64(data.journal_bytes);
  w.u64(data.next_session_id);
  write_session_stats(w, data.retired);
  w.u32(static_cast<std::uint32_t>(data.sessions.size()));
  for (const SessionDurableState& session : data.sessions) {
    write_session_state(w, session);
  }
  w.u32(static_cast<std::uint32_t>(data.receivers.size()));
  for (const SnapshotData::ReceiverEntry& entry : data.receivers) {
    w.u64(entry.receiver_id);
    write_receiver_state(w, entry.state);
  }
}

std::optional<SnapshotData> decode_snapshot(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  SnapshotData data;
  data.seq = r.u64();
  data.journal_bytes = r.u64();
  data.next_session_id = r.u64();
  data.retired = read_session_stats(r);
  const std::uint32_t n_sessions = r.u32();
  if (!r.ok()) return std::nullopt;
  data.sessions.reserve(n_sessions);
  for (std::uint32_t i = 0; i < n_sessions && r.ok(); ++i) {
    data.sessions.push_back(read_session_state(r));
  }
  const std::uint32_t n_receivers = r.u32();
  if (!r.ok()) return std::nullopt;
  data.receivers.reserve(n_receivers);
  for (std::uint32_t i = 0; i < n_receivers && r.ok(); ++i) {
    SnapshotData::ReceiverEntry entry;
    entry.receiver_id = r.u64();
    entry.state = read_receiver_state(r);
    data.receivers.push_back(std::move(entry));
  }
  if (!r.done()) return std::nullopt;
  return data;
}

void store_u32_at(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void store_u64_at(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t load_u32_at(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64_at(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Expected<std::string, DurabilityError> write_snapshot(const std::string& dir,
                                                      const SnapshotData& data,
                                                      std::size_t keep,
                                                      CrashInjector* crash,
                                                      bool fsync) {
  if (crash != nullptr) crash->reach(CrashPoint::kSnapshotBegin);

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "create snapshot dir failed", 0};
  }

  std::vector<std::uint8_t> bytes(kSnapHeaderBytes, 0);
  {
    ByteWriter w(bytes);
    encode_snapshot(w, data);
  }
  std::memcpy(bytes.data(), kSnapMagic.data(), kSnapMagic.size());
  store_u32_at(bytes.data() + 8, kSnapshotVersion);
  store_u64_at(bytes.data() + 12,
               fnv1a64({bytes.data() + kSnapHeaderBytes,
                        bytes.size() - kSnapHeaderBytes}));

  const fs::path final_path = fs::path(dir) / snapshot_name(data.seq);
  const fs::path tmp_path = final_path.string() + ".tmp";

  const int fd = ::open(tmp_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "open snapshot temp failed", 0};
  }

  std::size_t to_write = bytes.size();
  bool torn = false;
  if (crash != nullptr) {
    const auto cut = crash->reach_torn(CrashPoint::kSnapshotTorn, bytes.size());
    if (cut.has_value()) {
      to_write = *cut;
      torn = true;
    }
  }

  std::size_t done = 0;
  while (done < to_write) {
    const ssize_t n = ::pwrite(fd, bytes.data() + done, to_write - done,
                               static_cast<off_t>(done));
    if (n <= 0) {
      ::close(fd);
      fs::remove(tmp_path, ec);
      return DurabilityError{DurabilityErrorKind::kIoError,
                             "snapshot write failed", done};
    }
    done += static_cast<std::size_t>(n);
  }
  if (fsync && !torn && ::fsync(fd) != 0) {
    ::close(fd);
    fs::remove(tmp_path, ec);
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "snapshot fsync failed", done};
  }
  ::close(fd);
  if (torn) throw CrashInjected(CrashPoint::kSnapshotTorn);

  if (crash != nullptr) crash->reach(CrashPoint::kSnapshotWritten);

  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "snapshot publish rename failed", 0};
  }
  if (fsync) {
    // Make the rename itself durable: sync the directory entry.
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }

  if (crash != nullptr) crash->reach(CrashPoint::kSnapshotPublished);

  // Prune: keep the newest `keep` published snapshots, sweep the rest
  // plus any stray temp files from earlier crashes.
  std::vector<std::pair<std::uint64_t, fs::path>> published;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto seq = parse_snapshot_name(name); seq.has_value()) {
      published.emplace_back(*seq, entry.path());
    } else if (name.ends_with(".tmp")) {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
  std::sort(published.begin(), published.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = keep; i < published.size(); ++i) {
    std::error_code ignore;
    fs::remove(published[i].second, ignore);
  }

  return final_path.string();
}

SnapshotLoadResult load_latest_snapshot(const std::string& dir) {
  SnapshotLoadResult result;
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, fs::path>> published;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto seq = parse_snapshot_name(entry.path().filename().string());
    if (seq.has_value()) published.emplace_back(*seq, entry.path());
  }
  if (ec) return result;  // missing dir: fresh start
  std::sort(published.begin(), published.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (!published.empty()) result.max_seq_seen = published.front().first;

  for (const auto& [seq, path] : published) {
    std::vector<std::uint8_t> bytes;
    {
      const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        ++result.discarded;
        continue;
      }
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        bytes.resize(static_cast<std::size_t>(st.st_size));
      }
      std::size_t done = 0;
      while (done < bytes.size()) {
        const ssize_t n = ::pread(fd, bytes.data() + done, bytes.size() - done,
                                  static_cast<off_t>(done));
        if (n <= 0) {
          bytes.resize(done);
          break;
        }
        done += static_cast<std::size_t>(n);
      }
      ::close(fd);
    }
    if (bytes.size() < kSnapHeaderBytes ||
        std::memcmp(bytes.data(), kSnapMagic.data(), kSnapMagic.size()) != 0 ||
        load_u32_at(bytes.data() + 8) != kSnapshotVersion ||
        load_u64_at(bytes.data() + 12) !=
            fnv1a64({bytes.data() + kSnapHeaderBytes,
                     bytes.size() - kSnapHeaderBytes})) {
      ++result.discarded;
      continue;
    }
    auto data = decode_snapshot(
        {bytes.data() + kSnapHeaderBytes, bytes.size() - kSnapHeaderBytes});
    if (!data.has_value()) {
      ++result.discarded;
      continue;
    }
    result.data = std::move(data);
    return result;
  }
  return result;
}

}  // namespace spotfi
