#include "durability/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace spotfi {
namespace {

constexpr std::array<std::uint8_t, 8> kWalMagic = {'S', 'P', 'F', 'I',
                                                   'W', 'A', 'L', '\0'};

std::uint64_t frame_checksum(WalRecordType type,
                             std::span<const std::uint8_t> payload) {
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  const std::uint64_t seeded = fnv1a64({&type_byte, 1});
  return fnv1a64(payload, seeded);
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

bool valid_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(WalRecordType::kSessionOpen) &&
         type <= static_cast<std::uint8_t>(WalRecordType::kSessionClose);
}

}  // namespace

const char* to_string(DurabilityErrorKind kind) {
  switch (kind) {
    case DurabilityErrorKind::kIoError: return "io-error";
    case DurabilityErrorKind::kBadFileHeader: return "bad-file-header";
    case DurabilityErrorKind::kTornRecord: return "torn-record";
    case DurabilityErrorKind::kBadLength: return "bad-length";
    case DurabilityErrorKind::kBadChecksum: return "bad-checksum";
    case DurabilityErrorKind::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

const char* to_string(WalRecordType type) {
  switch (type) {
    case WalRecordType::kSessionOpen: return "session-open";
    case WalRecordType::kPacket: return "packet";
    case WalRecordType::kFix: return "fix";
    case WalRecordType::kPoll: return "poll";
    case WalRecordType::kSessionClose: return "session-close";
  }
  return "unknown";
}

std::uint64_t fix_digest(const LocationFix& fix) {
  std::array<std::uint8_t, 41> bytes{};
  store_u64(bytes.data() + 0, std::bit_cast<std::uint64_t>(fix.raw.x));
  store_u64(bytes.data() + 8, std::bit_cast<std::uint64_t>(fix.raw.y));
  store_u64(bytes.data() + 16, std::bit_cast<std::uint64_t>(fix.tracked.x));
  store_u64(bytes.data() + 24, std::bit_cast<std::uint64_t>(fix.tracked.y));
  store_u64(bytes.data() + 32, std::bit_cast<std::uint64_t>(fix.time_s));
  bytes[40] = fix.degraded ? 1 : 0;
  return fnv1a64(bytes);
}

// -- writer -----------------------------------------------------------------

WalWriter::WalWriter(std::string path, CrashInjector* crash,
                     WalIoFailurePlan io, bool fsync_on_commit)
    : path_(std::move(path)),
      crash_(crash),
      io_(io),
      fsync_on_commit_(fsync_on_commit) {
  buf_.reserve(4096);
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    open_error_ = DurabilityError{DurabilityErrorKind::kIoError,
                                  "open journal failed", 0};
    return;
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    open_error_ = DurabilityError{DurabilityErrorKind::kIoError,
                                  "stat journal failed", 0};
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size >= kWalHeaderBytes) {
    // Resuming an existing journal; recovery already truncated any torn
    // tail, so the whole file is the committed prefix.
    committed_ = size;
    return;
  }
  // Fresh (or header-torn) journal: start over with a clean header. The
  // header write bypasses the I/O failure plan — a disk that cannot hold
  // twelve bytes fails the very first append instead.
  if (::ftruncate(fd_, 0) != 0) {
    open_error_ = DurabilityError{DurabilityErrorKind::kIoError,
                                  "truncate journal failed", 0};
    ::close(fd_);
    fd_ = -1;
    return;
  }
  std::array<std::uint8_t, kWalHeaderBytes> header{};
  std::memcpy(header.data(), kWalMagic.data(), kWalMagic.size());
  store_u32(header.data() + 8, kWalVersion);
  std::size_t done = 0;
  while (done < header.size()) {
    const ssize_t n = ::pwrite(fd_, header.data() + done, header.size() - done,
                               static_cast<off_t>(done));
    if (n <= 0) {
      open_error_ = DurabilityError{DurabilityErrorKind::kIoError,
                                    "write journal header failed", done};
      ::close(fd_);
      fd_ = -1;
      return;
    }
    done += static_cast<std::size_t>(n);
  }
  committed_ = kWalHeaderBytes;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

ByteWriter WalWriter::begin_record() {
  buf_.clear();
  buf_.resize(kWalFrameBytes);  // len + type + checksum, patched in commit()
  return ByteWriter(buf_);
}

Expected<std::uint64_t, DurabilityError> WalWriter::commit(WalRecordType type) {
  if (fd_ < 0) {
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "journal not open", 0};
  }
  const std::size_t payload_len = buf_.size() - kWalFrameBytes;
  if (payload_len > kWalMaxPayload) {
    return DurabilityError{DurabilityErrorKind::kBadLength,
                           "record payload over cap", committed_};
  }
  store_u32(buf_.data(), static_cast<std::uint32_t>(payload_len));
  buf_[4] = static_cast<std::uint8_t>(type);
  store_u64(buf_.data() + 5,
            frame_checksum(type, {buf_.data() + kWalFrameBytes, payload_len}));

  if (crash_ != nullptr) crash_->reach(CrashPoint::kJournalAppendStart);

  // The simulated disk: ENOSPC after fail_after_bytes, short writes
  // capped at short_write_bytes, and an armed torn-crash that cuts the
  // append after a seeded prefix. All paths go through the same loop so
  // the resume logic is exercised by every plan.
  std::size_t to_write = buf_.size();
  bool torn = false;
  if (crash_ != nullptr) {
    const auto cut = crash_->reach_torn(CrashPoint::kJournalAppendTorn,
                                        buf_.size());
    if (cut.has_value()) {
      to_write = *cut;
      torn = true;
    }
  }

  std::size_t done = 0;
  std::optional<DurabilityError> io_error;
  while (done < to_write) {
    std::size_t chunk = to_write - done;
    if (io_.short_write_bytes > 0 && chunk > io_.short_write_bytes) {
      chunk = io_.short_write_bytes;
    }
    if (io_.fail_after_bytes > 0) {
      const std::uint64_t used = committed_ + done;
      const std::uint64_t room =
          io_.fail_after_bytes > used ? io_.fail_after_bytes - used : 0;
      if (chunk > room) chunk = static_cast<std::size_t>(room);
      if (chunk == 0) {
        io_error = DurabilityError{DurabilityErrorKind::kIoError,
                                   "no space on journal device",
                                   committed_ + done};
        break;
      }
    }
    const ssize_t n = ::pwrite(fd_, buf_.data() + done, chunk,
                               static_cast<off_t>(committed_ + done));
    if (n <= 0) {
      io_error = DurabilityError{DurabilityErrorKind::kIoError,
                                 "journal write failed", committed_ + done};
      break;
    }
    done += static_cast<std::size_t>(n);
  }

  if (torn) throw CrashInjected(CrashPoint::kJournalAppendTorn);

  if (io_error.has_value()) {
    // Roll the partial append back so the on-disk journal stays a whole
    // number of records; the caller decides whether to keep running
    // without durability (journal_failures) or stop.
    (void)::ftruncate(fd_, static_cast<off_t>(committed_));
    return *io_error;
  }

  if (fsync_on_commit_ && ::fdatasync(fd_) != 0) {
    // The record reached the page cache but not stable storage: roll it
    // back so "committed" keeps meaning power-loss-durable under the
    // fsync contract, and count it as a failed append.
    (void)::ftruncate(fd_, static_cast<off_t>(committed_));
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "journal fdatasync failed", committed_};
  }

  if (crash_ != nullptr) crash_->reach(CrashPoint::kJournalAppendDone);
  committed_ += buf_.size();
  return committed_;
}

Expected<std::uint64_t, DurabilityError> WalWriter::append_open(
    const WalSessionOpen& record) {
  ByteWriter w = begin_record();
  encode_wal_open(w, record);
  return commit(WalRecordType::kSessionOpen);
}

Expected<std::uint64_t, DurabilityError> WalWriter::append_close(
    const WalSessionClose& record) {
  ByteWriter w = begin_record();
  encode_wal_close(w, record);
  return commit(WalRecordType::kSessionClose);
}

Expected<std::uint64_t, DurabilityError> WalWriter::append_packet(
    const WalPacket& record) {
  ByteWriter w = begin_record();
  encode_wal_packet(w, record);
  return commit(WalRecordType::kPacket);
}

Expected<std::uint64_t, DurabilityError> WalWriter::append_fix(
    const WalFix& record) {
  ByteWriter w = begin_record();
  encode_wal_fix(w, record);
  return commit(WalRecordType::kFix);
}

Expected<std::uint64_t, DurabilityError> WalWriter::append_poll(
    const WalPoll& record) {
  ByteWriter w = begin_record();
  encode_wal_poll(w, record);
  return commit(WalRecordType::kPoll);
}

// -- scanner ----------------------------------------------------------------

WalScan scan_wal(const std::string& path, std::uint64_t start_offset) {
  WalScan scan;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno != ENOENT) {
      scan.tail_error = DurabilityError{DurabilityErrorKind::kIoError,
                                        "open journal failed", 0};
    }
    return scan;  // missing journal == valid empty journal
  }
  std::uint64_t size = 0;
  {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      size = static_cast<std::uint64_t>(st.st_size);
    }
  }
  scan.file_bytes = size;
  if (size == 0) {
    ::close(fd);
    return scan;
  }

  // The header is always read and validated, bounded scan or not.
  std::array<std::uint8_t, kWalHeaderBytes> header{};
  std::size_t header_got = 0;
  const std::size_t header_want =
      static_cast<std::size_t>(std::min<std::uint64_t>(size, header.size()));
  while (header_got < header_want) {
    const ssize_t n = ::pread(fd, header.data() + header_got,
                              header_want - header_got,
                              static_cast<off_t>(header_got));
    if (n <= 0) break;
    header_got += static_cast<std::size_t>(n);
  }
  if (header_got < kWalHeaderBytes ||
      std::memcmp(header.data(), kWalMagic.data(), kWalMagic.size()) != 0 ||
      load_u32(header.data() + 8) != kWalVersion) {
    ::close(fd);
    scan.tail_error = DurabilityError{DurabilityErrorKind::kBadFileHeader,
                                      "journal header invalid", 0};
    return scan;  // valid_bytes stays 0: rewrite from scratch
  }

  // A snapshot-recorded offset bounds the scan to the suffix; an offset
  // outside the file (journal wiped underneath the snapshot) degrades
  // to a full scan.
  std::uint64_t begin = kWalHeaderBytes;
  if (start_offset > kWalHeaderBytes && start_offset <= size) {
    begin = start_offset;
    scan.skipped_bytes = start_offset - kWalHeaderBytes;
  }

  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size - begin));
  {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::pread(fd, bytes.data() + done, bytes.size() - done,
                                static_cast<off_t>(begin + done));
      if (n <= 0) {
        bytes.resize(done);
        break;
      }
      done += static_cast<std::size_t>(n);
    }
  }
  ::close(fd);

  std::size_t offset = 0;  // into the suffix buffer; file offset = begin + it
  scan.valid_bytes = begin;
  while (offset < bytes.size()) {
    const std::uint64_t file_offset = begin + offset;
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kWalFrameBytes) {
      scan.tail_error = DurabilityError{DurabilityErrorKind::kTornRecord,
                                        "partial frame at tail", file_offset};
      break;
    }
    const std::uint32_t len = load_u32(bytes.data() + offset);
    if (len > kWalMaxPayload) {
      scan.tail_error = DurabilityError{DurabilityErrorKind::kBadLength,
                                        "length field over cap", file_offset};
      break;
    }
    if (kWalFrameBytes + static_cast<std::size_t>(len) > remaining) {
      scan.tail_error = DurabilityError{DurabilityErrorKind::kTornRecord,
                                        "record cut off at tail", file_offset};
      break;
    }
    const std::uint8_t type_byte = bytes[offset + 4];
    const std::uint64_t stored = load_u64(bytes.data() + offset + 5);
    const std::uint8_t* payload = bytes.data() + offset + kWalFrameBytes;
    if (!valid_type(type_byte) ||
        stored != frame_checksum(static_cast<WalRecordType>(type_byte),
                                 {payload, len})) {
      scan.tail_error = DurabilityError{DurabilityErrorKind::kBadChecksum,
                                        "record checksum mismatch",
                                        file_offset};
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(type_byte);
    record.offset = file_offset;
    record.payload.assign(payload, payload + len);
    scan.records.push_back(std::move(record));
    offset += kWalFrameBytes + len;
    scan.valid_bytes = begin + offset;
  }
  return scan;
}

Expected<std::uint64_t, DurabilityError> truncate_wal(
    const std::string& path, std::uint64_t valid_bytes, CrashInjector* crash) {
  if (crash != nullptr) crash->reach(CrashPoint::kRecoveryTruncate);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT && valid_bytes == 0) return std::uint64_t{0};
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "open journal for truncate failed", 0};
  }
  const int rc = ::ftruncate(fd, static_cast<off_t>(valid_bytes));
  ::close(fd);
  if (rc != 0) {
    return DurabilityError{DurabilityErrorKind::kIoError,
                           "truncate journal failed", valid_bytes};
  }
  return valid_bytes;
}

// -- payload codecs ---------------------------------------------------------

void encode_wal_open(ByteWriter& w, const WalSessionOpen& record) {
  w.u64(record.session);
}

void encode_wal_close(ByteWriter& w, const WalSessionClose& record) {
  w.u64(record.session);
}

void encode_wal_packet(ByteWriter& w, const WalPacket& record) {
  encode_wal_packet(w, record.session, record.index, record.ap_id,
                    record.receiver_id, record.seq, record.packet);
}

void encode_wal_packet(ByteWriter& w, SessionId session, std::uint64_t index,
                       std::size_t ap_id, std::uint64_t receiver_id,
                       std::uint64_t seq, const CsiPacket& packet) {
  w.u64(session);
  w.u64(index);
  w.u64(ap_id);
  w.u64(receiver_id);
  w.u64(seq);
  write_packet(w, packet);
}

void encode_wal_fix(ByteWriter& w, const WalFix& record) {
  w.u64(record.session);
  w.u64(record.index);
  w.u64(record.digest);
  w.f64(record.time_s);
  w.boolean(record.degraded);
  w.f64(record.raw.x);
  w.f64(record.raw.y);
  w.f64(record.tracked.x);
  w.f64(record.tracked.y);
}

void encode_wal_poll(ByteWriter& w, const WalPoll& record) {
  w.u64(record.session);
  w.u64(record.index);
  w.f64(record.now_s);
}

namespace {
constexpr DurabilityError bad_payload(const char* detail) {
  return DurabilityError{DurabilityErrorKind::kBadPayload, detail, 0};
}
}  // namespace

Expected<WalSessionOpen, DurabilityError> decode_wal_open(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WalSessionOpen record;
  record.session = r.u64();
  if (!r.done()) return bad_payload("session-open payload malformed");
  return record;
}

Expected<WalSessionClose, DurabilityError> decode_wal_close(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WalSessionClose record;
  record.session = r.u64();
  if (!r.done()) return bad_payload("session-close payload malformed");
  return record;
}

Expected<WalPacket, DurabilityError> decode_wal_packet(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WalPacket record;
  record.session = r.u64();
  record.index = r.u64();
  record.ap_id = static_cast<std::size_t>(r.u64());
  record.receiver_id = r.u64();
  record.seq = r.u64();
  record.packet = read_packet(r);
  if (!r.done()) return bad_payload("packet payload malformed");
  return record;
}

Expected<WalFix, DurabilityError> decode_wal_fix(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WalFix record;
  record.session = r.u64();
  record.index = r.u64();
  record.digest = r.u64();
  record.time_s = r.f64();
  record.degraded = r.boolean();
  record.raw.x = r.f64();
  record.raw.y = r.f64();
  record.tracked.x = r.f64();
  record.tracked.y = r.f64();
  if (!r.done()) return bad_payload("fix payload malformed");
  return record;
}

Expected<WalPoll, DurabilityError> decode_wal_poll(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  WalPoll record;
  record.session = r.u64();
  record.index = r.u64();
  record.now_s = r.f64();
  if (!r.done()) return bad_payload("poll payload malformed");
  return record;
}

}  // namespace spotfi
