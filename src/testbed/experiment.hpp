// Experiment runner: drives the full measurement pipeline of Sec. 4 —
// targets transmit packet bursts, each AP captures impaired CSI through
// the channel simulator, the SpotFi server (and optionally the
// ArrayTrack-style baseline) localizes, and errors are collected.
#pragma once

#include <optional>
#include <vector>

#include "core/server.hpp"
#include "localize/baselines.hpp"
#include "phy/phy_csi_source.hpp"
#include "testbed/deployment.hpp"

namespace spotfi {

struct ExperimentConfig {
  /// Packets per localization group (the paper chops traces into groups
  /// of 40; Fig. 9(b) sweeps this down to 6).
  std::size_t packets_per_group = 15;
  double packet_interval_s = 0.1;
  MultipathConfig multipath{};
  ImpairmentConfig impairments{};
  ServerConfig server{};
  /// Use only the first `ap_subset` APs (0 = all) — Fig. 9(a)'s density
  /// emulation picks subsets externally via `ap_indices`.
  std::vector<std::size_t> ap_indices;  ///< empty = all APs
  /// Generate CSI through the full OFDM waveform chain (phy/) instead of
  /// the analytic Eq. 1-7 synthesizer: LTF transmission, multipath
  /// convolution, packet detection, channel estimation. Slower but
  /// validates the whole model (bench/ablation_csi_source).
  bool use_phy_waveform = false;
};

/// Ground truth bookkeeping for one AP in one run.
struct ApGroundTruth {
  /// Apparent AoA of the geometric direct path (even when obstructed) —
  /// the value a ULA can report, aliased into [-pi/2, pi/2] [rad].
  double direct_aoa_rad = 0.0;
  bool line_of_sight = false;
  /// True when the simulator kept the direct path above its power floor.
  bool direct_path_present = false;
};

struct TargetRun {
  Vec2 truth;
  LocalizationRound round;
  double error_m = 0.0;
  std::vector<ApGroundTruth> ap_truth;   ///< parallel to used APs
  std::vector<ApCapture> captures;       ///< the raw per-AP packet groups
};

class ExperimentRunner {
 public:
  ExperimentRunner(LinkConfig link, Deployment deployment,
                   ExperimentConfig config = {});

  /// Synthesizes the per-AP captures for one target (shared by SpotFi and
  /// the baselines, as in the paper's method).
  [[nodiscard]] std::vector<ApCapture> simulate_captures(Vec2 target,
                                                         Rng& rng) const;

  /// Full SpotFi pipeline for one target.
  [[nodiscard]] TargetRun run_target(Vec2 target, Rng& rng) const;

  /// Runs every deployment target; errors land in the returned runs.
  [[nodiscard]] std::vector<TargetRun> run_all(Rng& rng) const;

  /// ArrayTrack-style baseline on already-simulated captures: per packet
  /// MUSIC-AoA spectra averaged per AP, fused by spectrum product.
  [[nodiscard]] Vec2 arraytrack_baseline(std::span<const ApCapture> captures,
                                         const MusicAoaConfig& cfg = {}) const;

  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }
  /// The AP poses actually used (after ap_indices selection).
  [[nodiscard]] std::vector<ArrayPose> used_aps() const;
  /// Ground-truth info for each used AP for a given target.
  [[nodiscard]] std::vector<ApGroundTruth> ground_truth(Vec2 target) const;

 private:
  LinkConfig link_;
  Deployment deployment_;
  ExperimentConfig config_;
};

/// Convenience: extract the error series from a set of runs.
[[nodiscard]] std::vector<double> error_series(
    std::span<const TargetRun> runs);

}  // namespace spotfi
