// Synthetic deployments mirroring the paper's Fig. 6 testbed regimes:
//
//  * office     — a 16 m x 10 m multipath-rich office with interior walls
//                 and metal scatterers, 6 APs around the perimeter, ~30
//                 target locations (Sec. 4.3.1; the dashed red box).
//  * high NLoS  — targets inside walled rooms so that at most two APs
//                 keep a strong direct path (Sec. 4.3.2; 23 locations).
//  * corridor   — two joined corridors with APs along the side walls and
//                 targets down the centerlines, giving correlated AoA
//                 geometry (Sec. 4.3.3; 25 locations).
#pragma once

#include <string>
#include <vector>

#include "channel/multipath.hpp"
#include "geom/floorplan.hpp"

namespace spotfi {

struct Deployment {
  std::string name;
  FloorPlan plan;
  std::vector<Scatterer> scatterers;
  std::vector<ArrayPose> aps;
  std::vector<Vec2> targets;
  Vec2 area_min;
  Vec2 area_max;
};

[[nodiscard]] Deployment office_deployment();
[[nodiscard]] Deployment high_nlos_deployment();
[[nodiscard]] Deployment corridor_deployment();

/// Number of APs with an unobstructed straight ray to `target`.
[[nodiscard]] std::size_t count_los_aps(const Deployment& deployment,
                                        Vec2 target);

/// True when the straight ray between AP `ap_index` and `target` crosses
/// no wall — the paper's LoS/NLoS classification for Fig. 8(a).
[[nodiscard]] bool is_los(const Deployment& deployment, std::size_t ap_index,
                          Vec2 target);

}  // namespace spotfi
