#include "testbed/deployment.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace spotfi {
namespace {

/// AP at `pos` with its array broadside facing `look_at`.
ArrayPose ap_facing(Vec2 pos, Vec2 look_at) {
  return {pos, (look_at - pos).angle()};
}

}  // namespace

Deployment office_deployment() {
  Deployment d;
  d.name = "office";
  d.area_min = {0.0, 0.0};
  d.area_max = {16.0, 10.0};

  d.plan.add_rectangle(d.area_min, d.area_max, WallMaterial::drywall(),
                       "shell");
  // Interior partitions: two office dividers and a glass lab front.
  d.plan.add_wall({{{5.0, 0.0}, {5.0, 3.5}}, WallMaterial::drywall(),
                   "partition-a"});
  d.plan.add_wall({{{11.0, 6.5}, {11.0, 10.0}}, WallMaterial::drywall(),
                   "partition-b"});
  d.plan.add_wall({{{0.0, 6.5}, {3.0, 6.5}}, WallMaterial::glass(),
                   "lab-window"});

  // Metal cabinets / shelving acting as strong scatterers.
  d.scatterers = {{{2.0, 9.0}, 6.0}, {{8.0, 5.2}, 7.0},
                  {{14.0, 1.0}, 6.0}, {{12.5, 8.5}, 7.0},
                  {{3.5, 2.0}, 7.0},  {{15.0, 6.0}, 6.0}};

  // APs on stands ~1.2 m into the room (wall-hugging mounts put the
  // nearest reflection within a few ns of the direct path and merge the
  // two, which no 36 MHz estimator can split).
  const Vec2 center{8.0, 5.0};
  d.aps = {ap_facing({1.2, 5.0}, center),  ap_facing({14.8, 5.0}, center),
           ap_facing({5.5, 1.2}, center),  ap_facing({10.5, 8.8}, center),
           ap_facing({1.6, 1.4}, center),  ap_facing({14.4, 8.6}, center)};

  for (double x = 2.0; x <= 14.0; x += 2.0) {
    for (double y = 1.5; y <= 8.5; y += 2.0) {
      d.targets.push_back({x, y});
    }
  }
  return d;
}

Deployment high_nlos_deployment() {
  Deployment d;
  d.name = "high-nlos";
  d.area_min = {0.0, 0.0};
  d.area_max = {16.0, 10.0};

  d.plan.add_rectangle(d.area_min, d.area_max, WallMaterial::drywall(),
                       "shell");
  // Three walled rooms along the top edge; concrete fronts make the
  // direct path weak for any AP that is not right outside the room.
  d.plan.add_wall({{{0.0, 6.0}, {16.0, 6.0}}, WallMaterial::concrete(),
                   "rooms-front"});
  d.plan.add_wall({{{5.25, 6.0}, {5.25, 10.0}}, WallMaterial::concrete(),
                   "rooms-div-a"});
  d.plan.add_wall({{{10.75, 6.0}, {10.75, 10.0}}, WallMaterial::concrete(),
                   "rooms-div-b"});

  d.scatterers = {{{2.0, 1.0}, 6.0}, {{8.0, 3.0}, 7.0},
                  {{14.0, 1.5}, 6.0}, {{3.0, 8.0}, 7.0},
                  {{6.8, 9.3}, 7.0},  {{13.5, 7.6}, 7.0}};

  // Two APs close under the rooms (the "couple of APs with a decent
  // direct path"), four far away in the open area.
  d.aps = {ap_facing({4.0, 5.4}, {4.0, 8.0}),
           ap_facing({12.0, 5.4}, {12.0, 8.0}),
           ap_facing({0.4, 0.6}, {8.0, 8.0}),
           ap_facing({15.6, 0.6}, {8.0, 8.0}),
           ap_facing({8.0, 0.4}, {8.0, 8.0}),
           ap_facing({0.4, 3.0}, {12.0, 8.0})};

  // 23 targets inside the three rooms.
  const double xs_a[] = {1.0, 2.5, 4.0};
  const double xs_b[] = {6.5, 8.0, 9.5};
  const double xs_c[] = {12.0, 13.5, 15.0};
  const double ys[] = {7.0, 8.2, 9.4};
  auto add_target = [&d](double x, double y) {
    if (d.targets.size() < 23) d.targets.push_back({x, y});
  };
  for (double y : ys) {
    for (double x : xs_a) add_target(x, y);
    for (double x : xs_b) add_target(x, y);
    for (double x : xs_c) add_target(x, y);
  }
  return d;
}

Deployment corridor_deployment() {
  Deployment d;
  d.name = "corridor";
  d.area_min = {0.0, 0.0};
  d.area_max = {36.0, 20.0};

  // Long L-shaped corridor: horizontal leg (0,0)-(36,2.5), vertical leg
  // (33.5,0)-(36,20). APs are sparse and wall-mounted, as in real
  // hallway deployments — most targets are far from every AP and the
  // bearings are nearly collinear (the paper's corridor pathology).
  d.plan.add_wall({{{0.0, 0.0}, {36.0, 0.0}}, WallMaterial::drywall(),
                   "south"});
  d.plan.add_wall({{{0.0, 2.5}, {33.5, 2.5}}, WallMaterial::drywall(),
                   "north-horizontal"});
  d.plan.add_wall({{{33.5, 2.5}, {33.5, 20.0}}, WallMaterial::drywall(),
                   "west-vertical"});
  d.plan.add_wall({{{36.0, 0.0}, {36.0, 20.0}}, WallMaterial::concrete(),
                   "east"});
  d.plan.add_wall({{{0.0, 0.0}, {0.0, 2.5}}, WallMaterial::concrete(),
                   "west-end"});
  d.plan.add_wall({{{33.5, 20.0}, {36.0, 20.0}}, WallMaterial::concrete(),
                   "north-end"});

  // Hallway clutter: lockers, door frames, a water fountain — strong
  // asymmetric scatterers every few meters along alternating walls.
  d.scatterers = {{{4.5, 2.2}, 5.0},  {{8.0, 0.4}, 6.0},
                  {{11.5, 2.2}, 5.0}, {{19.0, 2.1}, 6.0},
                  {{22.5, 0.4}, 5.0}, {{26.0, 2.2}, 6.0},
                  {{30.0, 0.4}, 5.0}, {{35.6, 8.0}, 5.0},
                  {{33.9, 15.0}, 6.0}, {{35.7, 17.5}, 5.0}};

  // Four sparse wall-mounted APs, arrays facing *along* the corridor (the
  // usable orientation in a hallway: targets stay near broadside where a
  // ULA's AoA resolution is best; cross-corridor bearings would put every
  // target at an unresolvable grazing angle).
  d.aps = {ap_facing({3.0, 0.3}, {15.0, 1.2}),
           ap_facing({15.0, 2.2}, {3.0, 1.2}),
           ap_facing({28.0, 0.3}, {34.0, 1.2}),
           ap_facing({34.2, 12.0}, {34.8, 4.0})};

  // 18 targets along the horizontal centerline, 7 along the vertical one.
  for (int i = 0; i < 18; ++i) {
    d.targets.push_back({1.5 + 1.8 * static_cast<double>(i), 1.2});
  }
  for (int i = 0; i < 7; ++i) {
    d.targets.push_back({34.8, 4.0 + 2.0 * static_cast<double>(i)});
  }
  return d;
}

std::size_t count_los_aps(const Deployment& deployment, Vec2 target) {
  std::size_t n = 0;
  for (const auto& ap : deployment.aps) {
    if (deployment.plan.line_of_sight(ap.position, target)) ++n;
  }
  return n;
}

bool is_los(const Deployment& deployment, std::size_t ap_index, Vec2 target) {
  SPOTFI_EXPECTS(ap_index < deployment.aps.size(), "AP index out of range");
  return deployment.plan.line_of_sight(deployment.aps[ap_index].position,
                                       target);
}

}  // namespace spotfi
