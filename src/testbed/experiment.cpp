#include "testbed/experiment.hpp"

#include <algorithm>

namespace spotfi {

ExperimentRunner::ExperimentRunner(LinkConfig link, Deployment deployment,
                                   ExperimentConfig config)
    : link_(link),
      deployment_(std::move(deployment)),
      config_(std::move(config)) {
  SPOTFI_EXPECTS(deployment_.aps.size() >= 2, "deployment needs >= 2 APs");
  SPOTFI_EXPECTS(config_.packets_per_group >= 1, "need >= 1 packet");
  for (std::size_t idx : config_.ap_indices) {
    SPOTFI_EXPECTS(idx < deployment_.aps.size(), "AP index out of range");
  }
  // Keep the localizer's search area in sync with the deployment unless
  // the caller overrode it.
  if (config_.server.localizer.area_min == Vec2{0.0, 0.0} &&
      config_.server.localizer.area_max == Vec2{20.0, 20.0}) {
    config_.server.localizer.area_min = deployment_.area_min;
    config_.server.localizer.area_max = deployment_.area_max;
  }
  // Match the multipath carrier to the link.
  config_.multipath.carrier_hz = link_.carrier_hz;
}

std::vector<ArrayPose> ExperimentRunner::used_aps() const {
  if (config_.ap_indices.empty()) return deployment_.aps;
  std::vector<ArrayPose> aps;
  aps.reserve(config_.ap_indices.size());
  for (std::size_t idx : config_.ap_indices) {
    aps.push_back(deployment_.aps[idx]);
  }
  return aps;
}

std::vector<ApGroundTruth> ExperimentRunner::ground_truth(Vec2 target) const {
  std::vector<ApGroundTruth> truth;
  for (const auto& pose : used_aps()) {
    ApGroundTruth t;
    t.direct_aoa_rad = pose.apparent_aoa_of(target);
    t.line_of_sight = deployment_.plan.line_of_sight(pose.position, target);
    const auto paths = enumerate_paths(deployment_.plan,
                                       deployment_.scatterers, pose, target,
                                       config_.multipath);
    t.direct_path_present =
        std::any_of(paths.begin(), paths.end(),
                    [](const PathComponent& p) { return p.is_direct; });
    truth.push_back(t);
  }
  return truth;
}

std::vector<ApCapture> ExperimentRunner::simulate_captures(Vec2 target,
                                                           Rng& rng) const {
  const CsiSynthesizer analytic(link_, config_.impairments);
  std::optional<PhyCsiSynthesizer> waveform;
  if (config_.use_phy_waveform) {
    PhyConfig phy;
    phy.link = link_;
    waveform.emplace(phy, config_.impairments);
  }
  std::vector<ApCapture> captures;
  for (const auto& pose : used_aps()) {
    const auto paths = enumerate_paths(deployment_.plan,
                                       deployment_.scatterers, pose, target,
                                       config_.multipath);
    ApCapture capture;
    capture.pose = pose;
    Rng ap_rng = rng.fork();
    capture.packets =
        waveform ? waveform->synthesize_burst(paths,
                                              config_.packets_per_group,
                                              config_.packet_interval_s,
                                              ap_rng)
                 : analytic.synthesize_burst(paths,
                                             config_.packets_per_group,
                                             config_.packet_interval_s,
                                             ap_rng);
    captures.push_back(std::move(capture));
  }
  return captures;
}

TargetRun ExperimentRunner::run_target(Vec2 target, Rng& rng) const {
  TargetRun run;
  run.truth = target;
  run.captures = simulate_captures(target, rng);
  run.ap_truth = ground_truth(target);

  const SpotFiServer server(link_, config_.server);
  run.round = server.localize(run.captures, rng);
  run.error_m = distance(run.round.location.position, target);
  return run;
}

std::vector<TargetRun> ExperimentRunner::run_all(Rng& rng) const {
  std::vector<TargetRun> runs;
  runs.reserve(deployment_.targets.size());
  for (const Vec2 target : deployment_.targets) {
    runs.push_back(run_target(target, rng));
  }
  return runs;
}

Vec2 ExperimentRunner::arraytrack_baseline(
    std::span<const ApCapture> captures, const MusicAoaConfig& cfg) const {
  const MusicAoaEstimator estimator(link_, cfg);
  std::vector<ApSpectrum> spectra;
  spectra.reserve(captures.size());
  for (const auto& capture : captures) {
    SPOTFI_EXPECTS(!capture.packets.empty(), "empty capture");
    ApSpectrum ap;
    ap.pose = capture.pose;
    ap.spectrum = estimator.spectrum(capture.packets.front().csi);
    for (std::size_t p = 1; p < capture.packets.size(); ++p) {
      const AoaSpectrum s = estimator.spectrum(capture.packets[p].csi);
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        ap.spectrum.values[i] += s.values[i];
      }
    }
    const double inv = 1.0 / static_cast<double>(capture.packets.size());
    for (auto& v : ap.spectrum.values) v *= inv;
    spectra.push_back(std::move(ap));
  }
  ArrayTrackConfig at_cfg;
  at_cfg.area_min = deployment_.area_min;
  at_cfg.area_max = deployment_.area_max;
  return arraytrack_locate(spectra, at_cfg);
}

std::vector<double> error_series(std::span<const TargetRun> runs) {
  std::vector<double> errors;
  errors.reserve(runs.size());
  for (const auto& run : runs) errors.push_back(run.error_m);
  return errors;
}

}  // namespace spotfi
