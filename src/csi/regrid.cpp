#include "csi/regrid.hpp"

#include <algorithm>

namespace spotfi {

bool SubcarrierGrid::is_uniform() const {
  if (indices.size() < 3) return true;
  const int step = indices[1] - indices[0];
  for (std::size_t k = 2; k < indices.size(); ++k) {
    if (indices[k] - indices[k - 1] != step) return false;
  }
  return true;
}

double SubcarrierGrid::offset_hz(std::size_t k) const {
  SPOTFI_EXPECTS(k < indices.size(), "grid index out of range");
  return static_cast<double>(indices[k]) * index_spacing_hz;
}

SubcarrierGrid SubcarrierGrid::intel5300_40mhz() {
  SubcarrierGrid grid;
  for (int i = -58; i <= -2; i += 4) grid.indices.push_back(i);
  for (int i = 2; i <= 58; i += 4) grid.indices.push_back(i);
  return grid;
}

SubcarrierGrid SubcarrierGrid::intel5300_20mhz() {
  SubcarrierGrid grid;
  for (int i = -28; i <= -2; i += 2) grid.indices.push_back(i);
  grid.indices.push_back(-1);
  for (int i = 1; i <= 27; i += 2) grid.indices.push_back(i);
  grid.indices.push_back(28);
  return grid;
}

RegridResult regrid_csi(const CMatrix& csi, const SubcarrierGrid& grid,
                        const LinkConfig& link, std::size_t n_uniform) {
  SPOTFI_EXPECTS(csi.cols() == grid.size(),
                 "CSI column count disagrees with the grid");
  SPOTFI_EXPECTS(grid.size() >= 2 && n_uniform >= 2,
                 "need at least two subcarriers");
  SPOTFI_EXPECTS(std::is_sorted(grid.indices.begin(), grid.indices.end()),
                 "grid indices must be ascending");

  const double lo = grid.offset_hz(0);
  const double hi = grid.offset_hz(grid.size() - 1);
  SPOTFI_EXPECTS(hi > lo, "grid must span a positive bandwidth");

  RegridResult result;
  result.spacing_hz = (hi - lo) / static_cast<double>(n_uniform - 1);
  result.link = link;
  result.link.n_subcarriers = n_uniform;
  result.link.subcarrier_spacing_hz = result.spacing_hz;
  result.csi = CMatrix(csi.rows(), n_uniform);

  for (std::size_t m = 0; m < csi.rows(); ++m) {
    std::size_t seg = 0;  // source segment [seg, seg+1]
    for (std::size_t n = 0; n < n_uniform; ++n) {
      const double f = lo + static_cast<double>(n) * result.spacing_hz;
      while (seg + 2 < grid.size() && grid.offset_hz(seg + 1) < f) ++seg;
      const double f0 = grid.offset_hz(seg);
      const double f1 = grid.offset_hz(seg + 1);
      const double t = std::clamp((f - f0) / (f1 - f0), 0.0, 1.0);
      result.csi(m, n) =
          csi(m, seg) + (csi(m, seg + 1) - csi(m, seg)) * t;
    }
  }
  return result;
}

}  // namespace spotfi
