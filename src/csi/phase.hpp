// CSI phase utilities: extraction and 1-D unwrapping along the subcarrier
// axis, the preprocessing Algorithm 1 operates on.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// Raw (wrapped) phase of each CSI entry [rad].
[[nodiscard]] RMatrix csi_phase(const CMatrix& csi);

/// Unwraps a phase sequence in place: successive differences are brought
/// into (-pi, pi] by adding multiples of 2*pi.
void unwrap_in_place(std::span<double> phase);

/// Phase response unwrapped independently along each antenna's subcarrier
/// axis — psi(m, n) in the paper's notation.
[[nodiscard]] RMatrix unwrapped_phase(const CMatrix& csi);

/// Workspace variant: the unwrapped phase is checked out of `ws` and
/// lives until the caller's enclosing frame closes. Same arithmetic as
/// the value flavour, entry for entry.
[[nodiscard]] RMatrixView unwrapped_phase(ConstCMatrixView csi, Workspace& ws);

}  // namespace spotfi
