#include "csi/quality.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace spotfi {
namespace {

/// Total CSI power of a packet in dB (arbitrary reference).
double packet_power_db(const CsiPacket& packet) {
  double p = 0.0;
  for (const auto& v : packet.csi.flat()) p += std::norm(v);
  return 10.0 * std::log10(std::max(p, 1e-300));
}

}  // namespace

QualityVerdict screen_packet(const CsiPacket& packet,
                             const QualityConfig& config) {
  if (packet.csi.empty()) return {false, "empty CSI matrix"};

  if (config.check_finite) {
    for (const auto& v : packet.csi.flat()) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        return {false, "non-finite CSI entry"};
      }
    }
    if (!std::isfinite(packet.rssi_dbm)) return {false, "non-finite RSSI"};
  }

  std::vector<double> row_power_db;
  for (std::size_t m = 0; m < packet.csi.rows(); ++m) {
    double p = 0.0;
    for (const auto& v : packet.csi.row(m)) p += std::norm(v);
    if (config.check_dead_antenna && p < config.dead_antenna_floor) {
      return {false, "dead antenna row " + std::to_string(m)};
    }
    row_power_db.push_back(10.0 * std::log10(std::max(p, 1e-300)));
  }
  const auto [lo, hi] =
      std::minmax_element(row_power_db.begin(), row_power_db.end());
  if (*hi - *lo > config.max_antenna_imbalance_db) {
    return {false, "antenna power imbalance"};
  }
  return {};
}

std::vector<CsiPacket> screen_group(std::span<const CsiPacket> packets,
                                    const QualityConfig& config,
                                    std::vector<std::string>* rejected) {
  std::vector<CsiPacket> accepted;
  if (packets.empty()) return accepted;

  // Group power reference: median of the per-packet powers.
  std::vector<double> powers;
  powers.reserve(packets.size());
  for (const auto& p : packets) powers.push_back(packet_power_db(p));
  const double reference = median(powers);

  for (std::size_t i = 0; i < packets.size(); ++i) {
    QualityVerdict verdict = screen_packet(packets[i], config);
    if (verdict.ok &&
        std::abs(powers[i] - reference) > config.max_power_jump_db) {
      verdict = {false, "power jump vs group median"};
    }
    if (verdict.ok) {
      accepted.push_back(packets[i]);
    } else if (rejected != nullptr) {
      rejected->push_back("packet " + std::to_string(i) + ": " +
                          verdict.reason);
    }
  }
  return accepted;
}

}  // namespace spotfi
