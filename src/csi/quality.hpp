// CSI packet quality screening.
//
// Real CSI feeds are dirty: the firmware occasionally emits corrupted
// records (all-zero rows after an AGC glitch, NaNs from parsing races,
// saturated I/Q, wild power jumps when a packet is clipped). SpotFi's
// clustering tolerates a few bad packets but a screen at ingestion keeps
// them from ever reaching the estimator. The checks are cheap (O(M*N)
// per packet) and conservative: they only reject packets that could not
// be a plausible channel observation.
#pragma once

#include <optional>
#include <string>

#include "channel/csi_synthesis.hpp"

namespace spotfi {

struct QualityConfig {
  /// Reject when any entry is non-finite.
  bool check_finite = true;
  /// Reject when any antenna row is all (near) zero.
  bool check_dead_antenna = true;
  double dead_antenna_floor = 1e-9;
  /// Reject when per-antenna powers differ by more than this [dB]
  /// (an AGC glitch or a dead RF chain; real chains sit within ~10 dB).
  double max_antenna_imbalance_db = 25.0;
  /// Reject when a packet's total power jumps by more than this [dB]
  /// relative to the running median of the group (clipped packet).
  double max_power_jump_db = 20.0;
};

struct QualityVerdict {
  bool ok = true;
  std::string reason;  ///< empty when ok
};

/// Screens one packet in isolation (finite, dead antenna, imbalance).
[[nodiscard]] QualityVerdict screen_packet(const CsiPacket& packet,
                                           const QualityConfig& config = {});

/// Screens a packet group: per-packet checks plus the power-jump check
/// against the group median. Returns the accepted subset, preserving
/// order. `rejected` (optional) receives one reason per dropped packet.
[[nodiscard]] std::vector<CsiPacket> screen_group(
    std::span<const CsiPacket> packets, const QualityConfig& config = {},
    std::vector<std::string>* rejected = nullptr);

}  // namespace spotfi
