#include "csi/intel5300.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>

#include "common/error.hpp"

namespace spotfi {
namespace {

constexpr std::uint8_t kBfeeCode = 0xBB;
constexpr std::size_t kSubcarriers = 30;
/// Frame lengths beyond this are treated as corruption: a bfee frame is at
/// most 234 bytes, and the tool's other record types are far smaller.
constexpr std::size_t kMaxFieldLen = 4096;
/// Bytes needed to test a candidate offset for a plausible bfee frame:
/// u16 length + code + 20-byte bfee header.
constexpr std::size_t kFrameProbe = 2 + 1 + 20;
constexpr std::size_t kReadChunk = 16 * 1024;

double db_inv(double db) { return std::pow(10.0, db / 10.0); }
double to_db(double linear) { return 10.0 * std::log10(linear); }

/// Payload size for nrx*ntx streams (read_bfee.c's calc_len).
std::size_t payload_length(std::size_t streams) {
  return (kSubcarriers * (streams * 8 * 2 + 3) + 7) / 8;
}

/// Reads the 8-bit value at bit offset `index` of `payload`.
std::int8_t read_bits(std::span<const std::uint8_t> payload,
                      std::size_t index) {
  const std::size_t byte = index / 8;
  const unsigned remainder = index % 8;
  unsigned v = payload[byte] >> remainder;
  if (remainder != 0) {
    v |= static_cast<unsigned>(payload[byte + 1]) << (8 - remainder);
  }
  return static_cast<std::int8_t>(v & 0xFF);
}

/// Writes the 8-bit value at bit offset `index` of `payload`.
void write_bits(std::span<std::uint8_t> payload, std::size_t index,
                std::int8_t value) {
  const auto v = static_cast<std::uint8_t>(value);
  const std::size_t byte = index / 8;
  const unsigned remainder = index % 8;
  payload[byte] = static_cast<std::uint8_t>(
      payload[byte] | static_cast<std::uint8_t>(v << remainder));
  if (remainder != 0) {
    payload[byte + 1] = static_cast<std::uint8_t>(
        payload[byte + 1] | static_cast<std::uint8_t>(v >> (8 - remainder)));
  }
}

template <typename T>
T get_le(std::span<const std::uint8_t> buf, std::size_t offset) {
  T v{};
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;  // host is little-endian on all supported targets
}

/// Decodes and validates one bfee frame body (everything after the code
/// byte). `frame_offset` is the stream offset of the frame start, used to
/// locate errors.
Expected<BfeeRecord, IngestError> parse_bfee(
    std::span<const std::uint8_t> body, std::uint64_t frame_offset) {
  const auto fail = [&](IngestErrorKind kind, std::string detail) {
    return Expected<BfeeRecord, IngestError>(
        IngestError{kind, frame_offset, std::move(detail)});
  };
  if (body.size() < 20) {
    return fail(IngestErrorKind::kPayloadMismatch, "bfee header too short");
  }

  BfeeRecord rec;
  rec.timestamp_low = get_le<std::uint32_t>(body, 0);
  rec.bfee_count = get_le<std::uint16_t>(body, 4);
  rec.n_rx = body[8];
  rec.n_tx = body[9];
  rec.rssi_a = body[10];
  rec.rssi_b = body[11];
  rec.rssi_c = body[12];
  rec.noise = static_cast<std::int8_t>(body[13]);
  rec.agc = body[14];
  rec.antenna_sel = body[15];
  const std::uint16_t len = get_le<std::uint16_t>(body, 16);
  // body[18..19]: fake_rate_n_flags (unused).
  if (rec.n_rx == 0 || rec.n_rx > 3 || rec.n_tx != 1) {
    return fail(IngestErrorKind::kPayloadMismatch,
                "unsupported antenna configuration Nrx=" +
                    std::to_string(rec.n_rx) +
                    " Ntx=" + std::to_string(rec.n_tx));
  }
  const std::size_t streams = static_cast<std::size_t>(rec.n_rx) * rec.n_tx;
  if (len != payload_length(streams) ||
      body.size() < 20 + static_cast<std::size_t>(len)) {
    return fail(IngestErrorKind::kPayloadMismatch,
                "payload length mismatch (len=" + std::to_string(len) +
                    ", expected " + std::to_string(payload_length(streams)) +
                    ")");
  }
  if (rec.rssi_a == 0 && rec.rssi_b == 0 && rec.rssi_c == 0) {
    return fail(IngestErrorKind::kRssiAbsent,
                "bfee record reports no RSSI on any antenna");
  }
  const std::span<const std::uint8_t> payload(body.data() + 20, len);

  rec.csi = CMatrix(rec.n_rx, kSubcarriers);
  bool any_nonzero = false;
  std::size_t index = 0;
  for (std::size_t sub = 0; sub < kSubcarriers; ++sub) {
    index += 3;
    for (std::size_t j = 0; j < streams; ++j) {
      const std::int8_t re = read_bits(payload, index);
      const std::int8_t im = read_bits(payload, index + 8);
      rec.csi(j, sub) = cplx(re, im);
      any_nonzero = any_nonzero || re != 0 || im != 0;
      index += 16;
    }
  }
  if (!any_nonzero) {
    return fail(IngestErrorKind::kZeroCsi, "bfee CSI is all zero");
  }
  return Expected<BfeeRecord, IngestError>(std::move(rec));
}

}  // namespace

double BfeeRecord::total_rss_dbm() const {
  double mag = 0.0;
  if (rssi_a != 0) mag += db_inv(rssi_a);
  if (rssi_b != 0) mag += db_inv(rssi_b);
  if (rssi_c != 0) mag += db_inv(rssi_c);
  SPOTFI_EXPECTS(mag > 0.0, "bfee record reports no RSSI");
  return to_db(mag) - 44.0 - static_cast<double>(agc);
}

std::array<std::size_t, 3> BfeeRecord::permutation() const {
  return {static_cast<std::size_t>(antenna_sel & 0x3),
          static_cast<std::size_t>((antenna_sel >> 2) & 0x3),
          static_cast<std::size_t>((antenna_sel >> 4) & 0x3)};
}

CMatrix BfeeRecord::scaled_csi() const {
  SPOTFI_EXPECTS(!csi.empty(), "bfee record has no CSI");
  double csi_pwr = 0.0;
  for (const auto& v : csi.flat()) csi_pwr += std::norm(v);
  SPOTFI_EXPECTS(csi_pwr > 0.0, "bfee CSI is all zero");

  const double rssi_pwr = db_inv(total_rss_dbm());
  const double scale =
      rssi_pwr / (csi_pwr / static_cast<double>(kSubcarriers));

  const double noise_db = (noise == -127) ? -92.0 : static_cast<double>(noise);
  const double thermal_noise_pwr = db_inv(noise_db);
  // Quantization error: +/-1 per component across nrx*ntx streams.
  const double quant_error_pwr =
      scale * static_cast<double>(n_rx) * static_cast<double>(n_tx);
  const double total_noise_pwr = thermal_noise_pwr + quant_error_pwr;

  CMatrix out = csi;
  const double factor = std::sqrt(scale / total_noise_pwr);
  for (auto& v : out.flat()) v *= factor;
  return out;
}

CsitoolReader::CsitoolReader(std::istream& is) : is_(is) {}

std::size_t CsitoolReader::ensure(std::size_t need) {
  if (pos_ >= kReadChunk) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    base_ += pos_;
    pos_ = 0;
  }
  while (!eof_ && buf_.size() - pos_ < need) {
    const std::size_t old = buf_.size();
    buf_.resize(old + kReadChunk);
    is_.read(reinterpret_cast<char*>(buf_.data() + old),
             static_cast<std::streamsize>(kReadChunk));
    const auto got = static_cast<std::size_t>(is_.gcount());
    buf_.resize(old + got);
    // EOF and hard stream errors both end the input; there is nothing
    // fail-soft ingestion can do past the last byte delivered.
    if (got < kReadChunk) eof_ = true;
  }
  return buf_.size() - pos_;
}

void CsitoolReader::advance_accept(std::size_t n) {
  pos_ += n;
  report_.bytes_accepted += n;
}

void CsitoolReader::advance_skip(std::size_t n) {
  pos_ += n;
  report_.bytes_skipped += n;
}

IngestError CsitoolReader::make_error(IngestErrorKind kind, std::uint64_t at,
                                      std::string detail) {
  ++report_.dropped[static_cast<std::size_t>(kind)];
  ++errors_seen_;
  return IngestError{kind, at, std::move(detail)};
}

bool CsitoolReader::plausible_frame_at(std::size_t at) {
  const std::uint8_t* p = buf_.data() + pos_ + at;
  const std::size_t field_len =
      (static_cast<std::size_t>(p[0]) << 8) | p[1];
  if (p[2] != kBfeeCode) return false;
  const std::uint8_t n_rx = p[3 + 8];
  const std::uint8_t n_tx = p[3 + 9];
  if (n_rx == 0 || n_rx > 3 || n_tx != 1) return false;
  const std::size_t len = static_cast<std::size_t>(p[3 + 16]) |
                          (static_cast<std::size_t>(p[3 + 17]) << 8);
  if (len != payload_length(n_rx)) return false;
  return field_len == 1 + 20 + len;
}

void CsitoolReader::resync() {
  ++report_.resyncs;
  advance_skip(1);  // at minimum, the byte that broke framing
  while (true) {
    const std::size_t avail = ensure(kFrameProbe);
    if (avail < kFrameProbe) {
      // Too little input left to hold even a bfee header; a foreign frame
      // this close to a corruption site is indistinguishable from noise.
      advance_skip(avail);
      return;
    }
    if (plausible_frame_at(0)) return;
    advance_skip(1);
  }
}

std::optional<Expected<BfeeRecord, IngestError>> CsitoolReader::next() {
  while (true) {
    // Frame header: u16 big-endian length, u8 code.
    const std::size_t avail = ensure(2);
    if (avail == 0) return std::nullopt;
    if (avail == 1) {
      auto err = make_error(IngestErrorKind::kTruncatedHeader, offset(),
                            "partial frame length at end of input");
      advance_skip(1);
      return Expected<BfeeRecord, IngestError>(std::move(err));
    }
    const std::size_t field_len =
        (static_cast<std::size_t>(buf_[pos_]) << 8) | buf_[pos_ + 1];
    if (field_len == 0 || field_len > kMaxFieldLen) {
      auto err = make_error(
          IngestErrorKind::kBadFrameLength, offset(),
          "frame length " + std::to_string(field_len) + " outside [1, " +
              std::to_string(kMaxFieldLen) + "]");
      resync();
      return Expected<BfeeRecord, IngestError>(std::move(err));
    }
    const std::size_t frame_len = 2 + field_len;
    const std::size_t have = ensure(frame_len);
    if (have < frame_len) {
      // Either the capture was truncated here or the length field is
      // corrupt; resync decides by scanning what remains.
      auto err = make_error(
          IngestErrorKind::kTrailingGarbage, offset(),
          "frame of " + std::to_string(frame_len) +
              " bytes extends past end of input (truncated capture or "
              "trailing garbage)");
      resync();
      return Expected<BfeeRecord, IngestError>(std::move(err));
    }
    if (buf_[pos_ + 2] != kBfeeCode) {
      // Other log record types are skipped by length — but only when the
      // skip lands on something frame-shaped. Corrupt bytes can
      // masquerade as a plausible foreign header, and trusting its
      // length field would swallow good frames wholesale.
      const std::size_t have_after = ensure(frame_len + 2);
      bool boundary_ok = have_after < frame_len + 2;  // frame ends the input
      if (!boundary_ok) {
        const std::uint8_t* p = buf_.data() + pos_ + frame_len;
        const std::size_t next_len =
            (static_cast<std::size_t>(p[0]) << 8) | p[1];
        boundary_ok = next_len >= 1 && next_len <= kMaxFieldLen;
      }
      if (boundary_ok) {
        ++report_.frames_foreign;
        advance_accept(frame_len);
        continue;
      }
      auto err = make_error(
          IngestErrorKind::kBadFrameLength, offset(),
          "foreign frame skip lands on an implausible boundary (corrupt "
          "length field?)");
      resync();
      return Expected<BfeeRecord, IngestError>(std::move(err));
    }
    const std::span<const std::uint8_t> body(buf_.data() + pos_ + 3,
                                             field_len - 1);
    auto parsed = parse_bfee(body, offset());
    if (parsed) {
      advance_accept(frame_len);
      ++report_.records_accepted;
      if (errors_seen_ > 0) ++report_.records_recovered;
      return parsed;
    }
    ++report_.dropped[static_cast<std::size_t>(parsed.error().kind)];
    ++errors_seen_;
    if (parsed.error().kind == IngestErrorKind::kPayloadMismatch) {
      // Structural damage: the length field cannot be trusted to skip by.
      resync();
    } else {
      // Semantically bad record (no RSSI / zero CSI) in an intact frame:
      // drop exactly this frame and keep framing.
      advance_skip(frame_len);
    }
    return parsed;
  }
}

std::vector<BfeeRecord> read_csitool_log(std::istream& is) {
  CsitoolReader reader(is);
  std::vector<BfeeRecord> records;
  while (auto item = reader.next()) {
    if (!*item) throw ParseError("csitool: " + item->error().to_string());
    records.push_back(std::move(item->value()));
  }
  return records;
}

std::vector<BfeeRecord> read_csitool_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("csitool: cannot open " + path);
  return read_csitool_log(is);
}

void write_csitool_log(std::ostream& os,
                       std::span<const BfeeRecord> records) {
  for (const auto& rec : records) {
    SPOTFI_EXPECTS(rec.n_tx == 1 && rec.n_rx >= 1 && rec.n_rx <= 3,
                   "csitool writer supports Ntx = 1, Nrx <= 3");
    SPOTFI_EXPECTS(rec.csi.rows() == rec.n_rx &&
                       rec.csi.cols() == kSubcarriers,
                   "bfee CSI shape mismatch");
    // Never emit a log our own reader would flag: writers enforce the
    // same record semantics CsitoolReader validates.
    SPOTFI_EXPECTS(rec.rssi_a != 0 || rec.rssi_b != 0 || rec.rssi_c != 0,
                   "csitool writer: record has no RSSI on any antenna");
    bool any_nonzero = false;
    for (const auto& v : rec.csi.flat()) {
      SPOTFI_EXPECTS(std::isfinite(v.real()) && std::isfinite(v.imag()),
                     "csitool writer: non-finite CSI entry");
      any_nonzero = any_nonzero || v != cplx{};
    }
    SPOTFI_EXPECTS(any_nonzero, "csitool writer: CSI is all zero");
    const std::size_t streams = rec.n_rx;
    const std::size_t len = payload_length(streams);

    std::vector<std::uint8_t> payload(len + 1, 0);  // +1: write_bits slack
    std::size_t index = 0;
    for (std::size_t sub = 0; sub < kSubcarriers; ++sub) {
      index += 3;
      for (std::size_t j = 0; j < streams; ++j) {
        const auto re = static_cast<std::int8_t>(
            std::clamp(std::lround(rec.csi(j, sub).real()), -128L, 127L));
        const auto im = static_cast<std::int8_t>(
            std::clamp(std::lround(rec.csi(j, sub).imag()), -128L, 127L));
        write_bits(payload, index, re);
        write_bits(payload, index + 8, im);
        index += 16;
      }
    }
    payload.resize(len);

    std::vector<std::uint8_t> body;
    body.reserve(21 + len);
    body.push_back(kBfeeCode);
    auto push_le = [&body](auto value) {
      std::uint8_t bytes[sizeof(value)];
      std::memcpy(bytes, &value, sizeof(value));
      body.insert(body.end(), bytes, bytes + sizeof(value));
    };
    push_le(rec.timestamp_low);
    push_le(rec.bfee_count);
    push_le(std::uint16_t{0});  // reserved
    body.push_back(rec.n_rx);
    body.push_back(rec.n_tx);
    body.push_back(rec.rssi_a);
    body.push_back(rec.rssi_b);
    body.push_back(rec.rssi_c);
    body.push_back(static_cast<std::uint8_t>(rec.noise));
    body.push_back(rec.agc);
    body.push_back(rec.antenna_sel);
    push_le(static_cast<std::uint16_t>(len));
    push_le(std::uint16_t{0});  // fake_rate_n_flags
    body.insert(body.end(), payload.begin(), payload.end());

    SPOTFI_EXPECTS(body.size() <= 0xFFFF,
                   "csitool writer: frame exceeds the u16 length field");
    const auto field_len = static_cast<std::uint16_t>(body.size());
    const std::uint8_t hdr[2] = {
        static_cast<std::uint8_t>(field_len >> 8),
        static_cast<std::uint8_t>(field_len & 0xFF)};
    os.write(reinterpret_cast<const char*>(hdr), 2);
    os.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  }
  if (!os) throw ParseError("csitool: write failure");
}

void write_csitool_log(const std::string& path,
                       std::span<const BfeeRecord> records) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ParseError("csitool: cannot open for writing " + path);
  write_csitool_log(os, records);
}

BfeeRecord make_bfee(const CMatrix& csi, double rssi_dbm,
                     std::uint32_t timestamp_low) {
  SPOTFI_EXPECTS(csi.rows() >= 1 && csi.rows() <= 3 &&
                     csi.cols() == kSubcarriers,
                 "make_bfee expects an Nrx x 30 CSI matrix");
  SPOTFI_EXPECTS(std::isfinite(rssi_dbm), "make_bfee: non-finite RSSI");
  BfeeRecord rec;
  rec.timestamp_low = timestamp_low;
  rec.n_rx = static_cast<std::uint8_t>(csi.rows());
  rec.n_tx = 1;
  rec.noise = -92;
  rec.agc = 40;
  rec.antenna_sel = 0x24;  // identity permutation (0, 1, 2)

  // AGC emulation: scale the strongest I/Q component near full range.
  double max_comp = 0.0;
  for (const auto& v : csi.flat()) {
    SPOTFI_EXPECTS(std::isfinite(v.real()) && std::isfinite(v.imag()),
                   "make_bfee: non-finite CSI entry");
    max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
  }
  SPOTFI_EXPECTS(max_comp > 0.0, "make_bfee: zero CSI");
  const double scale = 114.0 / max_comp;
  rec.csi = CMatrix(csi.rows(), csi.cols());
  for (std::size_t m = 0; m < csi.rows(); ++m) {
    for (std::size_t n = 0; n < csi.cols(); ++n) {
      rec.csi(m, n) = cplx(std::round(csi(m, n).real() * scale),
                           std::round(csi(m, n).imag() * scale));
    }
  }
  // RSSI slot A carries the packet RSSI: dBm = rssi_a - 44 - agc.
  const double slot = rssi_dbm + 44.0 + static_cast<double>(rec.agc);
  rec.rssi_a =
      static_cast<std::uint8_t>(std::clamp(std::lround(slot), 1L, 255L));
  return rec;
}

}  // namespace spotfi
