#include "csi/intel5300.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace spotfi {
namespace {

constexpr std::uint8_t kBfeeCode = 0xBB;
constexpr std::size_t kSubcarriers = 30;

double db_inv(double db) { return std::pow(10.0, db / 10.0); }
double to_db(double linear) { return 10.0 * std::log10(linear); }

/// Payload size for nrx*ntx streams (read_bfee.c's calc_len).
std::size_t payload_length(std::size_t streams) {
  return (kSubcarriers * (streams * 8 * 2 + 3) + 7) / 8;
}

/// Reads the 8-bit value at bit offset `index` of `payload`.
std::int8_t read_bits(std::span<const std::uint8_t> payload,
                      std::size_t index) {
  const std::size_t byte = index / 8;
  const unsigned remainder = index % 8;
  unsigned v = payload[byte] >> remainder;
  if (remainder != 0) {
    v |= static_cast<unsigned>(payload[byte + 1]) << (8 - remainder);
  }
  return static_cast<std::int8_t>(v & 0xFF);
}

/// Writes the 8-bit value at bit offset `index` of `payload`.
void write_bits(std::span<std::uint8_t> payload, std::size_t index,
                std::int8_t value) {
  const auto v = static_cast<std::uint8_t>(value);
  const std::size_t byte = index / 8;
  const unsigned remainder = index % 8;
  payload[byte] = static_cast<std::uint8_t>(
      payload[byte] | static_cast<std::uint8_t>(v << remainder));
  if (remainder != 0) {
    payload[byte + 1] = static_cast<std::uint8_t>(
        payload[byte + 1] | static_cast<std::uint8_t>(v >> (8 - remainder)));
  }
}

template <typename T>
T get_le(std::span<const std::uint8_t> buf, std::size_t offset) {
  T v{};
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;  // host is little-endian on all supported targets
}

}  // namespace

double BfeeRecord::total_rss_dbm() const {
  double mag = 0.0;
  if (rssi_a != 0) mag += db_inv(rssi_a);
  if (rssi_b != 0) mag += db_inv(rssi_b);
  if (rssi_c != 0) mag += db_inv(rssi_c);
  SPOTFI_EXPECTS(mag > 0.0, "bfee record reports no RSSI");
  return to_db(mag) - 44.0 - static_cast<double>(agc);
}

std::array<std::size_t, 3> BfeeRecord::permutation() const {
  return {static_cast<std::size_t>(antenna_sel & 0x3),
          static_cast<std::size_t>((antenna_sel >> 2) & 0x3),
          static_cast<std::size_t>((antenna_sel >> 4) & 0x3)};
}

CMatrix BfeeRecord::scaled_csi() const {
  SPOTFI_EXPECTS(!csi.empty(), "bfee record has no CSI");
  double csi_pwr = 0.0;
  for (const auto& v : csi.flat()) csi_pwr += std::norm(v);
  SPOTFI_EXPECTS(csi_pwr > 0.0, "bfee CSI is all zero");

  const double rssi_pwr = db_inv(total_rss_dbm());
  const double scale =
      rssi_pwr / (csi_pwr / static_cast<double>(kSubcarriers));

  const double noise_db = (noise == -127) ? -92.0 : static_cast<double>(noise);
  const double thermal_noise_pwr = db_inv(noise_db);
  // Quantization error: +/-1 per component across nrx*ntx streams.
  const double quant_error_pwr =
      scale * static_cast<double>(n_rx) * static_cast<double>(n_tx);
  const double total_noise_pwr = thermal_noise_pwr + quant_error_pwr;

  CMatrix out = csi;
  const double factor = std::sqrt(scale / total_noise_pwr);
  for (auto& v : out.flat()) v *= factor;
  return out;
}

std::vector<BfeeRecord> read_csitool_log(std::istream& is) {
  std::vector<BfeeRecord> records;
  while (true) {
    // Frame header: u16 big-endian length, u8 code.
    std::uint8_t hdr[2];
    is.read(reinterpret_cast<char*>(hdr), 2);
    if (is.eof()) break;
    if (!is) throw ParseError("csitool: truncated frame length");
    const std::size_t field_len =
        (static_cast<std::size_t>(hdr[0]) << 8) | hdr[1];
    if (field_len == 0) throw ParseError("csitool: zero-length frame");

    std::vector<std::uint8_t> frame(field_len);
    is.read(reinterpret_cast<char*>(frame.data()),
            static_cast<std::streamsize>(field_len));
    if (!is) throw ParseError("csitool: truncated frame body");

    if (frame[0] != kBfeeCode) continue;  // other log record types: skip
    const std::span<const std::uint8_t> body(frame.data() + 1,
                                             frame.size() - 1);
    if (body.size() < 20) throw ParseError("csitool: bfee header too short");

    BfeeRecord rec;
    rec.timestamp_low = get_le<std::uint32_t>(body, 0);
    rec.bfee_count = get_le<std::uint16_t>(body, 4);
    rec.n_rx = body[8];
    rec.n_tx = body[9];
    rec.rssi_a = body[10];
    rec.rssi_b = body[11];
    rec.rssi_c = body[12];
    rec.noise = static_cast<std::int8_t>(body[13]);
    rec.agc = body[14];
    rec.antenna_sel = body[15];
    const std::uint16_t len = get_le<std::uint16_t>(body, 16);
    // body[18..19]: fake_rate_n_flags (unused).
    if (rec.n_rx == 0 || rec.n_rx > 3 || rec.n_tx != 1) {
      throw ParseError("csitool: unsupported antenna configuration");
    }
    const std::size_t streams =
        static_cast<std::size_t>(rec.n_rx) * rec.n_tx;
    if (len != payload_length(streams) || body.size() < 20 + len) {
      throw ParseError("csitool: payload length mismatch");
    }
    const std::span<const std::uint8_t> payload(body.data() + 20, len);

    rec.csi = CMatrix(rec.n_rx, kSubcarriers);
    std::size_t index = 0;
    for (std::size_t sub = 0; sub < kSubcarriers; ++sub) {
      index += 3;
      for (std::size_t j = 0; j < streams; ++j) {
        const std::int8_t re = read_bits(payload, index);
        const std::int8_t im = read_bits(payload, index + 8);
        rec.csi(j, sub) = cplx(re, im);
        index += 16;
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<BfeeRecord> read_csitool_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("csitool: cannot open " + path);
  return read_csitool_log(is);
}

void write_csitool_log(std::ostream& os,
                       std::span<const BfeeRecord> records) {
  for (const auto& rec : records) {
    SPOTFI_EXPECTS(rec.n_tx == 1 && rec.n_rx >= 1 && rec.n_rx <= 3,
                   "csitool writer supports Ntx = 1, Nrx <= 3");
    SPOTFI_EXPECTS(rec.csi.rows() == rec.n_rx &&
                       rec.csi.cols() == kSubcarriers,
                   "bfee CSI shape mismatch");
    const std::size_t streams = rec.n_rx;
    const std::size_t len = payload_length(streams);

    std::vector<std::uint8_t> payload(len + 1, 0);  // +1: write_bits slack
    std::size_t index = 0;
    for (std::size_t sub = 0; sub < kSubcarriers; ++sub) {
      index += 3;
      for (std::size_t j = 0; j < streams; ++j) {
        const auto re = static_cast<std::int8_t>(
            std::clamp(std::lround(rec.csi(j, sub).real()), -128L, 127L));
        const auto im = static_cast<std::int8_t>(
            std::clamp(std::lround(rec.csi(j, sub).imag()), -128L, 127L));
        write_bits(payload, index, re);
        write_bits(payload, index + 8, im);
        index += 16;
      }
    }
    payload.resize(len);

    std::vector<std::uint8_t> body;
    body.reserve(21 + len);
    body.push_back(kBfeeCode);
    auto push_le = [&body](auto value) {
      std::uint8_t bytes[sizeof(value)];
      std::memcpy(bytes, &value, sizeof(value));
      body.insert(body.end(), bytes, bytes + sizeof(value));
    };
    push_le(rec.timestamp_low);
    push_le(rec.bfee_count);
    push_le(std::uint16_t{0});  // reserved
    body.push_back(rec.n_rx);
    body.push_back(rec.n_tx);
    body.push_back(rec.rssi_a);
    body.push_back(rec.rssi_b);
    body.push_back(rec.rssi_c);
    body.push_back(static_cast<std::uint8_t>(rec.noise));
    body.push_back(rec.agc);
    body.push_back(rec.antenna_sel);
    push_le(static_cast<std::uint16_t>(len));
    push_le(std::uint16_t{0});  // fake_rate_n_flags
    body.insert(body.end(), payload.begin(), payload.end());

    const auto field_len = static_cast<std::uint16_t>(body.size());
    const std::uint8_t hdr[2] = {
        static_cast<std::uint8_t>(field_len >> 8),
        static_cast<std::uint8_t>(field_len & 0xFF)};
    os.write(reinterpret_cast<const char*>(hdr), 2);
    os.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  }
  if (!os) throw ParseError("csitool: write failure");
}

void write_csitool_log(const std::string& path,
                       std::span<const BfeeRecord> records) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ParseError("csitool: cannot open for writing " + path);
  write_csitool_log(os, records);
}

BfeeRecord make_bfee(const CMatrix& csi, double rssi_dbm,
                     std::uint32_t timestamp_low) {
  SPOTFI_EXPECTS(csi.rows() >= 1 && csi.rows() <= 3 &&
                     csi.cols() == kSubcarriers,
                 "make_bfee expects an Nrx x 30 CSI matrix");
  BfeeRecord rec;
  rec.timestamp_low = timestamp_low;
  rec.n_rx = static_cast<std::uint8_t>(csi.rows());
  rec.n_tx = 1;
  rec.noise = -92;
  rec.agc = 40;
  rec.antenna_sel = 0x24;  // identity permutation (0, 1, 2)

  // AGC emulation: scale the strongest I/Q component near full range.
  double max_comp = 0.0;
  for (const auto& v : csi.flat()) {
    max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
  }
  SPOTFI_EXPECTS(max_comp > 0.0, "make_bfee: zero CSI");
  const double scale = 114.0 / max_comp;
  rec.csi = CMatrix(csi.rows(), csi.cols());
  for (std::size_t m = 0; m < csi.rows(); ++m) {
    for (std::size_t n = 0; n < csi.cols(); ++n) {
      rec.csi(m, n) = cplx(std::round(csi(m, n).real() * scale),
                           std::round(csi(m, n).imag() * scale));
    }
  }
  // RSSI slot A carries the packet RSSI: dBm = rssi_a - 44 - agc.
  const double slot = rssi_dbm + 44.0 + static_cast<double>(rec.agc);
  rec.rssi_a =
      static_cast<std::uint8_t>(std::clamp(std::lround(slot), 1L, 255L));
  return rec;
}

}  // namespace spotfi
