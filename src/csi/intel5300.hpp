// Intel 5300 / Linux 802.11n CSI Tool compatibility layer.
//
// The paper's deployment reads CSI with the csitool [68], whose userspace
// logs "beamforming feedback" (bfee) records in a simple framed binary
// format. This module implements a faithful encoder/decoder for that
// format so the library can ingest real csitool logs:
//
//   per frame:  u16 big-endian field length, u8 code (0xBB = bfee)
//   bfee body:  u32le timestamp_low, u16le bfee_count, u16 reserved,
//               u8 Nrx, u8 Ntx, u8 rssiA, u8 rssiB, u8 rssiC, i8 noise,
//               u8 agc, u8 antenna_sel, u16le len, u16le fake_rate_n_flags,
//               payload[len]
//   payload:    for each of 30 subcarriers: skip 3 bits, then for each of
//               Ntx*Nrx streams an (i8 real, i8 imag) pair, packed at the
//               running bit offset (read_bfee.c's layout).
//
// Scaling follows the tool's get_scaled_csi(): CSI is normalized so that
// its total power matches the SNR implied by the per-antenna RSSI, AGC,
// and noise figures, with the standard +44 dBm RSSI offset.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace spotfi {

/// One decoded bfee record (quantities as the NIC reports them).
struct BfeeRecord {
  std::uint32_t timestamp_low = 0;  ///< microseconds, wraps every ~72 min
  std::uint16_t bfee_count = 0;
  std::uint8_t n_rx = 3;
  std::uint8_t n_tx = 1;
  /// Per-antenna RSSI magnitudes (0 = absent); dBm = value - 44 - agc.
  std::uint8_t rssi_a = 0;
  std::uint8_t rssi_b = 0;
  std::uint8_t rssi_c = 0;
  std::int8_t noise = -127;
  std::uint8_t agc = 0;
  /// 2-bit fields: physical antenna behind each RX chain.
  std::uint8_t antenna_sel = 0;
  /// Raw quantized CSI, n_rx x 30 for n_tx = 1 (stream-major for Ntx > 1
  /// is not used by SpotFi and unsupported here).
  CMatrix csi;

  /// Total received power [dBm] from the per-antenna RSSIs
  /// (get_total_rss in the tool).
  [[nodiscard]] double total_rss_dbm() const;

  /// CSI scaled to absolute channel magnitude (get_scaled_csi).
  [[nodiscard]] CMatrix scaled_csi() const;

  /// RX-chain permutation decoded from antenna_sel (perm in the tool).
  [[nodiscard]] std::array<std::size_t, 3> permutation() const;
};

/// Parses an entire csitool .dat log. Non-bfee frames (code != 0xBB) are
/// skipped, as in the reference parser. Throws ParseError on framing
/// corruption.
[[nodiscard]] std::vector<BfeeRecord> read_csitool_log(std::istream& is);
[[nodiscard]] std::vector<BfeeRecord> read_csitool_log(
    const std::string& path);

/// Serializes records into the csitool .dat framing (bit-exact round trip
/// of the quantized payload).
void write_csitool_log(std::ostream& os, std::span<const BfeeRecord> records);
void write_csitool_log(const std::string& path,
                       std::span<const BfeeRecord> records);

/// Quantizes a synthesized CSI matrix into a bfee record, emulating the
/// NIC's AGC and 8-bit I/Q quantization; `rssi_dbm` drives the RSSI
/// fields. The inverse of BfeeRecord::scaled_csi up to quantization.
[[nodiscard]] BfeeRecord make_bfee(const CMatrix& csi, double rssi_dbm,
                                   std::uint32_t timestamp_low = 0);

}  // namespace spotfi
