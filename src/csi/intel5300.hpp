// Intel 5300 / Linux 802.11n CSI Tool compatibility layer.
//
// The paper's deployment reads CSI with the csitool [68], whose userspace
// logs "beamforming feedback" (bfee) records in a simple framed binary
// format. This module implements a faithful encoder/decoder for that
// format so the library can ingest real csitool logs:
//
//   per frame:  u16 big-endian field length, u8 code (0xBB = bfee)
//   bfee body:  u32le timestamp_low, u16le bfee_count, u16 reserved,
//               u8 Nrx, u8 Ntx, u8 rssiA, u8 rssiB, u8 rssiC, i8 noise,
//               u8 agc, u8 antenna_sel, u16le len, u16le fake_rate_n_flags,
//               payload[len]
//   payload:    for each of 30 subcarriers: skip 3 bits, then for each of
//               Ntx*Nrx streams an (i8 real, i8 imag) pair, packed at the
//               running bit offset (read_bfee.c's layout).
//
// Scaling follows the tool's get_scaled_csi(): CSI is normalized so that
// its total power matches the SNR implied by the per-antenna RSSI, AGC,
// and noise figures, with the standard +44 dBm RSSI offset.
//
// Ingestion is a trust boundary. Multi-hour captures from real testbeds
// routinely contain flipped bits, truncated tails, and interleaved
// garbage; CsitoolReader therefore never throws on malformed input.
// It streams one Expected<BfeeRecord, IngestError> at a time, drops
// exactly the corrupt frame, resynchronizes by scanning for the next
// plausible bfee frame boundary, and accounts for every input byte in an
// IngestReport. The whole-log read_csitool_log() entry points are strict
// wrappers that throw ParseError on the first ingest error.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

/// One decoded bfee record (quantities as the NIC reports them).
struct BfeeRecord {
  std::uint32_t timestamp_low = 0;  ///< microseconds, wraps every ~72 min
  std::uint16_t bfee_count = 0;
  std::uint8_t n_rx = 3;
  std::uint8_t n_tx = 1;
  /// Per-antenna RSSI magnitudes (0 = absent); dBm = value - 44 - agc.
  std::uint8_t rssi_a = 0;
  std::uint8_t rssi_b = 0;
  std::uint8_t rssi_c = 0;
  std::int8_t noise = -127;
  std::uint8_t agc = 0;
  /// 2-bit fields: physical antenna behind each RX chain.
  std::uint8_t antenna_sel = 0;
  /// Raw quantized CSI, n_rx x 30 for n_tx = 1 (stream-major for Ntx > 1
  /// is not used by SpotFi and unsupported here).
  CMatrix csi;

  /// Total received power [dBm] from the per-antenna RSSIs
  /// (get_total_rss in the tool). Requires at least one populated RSSI
  /// slot — guaranteed for records produced by CsitoolReader, which
  /// rejects RSSI-less records with IngestErrorKind::kRssiAbsent.
  [[nodiscard]] double total_rss_dbm() const;

  /// CSI scaled to absolute channel magnitude (get_scaled_csi). Requires
  /// non-empty, not-all-zero CSI — guaranteed for reader-produced records
  /// (all-zero CSI is rejected with IngestErrorKind::kZeroCsi).
  [[nodiscard]] CMatrix scaled_csi() const;

  /// RX-chain permutation decoded from antenna_sel (perm in the tool).
  [[nodiscard]] std::array<std::size_t, 3> permutation() const;
};

/// Pull-based, fail-soft csitool .dat parser.
///
///   CsitoolReader reader(is);
///   while (auto item = reader.next()) {
///     if (*item) use(item->value());
///     else       log(item->error());   // one frame lost, stream continues
///   }
///   audit(reader.report());
///
/// next() returns std::nullopt at end of input; each yielded value is
/// either a validated record or the IngestError that dropped one frame.
/// After a framing error the reader scans forward for the next byte
/// position that parses as a plausible bfee frame (length field, code,
/// antenna configuration, and payload length all consistent) and resumes
/// there; skipped bytes are tallied in report().bytes_skipped. Valid
/// frames of a foreign type (code != 0xBB) are skipped as in the
/// reference parser and counted in report().frames_foreign.
class CsitoolReader {
 public:
  explicit CsitoolReader(std::istream& is);

  /// Next record or per-frame error; std::nullopt at clean end of input.
  [[nodiscard]] std::optional<Expected<BfeeRecord, IngestError>> next();

  /// Running byte/record accounting (valid after every next() call;
  /// final once next() has returned std::nullopt).
  [[nodiscard]] const IngestReport& report() const { return report_; }

 private:
  /// Ensures >= `need` unparsed bytes are buffered (reading from the
  /// stream as required); returns the number actually available, which
  /// is < need only at end of input.
  std::size_t ensure(std::size_t need);
  [[nodiscard]] std::uint64_t offset() const { return base_ + pos_; }
  void advance_accept(std::size_t n);
  void advance_skip(std::size_t n);
  /// Skips forward to the next plausible bfee frame start (or end of
  /// input), attributing every byte passed over to bytes_skipped.
  void resync();
  /// True when `pos_ + at` starts a self-consistent bfee frame.
  [[nodiscard]] bool plausible_frame_at(std::size_t at);
  [[nodiscard]] IngestError make_error(IngestErrorKind kind,
                                       std::uint64_t at, std::string detail);

  std::istream& is_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;     ///< parse cursor within buf_
  std::uint64_t base_ = 0;  ///< stream offset of buf_[0]
  bool eof_ = false;        ///< underlying stream exhausted
  std::size_t errors_seen_ = 0;
  IngestReport report_;
};

/// Parses an entire csitool .dat log strictly: non-bfee frames are
/// skipped, as in the reference parser, but any ingest error (framing
/// corruption, truncation, RSSI-less or all-zero-CSI records) throws
/// ParseError. Use CsitoolReader for fail-soft ingestion of untrusted
/// captures.
[[nodiscard]] std::vector<BfeeRecord> read_csitool_log(std::istream& is);
[[nodiscard]] std::vector<BfeeRecord> read_csitool_log(
    const std::string& path);

/// Serializes records into the csitool .dat framing (bit-exact round trip
/// of the quantized payload). Throws ContractViolation on records our own
/// reader would reject: unsupported antenna configuration, CSI shape
/// mismatch, non-finite CSI, no populated RSSI slot, or all-zero CSI.
void write_csitool_log(std::ostream& os, std::span<const BfeeRecord> records);
void write_csitool_log(const std::string& path,
                       std::span<const BfeeRecord> records);

/// Quantizes a synthesized CSI matrix into a bfee record, emulating the
/// NIC's AGC and 8-bit I/Q quantization; `rssi_dbm` drives the RSSI
/// fields. The inverse of BfeeRecord::scaled_csi up to quantization.
[[nodiscard]] BfeeRecord make_bfee(const CMatrix& csi, double rssi_dbm,
                                   std::uint32_t timestamp_low = 0);

}  // namespace spotfi
