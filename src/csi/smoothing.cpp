#include "csi/smoothing.hpp"

namespace spotfi {

std::size_t smoothed_rows(const SmoothingConfig& cfg) {
  return cfg.sub_len * cfg.ant_len;
}

std::size_t smoothed_cols(std::size_t n_antennas, std::size_t n_subcarriers,
                          const SmoothingConfig& cfg) {
  SPOTFI_EXPECTS(cfg.ant_len >= 1 && cfg.ant_len <= n_antennas,
                 "subarray antenna length out of range");
  SPOTFI_EXPECTS(cfg.sub_len >= 1 && cfg.sub_len <= n_subcarriers,
                 "subarray subcarrier length out of range");
  return (n_subcarriers - cfg.sub_len + 1) * (n_antennas - cfg.ant_len + 1);
}

namespace {

void fill_smoothed(ConstCMatrixView csi, const SmoothingConfig& cfg,
                   CMatrixView x) {
  const std::size_t m_ant = csi.rows();
  const std::size_t n_sub = csi.cols();
  const std::size_t sub_shifts = n_sub - cfg.sub_len + 1;
  std::size_t col = 0;
  for (std::size_t da = 0; da + cfg.ant_len <= m_ant; ++da) {
    for (std::size_t ds = 0; ds < sub_shifts; ++ds, ++col) {
      std::size_t row = 0;
      for (std::size_t a = 0; a < cfg.ant_len; ++a) {
        for (std::size_t s = 0; s < cfg.sub_len; ++s, ++row) {
          x(row, col) = csi(da + a, ds + s);
        }
      }
    }
  }
}

}  // namespace

CMatrix smoothed_csi(const CMatrix& csi, const SmoothingConfig& cfg) {
  const std::size_t rows = smoothed_rows(cfg);
  const std::size_t cols = smoothed_cols(csi.rows(), csi.cols(), cfg);
  CMatrix x(rows, cols);
  fill_smoothed(csi.view(), cfg, x.view());
  return x;
}

CMatrixView smoothed_csi(ConstCMatrixView csi, Workspace& ws,
                         const SmoothingConfig& cfg) {
  const std::size_t rows = smoothed_rows(cfg);
  const std::size_t cols = smoothed_cols(csi.rows(), csi.cols(), cfg);
  CMatrixView x = workspace_matrix<cplx>(ws, rows, cols);
  fill_smoothed(csi, cfg, x);
  return x;
}

CMatrix spatially_smoothed_snapshots(const CMatrix& csi, std::size_t ant_len) {
  const std::size_t m_ant = csi.rows();
  const std::size_t n_sub = csi.cols();
  SPOTFI_EXPECTS(ant_len >= 1 && ant_len <= m_ant,
                 "antenna subarray length out of range");
  const std::size_t shifts = m_ant - ant_len + 1;
  CMatrix x(ant_len, shifts * n_sub);
  std::size_t col = 0;
  for (std::size_t da = 0; da < shifts; ++da) {
    for (std::size_t n = 0; n < n_sub; ++n, ++col) {
      for (std::size_t a = 0; a < ant_len; ++a) {
        x(a, col) = csi(da + a, n);
      }
    }
  }
  return x;
}

}  // namespace spotfi
