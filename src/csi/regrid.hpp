// Non-uniform subcarrier grids and resampling onto the uniform grid the
// estimation machinery assumes.
//
// Everything in music/ (steering progressions, smoothing shifts) relies
// on equispaced subcarriers. The Intel 5300 reports an equispaced set for
// 40 MHz channels (every 4th subcarrier), but its 20 MHz report set
//   -28 -26 ... -2 -1 1 3 ... 27 28
// is *not* uniform near DC and the band edges. Real deployments regrid
// the CSI by complex interpolation before estimation; this module
// implements that step.
#pragma once

#include <vector>

#include "common/constants.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

/// A set of reported OFDM subcarrier indices on the 312.5 kHz raster.
struct SubcarrierGrid {
  std::vector<int> indices;
  /// Frequency step of one index unit [Hz].
  double index_spacing_hz = 312.5e3;

  [[nodiscard]] std::size_t size() const { return indices.size(); }
  [[nodiscard]] bool is_uniform() const;
  /// Frequency offset of entry `k` from the band center [Hz].
  [[nodiscard]] double offset_hz(std::size_t k) const;

  /// The Intel 5300 report sets (csitool documentation).
  [[nodiscard]] static SubcarrierGrid intel5300_40mhz();
  [[nodiscard]] static SubcarrierGrid intel5300_20mhz();
};

struct RegridResult {
  /// antennas x n_uniform CSI on the equispaced grid.
  CMatrix csi;
  /// Spacing of the uniform grid [Hz].
  double spacing_hz = 0.0;
  /// Link configuration describing the regridded data (carrier taken
  /// from the input config).
  LinkConfig link;
};

/// Resamples CSI reported on `grid` onto `n_uniform` equispaced
/// subcarriers spanning the same band, by linear interpolation of the
/// complex values per antenna. `link` supplies the carrier frequency and
/// antenna geometry; its subcarrier fields are replaced in the result.
[[nodiscard]] RegridResult regrid_csi(const CMatrix& csi,
                                      const SubcarrierGrid& grid,
                                      const LinkConfig& link,
                                      std::size_t n_uniform = 30);

}  // namespace spotfi
