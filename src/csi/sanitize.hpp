// Algorithm 1 — ToF sanitization.
//
// The sender and receiver sampling clocks are not synchronized, so every
// packet's CSI carries a sampling-time offset (STO) that adds a common
// delay to the ToF of all paths; worse, SFO and packet-detection delay
// make that offset vary packet to packet. The STO manifests as a term
// linear in subcarrier index, identical across antennas. Algorithm 1 fits
// that common linear term to the unwrapped phase and removes it, making
// the ToF estimates of consecutive packets comparable (their variance can
// then be used for the direct-path likelihood, Sec. 3.2.3).
#pragma once

#include "common/constants.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

struct SanitizeResult {
  /// CSI with the fitted linear phase removed, magnitudes untouched.
  CMatrix csi;
  /// The fitted STO estimate tau_hat [s] (step 1 of Algorithm 1).
  double fitted_sto_s = 0.0;
  /// The fitted constant phase beta [rad].
  double fitted_offset_rad = 0.0;
};

/// Applies Algorithm 1 to one packet's CSI (antennas x subcarriers).
///
/// Finds (rho, beta) minimizing
///   sum_{m,n} (psi(m,n) + 2*pi*f_delta*(n-1)*rho + beta)^2
/// over the unwrapped phase psi, then adds 2*pi*f_delta*(n-1)*rho_hat to
/// every subcarrier's phase. After this transform the phase response of
/// two packets differing only in STO is identical (Sec. 3.2.2).
[[nodiscard]] SanitizeResult sanitize_tof(const CMatrix& csi,
                                          const LinkConfig& link);

/// The fitted linear-phase parameters alone (for the workspace overload,
/// whose matrix result lives on the arena).
struct SanitizeFit {
  double fitted_sto_s = 0.0;
  double fitted_offset_rad = 0.0;
};

/// Workspace variant: the unwrapped-phase scratch and the sanitized CSI
/// are checked out of `ws`; the returned view stays valid until the
/// caller's enclosing frame closes. Both flavours share the fitting
/// arithmetic, so the sanitized entries are bit-identical.
[[nodiscard]] CMatrixView sanitize_tof(ConstCMatrixView csi,
                                       const LinkConfig& link, Workspace& ws,
                                       SanitizeFit* fit = nullptr);

}  // namespace spotfi
