// On-disk CSI trace format, closely modelled on the Linux 802.11n CSI
// Tool's `bfee` log records that the paper's deployment ships from each AP
// to the central server.
//
// Layout (little-endian):
//   file header:  magic "SPFI", u16 version, LinkConfig fields,
//                 u8 n_antennas, u8 n_subcarriers
//   per record:   u64 timestamp_ns, u8 n_rx, u8 n_tx,
//                 i8 rssi_a/b/c (dBm, 0x7f = absent), i8 noise_dbm,
//                 u8 agc, f32 scale, then n_rx*n_subcarriers (i8 re, i8 im)
//
// Like the real tool, CSI entries are stored as quantized 8-bit I/Q; the
// f32 `scale` records the AGC scaling applied at capture so the reader can
// reconstruct the linear-scale CSI exactly (the real tool reconstructs it
// from RSSI/AGC instead — we store it explicitly for lossless round
// trips).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/constants.hpp"

namespace spotfi {

/// Writes a trace file. Throws ParseError on I/O failure and
/// ContractViolation if a packet's CSI shape disagrees with `link`.
void write_trace(const std::string& path, const LinkConfig& link,
                 std::span<const CsiPacket> packets);
void write_trace(std::ostream& os, const LinkConfig& link,
                 std::span<const CsiPacket> packets);

struct Trace {
  LinkConfig link;
  std::vector<CsiPacket> packets;
};

/// Reads a trace file written by write_trace. Throws ParseError on
/// malformed input (bad magic, truncated records, shape overflow).
[[nodiscard]] Trace read_trace(const std::string& path);
[[nodiscard]] Trace read_trace(std::istream& is);

}  // namespace spotfi
