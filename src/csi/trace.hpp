// On-disk CSI trace format, closely modelled on the Linux 802.11n CSI
// Tool's `bfee` log records that the paper's deployment ships from each AP
// to the central server.
//
// Layout (little-endian):
//   file header:  magic "SPFI", u16 version, LinkConfig fields,
//                 u8 n_antennas, u8 n_subcarriers
//   per record:   u64 timestamp_ns, u8 n_rx, u8 n_tx,
//                 i8 rssi_a/b/c (dBm, 0x7f = absent), i8 noise_dbm,
//                 u8 agc, f32 scale, then n_rx*n_subcarriers (i8 re, i8 im)
//
// Like the real tool, CSI entries are stored as quantized 8-bit I/Q; the
// f32 `scale` records the AGC scaling applied at capture so the reader can
// reconstruct the linear-scale CSI exactly (the real tool reconstructs it
// from RSSI/AGC instead — we store it explicitly for lossless round
// trips).
//
// Ingestion is a trust boundary: TraceReader never throws on malformed
// input. It streams one Expected<CsiPacket, IngestError> per record,
// drops exactly the corrupt record, resynchronizes on the fixed record
// pitch by scanning for the next byte position whose shape fields and
// scale are consistent with the file header, and accounts for every
// input byte in an IngestReport. read_trace() is a strict wrapper that
// throws ParseError on the first ingest error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace spotfi {

/// Writes a trace file. Throws ParseError on I/O failure and
/// ContractViolation on packets our own reader would reject: CSI shape
/// disagreeing with `link`, non-finite CSI/RSSI/timestamp, or all-zero
/// CSI.
void write_trace(const std::string& path, const LinkConfig& link,
                 std::span<const CsiPacket> packets);
void write_trace(std::ostream& os, const LinkConfig& link,
                 std::span<const CsiPacket> packets);

struct Trace {
  LinkConfig link;
  std::vector<CsiPacket> packets;
};

/// Pull-based, fail-soft trace parser; the trace-format sibling of
/// CsitoolReader (see csi/intel5300.hpp for the usage pattern).
///
/// The file header is parsed on construction. When it is unusable (bad
/// magic/version/link configuration) the first next() call yields a
/// single IngestErrorKind::kBadFileHeader error — with the record pitch
/// unknown, the remaining bytes are unrecoverable and are accounted as
/// skipped — and subsequent calls return std::nullopt.
class TraceReader {
 public:
  explicit TraceReader(std::istream& is);

  /// False when the file preamble could not be validated.
  [[nodiscard]] bool header_ok() const { return !header_error_.has_value(); }
  /// Link configuration from the header; valid only when header_ok().
  [[nodiscard]] const LinkConfig& link() const { return link_; }

  /// Next packet or per-record error; std::nullopt at end of input.
  [[nodiscard]] std::optional<Expected<CsiPacket, IngestError>> next();

  /// Running byte/record accounting (final once next() returned nullopt).
  [[nodiscard]] const IngestReport& report() const { return report_; }

 private:
  std::size_t ensure(std::size_t need);
  [[nodiscard]] std::uint64_t offset() const { return base_ + pos_; }
  void advance_accept(std::size_t n);
  void advance_skip(std::size_t n);
  void resync();
  [[nodiscard]] bool plausible_record_here() const;
  [[nodiscard]] IngestError make_error(IngestErrorKind kind,
                                       std::uint64_t at, std::string detail);
  [[nodiscard]] std::size_t record_size() const;

  std::istream& is_;
  LinkConfig link_;
  std::optional<IngestError> header_error_;
  bool header_error_reported_ = false;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::uint64_t base_ = 0;
  bool eof_ = false;
  std::size_t errors_seen_ = 0;
  IngestReport report_;
};

/// Reads a trace file written by write_trace, strictly: any ingest error
/// (bad preamble, truncated/corrupt records) throws ParseError. Use
/// TraceReader for fail-soft ingestion of untrusted captures.
[[nodiscard]] Trace read_trace(const std::string& path);
[[nodiscard]] Trace read_trace(std::istream& is);

}  // namespace spotfi
