// Smoothed CSI construction (Fig. 4) — SpotFi's key mathematical trick.
//
// The 90 CSI values of one packet (3 antennas x 30 subcarriers) are a
// single snapshot: a rank-one measurement that MUSIC cannot use directly.
// Shifted copies of a fixed sensor subarray (15 subcarriers x 2 antennas)
// see the same steering vectors scaled by path-dependent factors, so
// stacking them as columns yields a measurement matrix whose column count
// exceeds the number of paths while the steering matrix stays skinny —
// exactly the conditions MUSIC needs (Sec. 3.1.2).
//
// Row ordering matches Eq. 7 / Fig. 4: antenna-major, i.e. rows
// [a*sub_len + s] carry the phase factor Phi^a * Omega^s; this is what
// lets the joint steering vector factor as ant(theta) (x) sub(tau), which
// music/ exploits for fast spectrum evaluation.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

struct SmoothingConfig {
  /// Subcarriers per subarray (15 for the paper's 30-subcarrier config).
  std::size_t sub_len = 15;
  /// Antennas per subarray (2 for the paper's 3-antenna config).
  std::size_t ant_len = 2;
};

/// Number of rows of the smoothed matrix: sub_len * ant_len.
[[nodiscard]] std::size_t smoothed_rows(const SmoothingConfig& cfg);

/// Number of columns: all shifts, (N - sub_len + 1) * (M - ant_len + 1).
/// For the paper's 30x3 CSI and the 15x2 subarray this is 16*2 = 32 (the
/// paper's Fig. 4 caption rounds this to 30; the construction is the one
/// depicted).
[[nodiscard]] std::size_t smoothed_cols(std::size_t n_antennas,
                                        std::size_t n_subcarriers,
                                        const SmoothingConfig& cfg);

/// Builds the smoothed CSI matrix from one packet's antennas x subcarriers
/// CSI. Column (da, ds) holds the subarray starting at antenna da,
/// subcarrier ds; columns are ordered antenna-shift-major to match Fig. 4.
[[nodiscard]] CMatrix smoothed_csi(const CMatrix& csi,
                                   const SmoothingConfig& cfg = {});

/// Arena variant: the smoothed matrix is checked out of `ws` and lives
/// until the caller's enclosing frame closes. Identical layout/values.
[[nodiscard]] CMatrixView smoothed_csi(ConstCMatrixView csi, Workspace& ws,
                                       const SmoothingConfig& cfg = {});

/// Smoothing for the classic antenna-only MUSIC baseline (Sec. 3.1.1):
/// each column of the CSI (one subcarrier) is a snapshot of the M-antenna
/// array; forward spatial smoothing over antenna subarrays of length
/// `ant_len` multiplies the snapshot count and decorrelates coherent
/// multipath. Returns an ant_len x (M - ant_len + 1)*N matrix.
[[nodiscard]] CMatrix spatially_smoothed_snapshots(const CMatrix& csi,
                                                   std::size_t ant_len);

}  // namespace spotfi
