#include "csi/phase.hpp"

#include <cmath>

#include "common/angles.hpp"

namespace spotfi {

RMatrix csi_phase(const CMatrix& csi) {
  RMatrix phase(csi.rows(), csi.cols());
  for (std::size_t i = 0; i < csi.rows(); ++i)
    for (std::size_t j = 0; j < csi.cols(); ++j)
      phase(i, j) = std::arg(csi(i, j));
  return phase;
}

void unwrap_in_place(std::span<double> phase) {
  for (std::size_t i = 1; i < phase.size(); ++i) {
    const double jump = phase[i] - phase[i - 1];
    phase[i] = phase[i - 1] + wrap_pi(jump);
  }
}

RMatrix unwrapped_phase(const CMatrix& csi) {
  RMatrix phase = csi_phase(csi);
  for (std::size_t m = 0; m < phase.rows(); ++m) {
    unwrap_in_place(phase.row(m));
  }
  return phase;
}

RMatrixView unwrapped_phase(ConstCMatrixView csi, Workspace& ws) {
  const RMatrixView phase =
      workspace_matrix<double>(ws, csi.rows(), csi.cols());
  for (std::size_t i = 0; i < csi.rows(); ++i) {
    for (std::size_t j = 0; j < csi.cols(); ++j) {
      phase(i, j) = std::arg(csi(i, j));
    }
  }
  for (std::size_t m = 0; m < phase.rows(); ++m) {
    unwrap_in_place(phase.row(m));
  }
  return phase;
}

}  // namespace spotfi
