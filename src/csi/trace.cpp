#include "csi/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

namespace spotfi {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'F', 'I'};
constexpr std::uint16_t kVersion = 1;
constexpr std::int8_t kRssiAbsent = 0x7f;

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw ParseError("trace: truncated input");
  return value;
}

std::int8_t quantize_component(double v, double scale) {
  const double q = std::round(v * scale);
  return static_cast<std::int8_t>(std::clamp(q, -128.0, 127.0));
}

std::int8_t encode_rssi(double rssi_dbm) {
  return static_cast<std::int8_t>(
      std::clamp(std::round(rssi_dbm), -126.0, 126.0));
}

}  // namespace

void write_trace(std::ostream& os, const LinkConfig& link,
                 std::span<const CsiPacket> packets) {
  SPOTFI_EXPECTS(link.n_antennas <= 255 && link.n_subcarriers <= 255,
                 "trace format supports at most 255 antennas/subcarriers");
  os.write(kMagic, sizeof(kMagic));
  put(os, kVersion);
  put(os, link.carrier_hz);
  put(os, link.subcarrier_spacing_hz);
  put(os, link.antenna_spacing_m);
  put(os, static_cast<std::uint8_t>(link.n_antennas));
  put(os, static_cast<std::uint8_t>(link.n_subcarriers));

  for (const auto& packet : packets) {
    SPOTFI_EXPECTS(packet.csi.rows() == link.n_antennas &&
                       packet.csi.cols() == link.n_subcarriers,
                   "packet CSI shape disagrees with the link config");
    put(os, static_cast<std::uint64_t>(
                std::llround(packet.timestamp_s * 1e9)));
    put(os, static_cast<std::uint8_t>(link.n_antennas));  // n_rx
    put(os, static_cast<std::uint8_t>(1));                // n_tx
    // Per-antenna RSSI slots a/b/c as in the csitool record; we report the
    // packet RSSI on slot a and mark unused slots absent.
    put(os, encode_rssi(packet.rssi_dbm));
    put(os, kRssiAbsent);
    put(os, kRssiAbsent);
    put(os, static_cast<std::int8_t>(-92));  // noise floor estimate
    put(os, static_cast<std::uint8_t>(40));  // nominal AGC

    double max_comp = 0.0;
    for (const auto& v : packet.csi.flat()) {
      max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
    }
    const float scale =
        max_comp > 0.0 ? static_cast<float>(114.0 / max_comp) : 1.0f;
    put(os, scale);
    for (const auto& v : packet.csi.flat()) {
      put(os, quantize_component(v.real(), scale));
      put(os, quantize_component(v.imag(), scale));
    }
  }
  if (!os) throw ParseError("trace: write failure");
}

void write_trace(const std::string& path, const LinkConfig& link,
                 std::span<const CsiPacket> packets) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ParseError("trace: cannot open for writing: " + path);
  write_trace(os, link, packets);
}

Trace read_trace(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("trace: bad magic");
  }
  const auto version = get<std::uint16_t>(is);
  if (version != kVersion) {
    throw ParseError("trace: unsupported version " + std::to_string(version));
  }

  Trace trace;
  trace.link.carrier_hz = get<double>(is);
  trace.link.subcarrier_spacing_hz = get<double>(is);
  trace.link.antenna_spacing_m = get<double>(is);
  trace.link.n_antennas = get<std::uint8_t>(is);
  trace.link.n_subcarriers = get<std::uint8_t>(is);
  if (trace.link.n_antennas == 0 || trace.link.n_subcarriers == 0 ||
      trace.link.carrier_hz <= 0.0 || trace.link.subcarrier_spacing_hz <= 0.0) {
    throw ParseError("trace: invalid link configuration header");
  }

  while (true) {
    std::uint64_t timestamp_ns = 0;
    is.read(reinterpret_cast<char*>(&timestamp_ns), sizeof(timestamp_ns));
    if (is.eof()) break;
    if (!is) throw ParseError("trace: truncated record header");

    CsiPacket packet;
    packet.timestamp_s = static_cast<double>(timestamp_ns) * 1e-9;
    const auto n_rx = get<std::uint8_t>(is);
    const auto n_tx = get<std::uint8_t>(is);
    if (n_rx != trace.link.n_antennas || n_tx != 1) {
      throw ParseError("trace: record shape disagrees with header");
    }
    const auto rssi_a = get<std::int8_t>(is);
    (void)get<std::int8_t>(is);  // rssi_b
    (void)get<std::int8_t>(is);  // rssi_c
    (void)get<std::int8_t>(is);  // noise
    (void)get<std::uint8_t>(is); // agc
    packet.rssi_dbm = static_cast<double>(rssi_a);

    const auto scale = get<float>(is);
    if (!(scale > 0.0f) || !std::isfinite(scale)) {
      throw ParseError("trace: invalid record scale");
    }
    packet.csi = CMatrix(trace.link.n_antennas, trace.link.n_subcarriers);
    for (auto& v : packet.csi.flat()) {
      const auto re = get<std::int8_t>(is);
      const auto im = get<std::int8_t>(is);
      v = cplx(static_cast<double>(re) / scale,
               static_cast<double>(im) / scale);
    }
    trace.packets.push_back(std::move(packet));
  }
  return trace;
}

Trace read_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("trace: cannot open for reading: " + path);
  return read_trace(is);
}

}  // namespace spotfi
