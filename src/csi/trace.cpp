#include "csi/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>

namespace spotfi {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'F', 'I'};
constexpr std::uint16_t kVersion = 1;
constexpr std::int8_t kRssiAbsent = 0x7f;
/// magic + version + 3 doubles + n_antennas + n_subcarriers.
constexpr std::size_t kFileHeaderSize = 4 + 2 + 3 * 8 + 1 + 1;
/// Fixed per-record prefix: u64 timestamp, shape/rssi/noise/agc bytes,
/// f32 scale. The CSI payload (2 * M * N bytes) follows.
constexpr std::size_t kRecordPrefixSize = 8 + 7 + 4;
constexpr std::size_t kReadChunk = 16 * 1024;

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get_le(const std::uint8_t* p) {
  T v{};
  std::memcpy(&v, p, sizeof(T));
  return v;  // host is little-endian on all supported targets
}

std::int8_t quantize_component(double v, double scale) {
  const double q = std::round(v * scale);
  return static_cast<std::int8_t>(std::clamp(q, -128.0, 127.0));
}

std::int8_t encode_rssi(double rssi_dbm) {
  return static_cast<std::int8_t>(
      std::clamp(std::round(rssi_dbm), -126.0, 126.0));
}

}  // namespace

void write_trace(std::ostream& os, const LinkConfig& link,
                 std::span<const CsiPacket> packets) {
  SPOTFI_EXPECTS(link.n_antennas <= 255 && link.n_subcarriers <= 255,
                 "trace format supports at most 255 antennas/subcarriers");
  os.write(kMagic, sizeof(kMagic));
  put(os, kVersion);
  put(os, link.carrier_hz);
  put(os, link.subcarrier_spacing_hz);
  put(os, link.antenna_spacing_m);
  put(os, static_cast<std::uint8_t>(link.n_antennas));
  put(os, static_cast<std::uint8_t>(link.n_subcarriers));

  for (const auto& packet : packets) {
    SPOTFI_EXPECTS(packet.csi.rows() == link.n_antennas &&
                       packet.csi.cols() == link.n_subcarriers,
                   "packet CSI shape disagrees with the link config");
    // Never emit a trace our own reader would flag: enforce the same
    // record semantics TraceReader validates.
    SPOTFI_EXPECTS(std::isfinite(packet.timestamp_s),
                   "trace writer: non-finite timestamp");
    SPOTFI_EXPECTS(std::isfinite(packet.rssi_dbm),
                   "trace writer: non-finite RSSI");
    double max_comp = 0.0;
    for (const auto& v : packet.csi.flat()) {
      SPOTFI_EXPECTS(std::isfinite(v.real()) && std::isfinite(v.imag()),
                     "trace writer: non-finite CSI entry");
      max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
    }
    SPOTFI_EXPECTS(max_comp > 0.0, "trace writer: CSI is all zero");

    put(os, static_cast<std::uint64_t>(
                std::llround(packet.timestamp_s * 1e9)));
    put(os, static_cast<std::uint8_t>(link.n_antennas));  // n_rx
    put(os, static_cast<std::uint8_t>(1));                // n_tx
    // Per-antenna RSSI slots a/b/c as in the csitool record; we report the
    // packet RSSI on slot a and mark unused slots absent.
    put(os, encode_rssi(packet.rssi_dbm));
    put(os, kRssiAbsent);
    put(os, kRssiAbsent);
    put(os, static_cast<std::int8_t>(-92));  // noise floor estimate
    put(os, static_cast<std::uint8_t>(40));  // nominal AGC

    const float scale = static_cast<float>(114.0 / max_comp);
    put(os, scale);
    for (const auto& v : packet.csi.flat()) {
      put(os, quantize_component(v.real(), scale));
      put(os, quantize_component(v.imag(), scale));
    }
  }
  if (!os) throw ParseError("trace: write failure");
}

void write_trace(const std::string& path, const LinkConfig& link,
                 std::span<const CsiPacket> packets) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ParseError("trace: cannot open for writing: " + path);
  write_trace(os, link, packets);
}

TraceReader::TraceReader(std::istream& is) : is_(is) {
  const auto bad_header = [this](std::string detail) {
    header_error_ = IngestError{IngestErrorKind::kBadFileHeader, 0,
                                std::move(detail)};
  };
  const std::size_t avail = ensure(kFileHeaderSize);
  if (avail < kFileHeaderSize) {
    bad_header("file shorter than the " + std::to_string(kFileHeaderSize) +
               "-byte header");
    return;
  }
  const std::uint8_t* p = buf_.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    bad_header("bad magic");
    return;
  }
  const auto version = get_le<std::uint16_t>(p + 4);
  if (version != kVersion) {
    bad_header("unsupported version " + std::to_string(version));
    return;
  }
  link_.carrier_hz = get_le<double>(p + 6);
  link_.subcarrier_spacing_hz = get_le<double>(p + 14);
  link_.antenna_spacing_m = get_le<double>(p + 22);
  link_.n_antennas = p[30];
  link_.n_subcarriers = p[31];
  if (link_.n_antennas == 0 || link_.n_subcarriers == 0 ||
      !std::isfinite(link_.carrier_hz) || link_.carrier_hz <= 0.0 ||
      !std::isfinite(link_.subcarrier_spacing_hz) ||
      link_.subcarrier_spacing_hz <= 0.0 ||
      !std::isfinite(link_.antenna_spacing_m) ||
      link_.antenna_spacing_m <= 0.0) {
    bad_header("invalid link configuration header");
    return;
  }
  advance_accept(kFileHeaderSize);
}

std::size_t TraceReader::record_size() const {
  return kRecordPrefixSize + 2 * link_.n_antennas * link_.n_subcarriers;
}

std::size_t TraceReader::ensure(std::size_t need) {
  if (pos_ >= kReadChunk) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    base_ += pos_;
    pos_ = 0;
  }
  while (!eof_ && buf_.size() - pos_ < need) {
    const std::size_t old = buf_.size();
    buf_.resize(old + kReadChunk);
    is_.read(reinterpret_cast<char*>(buf_.data() + old),
             static_cast<std::streamsize>(kReadChunk));
    const auto got = static_cast<std::size_t>(is_.gcount());
    buf_.resize(old + got);
    if (got < kReadChunk) eof_ = true;
  }
  return buf_.size() - pos_;
}

void TraceReader::advance_accept(std::size_t n) {
  pos_ += n;
  report_.bytes_accepted += n;
}

void TraceReader::advance_skip(std::size_t n) {
  pos_ += n;
  report_.bytes_skipped += n;
}

IngestError TraceReader::make_error(IngestErrorKind kind, std::uint64_t at,
                                    std::string detail) {
  ++report_.dropped[static_cast<std::size_t>(kind)];
  ++errors_seen_;
  return IngestError{kind, at, std::move(detail)};
}

bool TraceReader::plausible_record_here() const {
  const std::uint8_t* p = buf_.data() + pos_;
  if (p[8] != link_.n_antennas || p[9] != 1) return false;
  const auto scale = get_le<float>(p + 15);
  return std::isfinite(scale) && scale > 0.0f;
}

void TraceReader::resync() {
  ++report_.resyncs;
  advance_skip(1);
  while (true) {
    const std::size_t avail = ensure(kRecordPrefixSize);
    if (avail < kRecordPrefixSize) {
      advance_skip(avail);
      return;
    }
    if (plausible_record_here()) return;
    advance_skip(1);
  }
}

std::optional<Expected<CsiPacket, IngestError>> TraceReader::next() {
  if (header_error_) {
    if (header_error_reported_) return std::nullopt;
    header_error_reported_ = true;
    // With the record pitch unknown there is nothing to resynchronize
    // to; drain the input so the report still accounts for every byte.
    while (true) {
      const std::size_t avail = ensure(kReadChunk);
      if (avail == 0) break;
      advance_skip(avail);
    }
    ++report_.dropped[static_cast<std::size_t>(header_error_->kind)];
    ++errors_seen_;
    return Expected<CsiPacket, IngestError>(*header_error_);
  }

  const std::size_t need = record_size();
  const std::size_t avail = ensure(need);
  if (avail == 0) return std::nullopt;
  if (avail < need) {
    auto err = make_error(
        IngestErrorKind::kTrailingGarbage, offset(),
        "record of " + std::to_string(need) +
            " bytes extends past end of input (truncated capture or "
            "trailing garbage)");
    advance_skip(avail);
    return Expected<CsiPacket, IngestError>(std::move(err));
  }

  const std::uint8_t* p = buf_.data() + pos_;
  const auto n_rx = p[8];
  const auto n_tx = p[9];
  if (n_rx != link_.n_antennas || n_tx != 1) {
    auto err = make_error(
        IngestErrorKind::kPayloadMismatch, offset(),
        "record shape Nrx=" + std::to_string(n_rx) +
            " Ntx=" + std::to_string(n_tx) +
            " disagrees with the file header");
    resync();
    return Expected<CsiPacket, IngestError>(std::move(err));
  }

  // Shape fields agree with the header, so framing is intact (records
  // have a fixed pitch); remaining defects drop exactly this record.
  const auto rssi_a = static_cast<std::int8_t>(p[10]);
  const auto scale = get_le<float>(p + 15);
  if (!std::isfinite(scale) || !(scale > 0.0f)) {
    auto err = make_error(IngestErrorKind::kNonFiniteValue, offset(),
                          "record scale is not a positive finite value");
    advance_skip(need);
    return Expected<CsiPacket, IngestError>(std::move(err));
  }
  if (rssi_a == kRssiAbsent) {
    auto err = make_error(IngestErrorKind::kRssiAbsent, offset(),
                          "record reports no packet RSSI");
    advance_skip(need);
    return Expected<CsiPacket, IngestError>(std::move(err));
  }

  CsiPacket packet;
  packet.timestamp_s =
      static_cast<double>(get_le<std::uint64_t>(p)) * 1e-9;
  packet.rssi_dbm = static_cast<double>(rssi_a);
  packet.csi = CMatrix(link_.n_antennas, link_.n_subcarriers);
  const std::uint8_t* q = p + kRecordPrefixSize;
  bool any_nonzero = false;
  for (auto& v : packet.csi.flat()) {
    const auto re = static_cast<std::int8_t>(*q++);
    const auto im = static_cast<std::int8_t>(*q++);
    any_nonzero = any_nonzero || re != 0 || im != 0;
    v = cplx(static_cast<double>(re) / scale,
             static_cast<double>(im) / scale);
  }
  if (!any_nonzero) {
    auto err = make_error(IngestErrorKind::kZeroCsi, offset(),
                          "record CSI is all zero");
    advance_skip(need);
    return Expected<CsiPacket, IngestError>(std::move(err));
  }

  advance_accept(need);
  ++report_.records_accepted;
  if (errors_seen_ > 0) ++report_.records_recovered;
  return Expected<CsiPacket, IngestError>(std::move(packet));
}

Trace read_trace(std::istream& is) {
  TraceReader reader(is);
  Trace trace;
  while (auto item = reader.next()) {
    if (!*item) throw ParseError("trace: " + item->error().to_string());
    trace.packets.push_back(std::move(item->value()));
  }
  trace.link = reader.link();
  return trace;
}

Trace read_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ParseError("trace: cannot open for reading: " + path);
  return read_trace(is);
}

}  // namespace spotfi
