#include "csi/sanitize.hpp"

#include <cmath>

#include "csi/phase.hpp"

namespace spotfi {
namespace {

/// Closed-form least squares for
///   min_{rho,beta} sum_{m,n} (psi(m,n) + g_n * rho + beta)^2,
/// where g_n = 2*pi*f_delta*(n-1) is common to every antenna. Shared by
/// both sanitize_tof flavours so the fit is bit-identical.
SanitizeFit fit_sto(ConstRMatrixView psi, double two_pi_fd) {
  const std::size_t m_ant = psi.rows();
  const std::size_t n_sub = psi.cols();
  double s_g = 0.0, s_gg = 0.0, s_psi = 0.0, s_gpsi = 0.0;
  for (std::size_t n = 0; n < n_sub; ++n) {
    const double g = two_pi_fd * static_cast<double>(n);
    s_g += static_cast<double>(m_ant) * g;
    s_gg += static_cast<double>(m_ant) * g * g;
    for (std::size_t m = 0; m < m_ant; ++m) {
      s_psi += psi(m, n);
      s_gpsi += g * psi(m, n);
    }
  }
  const double total = static_cast<double>(m_ant * n_sub);
  const double denom = total * s_gg - s_g * s_g;
  SPOTFI_ASSERT(denom > 0.0, "degenerate subcarrier grid");
  SanitizeFit fit;
  fit.fitted_sto_s = (s_g * s_psi - total * s_gpsi) / denom;
  fit.fitted_offset_rad = -(s_psi + fit.fitted_sto_s * s_g) / total;
  return fit;
}

/// Step 2 of Algorithm 1: psi_hat(m,n) = psi(m,n) + g_n * rho_hat, which
/// on the complex CSI is a per-subcarrier unit rotation.
void remove_sto(CMatrixView csi, double two_pi_fd, double rho) {
  for (std::size_t n = 0; n < csi.cols(); ++n) {
    const cplx rot = std::polar(1.0, two_pi_fd * static_cast<double>(n) * rho);
    for (std::size_t m = 0; m < csi.rows(); ++m) csi(m, n) *= rot;
  }
}

}  // namespace

SanitizeResult sanitize_tof(const CMatrix& csi, const LinkConfig& link) {
  SPOTFI_EXPECTS(csi.rows() >= 1 && csi.cols() >= 2,
                 "sanitize_tof needs >= 1 antenna and >= 2 subcarriers");
  const double two_pi_fd = 2.0 * kPi * link.subcarrier_spacing_hz;
  const RMatrix psi = unwrapped_phase(csi);
  const SanitizeFit fit = fit_sto(psi, two_pi_fd);

  SanitizeResult result;
  result.fitted_sto_s = fit.fitted_sto_s;
  result.fitted_offset_rad = fit.fitted_offset_rad;
  result.csi = csi;
  remove_sto(result.csi.view(), two_pi_fd, fit.fitted_sto_s);
  return result;
}

CMatrixView sanitize_tof(ConstCMatrixView csi, const LinkConfig& link,
                         Workspace& ws, SanitizeFit* fit_out) {
  SPOTFI_EXPECTS(csi.rows() >= 1 && csi.cols() >= 2,
                 "sanitize_tof needs >= 1 antenna and >= 2 subcarriers");
  const double two_pi_fd = 2.0 * kPi * link.subcarrier_spacing_hz;
  // The result outlives the scratch frame holding the phase matrix.
  const CMatrixView out = workspace_clone<cplx>(ws, csi);
  SanitizeFit fit;
  {
    Workspace::Frame scratch(ws);
    fit = fit_sto(unwrapped_phase(csi, ws), two_pi_fd);
  }
  remove_sto(out, two_pi_fd, fit.fitted_sto_s);
  if (fit_out != nullptr) *fit_out = fit;
  return out;
}

}  // namespace spotfi
