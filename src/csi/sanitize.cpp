#include "csi/sanitize.hpp"

#include <cmath>

#include "csi/phase.hpp"

namespace spotfi {

SanitizeResult sanitize_tof(const CMatrix& csi, const LinkConfig& link) {
  SPOTFI_EXPECTS(csi.rows() >= 1 && csi.cols() >= 2,
                 "sanitize_tof needs >= 1 antenna and >= 2 subcarriers");
  const std::size_t m_ant = csi.rows();
  const std::size_t n_sub = csi.cols();
  const RMatrix psi = unwrapped_phase(csi);

  // Closed-form least squares for
  //   min_{rho,beta} sum_{m,n} (psi(m,n) + g_n * rho + beta)^2,
  // where g_n = 2*pi*f_delta*(n-1) is common to every antenna.
  const double two_pi_fd = 2.0 * kPi * link.subcarrier_spacing_hz;
  double s_g = 0.0, s_gg = 0.0, s_psi = 0.0, s_gpsi = 0.0;
  for (std::size_t n = 0; n < n_sub; ++n) {
    const double g = two_pi_fd * static_cast<double>(n);
    s_g += static_cast<double>(m_ant) * g;
    s_gg += static_cast<double>(m_ant) * g * g;
    for (std::size_t m = 0; m < m_ant; ++m) {
      s_psi += psi(m, n);
      s_gpsi += g * psi(m, n);
    }
  }
  const double total = static_cast<double>(m_ant * n_sub);
  const double denom = total * s_gg - s_g * s_g;
  SPOTFI_ASSERT(denom > 0.0, "degenerate subcarrier grid");
  const double rho = (s_g * s_psi - total * s_gpsi) / denom;
  const double beta = -(s_psi + rho * s_g) / total;

  SanitizeResult result;
  result.fitted_sto_s = rho;
  result.fitted_offset_rad = beta;
  result.csi = csi;
  // Step 2 of Algorithm 1: psi_hat(m,n) = psi(m,n) + g_n * rho_hat, which
  // on the complex CSI is a per-subcarrier unit rotation.
  for (std::size_t n = 0; n < n_sub; ++n) {
    const cplx rot =
        std::polar(1.0, two_pi_fd * static_cast<double>(n) * rho);
    for (std::size_t m = 0; m < m_ant; ++m) result.csi(m, n) *= rot;
  }
  return result;
}

}  // namespace spotfi
