#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spotfi {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  SPOTFI_EXPECTS(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::population_variance() const {
  SPOTFI_EXPECTS(n_ > 0, "variance of empty sample");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  SPOTFI_EXPECTS(n_ > 1, "sample variance needs at least two points");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::min() const {
  SPOTFI_EXPECTS(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  SPOTFI_EXPECTS(n_ > 0, "max of empty sample");
  return max_;
}

double percentile(std::span<const double> sample, double p) {
  SPOTFI_EXPECTS(!sample.empty(), "percentile of empty sample");
  SPOTFI_EXPECTS(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> sample) {
  return percentile(sample, 50.0);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> sample) {
  SPOTFI_EXPECTS(!sample.empty(), "CDF of empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return cdf;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> sample,
                                    std::size_t n_points) {
  SPOTFI_EXPECTS(n_points >= 2, "downsampled CDF needs >= 2 points");
  std::vector<CdfPoint> cdf;
  cdf.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double p =
        100.0 * static_cast<double>(i) / static_cast<double>(n_points - 1);
    cdf.push_back({percentile(sample, p), p / 100.0});
  }
  return cdf;
}

}  // namespace spotfi
