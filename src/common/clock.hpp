// Monotonic deadline clock for the session layer's overload machinery.
//
// The streaming pipeline keeps all of its *round-firing* logic in stream
// time (packet timestamps) so replays are deterministic — see
// core/streaming.hpp. Service deadlines are different: "this round must
// finish within 250 ms" is a statement about wall-clock compute budget,
// not about when the packets were captured. The session layer therefore
// measures round cost and deadline slack against a Clock, injected so
// tests can fake time: a FakeClock advanced by hand makes deadline
// sheds, cost-model updates, and latency accounting fully deterministic,
// while production uses the steady-clock-backed MonotonicClock.
#pragma once

#include <atomic>

namespace spotfi {

/// Monotonic time source. Implementations must be safe to read from any
/// thread; now_s() never decreases.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary (per-process) epoch.
  [[nodiscard]] virtual double now_s() const = 0;
};

/// std::chrono::steady_clock behind the Clock interface — the production
/// time source for deadlines and round-cost measurement.
class MonotonicClock final : public Clock {
 public:
  [[nodiscard]] double now_s() const override;
};

/// Hand-advanced clock for tests: time moves only when the test says so,
/// which turns "the round overran its deadline" into a deterministic
/// scenario instead of a machine-speed-dependent one. advance()/set()
/// and now_s() may be called from different threads.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start_s = 0.0) : now_s_(start_s) {}

  [[nodiscard]] double now_s() const override {
    return now_s_.load(std::memory_order_acquire);
  }

  /// Moves time forward by dt_s (>= 0; a fake clock is still monotonic).
  void advance(double dt_s);

  /// Jumps to t_s. Must not move time backwards.
  void set(double t_s);

 private:
  std::atomic<double> now_s_;
};

}  // namespace spotfi
