// Monotonic deadline clock for the session layer's overload machinery.
//
// The streaming pipeline keeps all of its *round-firing* logic in stream
// time (packet timestamps) so replays are deterministic — see
// core/streaming.hpp. Service deadlines are different: "this round must
// finish within 250 ms" is a statement about wall-clock compute budget,
// not about when the packets were captured. The session layer therefore
// measures round cost and deadline slack against a Clock, injected so
// tests can fake time: a FakeClock advanced by hand makes deadline
// sheds, cost-model updates, and latency accounting fully deterministic,
// while production uses the steady-clock-backed MonotonicClock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace spotfi {

/// Monotonic time source. Implementations must be safe to read from any
/// thread; now_s() never decreases.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary (per-process) epoch.
  [[nodiscard]] virtual double now_s() const = 0;
};

/// std::chrono::steady_clock behind the Clock interface — the production
/// time source for deadlines and round-cost measurement.
class MonotonicClock final : public Clock {
 public:
  [[nodiscard]] double now_s() const override;
};

/// Hand-advanced clock for tests: time moves only when the test says so,
/// which turns "the round overran its deadline" into a deterministic
/// scenario instead of a machine-speed-dependent one.
///
/// Threading: now_s() may be read from any thread concurrently with one
/// writer thread calling advance()/advance_to()/set(). The scheduling
/// helpers (schedule(), and the callbacks they register) belong to that
/// single writer thread — they exist so a test can say "at t=3.2 the
/// producer disconnects" and have it happen mid-advance, at exactly that
/// timestamp, with the clock reading 3.2 inside the callback.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start_s = 0.0) : now_s_(start_s) {}

  /// Current time. With set_auto_advance(step) active, each read returns
  /// the current time and then steps the clock forward — a drop-in stand
  /// in for "every clock sample costs `step` seconds" timing tests.
  /// Auto-advance steps never fire scheduled callbacks.
  [[nodiscard]] double now_s() const override;

  /// Moves time forward by dt_s (>= 0; a fake clock is still monotonic),
  /// firing any callbacks scheduled inside the traversed span in time
  /// order.
  void advance(double dt_s);

  /// Jumps forward to t_s (equivalent to set(), reads better in tests
  /// that think in absolute timelines), firing scheduled callbacks due
  /// at or before t_s in time order, with the clock set to each
  /// callback's own timestamp while it runs.
  void advance_to(double t_s);

  /// Jumps to t_s. Must not move time backwards. Fires due callbacks
  /// like advance_to().
  void set(double t_s);

  /// Registers fn to run when time reaches at_s via advance()/
  /// advance_to()/set(). A callback may schedule further callbacks
  /// (including within the span currently being traversed). Callbacks
  /// scheduled at or before the current time fire on the next advance.
  /// Ties fire in registration order.
  void schedule(double at_s, std::function<void()> fn);

  /// Makes every now_s() read step time forward by step_s after
  /// returning (0 disables). Models a caller whose clock samples
  /// themselves take time — deadline tests use it to make "the round
  /// measurably overran" a deterministic fact.
  void set_auto_advance(double step_s);

 private:
  struct Scheduled {
    double at_s = 0.0;
    std::uint64_t order = 0;  ///< registration tie-break
    std::function<void()> fn;
  };

  /// Raises the clock to t_s if that moves it forward (CAS instead of a
  /// plain store so it composes with concurrent auto-advance readers).
  void raise_to(double t_s);
  /// Walks time to target_s, firing due callbacks at their timestamps.
  void move_to(double target_s);

  /// mutable: auto-advance steps time from within const now_s().
  mutable std::atomic<double> now_s_;
  std::atomic<double> auto_step_{0.0};
  mutable std::mutex sched_mutex_;  ///< guards scheduled_/next_order_
  std::vector<Scheduled> scheduled_;
  std::uint64_t next_order_ = 0;
};

}  // namespace spotfi
