// Angle helpers. SpotFi measures AoA with respect to the normal of the
// antenna array, in [-90, +90] degrees; geometry code works in radians.
#pragma once

#include "common/constants.hpp"

namespace spotfi {

[[nodiscard]] constexpr double deg_to_rad(double deg) {
  return deg * kPi / 180.0;
}

[[nodiscard]] constexpr double rad_to_deg(double rad) {
  return rad * 180.0 / kPi;
}

/// Wraps an angle to (-pi, pi].
[[nodiscard]] double wrap_pi(double rad);

/// Wraps an angle to [0, 2*pi).
[[nodiscard]] double wrap_two_pi(double rad);

/// Smallest absolute difference between two angles [rad], in [0, pi].
[[nodiscard]] double angular_distance(double a_rad, double b_rad);

}  // namespace spotfi
