#include "common/workspace.hpp"

#include <algorithm>

namespace spotfi {
namespace {

constexpr std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

void* Workspace::take_bytes(std::size_t bytes) {
  bytes = align_up(bytes, kAlign);

  void* p = nullptr;
  // Fast path: the active block has room past its (aligned) cursor.
  if (!blocks_.empty()) {
    Block& b = blocks_[active_];
    const std::size_t off = align_up(b.used, kAlign);
    if (off + bytes <= b.capacity) {
      p = b.data.get() + off;
      used_total_ += (off - b.used) + bytes;
      b.used = off + bytes;
    } else if (active_ + 1 < blocks_.size() &&
               blocks_[active_ + 1].capacity >= bytes) {
      // Spill: a later block left over from a rewind is big enough.
      ++active_;
      Block& nb = blocks_[active_];
      p = nb.data.get();
      used_total_ += bytes;
      nb.used = bytes;
    } else {
      // Anything past the active block is too small and holds no live
      // data — drop it so the block list cannot accumulate unusable
      // stubs across growth cycles.
      blocks_.resize(active_ + 1);
    }
  }

  if (p == nullptr) {
    // Grow: double the footprint (at least the default block, at least
    // the request). Existing blocks — and every outstanding checkout in
    // them — stay where they are; reset() coalesces later.
    std::size_t capacity = kDefaultBlockBytes;
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    capacity = std::max(capacity, total);
    capacity = std::max(capacity, bytes);
    capacity = align_up(capacity, kAlign);

    Block nb;
    nb.data = std::make_unique<std::byte[]>(capacity);
    nb.capacity = capacity;
    nb.used = bytes;
    ++block_allocations_;
    blocks_.push_back(std::move(nb));
    active_ = blocks_.size() - 1;
    used_total_ += bytes;
    p = blocks_.back().data.get();
  }

  high_water_ = std::max(high_water_, used_total_);
  if (top_frame_ != nullptr) {
    top_frame_->peak_ =
        std::max(top_frame_->peak_, used_total_ - top_frame_->baseline_);
  }
  ++checkouts_;
  return p;
}

void Workspace::rewind(std::pair<std::size_t, std::size_t> mark,
                       std::size_t baseline) {
  SPOTFI_ASSERT(mark.first <= active_, "workspace rewind out of order");
  if (!blocks_.empty()) {
    for (std::size_t b = mark.first + 1; b <= active_; ++b) {
      blocks_[b].used = 0;
    }
    active_ = mark.first;
    blocks_[active_].used = mark.second;
  }
  used_total_ = baseline;
}

void Workspace::reset() {
  SPOTFI_EXPECTS(top_frame_ == nullptr,
                 "workspace reset with an open frame — checkouts would "
                 "dangle");
  if (blocks_.size() > 1) {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    blocks_.clear();
    Block nb;
    nb.data = std::make_unique<std::byte[]>(total);
    nb.capacity = total;
    ++block_allocations_;
    blocks_.push_back(std::move(nb));
  } else if (!blocks_.empty()) {
    blocks_[0].used = 0;
  }
  active_ = 0;
  used_total_ = 0;
  ++resets_;
}

WorkspaceStats Workspace::stats() const {
  WorkspaceStats s;
  for (const Block& b : blocks_) s.capacity_bytes += b.capacity;
  s.used_bytes = used_total_;
  s.high_water_bytes = high_water_;
  s.checkouts = checkouts_;
  s.block_allocations = block_allocations_;
  s.resets = resets_;
  return s;
}

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace spotfi
