// Deterministic random number generation.
//
// The channel simulator, clustering initialization, and the experiment
// harness all draw randomness from an explicitly seeded generator owned by
// the caller, never from global state, so every bench and test is
// reproducible bit-for-bit across runs (std:: distributions are avoided
// because their output is implementation-defined).
#pragma once

#include <array>
#include <cstdint>

namespace spotfi {

/// Complete generator state, exportable for durability snapshots. A
/// restored generator reproduces the exact draw sequence the original
/// would have produced, including the cached second Box-Muller normal.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  bool have_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256++ with SplitMix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derives an independent stream; useful to give each AP / each packet
  /// its own generator without correlation.
  [[nodiscard]] Rng fork();

  /// Snapshot/restore of the full generator state (durability).
  [[nodiscard]] RngState state() const;
  void restore(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace spotfi
