#include "common/clock.hpp"

#include <chrono>

#include "common/error.hpp"

namespace spotfi {

double MonotonicClock::now_s() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

void FakeClock::advance(double dt_s) {
  SPOTFI_EXPECTS(dt_s >= 0.0, "FakeClock::advance: time must move forward");
  // CAS loop instead of fetch_add: atomic<double>::fetch_add needs
  // hardware support some targets lack, and this path is never hot.
  double cur = now_s_.load(std::memory_order_relaxed);
  while (!now_s_.compare_exchange_weak(cur, cur + dt_s,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
}

void FakeClock::set(double t_s) {
  double cur = now_s_.load(std::memory_order_relaxed);
  for (;;) {
    SPOTFI_EXPECTS(t_s >= cur, "FakeClock::set: time must move forward");
    if (now_s_.compare_exchange_weak(cur, t_s, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace spotfi
