#include "common/clock.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace spotfi {

double MonotonicClock::now_s() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

double FakeClock::now_s() const {
  const double step = auto_step_.load(std::memory_order_relaxed);
  if (step <= 0.0) return now_s_.load(std::memory_order_acquire);
  // Post-increment read: return the time this sample observed, then
  // charge the sample's cost. CAS loop for the same reason as raise_to.
  double cur = now_s_.load(std::memory_order_relaxed);
  while (!now_s_.compare_exchange_weak(cur, cur + step,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
  return cur;
}

void FakeClock::set_auto_advance(double step_s) {
  SPOTFI_EXPECTS(step_s >= 0.0,
                 "FakeClock::set_auto_advance: step must be >= 0");
  auto_step_.store(step_s, std::memory_order_relaxed);
}

void FakeClock::raise_to(double t_s) {
  // CAS loop instead of a store: concurrent auto-advance readers may be
  // bumping the clock too, and time must never go backwards. (Also,
  // atomic<double>::fetch_add needs hardware support some targets lack.)
  double cur = now_s_.load(std::memory_order_relaxed);
  while (cur < t_s && !now_s_.compare_exchange_weak(
                          cur, t_s, std::memory_order_acq_rel,
                          std::memory_order_relaxed)) {
  }
}

void FakeClock::schedule(double at_s, std::function<void()> fn) {
  SPOTFI_EXPECTS(static_cast<bool>(fn),
                 "FakeClock::schedule: callback must be callable");
  const std::lock_guard<std::mutex> lock(sched_mutex_);
  scheduled_.push_back(Scheduled{at_s, next_order_++, std::move(fn)});
}

void FakeClock::move_to(double target_s) {
  // Fire every callback due by target_s, earliest first (ties by
  // registration order), stepping the clock to each callback's own
  // timestamp so the callback observes now_s() == its at_s. Re-scan
  // after every callback: it may have scheduled more work inside the
  // span being traversed.
  for (;;) {
    std::function<void()> fn;
    double fire_at = 0.0;
    {
      const std::lock_guard<std::mutex> lock(sched_mutex_);
      const auto end = scheduled_.end();
      auto it = end;
      for (auto cand = scheduled_.begin(); cand != end; ++cand) {
        if (cand->at_s > target_s) continue;
        if (it == end || cand->at_s < it->at_s ||
            (cand->at_s == it->at_s && cand->order < it->order)) {
          it = cand;
        }
      }
      if (it == end) break;
      fire_at = it->at_s;
      fn = std::move(it->fn);
      scheduled_.erase(it);
    }
    raise_to(fire_at);  // no-op for callbacks scheduled in the past
    fn();
  }
  raise_to(target_s);
}

void FakeClock::advance(double dt_s) {
  SPOTFI_EXPECTS(dt_s >= 0.0, "FakeClock::advance: time must move forward");
  move_to(now_s_.load(std::memory_order_relaxed) + dt_s);
}

void FakeClock::advance_to(double t_s) { set(t_s); }

void FakeClock::set(double t_s) {
  SPOTFI_EXPECTS(t_s >= now_s_.load(std::memory_order_relaxed),
                 "FakeClock::set: time must move forward");
  move_to(t_s);
}

}  // namespace spotfi
