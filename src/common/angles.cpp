#include "common/angles.hpp"

#include <cmath>

namespace spotfi {

double wrap_pi(double rad) {
  double w = std::fmod(rad + kPi, 2.0 * kPi);
  if (w <= 0.0) w += 2.0 * kPi;
  return w - kPi;
}

double wrap_two_pi(double rad) {
  double w = std::fmod(rad, 2.0 * kPi);
  if (w < 0.0) w += 2.0 * kPi;
  return w;
}

double angular_distance(double a_rad, double b_rad) {
  return std::abs(wrap_pi(a_rad - b_rad));
}

}  // namespace spotfi
