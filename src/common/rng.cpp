#include "common/rng.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace spotfi {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SPOTFI_EXPECTS(lo <= hi, "uniform range must satisfy lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SPOTFI_EXPECTS(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double a = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(a);
  have_cached_normal_ = true;
  return r * std::cos(a);
}

double Rng::normal(double mean, double stddev) {
  SPOTFI_EXPECTS(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

Rng Rng::fork() {
  // Seed the child from two draws so sibling forks differ.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31));
}

RngState Rng::state() const {
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.have_cached_normal = have_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::restore(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace spotfi
