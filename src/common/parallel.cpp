#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace spotfi {
namespace {

/// Set while a thread is executing pool tasks. A nested parallel_for on
/// such a thread runs inline: the outer fan-out already owns the
/// concurrency, and blocking a worker on sub-tasks other workers may
/// never pick up is how pool deadlocks are made.
thread_local bool t_on_worker = false;

/// Which pool the calling thread is a worker of (null off-pool), and its
/// 1-based lane there. ThreadPool::workspace() keys arena selection on
/// the *owning* pool, never the slot alone: a worker of pool A running a
/// nested-inline task that targets pool B must not borrow one of B's
/// arenas — B's own worker in the same slot may be using it.
thread_local const void* t_owner_pool = nullptr;
thread_local std::size_t t_worker_slot = 0;

}  // namespace

/// One parallel_for invocation. Lives on the calling thread's stack; the
/// queue holds non-owning pointers, and the batch is removed from the
/// queue by whichever participant first draws an out-of-range index.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  /// Next index to claim (lock-free fast path).
  std::atomic<std::size_t> next{0};
  /// Indices finished; guarded by the pool mutex.
  std::size_t completed = 0;
  /// Workers currently inside run_batch for this batch; guarded by the
  /// pool mutex. The caller's wait requires this to reach zero: a worker
  /// holds a raw pointer to the stack-allocated batch from the moment it
  /// reads the queue front, so the batch must outlive every registered
  /// participant, not just every index.
  std::size_t workers_inside = 0;
  /// First failure by *index* order (not completion order), so the
  /// rethrown exception is deterministic. Guarded by the pool mutex.
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;
  std::condition_variable done_cv;
};

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  /// One scratch arena per worker lane, index-aligned with `workers`.
  /// Created before the threads spawn and never resized after, so
  /// workspace() reads the vector without a lock.
  std::vector<std::unique_ptr<Workspace>> arenas;
  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<Batch*> queue;
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t n_threads) : impl_(new Impl) {
  if (n_threads == 0) n_threads = resolve_threads(0);
  const std::size_t n_workers = n_threads > 0 ? n_threads - 1 : 0;
  impl_->workers.reserve(n_workers);
  impl_->arenas.reserve(n_workers);
  for (std::size_t i = 1; i < n_threads; ++i) {
    impl_->arenas.push_back(std::make_unique<Workspace>());
    impl_->workers.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown();
  delete impl_;
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  // Workers drain out: one parked in wait() wakes and exits; one inside
  // run_batch finishes its current batch first (the dispatching caller
  // picks up whatever indices it leaves unclaimed). Idempotent because
  // the joined threads are dropped — a second call joins nothing.
  for (auto& w : impl_->workers) w.join();
  impl_->workers.clear();
}

std::size_t ThreadPool::size() const { return impl_->workers.size() + 1; }

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (const char* env = std::getenv("SPOTFI_THREADS")) {
    // Strict parse: plain non-negative base-10 digits, bounded. strtoull
    // alone is too forgiving — it accepts "-1" (wrapping to 2^64-1),
    // leading whitespace, and "3x" prefixes, all of which are operator
    // typos that must fail loudly rather than configure something.
    const std::string value(env);
    const bool all_digits =
        !value.empty() && value.find_first_not_of("0123456789") ==
                              std::string::npos;
    if (!all_digits) {
      throw ContractViolation(
          "SPOTFI_THREADS must be a plain non-negative integer, got \"" +
          value + "\"");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || v > kMaxEnvThreads) {
      throw ContractViolation("SPOTFI_THREADS=" + value + " is out of range (max " +
                              std::to_string(kMaxEnvThreads) + ")");
    }
    requested = static_cast<std::size_t>(v);
  }
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : hw;
  }
  return requested;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

Workspace& ThreadPool::workspace() const {
  if (t_owner_pool == impl_ && t_worker_slot > 0) {
    return *impl_->arenas[t_worker_slot - 1];
  }
  return thread_workspace();
}

std::vector<WorkspaceStats> ThreadPool::worker_workspace_stats() const {
  std::vector<WorkspaceStats> stats;
  stats.reserve(impl_->arenas.size());
  // Stats reads race benignly with worker-side checkouts only if called
  // mid-batch; callers sample between rounds, when workers are parked.
  for (const auto& a : impl_->arenas) stats.push_back(a->stats());
  return stats;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial pool, single task, or a nested call from a worker: run inline.
  // This is the byte-identical serial path — no synchronization, no
  // worker handoff, exceptions propagate directly from the first failure.
  if (impl_->workers.empty() || n == 1 || t_on_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(&batch);
  }
  impl_->work_cv.notify_all();

  // The caller works its own batch; workers that were idle join in.
  run_batch(batch);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    batch.done_cv.wait(lock, [&] {
      return batch.completed == batch.n && batch.workers_inside == 0;
    });
  }
  if (batch.err) std::rethrow_exception(batch.err);
}

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) {
      // Batch exhausted: the first over-drawing participant unlinks it so
      // idle workers stop seeing it.
      const std::lock_guard<std::mutex> lock(impl_->mutex);
      const auto it =
          std::find(impl_->queue.begin(), impl_->queue.end(), &batch);
      if (it != impl_->queue.end()) impl_->queue.erase(it);
      return;
    }
    std::exception_ptr err;
    try {
      (*batch.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (err && i < batch.err_index) {
      batch.err = err;
      batch.err_index = i;
    }
    if (++batch.completed == batch.n) batch.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  t_on_worker = true;
  t_owner_pool = impl_;
  t_worker_slot = slot;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->work_cv.wait(
          lock, [&] { return impl_->stop || !impl_->queue.empty(); });
      if (impl_->stop) return;
      batch = impl_->queue.front();
      // Register before dropping the lock: once counted, the caller's
      // completion wait cannot return (and destroy the batch) until this
      // worker deregisters below.
      ++batch->workers_inside;
    }
    run_batch(*batch);
    {
      const std::lock_guard<std::mutex> lock(impl_->mutex);
      if (--batch->workers_inside == 0 && batch->completed == batch->n) {
        batch->done_cv.notify_all();
      }
    }
  }
}

}  // namespace spotfi
