// Concurrency substrate for the localization pipeline.
//
// A fixed-size thread pool with index-based fan-out: parallel_for(n, fn)
// invokes fn(0..n-1) across the workers plus the calling thread, and
// parallel_map collects per-index results in index order. The design
// goals, in priority order:
//
//  1. Determinism — callers slot results by index, never by completion
//     order, so a pipeline run with 1 thread and with N threads produces
//     byte-identical output (the per-task Rng streams are forked by the
//     caller before dispatch; see SpotFiServer::localize).
//  2. Exception transparency — a task that throws is captured and the
//     exception of the *lowest failing index* is rethrown on the calling
//     thread after the batch drains, matching the serial loop's "first
//     failure wins" surface.
//  3. Nested-submit safety — a parallel_for issued from inside a worker
//     (per-packet fan-out inside a per-AP task) runs inline on that
//     worker, so the pool can never deadlock on its own tasks and the
//     outermost fan-out keeps the coarsest (most efficient) granularity.
//
// Thread-count resolution is shared with every knob that configures the
// pipeline: 0 means hardware concurrency, 1 means strictly serial (no
// worker threads are ever created, calls run inline on the caller), and
// the SPOTFI_THREADS environment variable overrides the configured value
// wholesale — the ops-friendly way to flip a deployed binary between
// serial and parallel without a rebuild.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/workspace.hpp"

namespace spotfi {

class ThreadPool {
 public:
  /// Creates a pool of exactly `n_threads` lanes of concurrency (the
  /// calling thread participates, so `n_threads - 1` workers are
  /// spawned). 0 is resolved to hardware concurrency; 1 creates no
  /// workers and makes every parallel_for a plain serial loop. The
  /// constructor applies no environment override — resolve the user's
  /// request with resolve_threads() first when SPOTFI_THREADS should
  /// apply.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops and joins the worker threads. Idempotent; the destructor
  /// calls it. After shutdown the pool is still usable: size() is 1 and
  /// every parallel_for runs as the plain inline serial loop, so
  /// submit-after-shutdown is well-defined (correct, just serial)
  /// rather than UB.
  ///
  /// Shutdown concurrent with an in-flight parallel_for is safe: a
  /// worker that observes the stop flag exits without claiming further
  /// indices, and the dispatching caller — which always participates in
  /// its own batch — finishes the remaining indices inline. The batch
  /// completes, its exceptions propagate as usual, and no index is ever
  /// lost or run twice. What shutdown does NOT do is interrupt a task
  /// already running: a task that blocks forever blocks shutdown
  /// forever (tasks are not cancellable).
  void shutdown();

  /// Total lanes of concurrency, including the calling thread (>= 1).
  [[nodiscard]] std::size_t size() const;

  /// Invokes fn(i) for every i in [0, n). Blocks until every index has
  /// run. The calling thread participates. Exceptions are captured per
  /// index; after the batch completes, the exception thrown by the
  /// lowest failing index is rethrown here (remaining indices still
  /// run). Reentrant calls from worker threads run inline.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into a vector in index order.
  /// The result type must be default-constructible and movable.
  template <typename Fn>
  [[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Resolves a configured thread count to an actual one: SPOTFI_THREADS
  /// (when set) replaces `requested`, then 0 maps to
  /// std::thread::hardware_concurrency() (minimum 1).
  ///
  /// SPOTFI_THREADS is parsed strictly: it must be a plain base-10
  /// non-negative integer no larger than kMaxEnvThreads. Anything else —
  /// empty, signs, whitespace, trailing junk, or an overflowing value —
  /// throws ContractViolation naming the offending value, instead of
  /// being silently ignored or wrapped: an operator who typo'd the knob
  /// should find out at startup, not after a day of serial throughput.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

  /// Upper bound accepted from SPOTFI_THREADS. Far above any plausible
  /// machine; a value past it is a typo, not a request.
  static constexpr std::size_t kMaxEnvThreads = 4096;

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Used for the nested-submit inline fallback and tests.
  [[nodiscard]] static bool on_worker_thread();

  /// The calling thread's scratch arena for work dispatched through this
  /// pool. A worker of *this* pool gets the arena of its lane (owned by
  /// the pool, created at construction); any other thread — the caller
  /// participating in its own batch, a serial pipeline, or a worker of a
  /// different pool running a nested-inline task — gets its process-wide
  /// thread_workspace(). Either way the arena is exclusive to the
  /// calling thread, so checkouts need no synchronization.
  [[nodiscard]] Workspace& workspace() const;

  /// Scratch-arena accounting summed across this pool's worker lanes
  /// (the caller's thread_workspace() is not included). Telemetry only.
  [[nodiscard]] std::vector<WorkspaceStats> worker_workspace_stats() const;

 private:
  struct Batch;
  struct Impl;

  void worker_loop(std::size_t slot);
  void run_batch(Batch& batch);

  Impl* impl_;
};

}  // namespace spotfi
