// Bounded lock-free single-producer/single-consumer queue.
//
// The session layer's ingest path: one capture point (producer) pushes
// CSI packets at line rate, one pump thread (consumer) drains them into
// the estimation pipeline. The queue is the backpressure boundary —
// capacity is fixed at construction, try_push fails instead of blocking
// or growing, and the producer turns that failure into an explicit
// Shed verdict (core/overload.hpp). Nothing in here waits: a full queue
// costs the producer one failed CAS-free check, never a stall, which is
// what keeps "no round blocks past its deadline waiting for admission"
// true by construction.
//
// Contract: exactly one producer thread (try_push) and one consumer
// thread (try_pop) at a time. size()/high_water() may be read from any
// thread and are approximate while both sides are moving. The classic
// ring with one wasted slot: head == tail means empty, head == next(tail)
// means full.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace spotfi {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : capacity_(capacity), slots_(capacity + 1) {
    SPOTFI_EXPECTS(capacity >= 1, "SpscQueue capacity must be positive");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (value untouched beyond the move attempt) when the
  /// queue is full. Wait-free.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = next_index(tail);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (next == head) return false;  // full — shed at the boundary
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    // Producer-only high-water bookkeeping: depth as this push observed
    // it. Monotone, so a stale read by a telemetry thread only lags.
    const std::size_t depth = ring_distance(head, next);
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    return true;
  }

  /// Consumer side. Pops the oldest element, or nullopt when empty.
  /// Wait-free. The vacated slot is reset to T{} so popped payloads do
  /// not linger in the ring (bounded memory means bounded *live* memory).
  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> out(std::move(slots_[head]));
    slots_[head] = T{};
    head_.store(next_index(head), std::memory_order_release);
    return out;
  }

  /// Elements currently queued. Exact when the queue is quiescent,
  /// approximate (never negative, never above capacity) mid-flight.
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return ring_distance(head, tail);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Deepest occupancy ever observed by the producer. The bounded-memory
  /// telemetry: by construction this can never exceed capacity().
  [[nodiscard]] std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::size_t next_index(std::size_t i) const {
    return i + 1 == slots_.size() ? 0 : i + 1;
  }
  [[nodiscard]] std::size_t ring_distance(std::size_t head,
                                          std::size_t tail) const {
    return tail >= head ? tail - head : slots_.size() - head + tail;
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  /// Producer and consumer cursors on separate cache lines so the two
  /// sides never false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> high_water_{0};
};

}  // namespace spotfi
