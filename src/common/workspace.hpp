// Per-thread scratch arenas for the estimation hot path.
//
// Every stage of the per-packet pipeline (smoothing -> covariance ->
// eigendecomposition -> pseudo-spectrum -> peaks) needs short-lived
// buffers whose sizes are fixed by the link configuration, not the data.
// Heap-allocating them per packet bounds throughput by the allocator, so
// kernels instead check scratch out of a Workspace: a bump-pointer arena
// that reuses one contiguous block packet after packet.
//
// Discipline (see DESIGN.md §11):
//  * One arena per thread, never shared: workers use their ThreadPool
//    lane's arena, everyone else the process-wide thread_workspace().
//    No synchronization exists or is needed.
//  * All checkouts are frame-scoped: a Workspace::Frame rewinds the
//    arena to its checkpoint when it leaves scope, so a kernel can take
//    whatever it needs and the caller's view of the arena is unchanged.
//    Frames nest (stage inside packet inside group) and must be
//    destroyed in LIFO order.
//  * Checkouts are zero-filled, matching the value-initialized Matrix
//    storage they replace — view-kernel results stay byte-identical to
//    the value APIs by construction.
//  * The arena grows by appending blocks mid-frame (existing checkouts
//    stay valid) and coalesces into one contiguous block at the next
//    quiescent reset(), so a warmed arena serves every subsequent packet
//    without touching the heap. High-water marks ride back through
//    ApOutcome telemetry so capacity regressions are visible in
//    production, not just in benchmarks.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace spotfi {

/// Point-in-time accounting for one arena.
struct WorkspaceStats {
  /// Total bytes owned across all blocks.
  std::size_t capacity_bytes = 0;
  /// Bytes currently checked out (including alignment padding).
  std::size_t used_bytes = 0;
  /// Maximum of used_bytes over the arena's lifetime.
  std::size_t high_water_bytes = 0;
  /// take() calls served (zero-sized takes excluded).
  std::size_t checkouts = 0;
  /// Heap allocations performed (block growth + coalescing). Flat after
  /// warm-up; a steady climb means frames are leaking checkouts.
  std::size_t block_allocations = 0;
  /// reset() calls.
  std::size_t resets = 0;
};

/// Bump-pointer scratch arena. Single-threaded by contract; obtain one
/// via ThreadPool::workspace() or thread_workspace() rather than sharing
/// an instance across threads.
class Workspace {
 public:
  /// Alignment of every checkout (covers cplx and SIMD-friendly loads).
  static constexpr std::size_t kAlign = 16;
  /// First-block size: sized so one default-grid MUSIC packet (pseudo-
  /// spectrum + steering projections + eigensolver scratch, ~1 MiB)
  /// warms up in at most a couple of growth steps.
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

  Workspace() = default;
  ~Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII checkpoint: rewinds the arena to the construction-time cursor
  /// on destruction (unless commit()ed), releasing every checkout made
  /// inside the frame at once. Frames must be destroyed in LIFO order.
  class Frame {
   public:
    explicit Frame(Workspace& ws)
        : ws_(ws),
          parent_(ws.top_frame_),
          mark_(ws.mark()),
          baseline_(ws.used_total_) {
      ws_.top_frame_ = this;
    }

    ~Frame() {
      SPOTFI_ASSERT(ws_.top_frame_ == this, "workspace frames must nest");
      ws_.top_frame_ = parent_;
      if (parent_ != nullptr) {
        // Fold this frame's peak into the enclosing frame: what the
        // parent had checked out when this frame opened, plus this
        // frame's own peak.
        const std::size_t from_parent = baseline_ - parent_->baseline_;
        if (from_parent + peak_ > parent_->peak_) {
          parent_->peak_ = from_parent + peak_;
        }
      }
      if (armed_) ws_.rewind(mark_, baseline_);
    }

    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// Keeps the frame's checkouts alive past destruction: ownership of
    /// the bytes passes to the enclosing frame (or to the arena itself,
    /// to be released by reset()).
    void commit() { armed_ = false; }

    /// Peak bytes checked out inside this frame so far (scratch of
    /// nested frames included). Per-packet footprint telemetry.
    [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

   private:
    friend class Workspace;

    Workspace& ws_;
    Frame* parent_;
    std::pair<std::size_t, std::size_t> mark_;  ///< (block index, offset)
    std::size_t baseline_;                      ///< used_total_ at open
    std::size_t peak_ = 0;
    bool armed_ = true;
  };

  /// Checks out a zero-filled span of n elements. T must be trivially
  /// destructible (nothing runs at rewind) and zero-initializable by
  /// memset (true for arithmetic types, std::complex, and plain structs
  /// of them). The span stays valid until the enclosing frame closes or
  /// the arena is reset, even if the arena grows in between.
  template <typename T>
  [[nodiscard]] std::span<T> take(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "workspace memory is rewound, never destroyed");
    static_assert(std::is_trivially_copyable_v<T>,
                  "workspace checkouts are raw memory");
    static_assert(alignof(T) <= kAlign, "over-aligned type in workspace");
    if (n == 0) return {};
    void* p = take_bytes(n * sizeof(T));
    std::memset(p, 0, n * sizeof(T));
    return {static_cast<T*>(p), n};
  }

  /// Releases every checkout. Requires no open frames. When growth left
  /// the arena fragmented across blocks, coalesces into one contiguous
  /// block of the combined capacity so the steady state bump-allocates
  /// from a single block and never touches the heap again.
  void reset();

  [[nodiscard]] WorkspaceStats stats() const;

  /// True while any frame is open (checkouts outstanding).
  [[nodiscard]] bool in_frame() const { return top_frame_ != nullptr; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* take_bytes(std::size_t bytes);
  [[nodiscard]] std::pair<std::size_t, std::size_t> mark() const {
    return {active_, blocks_.empty() ? 0 : blocks_[active_].used};
  }
  void rewind(std::pair<std::size_t, std::size_t> mark, std::size_t baseline);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< block currently bump-allocating
  std::size_t used_total_ = 0;
  std::size_t high_water_ = 0;
  std::size_t checkouts_ = 0;
  std::size_t block_allocations_ = 0;
  std::size_t resets_ = 0;
  Frame* top_frame_ = nullptr;
};

/// The calling thread's process-wide scratch arena, created on first
/// use. Serial pipelines and pool *callers* draw scratch from here;
/// pool workers use the arena of their lane (ThreadPool::workspace()),
/// which delegates to this function off-pool.
[[nodiscard]] Workspace& thread_workspace();

}  // namespace spotfi
