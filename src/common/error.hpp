// Contract checking and error types shared across the SpotFi library.
//
// Public-API entry points validate their inputs with SPOTFI_EXPECTS, which
// throws spotfi::ContractViolation (a std::logic_error) so misuse is caught
// early and loudly; internal hot paths use SPOTFI_ASSERT, compiled out in
// release builds.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace spotfi {

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Thrown when an input trace/file cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown when a numerical routine fails to converge.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Minimal expected-style result (std::expected is C++23; we target
/// C++20). Holds either a value or an error describing why the operation
/// degraded/failed — used by the streaming pipeline to keep fault handling
/// on the hot path exception-free.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & { return std::get<0>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<0>(data_); }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(data_)); }
  [[nodiscard]] E& error() & { return std::get<1>(data_); }
  [[nodiscard]] const E& error() const& { return std::get<1>(data_); }

  [[nodiscard]] T* operator->() { return &std::get<0>(data_); }
  [[nodiscard]] const T* operator->() const { return &std::get<0>(data_); }
  [[nodiscard]] T& operator*() { return std::get<0>(data_); }
  [[nodiscard]] const T& operator*() const { return std::get<0>(data_); }

 private:
  std::variant<T, E> data_;
};

namespace detail {
[[noreturn]] void throw_contract_violation(const char* expr, const char* file,
                                           int line, const char* msg);
}  // namespace detail

}  // namespace spotfi

/// Precondition check for public API boundaries; always active.
#define SPOTFI_EXPECTS(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spotfi::detail::throw_contract_violation(#cond, __FILE__,       \
                                                 __LINE__, (msg));      \
    }                                                                   \
  } while (false)

/// Internal invariant check; active unless NDEBUG.
#ifdef NDEBUG
#define SPOTFI_ASSERT(cond, msg) ((void)0)
#else
#define SPOTFI_ASSERT(cond, msg) SPOTFI_EXPECTS(cond, msg)
#endif
