// Contract checking and error types shared across the SpotFi library.
//
// Public-API entry points validate their inputs with SPOTFI_EXPECTS, which
// throws spotfi::ContractViolation (a std::logic_error) so misuse is caught
// early and loudly; internal hot paths use SPOTFI_ASSERT, compiled out in
// release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace spotfi {

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Thrown when an input trace/file cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown when a numerical routine fails to converge.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_contract_violation(const char* expr, const char* file,
                                           int line, const char* msg);
}  // namespace detail

}  // namespace spotfi

/// Precondition check for public API boundaries; always active.
#define SPOTFI_EXPECTS(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spotfi::detail::throw_contract_violation(#cond, __FILE__,       \
                                                 __LINE__, (msg));      \
    }                                                                   \
  } while (false)

/// Internal invariant check; active unless NDEBUG.
#ifdef NDEBUG
#define SPOTFI_ASSERT(cond, msg) ((void)0)
#else
#define SPOTFI_ASSERT(cond, msg) SPOTFI_EXPECTS(cond, msg)
#endif
