// Contract checking and error types shared across the SpotFi library.
//
// Public-API entry points validate their inputs with SPOTFI_EXPECTS, which
// throws spotfi::ContractViolation (a std::logic_error) so misuse is caught
// early and loudly; internal hot paths use SPOTFI_ASSERT, compiled out in
// release builds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace spotfi {

/// Thrown when a documented precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Thrown when an input trace/file cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown when a numerical routine fails to converge.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown when signal detection finds no frame in a capture. This is an
/// expected physical outcome (the channel was quiet or the preamble was
/// buried in noise), not a numerical failure — callers that retry or skip
/// on a missed detection should catch this instead of NumericalError.
class DetectionError : public std::runtime_error {
 public:
  explicit DetectionError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Minimal expected-style result (std::expected is C++23; we target
/// C++20). Holds either a value or an error describing why the operation
/// degraded/failed — used by the streaming pipeline to keep fault handling
/// on the hot path exception-free.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & { return std::get<0>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<0>(data_); }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(data_)); }
  [[nodiscard]] E& error() & { return std::get<1>(data_); }
  [[nodiscard]] const E& error() const& { return std::get<1>(data_); }

  [[nodiscard]] T* operator->() { return &std::get<0>(data_); }
  [[nodiscard]] const T* operator->() const { return &std::get<0>(data_); }
  [[nodiscard]] T& operator*() { return std::get<0>(data_); }
  [[nodiscard]] const T& operator*() const { return std::get<0>(data_); }

 private:
  std::variant<T, E> data_;
};

// ---------------------------------------------------------------------------
// Ingestion trust boundary: structured errors for the untrusted-bytes ->
// validated-records parsers (csi/intel5300, csi/trace). The streaming
// readers never throw on malformed input; they return
// Expected<Record, IngestError> per record and account for every input
// byte in an IngestReport, so a flipped bit in a multi-hour capture costs
// one record, not the whole log.

/// Why one record (or a stretch of bytes) was rejected at ingestion.
enum class IngestErrorKind : std::uint8_t {
  kTruncatedHeader,  ///< frame/record header cut short by end of input
  kBadFrameLength,   ///< length field zero or beyond any plausible frame
  kPayloadMismatch,  ///< header fields inconsistent with the payload/body
  kNonFiniteValue,   ///< NaN/Inf scale, CSI, or RSSI where finite required
  kZeroCsi,          ///< all-zero CSI matrix (unusable for estimation)
  kRssiAbsent,       ///< no RSSI slot populated (power cannot be recovered)
  kTrailingGarbage,  ///< bytes at end of input forming no complete record
  kBadFileHeader,    ///< file preamble invalid (magic/version/link config)
};

inline constexpr std::size_t kIngestErrorKindCount = 8;

[[nodiscard]] const char* to_string(IngestErrorKind kind);

/// One ingestion failure: what went wrong, and where in the byte stream.
struct IngestError {
  IngestErrorKind kind = IngestErrorKind::kTruncatedHeader;
  /// Byte offset (from the start of the input) where the bad structure
  /// began — the frame/record start, not where the check fired.
  std::uint64_t offset = 0;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Running account of an ingestion pass. Invariant maintained by the
/// readers: bytes_accepted + bytes_skipped == bytes consumed from the
/// input, so corruption can never silently eat data.
struct IngestReport {
  /// Records decoded and validated.
  std::size_t records_accepted = 0;
  /// Subset of records_accepted parsed after at least one resync — i.e.
  /// records that the old throw-on-first-error readers would have lost.
  std::size_t records_recovered = 0;
  /// Well-framed records dropped, bucketed by error kind.
  std::array<std::size_t, kIngestErrorKindCount> dropped{};
  /// Valid frames of a foreign type (csitool code != 0xBB), skipped as in
  /// the reference parser.
  std::size_t frames_foreign = 0;
  /// Times the reader lost framing and scanned for the next boundary.
  std::size_t resyncs = 0;
  /// Bytes consumed as valid structure: file header, accepted records,
  /// foreign frames.
  std::uint64_t bytes_accepted = 0;
  /// Bytes scanned past without yielding a record: dropped frames plus
  /// garbage between frames.
  std::uint64_t bytes_skipped = 0;

  [[nodiscard]] std::size_t records_dropped() const;
  [[nodiscard]] std::size_t dropped_of(IngestErrorKind kind) const {
    return dropped[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t bytes_consumed() const {
    return bytes_accepted + bytes_skipped;
  }
  /// Folds another report in (per-AP readers -> deployment-wide totals).
  void merge(const IngestReport& other);
  /// One-line human-readable digest for logs and examples.
  [[nodiscard]] std::string summary() const;
};

namespace detail {
[[noreturn]] void throw_contract_violation(const char* expr, const char* file,
                                           int line, const char* msg);
}  // namespace detail

}  // namespace spotfi

/// Precondition check for public API boundaries; always active.
#define SPOTFI_EXPECTS(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spotfi::detail::throw_contract_violation(#cond, __FILE__,       \
                                                 __LINE__, (msg));      \
    }                                                                   \
  } while (false)

/// Internal invariant check; active unless NDEBUG.
#ifdef NDEBUG
#define SPOTFI_ASSERT(cond, msg) ((void)0)
#else
#define SPOTFI_ASSERT(cond, msg) SPOTFI_EXPECTS(cond, msg)
#endif
