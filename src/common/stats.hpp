// Summary statistics used by the experiment harness: running mean/variance
// (Welford), percentiles, and the CDF series the paper's figures plot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spotfi {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Population variance (divide by n), as Eq. 8 of the paper uses.
  [[nodiscard]] double population_variance() const;
  /// Sample variance (divide by n-1).
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// `p` in [0, 100]. Requires a non-empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> sample);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Empirical CDF of a sample, evaluated at every order statistic.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> sample);

/// Empirical CDF downsampled to `n_points` evenly spaced probabilities —
/// the series format the figure benches print.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> sample, std::size_t n_points);

}  // namespace spotfi
