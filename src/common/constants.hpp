// Physical constants and the OFDM/antenna-array parameters of the WiFi
// links SpotFi operates on.
//
// The paper's prototype uses Intel 5300 NICs on a 40 MHz channel in the
// 5 GHz band. The 5300 firmware reports CSI for 30 of the data
// subcarriers; for 40 MHz these are (to the accuracy the paper models)
// equispaced with spacing f_delta = 4 x 312.5 kHz = 1.25 MHz. The APs use
// a 3-element uniform linear array with half-wavelength spacing.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace spotfi {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

inline constexpr double kPi = 3.14159265358979323846;

/// Parameters of one WiFi sensing link: the carrier, the reported OFDM
/// subcarrier grid, and the receive antenna array geometry.
///
/// All of SpotFi's signal processing (steering vectors, sanitization,
/// smoothing, MUSIC) is parameterized by this struct so the library is not
/// hard-wired to the Intel 5300; `intel5300_40mhz()` gives the paper's
/// configuration.
struct LinkConfig {
  /// Carrier (center) frequency [Hz].
  double carrier_hz = 5.32e9;
  /// Spacing between consecutive *reported* subcarriers [Hz].
  double subcarrier_spacing_hz = 1.25e6;
  /// Number of reported subcarriers per antenna (N in the paper).
  std::size_t n_subcarriers = 30;
  /// Number of receive antennas in the uniform linear array (M).
  std::size_t n_antennas = 3;
  /// Spacing between adjacent array elements [m]. Half wavelength at
  /// 5.32 GHz is ~2.82 cm.
  double antenna_spacing_m = 0.5 * kSpeedOfLight / 5.32e9;

  /// Wavelength of the carrier [m].
  [[nodiscard]] double wavelength() const { return kSpeedOfLight / carrier_hz; }

  /// Frequency of reported subcarrier `n` (0-based), centered on the
  /// carrier so the grid spans [-span/2, +span/2] around carrier_hz.
  [[nodiscard]] double subcarrier_hz(std::size_t n) const {
    SPOTFI_EXPECTS(n < n_subcarriers, "subcarrier index out of range");
    const double mid = 0.5 * static_cast<double>(n_subcarriers - 1);
    return carrier_hz + (static_cast<double>(n) - mid) * subcarrier_spacing_hz;
  }

  /// Total bandwidth spanned by the reported subcarrier grid [Hz].
  [[nodiscard]] double reported_span_hz() const {
    return static_cast<double>(n_subcarriers - 1) * subcarrier_spacing_hz;
  }

  /// The Intel 5300 configuration used throughout the paper: 5 GHz band,
  /// 40 MHz channel, 30 reported subcarriers, 3-antenna half-wavelength ULA.
  [[nodiscard]] static LinkConfig intel5300_40mhz() { return LinkConfig{}; }

  /// A 20 MHz variant (subcarriers every 2 x 312.5 kHz) useful in tests.
  [[nodiscard]] static LinkConfig intel5300_20mhz() {
    LinkConfig cfg;
    cfg.subcarrier_spacing_hz = 0.625e6;
    return cfg;
  }
};

}  // namespace spotfi
