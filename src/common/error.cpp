#include "common/error.hpp"

#include <sstream>

namespace spotfi {

const char* to_string(IngestErrorKind kind) {
  switch (kind) {
    case IngestErrorKind::kTruncatedHeader: return "truncated-header";
    case IngestErrorKind::kBadFrameLength: return "bad-frame-length";
    case IngestErrorKind::kPayloadMismatch: return "payload-mismatch";
    case IngestErrorKind::kNonFiniteValue: return "non-finite-value";
    case IngestErrorKind::kZeroCsi: return "zero-csi";
    case IngestErrorKind::kRssiAbsent: return "rssi-absent";
    case IngestErrorKind::kTrailingGarbage: return "trailing-garbage";
    case IngestErrorKind::kBadFileHeader: return "bad-file-header";
  }
  return "unknown";
}

std::string IngestError::to_string() const {
  std::ostringstream os;
  os << spotfi::to_string(kind) << " @ byte " << offset;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::size_t IngestReport::records_dropped() const {
  std::size_t total = 0;
  for (const std::size_t n : dropped) total += n;
  return total;
}

void IngestReport::merge(const IngestReport& other) {
  records_accepted += other.records_accepted;
  records_recovered += other.records_recovered;
  for (std::size_t k = 0; k < kIngestErrorKindCount; ++k) {
    dropped[k] += other.dropped[k];
  }
  frames_foreign += other.frames_foreign;
  resyncs += other.resyncs;
  bytes_accepted += other.bytes_accepted;
  bytes_skipped += other.bytes_skipped;
}

std::string IngestReport::summary() const {
  std::ostringstream os;
  os << records_accepted << " accepted (" << records_recovered
     << " recovered), " << records_dropped() << " dropped";
  bool first = true;
  for (std::size_t k = 0; k < kIngestErrorKindCount; ++k) {
    if (dropped[k] == 0) continue;
    os << (first ? " [" : ", ")
       << to_string(static_cast<IngestErrorKind>(k)) << "=" << dropped[k];
    first = false;
  }
  if (!first) os << "]";
  os << ", " << frames_foreign << " foreign, " << resyncs << " resyncs, "
     << bytes_accepted << "+" << bytes_skipped << " bytes";
  return os.str();
}

namespace detail {

void throw_contract_violation(const char* expr, const char* file, int line,
                              const char* msg) {
  std::ostringstream os;
  os << "contract violation: " << msg << " [" << expr << "] at " << file << ':'
     << line;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace spotfi
