#include "common/error.hpp"

#include <sstream>

namespace spotfi::detail {

void throw_contract_violation(const char* expr, const char* file, int line,
                              const char* msg) {
  std::ostringstream os;
  os << "contract violation: " << msg << " [" << expr << "] at " << file << ':'
     << line;
  throw ContractViolation(os.str());
}

}  // namespace spotfi::detail
