#include "channel/multipath.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/constants.hpp"

namespace spotfi {

double ArrayPose::aoa_of(Vec2 source) const {
  const Vec2 d = (source - position).normalized();
  return std::atan2(d.dot(axis_dir()), d.dot(normal_dir()));
}

double ArrayPose::apparent_aoa_of(Vec2 source) const {
  const Vec2 d = (source - position).normalized();
  return std::asin(std::clamp(d.dot(axis_dir()), -1.0, 1.0));
}

namespace {

/// Attenuation phase of a path: carrier phase accumulated over the flight
/// plus any extra interaction phase. Reduced mod 2*pi for conditioning.
double path_phase(double tof_s, double carrier_hz, double extra_rad) {
  return wrap_pi(-2.0 * kPi * carrier_hz * tof_s + extra_rad);
}

void add_path(std::vector<PathComponent>& out, const ArrayPose& pose,
              Vec2 arrival_from, double total_length_m, double gain_db,
              double extra_phase_rad, bool is_direct,
              const MultipathConfig& cfg) {
  PathComponent p;
  p.aoa_rad = pose.aoa_of(arrival_from);
  p.tof_s = total_length_m / kSpeedOfLight;
  p.gain_db = gain_db;
  p.phase_rad = path_phase(p.tof_s, cfg.carrier_hz, extra_phase_rad);
  p.is_direct = is_direct;
  out.push_back(p);
}

double distance_gain_db(double length_m, const MultipathConfig& cfg) {
  const double d = std::max(length_m, 0.3);
  return cfg.reference_gain_db -
         10.0 * cfg.path_loss_exponent * std::log10(d);
}

}  // namespace

std::vector<PathComponent> enumerate_paths(const FloorPlan& plan,
                                           std::span<const Scatterer> scatterers,
                                           const ArrayPose& pose, Vec2 target,
                                           const MultipathConfig& cfg) {
  SPOTFI_EXPECTS(cfg.max_paths > 0, "max_paths must be positive");
  std::vector<PathComponent> paths;

  // --- Direct path ---
  {
    const double len = distance(target, pose.position);
    const double gain = distance_gain_db(len, cfg) -
                        plan.transmission_loss_db(target, pose.position);
    add_path(paths, pose, target, len, gain, 0.0, /*is_direct=*/true, cfg);
  }

  // --- First-order specular reflections off each wall ---
  for (std::size_t w = 0; w < plan.wall_count(); ++w) {
    const Wall& wall = plan.walls()[w];
    const Vec2 image = mirror_across(target, wall.segment);
    // The specular bounce point is where the image->AP ray crosses the wall.
    const Segment image_ray{image, pose.position};
    const auto t = segment_intersection(image_ray, wall.segment, 1e-6);
    if (!t) continue;  // no valid bounce point within the wall extent
    const Vec2 bounce = image_ray.point_at(*t);
    const double len = distance(target, bounce) + distance(bounce, pose.position);
    if (len <= 1e-6) continue;
    // Attenuation: distance loss over the full unfolded length, the bounce
    // loss, and transmission through any *other* walls on both legs.
    double gain = distance_gain_db(len, cfg) - wall.material.reflection_loss_db;
    gain -= plan.transmission_loss_db(target, bounce, w);
    gain -= plan.transmission_loss_db(bounce, pose.position, w);
    // Reflection flips the field: pi phase shift at the bounce.
    add_path(paths, pose, bounce, len, gain, kPi, /*is_direct=*/false, cfg);
  }

  // --- Second-order (double-bounce) wall reflections ---
  if (cfg.second_order_reflections) {
    for (std::size_t wa = 0; wa < plan.wall_count(); ++wa) {
      for (std::size_t wb = 0; wb < plan.wall_count(); ++wb) {
        if (wa == wb) continue;
        const Wall& first = plan.walls()[wa];
        const Wall& second = plan.walls()[wb];
        // Unfold: target mirrored across A, then across B.
        const Vec2 image1 = mirror_across(target, first.segment);
        const Vec2 image2 = mirror_across(image1, second.segment);
        // Bounce on B: where the image2 -> AP ray crosses wall B.
        const Segment ray2{image2, pose.position};
        const auto t2 = segment_intersection(ray2, second.segment, 1e-6);
        if (!t2) continue;
        const Vec2 bounce2 = ray2.point_at(*t2);
        // Bounce on A: where the image1 -> bounce2 ray crosses wall A.
        const Segment ray1{image1, bounce2};
        const auto t1 = segment_intersection(ray1, first.segment, 1e-6);
        if (!t1) continue;
        const Vec2 bounce1 = ray1.point_at(*t1);
        const double len = distance(target, bounce1) +
                           distance(bounce1, bounce2) +
                           distance(bounce2, pose.position);
        if (len <= 1e-6) continue;
        double gain = distance_gain_db(len, cfg) -
                      first.material.reflection_loss_db -
                      second.material.reflection_loss_db;
        gain -= plan.transmission_loss_db(target, bounce1, wa);
        // Middle leg: grazes both reflecting walls at its endpoints.
        gain -= plan.transmission_loss_db(bounce1, bounce2, wa);
        gain -= plan.transmission_loss_db(bounce2, pose.position, wb);
        // Two pi flips, one per bounce.
        add_path(paths, pose, bounce2, len, gain, 2.0 * kPi,
                 /*is_direct=*/false, cfg);
      }
    }
  }

  // --- Single-bounce scatterer paths ---
  for (const auto& sc : scatterers) {
    const double len =
        distance(target, sc.position) + distance(sc.position, pose.position);
    if (len <= 1e-6) continue;
    double gain = distance_gain_db(len, cfg) - sc.scatter_loss_db;
    gain -= plan.transmission_loss_db(target, sc.position);
    gain -= plan.transmission_loss_db(sc.position, pose.position);
    add_path(paths, pose, sc.position, len, gain, 0.5 * kPi,
             /*is_direct=*/false, cfg);
  }

  // Keep the strongest components above the relative floor.
  std::sort(paths.begin(), paths.end(),
            [](const PathComponent& a, const PathComponent& b) {
              return a.gain_db > b.gain_db;
            });
  const double floor_db = paths.front().gain_db - cfg.relative_floor_db;
  std::erase_if(paths, [&](const PathComponent& p) {
    return p.gain_db < floor_db;
  });
  if (paths.size() > cfg.max_paths) paths.resize(cfg.max_paths);
  return paths;
}

}  // namespace spotfi
