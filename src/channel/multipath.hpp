// Multipath enumeration: the geometric ray model that stands in for the
// paper's physical testbed.
//
// For a target transmitting to an AP the model produces the set of
// significant propagation paths — the (possibly obstructed) direct path,
// first-order specular reflections off walls, and single-bounce scatterer
// paths (furniture, metal cabinets, people). Each path carries exactly the
// parameters SpotFi's model in Sec. 3.1 assigns to it: an AoA at the AP
// array, a ToF, and a complex attenuation whose phase is common to all
// subcarriers. Indoor environments typically show 6-8 significant
// reflectors (paper Sec. 3.1); the model keeps the strongest
// `max_paths` components above a relative power floor.
#pragma once

#include <vector>

#include "geom/floorplan.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

/// AP antenna-array placement: position of the first element and the
/// direction of the array broadside (normal). AoA is measured from this
/// normal, positive toward the counter-clockwise array axis, in
/// (-pi/2, pi/2) for sources in front of the array.
struct ArrayPose {
  Vec2 position;
  double normal_rad = 0.0;

  [[nodiscard]] Vec2 normal_dir() const {
    return {std::cos(normal_rad), std::sin(normal_rad)};
  }
  [[nodiscard]] Vec2 axis_dir() const { return normal_dir().perp(); }

  /// AoA of a signal arriving at the array from `source` along a straight
  /// ray, measured w.r.t. the array normal [rad]. Full range (-pi, pi]:
  /// sources behind the array report |aoa| > pi/2.
  [[nodiscard]] double aoa_of(Vec2 source) const;

  /// The AoA a uniform linear array can actually observe: a ULA only
  /// senses sin(aoa), so a source behind the array aliases onto its
  /// front-half mirror image. Always in [-pi/2, pi/2]. This is the value
  /// estimators report and the value localization must predict.
  [[nodiscard]] double apparent_aoa_of(Vec2 source) const;
};

/// One propagation path from target to AP.
struct PathComponent {
  double aoa_rad = 0.0;   ///< angle of arrival at the AP array
  double tof_s = 0.0;     ///< true time of flight (no STO)
  double gain_db = 0.0;   ///< power gain relative to 1 m free space
  double phase_rad = 0.0; ///< subcarrier-independent attenuation phase
  bool is_direct = false;

  [[nodiscard]] cplx complex_gain() const {
    const double amp = std::pow(10.0, gain_db / 20.0);
    return std::polar(amp, phase_rad);
  }
};

/// A point scatterer that relays a single-bounce path with extra loss.
struct Scatterer {
  Vec2 position;
  double scatter_loss_db = 15.0;
};

struct MultipathConfig {
  /// Reference gain at 1 m [dB]; folds in free-space loss at 1 m
  /// (~47 dB at 5.3 GHz) and antenna gains, so RSSI comes out in
  /// realistic dBm when combined with the TX power.
  double reference_gain_db = -47.0;
  /// Free-space-like distance exponent (2.0 = free space).
  double path_loss_exponent = 2.0;
  /// Paths weaker than the strongest by more than this are dropped.
  double relative_floor_db = 35.0;
  /// Keep at most this many strongest paths.
  std::size_t max_paths = 8;
  /// Carrier used for the attenuation phase [Hz].
  double carrier_hz = 5.32e9;
  /// Also enumerate second-order (double-bounce) wall reflections.
  /// Usually below the relative floor indoors, but significant in bare
  /// corridors and metal-rich rooms; off by default.
  bool second_order_reflections = false;
};

/// Enumerates the multipath between `target` and the AP at `pose` within
/// `plan`, strongest first. The direct path (if above the floor) is
/// flagged `is_direct`.
[[nodiscard]] std::vector<PathComponent> enumerate_paths(
    const FloorPlan& plan, std::span<const Scatterer> scatterers,
    const ArrayPose& pose, Vec2 target, const MultipathConfig& config = {});

}  // namespace spotfi
