// CSI synthesis: turns a set of propagation paths into the quantized 3x30
// complex CSI matrix a commodity Intel 5300 NIC would report, packet by
// packet, with the impairments the paper reasons about:
//
//  * STO — sampling time offset between unsynchronized sender/receiver
//    clocks; adds a common delay to all paths (Sec. 3.2).
//  * SFO / packet-detection delay — makes the STO vary packet to packet
//    (Sec. 3.2.1), which is what Algorithm 1 must undo.
//  * Common carrier phase offset per packet (unknown carrier phase).
//  * AWGN set by the link budget (per-path powers vs. a noise floor).
//  * 8-bit I/Q quantization with AGC scaling, as the 5300 reports.
//
// The synthesized entry for antenna m, subcarrier n is
//   csi[m][n] = sum_k gamma_k * Omega(tau_k + sto)^n * Phi(theta_k)^m + noise
// which is exactly the signal model of Eq. 1-7.
#pragma once

#include <vector>

#include "channel/multipath.hpp"
#include "common/constants.hpp"
#include "common/rng.hpp"

namespace spotfi {

/// Per-packet channel-state observation, as exported to the SpotFi server.
struct CsiPacket {
  /// antennas x subcarriers complex channel matrix (Eq. 5 layout).
  CMatrix csi;
  /// Received signal strength [dBm] for this packet.
  double rssi_dbm = 0.0;
  /// Capture timestamp [s] (transmission interval spacing).
  double timestamp_s = 0.0;
};

struct ImpairmentConfig {
  /// Fixed part of the sampling time offset for a link [s].
  double sto_base_s = 50e-9;
  /// Per-packet uniform jitter around the base STO (from SFO drift and
  /// packet-detection delay) [s]; sampled in [-jitter, +jitter].
  double sto_jitter_s = 15e-9;
  /// Apply a random common phase per packet (carrier phase offset).
  bool random_common_phase = true;
  /// Thermal noise floor [dBm] used to derive per-entry SNR.
  double noise_floor_dbm = -92.0;
  /// Transmit power [dBm]; path gains are relative to this.
  double tx_power_dbm = 15.0;
  /// Log-normal shadowing on the reported RSSI [dB].
  double rssi_shadowing_db = 2.0;
  /// Quantize CSI to 8-bit I/Q (Intel 5300 behaviour).
  bool quantize_8bit = true;
  /// Environmental micro-dynamics: reflected and scattered paths bounce
  /// off objects that wobble at mm-cm scale between packets (people,
  /// doors, chairs), which scrambles their phase (cm motion is a sizable
  /// fraction of the 5.6 cm wavelength) and slightly perturbs their
  /// geometry, while the direct path stays stable. This is what makes
  /// indirect-path AoA/ToF estimates vary across packets (paper Fig. 5(c))
  /// and is the signal behind the Eq. 8 likelihood. Applied per packet to
  /// non-direct paths only.
  double indirect_phase_jitter_rad = 1.2;
  double indirect_gain_jitter_db = 1.0;
  double indirect_tof_jitter_s = 1.0e-9;
  double indirect_aoa_jitter_rad = 0.8 * kPi / 180.0;
  /// Residual per-antenna calibration error after the Phaser-style phase
  /// calibration commodity arrays require: a static phase offset and gain
  /// mismatch per RF chain, drawn once per capture (slow drift) in
  /// synthesize_burst.
  double phase_calibration_sigma_rad = 0.07;  ///< ~4 deg residual
  double gain_calibration_sigma_db = 0.5;
  /// Cap the per-entry SNR so quantization remains the accuracy limit
  /// at short range [dB]. Effective CSI SNR on commodity NICs tops out
  /// around 25-30 dB.
  double max_snr_db = 28.0;
};

/// Synthesizes CSI packets for a fixed multipath profile.
class CsiSynthesizer {
 public:
  CsiSynthesizer(LinkConfig link, ImpairmentConfig impairments);

  /// One packet. The STO for the packet is drawn internally; pass the same
  /// `paths` for consecutive packets from a static target.
  [[nodiscard]] CsiPacket synthesize(std::span<const PathComponent> paths,
                                     double timestamp_s, Rng& rng) const;

  /// A burst of `n_packets` packets spaced `interval_s` apart. Draws one
  /// set of per-antenna calibration residuals (static across the burst)
  /// and applies it to every packet.
  [[nodiscard]] std::vector<CsiPacket> synthesize_burst(
      std::span<const PathComponent> paths, std::size_t n_packets,
      double interval_s, Rng& rng) const;

  /// Noise-free, impairment-free CSI for a path set — the ideal Eq. 4
  /// measurement matrix; used by tests and the spectrum explorer.
  [[nodiscard]] CMatrix ideal_csi(std::span<const PathComponent> paths) const;

  [[nodiscard]] const LinkConfig& link() const { return link_; }
  [[nodiscard]] const ImpairmentConfig& impairments() const {
    return impairments_;
  }

  /// Received power [dBm] of the superposed paths under the configured TX
  /// power (before shadowing) — the mean of the reported RSSI.
  [[nodiscard]] double received_power_dbm(
      std::span<const PathComponent> paths) const;

 private:
  LinkConfig link_;
  ImpairmentConfig impairments_;
};

}  // namespace spotfi
