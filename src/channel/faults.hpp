// Fault injection for CSI streams.
//
// Real distributed CSI acquisition is dirty in ways the channel simulator
// alone never shows: receivers crash and come back, capture processes fall
// behind and deliver packets late or out of order, firmware emits frozen
// timestamps, parsing races corrupt records with NaNs, RF chains die, and
// AGC glitches clip whole packets. The software-defined CSI testbeds this
// reproduction targets report exactly these as the dominant operational
// failure modes, so the streaming pipeline must be exercised against them.
//
// FaultInjector sits between a packet source (the synthesizer or a trace)
// and the consumer (StreamingLocalizer), applying a seeded, per-AP fault
// profile to every packet. All randomness flows from the caller's Rng, so
// a fault scenario is exactly reproducible — the same seed produces the
// same outages, the same corrupted entries, the same reorderings.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/rng.hpp"

namespace spotfi {

/// A half-open time window [start_s, end_s) during which a fault is active.
struct FaultWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  [[nodiscard]] bool contains(double t_s) const {
    return t_s >= start_s && t_s < end_s;
  }
};

/// Per-AP fault profile. Defaults are all-clean; enable individual faults
/// per scenario. Probabilities are i.i.d. per packet.
struct ApFaultProfile {
  /// Silent AP death: packets inside any window are swallowed entirely
  /// (the AP "crashed"); delivery resumes after the window (recovery).
  std::vector<FaultWindow> outages;
  /// Random packet loss (congested capture pipe, dropped UDP export).
  double loss_prob = 0.0;
  /// Hold a packet and release it after `reorder_delay` later packets
  /// from the same AP — delivery order no longer matches capture order.
  double reorder_prob = 0.0;
  std::size_t reorder_delay = 1;
  /// Freeze the timestamp: repeat the previously delivered timestamp
  /// (firmware clock stall), making the packet look stale.
  double stale_prob = 0.0;
  /// Corrupt a burst of CSI entries with NaN (parsing race).
  double nan_burst_prob = 0.0;
  std::size_t nan_burst_len = 4;
  /// Zero one random antenna row for this packet (transient AGC glitch).
  double zero_row_prob = 0.0;
  /// Persistently dead RF chain: this antenna row is zeroed on every
  /// packet. Negative = none.
  int dead_chain = -1;
  /// Power-clipped packet: scale the CSI by `clip_gain_db` (saturated
  /// front end); the quality screen's power-jump check should catch it.
  double clip_prob = 0.0;
  double clip_gain_db = 30.0;
};

/// Fault plan for a whole deployment: one profile per AP id. APs beyond
/// the vector are clean.
struct FaultPlan {
  std::vector<ApFaultProfile> aps;
  [[nodiscard]] const ApFaultProfile& profile(std::size_t ap_id) const;
};

/// Counters for every fault actually injected (not just configured).
struct FaultStats {
  std::size_t outage_swallowed = 0;
  std::size_t lost = 0;
  std::size_t reordered = 0;
  std::size_t stale_stamped = 0;
  std::size_t nan_corrupted = 0;
  std::size_t rows_zeroed = 0;
  std::size_t dead_chain_zeroed = 0;
  std::size_t clipped = 0;
  std::size_t delivered = 0;
};

/// Applies a FaultPlan to a packet stream, AP by AP.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::size_t n_aps);

  /// Feeds one captured packet from `ap_id` and returns the packets the
  /// consumer actually receives at this instant: empty when the packet was
  /// swallowed (outage/loss) or held for reordering, more than one when a
  /// held packet is released behind the current one.
  [[nodiscard]] std::vector<CsiPacket> inject(std::size_t ap_id,
                                              const CsiPacket& packet,
                                              Rng& rng);

  /// True when `ap_id` is inside a configured outage window at `t_s`.
  [[nodiscard]] bool in_outage(std::size_t ap_id, double t_s) const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t ap_count() const { return state_.size(); }

 private:
  struct HeldPacket {
    CsiPacket packet;
    std::size_t release_after;  ///< countdown in subsequent packets
  };
  struct ApState {
    std::deque<HeldPacket> held;
    double last_delivered_t_s = 0.0;
    bool any_delivered = false;
  };

  /// In-place corruption faults (NaN burst, zeroed rows, clipping, stale
  /// timestamp). Returns the possibly-corrupted packet.
  [[nodiscard]] CsiPacket corrupt(const ApFaultProfile& profile,
                                  ApState& state, CsiPacket packet, Rng& rng);

  FaultPlan plan_;
  std::vector<ApState> state_;
  FaultStats stats_;
};

// ---------------------------------------------------------------------------
// Byte-level log corruption — the serialized-capture complement of
// FaultInjector's packet-level faults. Where FaultInjector damages decoded
// packets in flight, these routines damage the *bytes* of a csitool .dat
// or SPFI trace file the way disks, NFS mounts, and crashing capture
// processes do: flipped bits, frames cut off mid-record, garbage runs
// spliced between frames, duplicated frames, and tampered framing fields.
// All randomness flows from the caller's Rng, so a corruption scenario is
// exactly reproducible; the same seed damages the same frames the same
// way. Used by the ingest tests and as the mutation engine of the fuzz
// harness's deterministic smoke mode.

/// Per-frame corruption probabilities (i.i.d. per frame). Defaults are
/// all-clean.
struct ByteFaultPlan {
  /// Flip `bits_per_flip` random bits somewhere in the frame.
  double bit_flip_prob = 0.0;
  std::size_t bits_per_flip = 1;
  /// Cut the frame off mid-record (its tail never reaches the log).
  double truncate_prob = 0.0;
  /// Splice a run of random garbage bytes in front of the frame.
  double garbage_prob = 0.0;
  std::size_t garbage_len_max = 32;
  /// Emit the frame twice (retransmitted/duplicated capture).
  double duplicate_prob = 0.0;
  /// When > 0, each duplicate copy resurfaces after a uniform 0..gap_max
  /// *later frames* instead of immediately behind its original — the way
  /// a real retransmission lands after newer captures already made it to
  /// the log. 0 keeps the copy adjacent (and draws no extra randomness,
  /// so existing seeded scenarios replay unchanged). Copies still in
  /// flight when the log ends are appended at the tail.
  std::size_t duplicate_gap_max = 0;
  /// Clobber the frame's framing field (csitool: the u16 big-endian
  /// length; trace: the Nrx shape byte) with a random value.
  double length_tamper_prob = 0.0;
};

/// What was actually damaged (not just configured).
struct ByteFaultStats {
  std::size_t frames_bit_flipped = 0;
  std::size_t frames_truncated = 0;
  std::size_t garbage_runs = 0;
  std::size_t garbage_bytes = 0;
  std::size_t frames_duplicated = 0;
  std::size_t frames_length_tampered = 0;
  /// Indices (in frame order of the pristine log) of frames whose own
  /// bytes were damaged — flipped, truncated, or tampered. Garbage and
  /// duplication leave the frame itself intact and are not listed.
  std::vector<std::size_t> corrupted_frames;

  [[nodiscard]] std::size_t frames_corrupted() const {
    return corrupted_frames.size();
  }
};

/// Corrupts a well-formed csitool .dat log (as produced by
/// write_csitool_log). Frame boundaries are taken from the pristine
/// input's length fields; the returned bytes are the damaged log.
[[nodiscard]] std::vector<std::uint8_t> corrupt_csitool_log(
    std::span<const std::uint8_t> log, const ByteFaultPlan& plan, Rng& rng,
    ByteFaultStats* stats = nullptr);

/// Corrupts a well-formed SPFI trace (as produced by write_trace). The
/// file header is left intact — a damaged preamble kills the whole file
/// by design (IngestErrorKind::kBadFileHeader) and is exercised
/// separately; record spans are derived from the header's shape bytes.
[[nodiscard]] std::vector<std::uint8_t> corrupt_trace_log(
    std::span<const std::uint8_t> log, const ByteFaultPlan& plan, Rng& rng,
    ByteFaultStats* stats = nullptr);

/// Corrupts a well-formed durability journal (as produced by WalWriter;
/// see durability/wal.hpp). The 12-byte file header is left intact — a
/// damaged header discards the whole journal by design
/// (DurabilityErrorKind::kBadFileHeader) and is exercised separately;
/// record spans are derived from the length-prefix framing, and the
/// tamper fault clobbers that length field.
[[nodiscard]] std::vector<std::uint8_t> corrupt_wal_log(
    std::span<const std::uint8_t> log, const ByteFaultPlan& plan, Rng& rng,
    ByteFaultStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Numerical fault injection — degenerate *values*, not damaged structure.
// Where FaultInjector models operational failures and the byte faults
// model storage corruption, these produce packets that are perfectly
// well-formed yet push the estimation kernels to the edge of floating
// point: rank-collapsed covariances from fully coherent multipath,
// near-singular perturbations of them, NaN/Inf poisoning, denormal
// underflow, and dynamic ranges that overflow naive norm computations.
// Used by the degenerate-input stress suite to assert the pipeline
// degrades with a recorded reason instead of throwing or emitting
// non-finite locations.

/// The numerical degeneracy classes the stress suite iterates over.
enum class NumericalFaultKind : std::uint8_t {
  kRankCollapse,           ///< fully coherent paths: exactly rank-1 CSI
  kNearSingularCovariance, ///< rank-1 plus an O(1e-12) relative perturbation
  kNanCsi,                 ///< a burst of NaN entries
  kInfCsi,                 ///< a burst of Inf entries
  kDenormalCsi,            ///< all entries scaled into denormal range
  kHugeDynamicRange,       ///< one antenna row scaled by 1e150
};

inline constexpr std::size_t kNumericalFaultKindCount = 6;

[[nodiscard]] const char* to_string(NumericalFaultKind kind);

/// `n` propagation paths sharing one AoA/ToF (a specular bundle with zero
/// angular spread): their steering vectors are identical, so the ideal
/// CSI they synthesize is exactly rank one — the worst case for the
/// smoothed-covariance eigendecomposition. Gains/phases vary per path.
[[nodiscard]] std::vector<PathComponent> coherent_path_group(
    std::size_t n, double aoa_rad, double tof_s, double gain_db, Rng& rng);

/// `n` AP poses evenly spaced along the line from `origin` with `step`
/// between consecutive APs, all facing `facing_rad` — the degenerate
/// corridor geometry where every bearing through a point on the line is
/// parallel and the triangulation Fisher information is singular.
[[nodiscard]] std::vector<ArrayPose> collinear_ap_line(std::size_t n,
                                                       Vec2 origin, Vec2 step,
                                                       double facing_rad);

/// Replaces/overwrites `packet.csi` with the degeneracy selected by
/// `kind` (rank collapse synthesizes fresh CSI from a coherent bundle;
/// the value faults corrupt the existing matrix in place). The packet
/// stays structurally valid: correct shape, finite RSSI untouched.
void inject_numerical_fault(CsiPacket& packet, NumericalFaultKind kind,
                            const LinkConfig& link, Rng& rng);

}  // namespace spotfi
