// Fault injection for CSI streams.
//
// Real distributed CSI acquisition is dirty in ways the channel simulator
// alone never shows: receivers crash and come back, capture processes fall
// behind and deliver packets late or out of order, firmware emits frozen
// timestamps, parsing races corrupt records with NaNs, RF chains die, and
// AGC glitches clip whole packets. The software-defined CSI testbeds this
// reproduction targets report exactly these as the dominant operational
// failure modes, so the streaming pipeline must be exercised against them.
//
// FaultInjector sits between a packet source (the synthesizer or a trace)
// and the consumer (StreamingLocalizer), applying a seeded, per-AP fault
// profile to every packet. All randomness flows from the caller's Rng, so
// a fault scenario is exactly reproducible — the same seed produces the
// same outages, the same corrupted entries, the same reorderings.
#pragma once

#include <deque>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/rng.hpp"

namespace spotfi {

/// A half-open time window [start_s, end_s) during which a fault is active.
struct FaultWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  [[nodiscard]] bool contains(double t_s) const {
    return t_s >= start_s && t_s < end_s;
  }
};

/// Per-AP fault profile. Defaults are all-clean; enable individual faults
/// per scenario. Probabilities are i.i.d. per packet.
struct ApFaultProfile {
  /// Silent AP death: packets inside any window are swallowed entirely
  /// (the AP "crashed"); delivery resumes after the window (recovery).
  std::vector<FaultWindow> outages;
  /// Random packet loss (congested capture pipe, dropped UDP export).
  double loss_prob = 0.0;
  /// Hold a packet and release it after `reorder_delay` later packets
  /// from the same AP — delivery order no longer matches capture order.
  double reorder_prob = 0.0;
  std::size_t reorder_delay = 1;
  /// Freeze the timestamp: repeat the previously delivered timestamp
  /// (firmware clock stall), making the packet look stale.
  double stale_prob = 0.0;
  /// Corrupt a burst of CSI entries with NaN (parsing race).
  double nan_burst_prob = 0.0;
  std::size_t nan_burst_len = 4;
  /// Zero one random antenna row for this packet (transient AGC glitch).
  double zero_row_prob = 0.0;
  /// Persistently dead RF chain: this antenna row is zeroed on every
  /// packet. Negative = none.
  int dead_chain = -1;
  /// Power-clipped packet: scale the CSI by `clip_gain_db` (saturated
  /// front end); the quality screen's power-jump check should catch it.
  double clip_prob = 0.0;
  double clip_gain_db = 30.0;
};

/// Fault plan for a whole deployment: one profile per AP id. APs beyond
/// the vector are clean.
struct FaultPlan {
  std::vector<ApFaultProfile> aps;
  [[nodiscard]] const ApFaultProfile& profile(std::size_t ap_id) const;
};

/// Counters for every fault actually injected (not just configured).
struct FaultStats {
  std::size_t outage_swallowed = 0;
  std::size_t lost = 0;
  std::size_t reordered = 0;
  std::size_t stale_stamped = 0;
  std::size_t nan_corrupted = 0;
  std::size_t rows_zeroed = 0;
  std::size_t dead_chain_zeroed = 0;
  std::size_t clipped = 0;
  std::size_t delivered = 0;
};

/// Applies a FaultPlan to a packet stream, AP by AP.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::size_t n_aps);

  /// Feeds one captured packet from `ap_id` and returns the packets the
  /// consumer actually receives at this instant: empty when the packet was
  /// swallowed (outage/loss) or held for reordering, more than one when a
  /// held packet is released behind the current one.
  [[nodiscard]] std::vector<CsiPacket> inject(std::size_t ap_id,
                                              const CsiPacket& packet,
                                              Rng& rng);

  /// True when `ap_id` is inside a configured outage window at `t_s`.
  [[nodiscard]] bool in_outage(std::size_t ap_id, double t_s) const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t ap_count() const { return state_.size(); }

 private:
  struct HeldPacket {
    CsiPacket packet;
    std::size_t release_after;  ///< countdown in subsequent packets
  };
  struct ApState {
    std::deque<HeldPacket> held;
    double last_delivered_t_s = 0.0;
    bool any_delivered = false;
  };

  /// In-place corruption faults (NaN burst, zeroed rows, clipping, stale
  /// timestamp). Returns the possibly-corrupted packet.
  [[nodiscard]] CsiPacket corrupt(const ApFaultProfile& profile,
                                  ApState& state, CsiPacket packet, Rng& rng);

  FaultPlan plan_;
  std::vector<ApState> state_;
  FaultStats stats_;
};

}  // namespace spotfi
