#include "channel/csi_synthesis.hpp"

#include <algorithm>
#include <cmath>

namespace spotfi {

CsiSynthesizer::CsiSynthesizer(LinkConfig link, ImpairmentConfig impairments)
    : link_(link), impairments_(impairments) {
  SPOTFI_EXPECTS(link_.n_antennas >= 1 && link_.n_subcarriers >= 2,
                 "link must have >= 1 antenna and >= 2 subcarriers");
}

CMatrix CsiSynthesizer::ideal_csi(std::span<const PathComponent> paths) const {
  SPOTFI_EXPECTS(!paths.empty(), "need at least one path");
  const std::size_t m_ant = link_.n_antennas;
  const std::size_t n_sub = link_.n_subcarriers;
  CMatrix csi(m_ant, n_sub);
  for (const auto& path : paths) {
    const cplx gamma = path.complex_gain();
    // Per-antenna phase factor Phi(theta) (Eq. 1) and per-subcarrier
    // factor Omega(tau) (Eq. 6).
    const double phi_arg = -2.0 * kPi * link_.antenna_spacing_m *
                           std::sin(path.aoa_rad) * link_.carrier_hz /
                           kSpeedOfLight;
    const cplx phi = std::polar(1.0, phi_arg);
    const cplx omega =
        std::polar(1.0, -2.0 * kPi * link_.subcarrier_spacing_hz * path.tof_s);
    cplx ant_factor{1.0, 0.0};
    for (std::size_t m = 0; m < m_ant; ++m) {
      cplx sub_factor{1.0, 0.0};
      for (std::size_t n = 0; n < n_sub; ++n) {
        csi(m, n) += gamma * ant_factor * sub_factor;
        sub_factor *= omega;
      }
      ant_factor *= phi;
    }
  }
  return csi;
}

double CsiSynthesizer::received_power_dbm(
    std::span<const PathComponent> paths) const {
  double mw = 0.0;
  for (const auto& p : paths) {
    mw += std::pow(10.0, (impairments_.tx_power_dbm + p.gain_db) / 10.0);
  }
  return 10.0 * std::log10(std::max(mw, 1e-12));
}

CsiPacket CsiSynthesizer::synthesize(std::span<const PathComponent> paths,
                                     double timestamp_s, Rng& rng) const {
  SPOTFI_EXPECTS(!paths.empty(), "need at least one path");
  const std::size_t m_ant = link_.n_antennas;
  const std::size_t n_sub = link_.n_subcarriers;

  // Per-packet STO shifts the ToF of *every* path equally (Sec. 3.2).
  const double sto =
      impairments_.sto_base_s +
      rng.uniform(-impairments_.sto_jitter_s, impairments_.sto_jitter_s);
  std::vector<PathComponent> shifted(paths.begin(), paths.end());
  for (auto& p : shifted) {
    p.tof_s += sto;
    if (!p.is_direct) {
      // Environmental micro-dynamics on indirect paths (see config).
      p.phase_rad += rng.normal(0.0, impairments_.indirect_phase_jitter_rad);
      p.gain_db += rng.normal(0.0, impairments_.indirect_gain_jitter_db);
      p.tof_s += rng.normal(0.0, impairments_.indirect_tof_jitter_s);
      p.aoa_rad += rng.normal(0.0, impairments_.indirect_aoa_jitter_rad);
    }
  }

  CsiPacket packet;
  packet.timestamp_s = timestamp_s;
  packet.csi = ideal_csi(shifted);

  if (impairments_.random_common_phase) {
    const cplx cpo = std::polar(1.0, rng.uniform(0.0, 2.0 * kPi));
    for (auto& v : packet.csi.flat()) v *= cpo;
  }

  // Link budget: per-entry SNR from total received power vs. noise floor.
  const double rx_dbm = received_power_dbm(paths);
  const double snr_db = std::min(rx_dbm - impairments_.noise_floor_dbm,
                                 impairments_.max_snr_db);
  // Mean squared CSI magnitude defines the signal power in CSI units.
  double sig_power = 0.0;
  for (const auto& v : packet.csi.flat()) sig_power += std::norm(v);
  sig_power /= static_cast<double>(packet.csi.size());
  const double noise_power = sig_power * std::pow(10.0, -snr_db / 10.0);
  const double noise_sigma = std::sqrt(noise_power / 2.0);
  for (auto& v : packet.csi.flat()) {
    v += cplx(rng.normal(0.0, noise_sigma), rng.normal(0.0, noise_sigma));
  }

  if (impairments_.quantize_8bit) {
    // AGC: scale the strongest I/Q component to ~90% of int8 range, then
    // round — mirrors the 5300's 8-bit CSI report.
    double max_comp = 0.0;
    for (const auto& v : packet.csi.flat()) {
      max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
    }
    if (max_comp > 0.0) {
      const double scale = 114.0 / max_comp;
      for (auto& v : packet.csi.flat()) {
        const double re = std::round(v.real() * scale);
        const double im = std::round(v.imag() * scale);
        v = cplx(std::clamp(re, -128.0, 127.0) / scale,
                 std::clamp(im, -128.0, 127.0) / scale);
      }
    }
  }

  packet.rssi_dbm =
      rx_dbm + rng.normal(0.0, impairments_.rssi_shadowing_db);
  (void)m_ant;
  (void)n_sub;
  return packet;
}

std::vector<CsiPacket> CsiSynthesizer::synthesize_burst(
    std::span<const PathComponent> paths, std::size_t n_packets,
    double interval_s, Rng& rng) const {
  SPOTFI_EXPECTS(n_packets > 0, "need at least one packet");
  // Static per-antenna calibration residuals for this capture.
  std::vector<cplx> chain(link_.n_antennas);
  for (auto& c : chain) {
    const double gain_db =
        rng.normal(0.0, impairments_.gain_calibration_sigma_db);
    const double phase =
        rng.normal(0.0, impairments_.phase_calibration_sigma_rad);
    c = std::polar(std::pow(10.0, gain_db / 20.0), phase);
  }
  std::vector<CsiPacket> burst;
  burst.reserve(n_packets);
  for (std::size_t i = 0; i < n_packets; ++i) {
    burst.push_back(
        synthesize(paths, static_cast<double>(i) * interval_s, rng));
    CMatrix& csi = burst.back().csi;
    for (std::size_t m = 0; m < csi.rows(); ++m) {
      for (std::size_t n = 0; n < csi.cols(); ++n) csi(m, n) *= chain[m];
    }
  }
  return burst;
}

}  // namespace spotfi
