#include "channel/faults.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace spotfi {

namespace {
const ApFaultProfile kCleanProfile{};
}  // namespace

const ApFaultProfile& FaultPlan::profile(std::size_t ap_id) const {
  return ap_id < aps.size() ? aps[ap_id] : kCleanProfile;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_aps)
    : plan_(std::move(plan)), state_(n_aps) {
  SPOTFI_EXPECTS(plan_.aps.size() <= n_aps,
                 "fault plan names more APs than the deployment has");
  for (const auto& profile : plan_.aps) {
    for (const auto& w : profile.outages) {
      SPOTFI_EXPECTS(w.end_s >= w.start_s, "outage window ends before start");
    }
  }
}

bool FaultInjector::in_outage(std::size_t ap_id, double t_s) const {
  SPOTFI_EXPECTS(ap_id < state_.size(), "unknown AP id");
  for (const auto& w : plan_.profile(ap_id).outages) {
    if (w.contains(t_s)) return true;
  }
  return false;
}

CsiPacket FaultInjector::corrupt(const ApFaultProfile& profile, ApState& state,
                                 CsiPacket packet, Rng& rng) {
  if (profile.stale_prob > 0.0 && state.any_delivered &&
      rng.uniform() < profile.stale_prob) {
    packet.timestamp_s = state.last_delivered_t_s;
    ++stats_.stale_stamped;
  }
  if (!packet.csi.empty()) {
    if (profile.dead_chain >= 0 &&
        static_cast<std::size_t>(profile.dead_chain) < packet.csi.rows()) {
      for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
        packet.csi(static_cast<std::size_t>(profile.dead_chain), n) = cplx{};
      }
      ++stats_.dead_chain_zeroed;
    }
    if (profile.zero_row_prob > 0.0 && rng.uniform() < profile.zero_row_prob) {
      const std::size_t m = rng.uniform_index(packet.csi.rows());
      for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
        packet.csi(m, n) = cplx{};
      }
      ++stats_.rows_zeroed;
    }
    if (profile.nan_burst_prob > 0.0 &&
        rng.uniform() < profile.nan_burst_prob) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      const std::size_t total = packet.csi.rows() * packet.csi.cols();
      const std::size_t burst = std::min(profile.nan_burst_len, total);
      const std::size_t start = rng.uniform_index(total - burst + 1);
      for (std::size_t k = start; k < start + burst; ++k) {
        packet.csi(k / packet.csi.cols(), k % packet.csi.cols()) =
            cplx(nan, nan);
      }
      ++stats_.nan_corrupted;
    }
    if (profile.clip_prob > 0.0 && rng.uniform() < profile.clip_prob) {
      const double scale = std::pow(10.0, profile.clip_gain_db / 20.0);
      for (auto& v : packet.csi.flat()) v *= scale;
      ++stats_.clipped;
    }
  }
  return packet;
}

std::vector<CsiPacket> FaultInjector::inject(std::size_t ap_id,
                                             const CsiPacket& packet,
                                             Rng& rng) {
  SPOTFI_EXPECTS(ap_id < state_.size(), "unknown AP id");
  const ApFaultProfile& profile = plan_.profile(ap_id);
  ApState& state = state_[ap_id];

  std::vector<CsiPacket> out;

  // Count down held packets first: a swallowed packet still represents
  // elapsed stream time, so releases happen even across losses.
  for (auto& h : state.held) {
    if (h.release_after > 0) --h.release_after;
  }

  const bool swallowed = [&] {
    if (in_outage(ap_id, packet.timestamp_s)) {
      ++stats_.outage_swallowed;
      return true;
    }
    if (profile.loss_prob > 0.0 && rng.uniform() < profile.loss_prob) {
      ++stats_.lost;
      return true;
    }
    return false;
  }();

  if (!swallowed) {
    CsiPacket delivered = corrupt(profile, state, packet, rng);
    if (profile.reorder_prob > 0.0 && rng.uniform() < profile.reorder_prob) {
      state.held.push_back(
          {std::move(delivered), std::max<std::size_t>(profile.reorder_delay, 1)});
      ++stats_.reordered;
    } else {
      out.push_back(std::move(delivered));
    }
  }

  // Release any held packets whose delay has elapsed (behind the current
  // packet — that is the reordering).
  while (!state.held.empty() && state.held.front().release_after == 0) {
    out.push_back(std::move(state.held.front().packet));
    state.held.pop_front();
  }

  for (const auto& p : out) {
    state.last_delivered_t_s = p.timestamp_s;
    state.any_delivered = true;
    ++stats_.delivered;
  }
  return out;
}

}  // namespace spotfi
