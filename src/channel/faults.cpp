#include "channel/faults.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace spotfi {

namespace {
const ApFaultProfile kCleanProfile{};
}  // namespace

const ApFaultProfile& FaultPlan::profile(std::size_t ap_id) const {
  return ap_id < aps.size() ? aps[ap_id] : kCleanProfile;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_aps)
    : plan_(std::move(plan)), state_(n_aps) {
  SPOTFI_EXPECTS(plan_.aps.size() <= n_aps,
                 "fault plan names more APs than the deployment has");
  for (const auto& profile : plan_.aps) {
    for (const auto& w : profile.outages) {
      SPOTFI_EXPECTS(w.end_s >= w.start_s, "outage window ends before start");
    }
  }
}

bool FaultInjector::in_outage(std::size_t ap_id, double t_s) const {
  SPOTFI_EXPECTS(ap_id < state_.size(), "unknown AP id");
  for (const auto& w : plan_.profile(ap_id).outages) {
    if (w.contains(t_s)) return true;
  }
  return false;
}

CsiPacket FaultInjector::corrupt(const ApFaultProfile& profile, ApState& state,
                                 CsiPacket packet, Rng& rng) {
  if (profile.stale_prob > 0.0 && state.any_delivered &&
      rng.uniform() < profile.stale_prob) {
    packet.timestamp_s = state.last_delivered_t_s;
    ++stats_.stale_stamped;
  }
  if (!packet.csi.empty()) {
    if (profile.dead_chain >= 0 &&
        static_cast<std::size_t>(profile.dead_chain) < packet.csi.rows()) {
      for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
        packet.csi(static_cast<std::size_t>(profile.dead_chain), n) = cplx{};
      }
      ++stats_.dead_chain_zeroed;
    }
    if (profile.zero_row_prob > 0.0 && rng.uniform() < profile.zero_row_prob) {
      const std::size_t m = rng.uniform_index(packet.csi.rows());
      for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
        packet.csi(m, n) = cplx{};
      }
      ++stats_.rows_zeroed;
    }
    if (profile.nan_burst_prob > 0.0 &&
        rng.uniform() < profile.nan_burst_prob) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      const std::size_t total = packet.csi.rows() * packet.csi.cols();
      const std::size_t burst = std::min(profile.nan_burst_len, total);
      const std::size_t start = rng.uniform_index(total - burst + 1);
      for (std::size_t k = start; k < start + burst; ++k) {
        packet.csi(k / packet.csi.cols(), k % packet.csi.cols()) =
            cplx(nan, nan);
      }
      ++stats_.nan_corrupted;
    }
    if (profile.clip_prob > 0.0 && rng.uniform() < profile.clip_prob) {
      const double scale = std::pow(10.0, profile.clip_gain_db / 20.0);
      for (auto& v : packet.csi.flat()) v *= scale;
      ++stats_.clipped;
    }
  }
  return packet;
}

std::vector<CsiPacket> FaultInjector::inject(std::size_t ap_id,
                                             const CsiPacket& packet,
                                             Rng& rng) {
  SPOTFI_EXPECTS(ap_id < state_.size(), "unknown AP id");
  const ApFaultProfile& profile = plan_.profile(ap_id);
  ApState& state = state_[ap_id];

  std::vector<CsiPacket> out;

  // Count down held packets first: a swallowed packet still represents
  // elapsed stream time, so releases happen even across losses.
  for (auto& h : state.held) {
    if (h.release_after > 0) --h.release_after;
  }

  const bool swallowed = [&] {
    if (in_outage(ap_id, packet.timestamp_s)) {
      ++stats_.outage_swallowed;
      return true;
    }
    if (profile.loss_prob > 0.0 && rng.uniform() < profile.loss_prob) {
      ++stats_.lost;
      return true;
    }
    return false;
  }();

  if (!swallowed) {
    CsiPacket delivered = corrupt(profile, state, packet, rng);
    if (profile.reorder_prob > 0.0 && rng.uniform() < profile.reorder_prob) {
      state.held.push_back(
          {std::move(delivered), std::max<std::size_t>(profile.reorder_delay, 1)});
      ++stats_.reordered;
    } else {
      out.push_back(std::move(delivered));
    }
  }

  // Release any held packets whose delay has elapsed (behind the current
  // packet — that is the reordering).
  while (!state.held.empty() && state.held.front().release_after == 0) {
    out.push_back(std::move(state.held.front().packet));
    state.held.pop_front();
  }

  for (const auto& p : out) {
    state.last_delivered_t_s = p.timestamp_s;
    state.any_delivered = true;
    ++stats_.delivered;
  }
  return out;
}

namespace {

/// Applies the per-frame byte faults to `log`, whose frames live at the
/// half-open spans [off, off+len) listed in `frames`; `preamble` bytes at
/// the front (the trace file header) are copied through untouched.
/// `tamper_off`/`tamper_len` locate the format's framing field within a
/// frame.
std::vector<std::uint8_t> corrupt_spans(
    std::span<const std::uint8_t> log,
    std::span<const std::pair<std::size_t, std::size_t>> frames,
    std::size_t preamble, std::size_t tamper_off, std::size_t tamper_len,
    const ByteFaultPlan& plan, Rng& rng, ByteFaultStats* stats) {
  ByteFaultStats local;
  std::vector<std::uint8_t> out;
  out.reserve(log.size());
  out.insert(out.end(), log.begin(), log.begin() + preamble);

  /// Duplicate copies waiting to resurface `after` frames from now.
  struct PendingDup {
    std::vector<std::uint8_t> bytes;
    std::size_t after;
  };
  std::vector<PendingDup> in_flight;

  std::vector<std::uint8_t> frame;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto [off, len] = frames[i];
    if (plan.garbage_prob > 0.0 && rng.uniform() < plan.garbage_prob) {
      const std::size_t n =
          1 + rng.uniform_index(std::max<std::size_t>(plan.garbage_len_max, 1));
      for (std::size_t k = 0; k < n; ++k) {
        out.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
      }
      ++local.garbage_runs;
      local.garbage_bytes += n;
    }

    frame.assign(log.begin() + off, log.begin() + off + len);
    bool corrupted = false;
    if (plan.length_tamper_prob > 0.0 &&
        rng.uniform() < plan.length_tamper_prob) {
      for (std::size_t k = 0; k < tamper_len && tamper_off + k < frame.size();
           ++k) {
        // XOR with a nonzero mask so the field is guaranteed to change.
        frame[tamper_off + k] ^=
            static_cast<std::uint8_t>(1 + rng.uniform_index(255));
      }
      ++local.frames_length_tampered;
      corrupted = true;
    }
    if (plan.bit_flip_prob > 0.0 && rng.uniform() < plan.bit_flip_prob) {
      for (std::size_t b = 0; b < plan.bits_per_flip; ++b) {
        const std::size_t bit = rng.uniform_index(frame.size() * 8);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      ++local.frames_bit_flipped;
      corrupted = true;
    }
    if (plan.truncate_prob > 0.0 && frame.size() > 1 &&
        rng.uniform() < plan.truncate_prob) {
      frame.resize(1 + rng.uniform_index(frame.size() - 1));
      ++local.frames_truncated;
      corrupted = true;
    }
    const bool duplicate =
        plan.duplicate_prob > 0.0 && rng.uniform() < plan.duplicate_prob;

    out.insert(out.end(), frame.begin(), frame.end());
    if (duplicate) {
      ++local.frames_duplicated;
      std::size_t gap = 0;
      if (plan.duplicate_gap_max > 0) {
        gap = rng.uniform_index(plan.duplicate_gap_max + 1);
      }
      if (gap == 0) {
        out.insert(out.end(), frame.begin(), frame.end());
      } else {
        // Cross-frame duplication: the copy lands behind `gap` newer
        // frames, like a retransmission overtaken by fresh captures.
        in_flight.push_back(PendingDup{frame, gap + 1});
      }
    }
    if (corrupted) local.corrupted_frames.push_back(i);
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (--it->after == 0) {
        out.insert(out.end(), it->bytes.begin(), it->bytes.end());
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Copies whose gap outran the log surface at the tail.
  for (const PendingDup& dup : in_flight) {
    out.insert(out.end(), dup.bytes.begin(), dup.bytes.end());
  }

  if (stats != nullptr) *stats = std::move(local);
  return out;
}

}  // namespace

std::vector<std::uint8_t> corrupt_csitool_log(
    std::span<const std::uint8_t> log, const ByteFaultPlan& plan, Rng& rng,
    ByteFaultStats* stats) {
  // Frame walk over the pristine input: u16 big-endian length + body.
  std::vector<std::pair<std::size_t, std::size_t>> frames;
  std::size_t off = 0;
  while (off < log.size()) {
    SPOTFI_EXPECTS(off + 2 <= log.size(),
                   "corrupt_csitool_log: input log has a partial frame");
    const std::size_t field_len =
        (static_cast<std::size_t>(log[off]) << 8) | log[off + 1];
    SPOTFI_EXPECTS(field_len > 0 && off + 2 + field_len <= log.size(),
                   "corrupt_csitool_log: input log is not well-formed");
    frames.emplace_back(off, 2 + field_len);
    off += 2 + field_len;
  }
  return corrupt_spans(log, frames, /*preamble=*/0, /*tamper_off=*/0,
                       /*tamper_len=*/2, plan, rng, stats);
}

std::vector<std::uint8_t> corrupt_trace_log(
    std::span<const std::uint8_t> log, const ByteFaultPlan& plan, Rng& rng,
    ByteFaultStats* stats) {
  constexpr std::size_t kHeaderSize = 4 + 2 + 3 * 8 + 1 + 1;
  SPOTFI_EXPECTS(log.size() >= kHeaderSize,
                 "corrupt_trace_log: input shorter than the trace header");
  const std::size_t n_antennas = log[30];
  const std::size_t n_subcarriers = log[31];
  SPOTFI_EXPECTS(n_antennas > 0 && n_subcarriers > 0,
                 "corrupt_trace_log: input header has zero shape");
  const std::size_t pitch = (8 + 7 + 4) + 2 * n_antennas * n_subcarriers;
  SPOTFI_EXPECTS((log.size() - kHeaderSize) % pitch == 0,
                 "corrupt_trace_log: input log is not well-formed");

  std::vector<std::pair<std::size_t, std::size_t>> frames;
  for (std::size_t off = kHeaderSize; off < log.size(); off += pitch) {
    frames.emplace_back(off, pitch);
  }
  // Tamper the Nrx shape byte at record offset 8 — the field TraceReader
  // trusts for framing, the moral equivalent of the csitool length field.
  return corrupt_spans(log, frames, /*preamble=*/kHeaderSize,
                       /*tamper_off=*/8, /*tamper_len=*/1, plan, rng, stats);
}

std::vector<std::uint8_t> corrupt_wal_log(std::span<const std::uint8_t> log,
                                          const ByteFaultPlan& plan, Rng& rng,
                                          ByteFaultStats* stats) {
  constexpr std::size_t kHeaderSize = 12;  // 8B magic + u32 version
  constexpr std::size_t kFrameSize = 13;   // u32 len + u8 type + u64 checksum
  SPOTFI_EXPECTS(log.size() >= kHeaderSize,
                 "corrupt_wal_log: input shorter than the journal header");
  std::vector<std::pair<std::size_t, std::size_t>> frames;
  std::size_t off = kHeaderSize;
  while (off < log.size()) {
    SPOTFI_EXPECTS(off + kFrameSize <= log.size(),
                   "corrupt_wal_log: input journal has a partial frame");
    std::size_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<std::size_t>(log[off + i]) << (8 * i);
    }
    SPOTFI_EXPECTS(off + kFrameSize + payload_len <= log.size(),
                   "corrupt_wal_log: input journal is not well-formed");
    frames.emplace_back(off, kFrameSize + payload_len);
    off += kFrameSize + payload_len;
  }
  // Tamper the little-endian u32 length prefix — the field the WAL
  // scanner trusts for framing.
  return corrupt_spans(log, frames, /*preamble=*/kHeaderSize,
                       /*tamper_off=*/0, /*tamper_len=*/4, plan, rng, stats);
}

const char* to_string(NumericalFaultKind kind) {
  switch (kind) {
    case NumericalFaultKind::kRankCollapse: return "rank-collapse";
    case NumericalFaultKind::kNearSingularCovariance:
      return "near-singular-covariance";
    case NumericalFaultKind::kNanCsi: return "nan-csi";
    case NumericalFaultKind::kInfCsi: return "inf-csi";
    case NumericalFaultKind::kDenormalCsi: return "denormal-csi";
    case NumericalFaultKind::kHugeDynamicRange: return "huge-dynamic-range";
  }
  return "unknown";
}

std::vector<PathComponent> coherent_path_group(std::size_t n, double aoa_rad,
                                               double tof_s, double gain_db,
                                               Rng& rng) {
  SPOTFI_EXPECTS(n >= 1, "coherent_path_group needs at least one path");
  std::vector<PathComponent> paths(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto& p = paths[k];
    p.aoa_rad = aoa_rad;
    p.tof_s = tof_s;
    p.gain_db = gain_db - rng.uniform(0.0, 6.0);
    p.phase_rad = rng.uniform(0.0, 2.0 * kPi);
    p.is_direct = k == 0;
  }
  return paths;
}

std::vector<ArrayPose> collinear_ap_line(std::size_t n, Vec2 origin, Vec2 step,
                                         double facing_rad) {
  SPOTFI_EXPECTS(n >= 2, "collinear_ap_line needs at least two APs");
  std::vector<ArrayPose> poses(n);
  for (std::size_t k = 0; k < n; ++k) {
    poses[k].position = {origin.x + static_cast<double>(k) * step.x,
                         origin.y + static_cast<double>(k) * step.y};
    poses[k].normal_rad = facing_rad;
  }
  return poses;
}

void inject_numerical_fault(CsiPacket& packet, NumericalFaultKind kind,
                            const LinkConfig& link, Rng& rng) {
  SPOTFI_EXPECTS(!packet.csi.empty(), "packet carries no CSI to corrupt");

  switch (kind) {
    case NumericalFaultKind::kRankCollapse:
    case NumericalFaultKind::kNearSingularCovariance: {
      // Fully coherent bundle: identical steering vectors, so the ideal
      // (noise-free) CSI is the outer product of one steering pair —
      // exactly rank one across antennas and perfectly correlated across
      // subcarriers.
      const CsiSynthesizer synth(link, ImpairmentConfig{});
      const std::vector<PathComponent> bundle = coherent_path_group(
          /*n=*/4, /*aoa_rad=*/rng.uniform(-0.8, 0.8),
          /*tof_s=*/rng.uniform(20e-9, 60e-9), /*gain_db=*/-50.0, rng);
      packet.csi = synth.ideal_csi(bundle);
      if (kind == NumericalFaultKind::kNearSingularCovariance) {
        // Perturb at the edge of double precision: the covariance is no
        // longer exactly singular, just catastrophically ill-conditioned.
        double scale = 0.0;
        for (const auto& v : packet.csi.flat()) {
          scale = std::max(scale, std::abs(v));
        }
        for (auto& v : packet.csi.flat()) {
          v += 1e-12 * scale * cplx(rng.normal(), rng.normal());
        }
      }
      break;
    }
    case NumericalFaultKind::kNanCsi:
    case NumericalFaultKind::kInfCsi: {
      const double bad = kind == NumericalFaultKind::kNanCsi
                             ? std::numeric_limits<double>::quiet_NaN()
                             : std::numeric_limits<double>::infinity();
      const std::size_t total = packet.csi.rows() * packet.csi.cols();
      const std::size_t burst = std::min<std::size_t>(6, total);
      const std::size_t start = rng.uniform_index(total - burst + 1);
      for (std::size_t k = start; k < start + burst; ++k) {
        packet.csi(k / packet.csi.cols(), k % packet.csi.cols()) =
            cplx(bad, bad);
      }
      break;
    }
    case NumericalFaultKind::kDenormalCsi: {
      // Scale so the largest magnitude lands near 1e-310 — every entry is
      // denormal (or flushed to zero under FTZ), squared magnitudes
      // underflow to exactly 0.
      double scale = 0.0;
      for (const auto& v : packet.csi.flat()) {
        scale = std::max(scale, std::abs(v));
      }
      const double factor = scale > 0.0 ? 1e-310 / scale : 0.0;
      for (auto& v : packet.csi.flat()) {
        v = cplx(v.real() * factor, v.imag() * factor);
      }
      break;
    }
    case NumericalFaultKind::kHugeDynamicRange: {
      // One antenna row 150 orders of magnitude above the rest: gram
      // entries reach 1e300, and any squared norm over the full matrix
      // overflows to Inf unless scaled.
      const std::size_t row = rng.uniform_index(packet.csi.rows());
      for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
        packet.csi(row, n) *= 1e150;
      }
      break;
    }
  }
}

}  // namespace spotfi
