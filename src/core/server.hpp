// The central server (Fig. 1, Algorithm 2): collects per-AP CSI packet
// groups, runs the per-AP stage on each, and fuses the resulting
// observations into a location with the likelihood-weighted solver.
#pragma once

#include <vector>

#include "core/ap_processor.hpp"
#include "localize/spotfi_localizer.hpp"

namespace spotfi {

/// One AP's input to a localization round.
struct ApCapture {
  ArrayPose pose;
  std::vector<CsiPacket> packets;
};

struct ServerConfig {
  ApProcessorConfig ap{};
  LocalizerConfig localizer{};
};

/// Result of one localization round, with per-AP diagnostics.
struct LocalizationRound {
  LocationEstimate location;
  std::vector<ApResult> ap_results;
};

class SpotFiServer {
 public:
  SpotFiServer(LinkConfig link, ServerConfig config = {});

  /// Runs Algorithm 2 end-to-end on the captures of one packet group.
  /// Requires >= 2 APs with non-empty packet groups.
  [[nodiscard]] LocalizationRound localize(
      std::span<const ApCapture> captures, Rng& rng) const;

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }

 private:
  LinkConfig link_;
  ServerConfig config_;
};

}  // namespace spotfi
