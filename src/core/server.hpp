// The central server (Fig. 1, Algorithm 2): collects per-AP CSI packet
// groups, runs the per-AP stage on each, and fuses the resulting
// observations into a location with the likelihood-weighted solver.
//
// Two entry points:
//  * localize()     — the paper-faithful strict path: throws on corrupt
//                     input or estimator failure (benches/experiments).
//  * try_localize() — the fault-tolerant path for streaming: per-AP
//                     estimator fallback chains, leave-one-out outlier-AP
//                     rejection, and an Expected-style result that carries
//                     degradation reasons instead of throwing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/ap_processor.hpp"
#include "core/overload.hpp"
#include "localize/spotfi_localizer.hpp"

namespace spotfi {

/// One AP's input to a localization round.
struct ApCapture {
  ArrayPose pose;
  std::vector<CsiPacket> packets;
};

/// Fusion-stage fault tolerance (try_localize only).
struct FusionConfig {
  /// Leave-one-out residual check: when one AP's bearing is confidently
  /// wrong (a stable reflection winning Eq. 8, or a mis-surveyed pose),
  /// the remaining APs agree on a location the outlier's AoA cannot
  /// explain. Greedily reject the AP whose measured bearing disagrees
  /// worst with the leave-it-out solution, and repeat on the survivors.
  /// Cost ratios don't work here: the Huber kernel bounds exactly the
  /// residual this check needs to see, so the raw angular miss is used.
  bool loo_rejection = true;
  /// Never reject below this many usable observations (subsets must stay
  /// well-posed, and rejection needs a meaningful consensus).
  std::size_t loo_min_aps = 4;
  /// Reject an AP only when its bearing misses the leave-one-out
  /// solution by more than this [rad] (~34 deg).
  double loo_max_aoa_miss_rad = 0.6;
  /// ... and only when that miss is also an outlier relative to its
  /// peers: worst > factor * median of this round's misses. Uniformly
  /// noisy rounds (small groups) have large misses everywhere; peeling
  /// APs off there trades a decent consensus for a biased one.
  double loo_median_factor = 3.0;
};

struct ServerConfig {
  ApProcessorConfig ap{};
  LocalizerConfig localizer{};
  FusionConfig fusion{};
  /// Lanes of concurrency for the per-AP (and nested per-packet) stages:
  /// 0 = hardware concurrency, 1 = strictly serial (no worker threads
  /// are created and no synchronization runs). The SPOTFI_THREADS
  /// environment variable overrides this value at server construction.
  /// Every estimate, note, and numerics digest is identical for every
  /// setting: per-AP Rng streams are forked from the caller's generator
  /// in capture order before dispatch, results are slotted by index, and
  /// worker-side counters are merged in index order (see DESIGN.md §10).
  std::size_t num_threads = 0;
  /// When set, the server uses this pool instead of constructing its own
  /// and `num_threads` is ignored. The multi-tenant session layer hands
  /// every session (and every per-fidelity server variant) one shared
  /// pool so N sessions contend for one set of workers instead of
  /// spawning N of them. Determinism is unaffected — results are slotted
  /// by index regardless of which pool ran them.
  std::shared_ptr<ThreadPool> shared_pool;
};

/// Result of one localization round, with per-AP diagnostics. The
/// degradation fields stay at their defaults on the strict localize()
/// path; try_localize fills them.
struct LocalizationRound {
  LocationEstimate location;
  std::vector<ApResult> ap_results;
  /// Which fallback stage produced each AP's observation (parallel to
  /// ap_results; try_localize only).
  std::vector<ApStage> ap_stages;
  /// Human-readable degradation reasons (empty = clean round).
  std::vector<std::string> notes;
  /// Indices (into ap_results) of APs rejected by the leave-one-out
  /// residual check, in rejection order.
  std::vector<std::size_t> rejected_aps;
  /// True when any AP degraded past its primary estimator or an outlier
  /// was rejected. Numerical-fallback activity alone (a regularized solve
  /// inside an otherwise-primary round) does NOT set this — it is
  /// reported through `numerics`/`notes` instead.
  bool degraded = false;
  /// Round-wide numerical-fallback telemetry: the sum of every AP's
  /// counters plus anything the fusion stage (localizer, LOO solves)
  /// triggered. try_localize only.
  NumericsCounters numerics;
  /// Scratch-arena footprint of the round: the largest single frame
  /// opened anywhere — max over every AP's
  /// ApOutcome::workspace_peak_bytes and the fusion stage's own frame
  /// (localizer multi-starts, LOO subset solves). try_localize only.
  std::size_t workspace_peak_bytes = 0;
  /// The fidelity this round ran at. kFull outside the session layer;
  /// a shed-degraded round records the ladder rung that produced it
  /// (every AP entered the fallback chain at that rung's stage).
  ShedLevel fidelity = ShedLevel::kFull;
  /// Per-stage cost split of the round (try_localize only): every AP's
  /// ApOutcome::stage_breakdown folded in capture order (times sum;
  /// arena peaks take the max, since APs share the lane arenas), plus
  /// the fusion stage's own kLocalize bucket (primary solve + LOO
  /// re-solves).
  StageBreakdown stage_breakdown;
};

/// Why a fault-tolerant round produced no location.
struct RoundError {
  std::string reason;
  /// Usable observations that survived the per-AP stage.
  std::size_t usable_aps = 0;
};

class SpotFiServer {
 public:
  SpotFiServer(LinkConfig link, ServerConfig config = {});

  /// Runs Algorithm 2 end-to-end on the captures of one packet group.
  /// Requires >= 2 APs with non-empty packet groups. Throws on corrupt
  /// input or estimator non-convergence.
  [[nodiscard]] LocalizationRound localize(
      std::span<const ApCapture> captures, Rng& rng) const;

  /// Fault-tolerant variant: every AP runs the process_robust fallback
  /// chain, unusable APs are skipped, an outlier AP may be rejected by
  /// leave-one-out residuals, and failure is reported as a RoundError
  /// instead of an exception.
  [[nodiscard]] Expected<LocalizationRound, RoundError> try_localize(
      std::span<const ApCapture> captures, Rng& rng) const;

  /// try_localize with the per-AP Rng streams already forked (one per
  /// capture, in capture order). This is the batching entry point: the
  /// session layer forks streams at round-preparation time (fixing the
  /// deterministic order) and executes rounds later — possibly
  /// concurrently with other sessions' rounds — with identical results.
  /// Requires streams.size() == captures.size() >= 2.
  [[nodiscard]] Expected<LocalizationRound, RoundError> try_localize_forked(
      std::span<const ApCapture> captures, std::span<Rng> streams) const;

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }
  /// Lanes of concurrency this server actually runs with (after the
  /// SPOTFI_THREADS override and hardware-concurrency resolution).
  [[nodiscard]] std::size_t num_threads() const;
  /// The pool this server dispatches on (null = serial). Lets the
  /// session layer derive per-fidelity server variants that share one
  /// pool: `cfg.shared_pool = base.shared_pool()`.
  [[nodiscard]] std::shared_ptr<ThreadPool> shared_pool() const {
    return pool_;
  }

 private:
  /// Runs `task(i)` for every capture index, across the pool when one
  /// exists.
  void for_each_ap(std::size_t n,
                   const std::function<void(std::size_t)>& task) const;
  /// The per-AP processor config with the server's pool injected.
  [[nodiscard]] ApProcessorConfig ap_config() const;

  LinkConfig link_;
  ServerConfig config_;
  /// Null when resolved concurrency is 1 — the serial path never pays
  /// for pool machinery. shared_ptr so servers stay copyable.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace spotfi
