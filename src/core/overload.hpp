// Overload policy for the multi-tenant session layer (DESIGN.md §12):
// admission verdicts, the load-shedding fidelity ladder, and per-round
// deadline planning.
//
// The principle: overload is a first-class, *gracefully degraded*
// condition, never an unbounded queue. Work is shed along the estimator
// fallback chain PR 1 built (full MUSIC -> coarser grid -> ESPRIT ->
// RSSI-only), driven by two signals:
//
//  * Queue depth — the per-session ingest queue's occupancy picks the
//    fidelity rung a session is currently entitled to. A backlogged
//    session trades resolution for drain rate before it trades
//    availability.
//  * Deadline slack — each round carries a wall-clock compute budget.
//    A round that cannot meet its deadline at full fidelity (per the
//    measured cost model) is degraded or rejected up front, never run
//    late and discarded after the fact.
//
// Every decision is an explicit verdict (Accepted | Degraded{level} |
// Shed{reason}) so callers and telemetry can account for exactly which
// rounds ran below full fidelity and why.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/ap_processor.hpp"

namespace spotfi {

/// The load-shedding fidelity ladder, highest fidelity first. Each rung
/// maps onto an entry stage of the per-AP estimator fallback chain
/// (ApFallbackConfig::entry_stage), so a degraded round reuses exactly
/// the containment machinery that already handles estimator failures.
enum class ShedLevel : std::uint8_t {
  kFull = 0,      ///< configured front end, full resolution
  kCoarse = 1,    ///< MUSIC on the relaxed (coarser) grid
  kEsprit = 2,    ///< search-free shift invariance
  kRssiOnly = 3,  ///< no super-resolution; RSSI range constraint only
};

inline constexpr std::size_t kShedLevelCount = 4;

[[nodiscard]] const char* to_string(ShedLevel level);

/// The fallback-chain entry stage that implements a shed level.
[[nodiscard]] ApStage entry_stage_for(ShedLevel level);

/// Outcome of one admission decision (packet offer or round plan).
/// Reasons are static strings so the accepted path allocates nothing.
struct AdmissionVerdict {
  enum class Kind : std::uint8_t {
    kAccepted,  ///< admitted at full fidelity
    kDegraded,  ///< admitted; the session is entitled to `level` only
    kShed,      ///< rejected outright — `reason` says why
  };
  Kind kind = Kind::kAccepted;
  /// Fidelity entitlement (kFull when accepted; meaningful for
  /// kDegraded; the rung that was overloaded for kShed).
  ShedLevel level = ShedLevel::kFull;
  /// Why the work was shed or degraded ("" when accepted).
  const char* reason = "";

  /// True when the packet entered the queue (accepted or degraded).
  [[nodiscard]] bool admitted() const { return kind != Kind::kShed; }
};

struct OverloadConfig {
  /// Per-session ingest queue slots (the bounded-memory cap; the queue
  /// high-water mark can never exceed it).
  std::size_t queue_capacity = 64;
  /// Occupancy fractions at which the ladder drops one fidelity rung:
  /// depth >= fraction * capacity selects the rung. Must be
  /// non-decreasing in [0, 1].
  double degrade_coarse_at = 0.50;
  double degrade_esprit_at = 0.75;
  double degrade_rssi_at = 0.90;
  /// Wall-clock compute budget for one localization round [s]; 0
  /// disables deadline planning (occupancy alone drives the ladder).
  double round_deadline_s = 0.0;
  /// EWMA weight of the newest round-duration sample in the cost model.
  double cost_ewma_alpha = 0.3;
  /// Initial per-round cost estimates [s], indexed by ShedLevel. Zero
  /// means "assume free until measured" — set these in tests (with a
  /// FakeClock) to make deadline decisions deterministic.
  std::array<double, kShedLevelCount> seed_cost_s{};
};

/// EWMA state of a RoundCostModel, exportable for durability snapshots.
/// The alpha weight comes from the config and is not part of the state.
struct RoundCostState {
  std::array<double, kShedLevelCount> cost_s{};
  std::array<bool, kShedLevelCount> seen{};
};

/// EWMA of measured round cost per fidelity level. Feeds deadline
/// planning: "can a full-fidelity round still finish in time, or must
/// this one enter the chain lower?" Single-threaded by contract (one
/// model per session, touched only by the pump).
class RoundCostModel {
 public:
  explicit RoundCostModel(const OverloadConfig& config);

  /// Folds a measured round duration at `level` into the estimate.
  void observe(ShedLevel level, double duration_s);

  /// Current estimate for one round at `level` [s].
  [[nodiscard]] double estimate_s(ShedLevel level) const {
    return cost_s_[static_cast<std::size_t>(level)];
  }

  /// Snapshot/restore of the learned estimates (durability).
  [[nodiscard]] RoundCostState export_state() const {
    return RoundCostState{cost_s_, seen_};
  }
  void restore_state(const RoundCostState& state) {
    cost_s_ = state.cost_s;
    seen_ = state.seen;
  }

 private:
  double alpha_;
  std::array<double, kShedLevelCount> cost_s_;
  std::array<bool, kShedLevelCount> seen_{};
};

/// What to do with one about-to-fire round.
struct RoundPlan {
  /// False: drop the round outright (its packet group is consumed but
  /// never estimated) — the shed of last resort.
  bool run = true;
  ShedLevel level = ShedLevel::kFull;
  /// True when the deadline (not queue occupancy) forced the outcome.
  bool deadline_limited = false;
  /// Why the round was degraded or dropped ("" for a full-fidelity run).
  const char* reason = "";
};

/// Pure decision logic — no state beyond the config, so one policy
/// instance serves every session and may be consulted from any thread.
class OverloadPolicy {
 public:
  explicit OverloadPolicy(OverloadConfig config);

  [[nodiscard]] const OverloadConfig& config() const { return config_; }

  /// The fidelity rung queue occupancy `depth` demands.
  [[nodiscard]] ShedLevel level_for_depth(std::size_t depth) const;

  /// Packet admission: `depth` is the queue occupancy observed before
  /// the push. Never returns kShed — a failed try_push is the shed
  /// signal (the queue itself is the arbiter of "full"); this grades the
  /// fidelity entitlement the packet is admitted under.
  [[nodiscard]] AdmissionVerdict admit(std::size_t depth) const;

  /// Plans an about-to-fire round: starts at the occupancy rung, then
  /// walks down the ladder until the cost model says the deadline fits.
  /// When even an RSSI-only round cannot fit, the round is dropped
  /// (run = false) — rejected up front rather than finished late.
  [[nodiscard]] RoundPlan plan_round(std::size_t depth,
                                     const RoundCostModel& cost) const;

 private:
  OverloadConfig config_;
  /// Occupancy thresholds in packets, resolved from the fractions.
  std::array<std::size_t, kShedLevelCount> rung_depth_;
};

}  // namespace spotfi
