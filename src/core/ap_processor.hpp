// Per-AP processing: lines 2-10 of Algorithm 2.
//
// For every packet in a group the processor sanitizes the CSI phase
// (Algorithm 1), runs SpotFi's joint AoA/ToF super-resolution, and pools
// the resulting path estimates; the pooled estimates are clustered and
// the direct path selected by the Eq. 8 likelihood. The output is the
// compact ApObservation the central server fuses.
#pragma once

#include <vector>

#include <optional>

#include "channel/csi_synthesis.hpp"
#include "core/direct_path.hpp"
#include "csi/quality.hpp"
#include "csi/sanitize.hpp"
#include "localize/observation.hpp"
#include "music/esprit.hpp"

namespace spotfi {

/// Which joint AoA/ToF estimator drives the per-packet stage.
enum class FrontEnd {
  kMusic,   ///< the paper's 2-D MUSIC grid search
  kEsprit,  ///< search-free shift invariance (see music/esprit.hpp)
};

struct ApProcessorConfig {
  FrontEnd front_end = FrontEnd::kMusic;
  JointMusicConfig music{};
  EspritConfig esprit{};
  DirectPathConfig direct_path{};
  /// Apply Algorithm 1 before estimation (disable to reproduce the
  /// ablation of Fig. 5's sanitization study).
  bool sanitize = true;
  /// Screen the packet group (csi/quality.hpp) before processing —
  /// recommended when feeding real traces; the simulator never produces
  /// corrupt packets, so it defaults off to keep experiments exact.
  std::optional<QualityConfig> quality;
};

/// Everything the per-AP stage produces; the server consumes
/// `observation`, the diagnostics and benches use the rest.
struct ApResult {
  /// Clusters sorted by likelihood (descending).
  std::vector<ClusterSummary> clusters;
  /// Pooled per-packet estimates (Fig. 5(c) scatter).
  std::vector<PathEstimate> pooled_estimates;
  /// The selected direct path as a fusion-ready observation.
  ApObservation observation;
};

class ApProcessor {
 public:
  ApProcessor(LinkConfig link, ArrayPose pose, ApProcessorConfig config = {});

  /// Processes one packet group (the paper uses 10-40 packets). Requires
  /// a non-empty group whose CSI shapes match the link config.
  [[nodiscard]] ApResult process(std::span<const CsiPacket> packets,
                                 Rng& rng) const;

  [[nodiscard]] const ArrayPose& pose() const { return pose_; }
  [[nodiscard]] const ApProcessorConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }

 private:
  LinkConfig link_;
  ArrayPose pose_;
  ApProcessorConfig config_;
  JointMusicEstimator music_;
  JointEspritEstimator esprit_;
};

}  // namespace spotfi
