// Per-AP processing: lines 2-10 of Algorithm 2.
//
// For every packet in a group the processor sanitizes the CSI phase
// (Algorithm 1), runs SpotFi's joint AoA/ToF super-resolution, and pools
// the resulting path estimates; the pooled estimates are clustered and
// the direct path selected by the Eq. 8 likelihood. The output is the
// compact ApObservation the central server fuses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "csi/quality.hpp"
#include "linalg/numerics.hpp"
#include "pipeline/pipeline.hpp"

namespace spotfi {

class ThreadPool;

/// Which joint AoA/ToF estimator drives the per-packet stage.
enum class FrontEnd {
  kMusic,   ///< the paper's 2-D MUSIC grid search
  kEsprit,  ///< search-free shift invariance (see music/esprit.hpp)
};

/// Which stage of the estimator fallback chain produced an ApOutcome.
/// Ordered by decreasing fidelity: process_robust walks this chain until
/// one stage succeeds.
enum class ApStage {
  kPrimary,       ///< the configured front end, full resolution
  kRelaxedMusic,  ///< MUSIC retried on a coarser, more forgiving grid
  kEsprit,        ///< search-free shift-invariance fallback
  kRssiOnly,      ///< no AoA recovered; RSSI range constraint only
  kFailed,        ///< not even a finite RSSI — observation unusable
};

[[nodiscard]] const char* to_string(ApStage stage);

struct ApFallbackConfig {
  /// Walk the fallback chain instead of rethrowing the primary failure.
  bool enabled = true;
  /// Likelihood assigned to an RSSI-only observation: small, so a healthy
  /// AP's AoA always dominates, but positive, so the range constraint
  /// still anchors the Eq. 9 solve when bearings are scarce.
  double rssi_only_likelihood = 0.05;
  /// Where process_robust enters the chain. kPrimary is the normal full-
  /// fidelity path; a later stage skips the more expensive ones entirely
  /// — this is how the overload ladder (core/overload.hpp) sheds compute:
  /// a degraded round enters at the rung it is entitled to instead of
  /// running the full estimator and discarding it. The entry stage is
  /// always attempted even when `enabled` is false (entering the chain
  /// at a stage is a request to run that stage, not a request for its
  /// fallbacks). Must not be kFailed.
  ApStage entry_stage = ApStage::kPrimary;
};

struct ApProcessorConfig {
  FrontEnd front_end = FrontEnd::kMusic;
  JointMusicConfig music{};
  EspritConfig esprit{};
  DirectPathConfig direct_path{};
  /// Apply Algorithm 1 before estimation (disable to reproduce the
  /// ablation of Fig. 5's sanitization study).
  bool sanitize = true;
  /// Screen the packet group (csi/quality.hpp) before processing —
  /// recommended when feeding real traces; the simulator never produces
  /// corrupt packets, so it defaults off to keep experiments exact.
  std::optional<QualityConfig> quality;
  /// Estimator fallback chain used by process_robust (the throwing
  /// process() ignores this).
  ApFallbackConfig fallback{};
  /// Non-owning thread pool for the per-packet estimation fan-out
  /// (nullptr = serial). Results are pooled in packet order and the
  /// per-packet numerics counters merged in packet order, so the output
  /// is identical with and without a pool. When the processor itself
  /// runs inside a pool task (the server's per-AP fan-out), nested
  /// dispatch degrades to an inline loop automatically.
  ThreadPool* pool = nullptr;
};

/// Exception-free per-AP result: the server's fault-tolerant path calls
/// process_robust and inspects `stage`/`usable` instead of catching.
struct ApOutcome {
  ApResult result;
  ApStage stage = ApStage::kPrimary;
  /// True when `result.observation` can enter the Eq. 9 fusion.
  bool usable = false;
  /// Why the chain degraded past kPrimary (empty otherwise). When any
  /// numerics counter fired, a "numerics: ..." digest is appended even at
  /// kPrimary — a successful stage that leaned on regularization is worth
  /// knowing about.
  std::string note;
  /// Numerical-fallback events (regularized solves, non-convergences,
  /// variance floors, ...) recorded while this group was processed.
  NumericsCounters numerics;
  /// Peak scratch-arena bytes of any single frame (per-packet estimation
  /// or the group's clustering) opened while this group was processed —
  /// the per-group memory footprint of the winning stage. Capacity
  /// regressions (a config change blowing up the arena) surface here.
  std::size_t workspace_peak_bytes = 0;
  /// Per-stage wall time and arena footprint of the winning fallback
  /// rung's pipeline run (or the last rung attempted, when the chain
  /// fell through to RSSI/failed). Times sum over the group's packets;
  /// peaks are per-phase maxima across packets. This is the per-round
  /// eig-vs-sweep cost split ROADMAP items 1-2 need in production, not
  /// just in microbenches.
  StageBreakdown stage_breakdown;
};

class ApProcessor {
 public:
  ApProcessor(LinkConfig link, ArrayPose pose, ApProcessorConfig config = {});

  /// Processes one packet group (the paper uses 10-40 packets). Requires
  /// a non-empty group whose CSI shapes match the link config. Throws on
  /// corrupt input or estimator non-convergence — use process_robust on
  /// streaming paths.
  [[nodiscard]] ApResult process(std::span<const CsiPacket> packets,
                                 Rng& rng) const;

  /// Fault-tolerant variant: never throws past the chain (beyond
  /// ContractViolation for an empty group). Tries the configured front end
  /// first, then — when config().fallback.enabled — retries MUSIC on a
  /// relaxed grid, falls back to ESPRIT, and finally emits an RSSI-only
  /// observation; `stage`/`note` record how far it had to degrade.
  [[nodiscard]] ApOutcome process_robust(std::span<const CsiPacket> packets,
                                         Rng& rng) const;

  /// One packet through the sanitize -> super-resolution stage of the
  /// configured front end, every scratch buffer drawn from `ws`
  /// (frame-scoped internally, so the arena is returned unchanged).
  /// Writes at most max_paths() estimates into `out` and returns the
  /// count. This is the per-packet inner loop of process(); a warmed
  /// arena makes it perform zero heap allocations (tests/alloc_test.cpp
  /// pins that contract).
  [[nodiscard]] std::size_t estimate_packet(const CsiPacket& packet,
                                            Workspace& ws,
                                            std::span<PathEstimate> out) const;

  /// Estimate capacity estimate_packet needs: the configured front end's
  /// max_paths.
  [[nodiscard]] std::size_t max_paths() const;

  [[nodiscard]] const ArrayPose& pose() const { return pose_; }
  [[nodiscard]] const ApProcessorConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }

 private:
  /// The stage set for one fallback rung: the shared sanitize/cluster/
  /// direct-path stages around `estimate`, composed into a pipeline over
  /// config_.pool.
  [[nodiscard]] EstimationPipeline make_pipeline(
      const PacketEstimateStage& estimate) const;

  LinkConfig link_;
  ArrayPose pose_;
  ApProcessorConfig config_;
  JointMusicEstimator music_;
  JointEspritEstimator esprit_;
  // Immutable stage instances (stage.hpp contract); the fallback ladder
  // substitutes which estimate stage the pipeline runs.
  SanitizeStage sanitize_stage_;
  MusicEstimateStage music_stage_;
  EspritEstimateStage esprit_stage_;
  ClusterStage cluster_stage_;
  DirectPathStage direct_path_stage_;
};

}  // namespace spotfi
