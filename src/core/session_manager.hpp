// Multi-tenant session layer (DESIGN.md §12): many independent
// localization streams sharing one estimation engine without any of
// them being able to stall or starve the others.
//
// The shape of the system:
//
//   producer threads            pump thread(s)          shared engine
//   ----------------            --------------          -------------
//   offer(session, pkt) --SPSC--> pump(session) --+--> ThreadPool
//   offer(session, pkt) --SPSC--> pump(session) --+      (one pool,
//        ...                        ...                   N sessions)
//
// Each session owns: its ID, a StreamingLocalizer (per-AP buffers,
// ApHealthState machines, and the per-fidelity server variants with
// their steering caches), a bounded lock-free SPSC ingest queue, a
// forked Rng stream, and an overload controller (OverloadPolicy +
// RoundCostModel). The ThreadPool — and with it the per-worker arena
// lanes — is shared across every session: N tenants contend for one
// set of workers instead of spawning N pools.
//
// Backpressure is explicit at both ends:
//  * offer() grades every packet with an AdmissionVerdict. A full queue
//    sheds the packet (wait-free — a producer is never blocked), a
//    backlogged queue admits it under a degraded fidelity entitlement.
//  * pump() plans every about-to-fire round against queue occupancy and
//    the wall-clock deadline budget: rounds run at the fidelity rung the
//    backlog permits, and a round that cannot meet its deadline even at
//    RSSI-only fidelity is dropped up front, never run late.
//
// Threading contract: offer() for one session from exactly one producer
// thread at a time, pump() for one session from exactly one consumer
// thread at a time (different sessions freely on different threads).
// open/close/stats are mutex-protected and safe from any thread;
// session_stats() reads only atomic counters, so it may run concurrently
// with both sides.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "core/streaming.hpp"

namespace spotfi {

using SessionId = std::uint64_t;

/// One queued (AP, packet) pair — the unit of ingest.
struct IngestItem {
  std::size_t ap_id = 0;
  CsiPacket packet;
};

struct SessionConfig {
  /// The session's pipeline configuration. The manager injects its
  /// shared pool into streaming.server; num_threads is ignored here.
  StreamingConfig streaming{};
  /// Queue capacity, degrade rungs, and the per-round deadline budget.
  OverloadConfig overload{};
  /// AP deployment for this tenant (>= 2 required).
  std::vector<ArrayPose> aps;
  /// Seed of the session's private Rng stream. Two sessions with the
  /// same config, seed, and packet sequence produce byte-identical
  /// fixes — and identical to a standalone StreamingLocalizer fed the
  /// same way, at any thread count.
  std::uint64_t seed = 1;
};

/// Telemetry snapshot for one session. Counter semantics: every offered
/// packet is exactly one of accepted/shed; degraded_admissions counts
/// the accepted subset admitted under a non-full entitlement. Every
/// planned round is exactly one of rounds_full/rounds_degraded/
/// rounds_shed (+ failed_rounds for rounds that ran but produced no
/// fix, already included in full/degraded).
struct SessionStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  /// Accepted while the queue was past a degrade rung.
  std::uint64_t degraded_admissions = 0;
  /// Rejected at the queue boundary (queue full).
  std::uint64_t shed_packets = 0;
  /// Deepest ingest-queue occupancy ever observed (<= queue_capacity by
  /// construction — the bounded-memory witness).
  std::size_t queue_high_water = 0;
  std::size_t queue_capacity = 0;
  /// Rounds that ran at full fidelity.
  std::uint64_t rounds_full = 0;
  /// Rounds that ran below full fidelity (occupancy or deadline).
  std::uint64_t rounds_degraded = 0;
  /// Rounds dropped by the planner (deadline unmeetable at any rung).
  std::uint64_t rounds_shed = 0;
  /// Rounds whose plan was forced down (or out) by the deadline budget
  /// rather than queue occupancy alone.
  std::uint64_t deadline_limited_rounds = 0;
  /// Rounds whose measured duration still exceeded the deadline budget.
  std::uint64_t deadline_misses = 0;
  /// Successful fixes emitted.
  std::uint64_t fixes = 0;
  /// Rounds that ran but produced no fix (estimator/fusion failure).
  std::uint64_t failed_rounds = 0;
};

/// Complete durable state of one session: everything beyond its
/// SessionConfig that the next localization round depends on. Exported
/// under quiescence (no concurrent offer/pump) for durability snapshots
/// and restored byte-exactly on recovery — a restored session fed the
/// same remaining packet sequence produces byte-identical fixes.
struct SessionDurableState {
  SessionId id = 0;
  SessionStats stats;
  /// Accepted packets already pushed through the localizer (the replay
  /// skip mark: journal records at or below it are in this state).
  std::uint64_t applied_packets = 0;
  /// Timer polls already applied, same skip semantics.
  std::uint64_t applied_polls = 0;
  /// Durable round ordinals handed out (LocationFix::durable_round_index).
  std::uint64_t emitted_fixes = 0;
  RngState rng;
  RoundCostState cost;
  StreamingState streaming;
};

struct SessionManagerConfig {
  /// Lanes of concurrency for the shared pool: 0 = hardware
  /// concurrency, 1 = serial (no pool). SPOTFI_THREADS overrides.
  std::size_t num_threads = 0;
  /// Wall-clock source for deadline budgeting and the cost model.
  /// Null = a process-wide MonotonicClock; tests inject a FakeClock
  /// (paired with OverloadConfig::seed_cost_s) to make every deadline
  /// decision deterministic. Not owned; must outlive the manager.
  const Clock* clock = nullptr;
};

class SessionManager {
 public:
  explicit SessionManager(LinkConfig link, SessionManagerConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session (>= 2 APs required). The returned id is unique
  /// for the lifetime of the manager (never reused).
  [[nodiscard]] SessionId open_session(const SessionConfig& config);

  /// Retires a session; its counters fold into the global totals once
  /// every outstanding reference (e.g. a racing final pump()) drops.
  /// Idempotent: closing an id that was already closed is a no-op, so a
  /// close that races another close (or a recovery that re-closes a
  /// journaled close) retires the stats exactly once. Closing an id the
  /// manager never issued still throws ContractViolation.
  void close_session(SessionId id);

  /// Producer side: offers one packet to `session`'s ingest queue and
  /// returns the admission verdict. Wait-free past the session lookup —
  /// a full queue sheds (kShed) instead of blocking, a backlogged one
  /// admits under a degraded entitlement. The packet is consumed only
  /// when the verdict says admitted().
  AdmissionVerdict offer(SessionId id, std::size_t ap_id, CsiPacket packet);

  /// Producer-side variant for retrying callers (the ingest transport):
  /// identical admission semantics, but on a shed verdict `item` is
  /// left intact — payload and all — so the caller can retry later
  /// without a copy (SpscQueue::try_push moves nothing when full).
  /// Every call counts as one offer, so offered == accepted + shed
  /// still partitions exactly across retries.
  AdmissionVerdict offer_or_return(SessionId id, IngestItem& item);

  /// Consumer side: drains `session`'s queue through its localizer,
  /// planning every round against occupancy and deadline, and returns
  /// the fixes that fired. Runs on the calling thread; per-AP work
  /// fans out over the shared pool.
  [[nodiscard]] std::vector<LocationFix> pump(SessionId id);

  /// Advances one session's stream time without a packet (timer tick):
  /// deadline rounds for stalled tenants. Returns the fix if one fired.
  [[nodiscard]] std::optional<LocationFix> poll(SessionId id, double now_s);

  /// Drains every live session (in id order) through the cross-session
  /// batch scheduler and returns the total number of fixes fired.
  /// Round lifecycle splits in three: every queue is drained serially on
  /// the calling thread, *preparing* rounds (planner decision, capture
  /// pop, Rng fork — everything order-sensitive); the prepared rounds
  /// from all tenants are then *executed* as one shared batch across the
  /// pool (pipeline runs amortize the interned steering tables and reuse
  /// the same per-lane arenas regardless of which session a round came
  /// from); finally each round *completes* serially, in preparation
  /// order (fix assembly, tracker update, counters). Because streams are
  /// forked at preparation time and execution is a pure function of the
  /// prepared round, every fix is byte-identical to what per-session
  /// pump() calls in id order would have produced. The one observable
  /// difference: round costs feed the deadline cost model at completion,
  /// so planner decisions *within* a batch see cost data that is one
  /// batch staler than the strictly serial path (irrelevant while
  /// round_deadline_s is unset).
  std::size_t pump_all();

  /// Rounds that executed inside a multi-round pump_all() batch on the
  /// shared pool (the cross-session batching witness; serial drains and
  /// single-round batches don't count).
  [[nodiscard]] std::uint64_t batched_rounds() const {
    return batched_rounds_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] SessionStats session_stats(SessionId id) const;
  /// Sum over live sessions plus everything closed sessions retired.
  [[nodiscard]] SessionStats global_stats() const;

  /// The session's localizer, for health/diagnostics introspection
  /// (ap_state, fidelity, ingest report). Single-threaded use only —
  /// do not call concurrently with that session's pump().
  [[nodiscard]] const StreamingLocalizer& localizer(SessionId id) const;

  [[nodiscard]] std::size_t session_count() const;
  /// The shared pool (null when concurrency resolved to 1).
  [[nodiscard]] std::shared_ptr<ThreadPool> pool() const { return pool_; }

  // -- durability / recovery support (DESIGN.md §14) -------------------
  // All of these share the snapshot contract: no concurrent offer/pump
  // on the sessions involved.

  /// Live session ids, ascending.
  [[nodiscard]] std::vector<SessionId> session_ids() const;
  /// The id the next open_session() would return.
  [[nodiscard]] SessionId next_session_id() const;
  /// Raises the id horizon so recovered managers never reuse an id that
  /// a previous incarnation issued. Never lowers it.
  void advance_session_ids(SessionId next);
  /// Aggregated counters of already-closed sessions (for snapshots).
  [[nodiscard]] SessionStats retired_stats() const;
  /// Seeds the closed-session aggregate on recovery.
  void restore_retired_stats(const SessionStats& retired);

  /// Recovery-only variant of open_session(): recreates a session under
  /// the id a previous incarnation issued (must not collide with a live
  /// session) and advances the id horizon past it.
  void reopen_session(SessionId id, const SessionConfig& config);

  /// Exports everything `id`'s next round depends on (see
  /// SessionDurableState). Quiesced sessions only.
  [[nodiscard]] SessionDurableState export_session_state(SessionId id) const;
  /// Restores a previously exported state into `id` (same config and AP
  /// registrations as at export time).
  void restore_session_state(SessionId id, SessionDurableState state);

  /// Replays one journaled accepted packet straight through `id`'s
  /// localizer — the recovery path around the ingest queue — with full
  /// round accounting, as if it had been offered and pumped. Returns
  /// the fix if the packet's round fired. `count_admission` re-counts
  /// the packet as offered+accepted; recovery passes false for packets
  /// whose admission is already inside the restored snapshot counters
  /// (accepted before the snapshot, applied after).
  [[nodiscard]] std::optional<LocationFix> replay_packet(
      SessionId id, std::size_t ap_id, CsiPacket packet,
      bool count_admission = true);
  /// Replays one journaled timer poll (see poll()).
  [[nodiscard]] std::optional<LocationFix> replay_poll(SessionId id,
                                                       double now_s);
  /// Packets applied through `id`'s localizer so far (the durable replay
  /// mark; a resuming direct feeder skips this many accepted packets).
  [[nodiscard]] std::uint64_t applied_packets(SessionId id) const;
  /// Timer polls applied to `id` so far (the poll-ordinal counterpart).
  [[nodiscard]] std::uint64_t applied_polls(SessionId id) const;

 private:
  struct Session;

  [[nodiscard]] std::shared_ptr<Session> find(SessionId id) const;
  [[nodiscard]] std::shared_ptr<Session> make_session(
      const SessionConfig& config) const;
  /// Folds the stats of drained closed sessions (no outstanding
  /// references) into retired_. Caller holds mutex_.
  void reap_draining_locked();
  static void fold_stats(SessionStats& into, const SessionStats& from);

  LinkConfig link_;
  SessionManagerConfig config_;
  const Clock* clock_;
  std::shared_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;  ///< guards sessions_/draining_/next_id_/retired_
  std::vector<std::shared_ptr<Session>> sessions_;
  /// Closed sessions still referenced by an in-flight pump()/offer();
  /// their stats fold into retired_ when the last reference drops.
  std::vector<std::shared_ptr<Session>> draining_;
  SessionId next_id_ = 1;
  /// Aggregated counters of closed sessions.
  SessionStats retired_{};
  /// Rounds executed inside multi-round pump_all() batches.
  std::atomic<std::uint64_t> batched_rounds_{0};
};

}  // namespace spotfi
