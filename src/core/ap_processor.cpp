#include "core/ap_processor.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace spotfi {
namespace {

/// A more forgiving MUSIC configuration for the retry stage: a coarser
/// grid and a thresholded, smaller signal subspace. Non-convergence and
/// spurious-peak failures are usually conditioning problems; trading
/// resolution for stability keeps an AoA observation alive.
JointMusicConfig relaxed_music(JointMusicConfig cfg) {
  cfg.aoa_step_rad *= 2.0;
  cfg.tof_step_s *= 2.0;
  cfg.min_relative_peak = std::min(cfg.min_relative_peak, 0.05);
  cfg.max_paths = std::min<std::size_t>(cfg.max_paths, 5);
  cfg.subspace.order_method = OrderMethod::kThreshold;
  cfg.subspace.relative_threshold =
      std::max(cfg.subspace.relative_threshold, 0.1);
  cfg.subspace.max_signal_dims =
      std::min<std::size_t>(cfg.subspace.max_signal_dims, 6);
  return cfg;
}

/// The scratch arena of the calling thread for work dispatched through
/// `config.pool` (a worker's lane arena, or the caller's process-wide
/// one). Serial runs use the process-wide arena directly.
Workspace& group_workspace(const ApProcessorConfig& config) {
  return config.pool != nullptr ? config.pool->workspace()
                                : thread_workspace();
}

/// Shared per-group pipeline: sanitize -> estimate per packet -> pool ->
/// cluster -> select. `estimate` is the front end under test, with the
/// arena calling convention (csi view + workspace in, estimates out;
/// at most `max_paths` of them). Packets are independent until the
/// pooling step, so the sanitize+estimate stage fans out over
/// config.pool when one is set; per-packet outputs are slotted by index
/// into one group-wide buffer and folded in packet order (estimates,
/// RSSI sum, and numerics counters alike), so the pooled result is
/// byte-identical to the serial loop's.
///
/// Allocation discipline: the group allocates its slot buffers and the
/// result vectors once; every per-packet buffer is frame-scoped arena
/// scratch, so a warmed steady-state packet never touches the heap.
/// `ws_peak_out` (when set) receives the largest single-frame footprint
/// seen while processing the group.
template <typename EstimateFn>
ApResult run_group(std::span<const CsiPacket> packets, const LinkConfig& link,
                   const ArrayPose& pose, const ApProcessorConfig& config,
                   Rng& rng, std::size_t max_paths, EstimateFn&& estimate,
                   std::size_t* ws_peak_out = nullptr) {
  struct PacketOutput {
    std::size_t count = 0;
    std::size_t ws_peak_bytes = 0;
    NumericsCounters numerics;
  };
  std::vector<PacketOutput> outputs(packets.size());
  std::vector<PathEstimate> slots(packets.size() * max_paths);
  const auto estimate_packet = [&](std::size_t i) {
    // Detached: counters travel home in the task output and are merged
    // by the dispatching thread below, never through the thread-local
    // scope stack (which a pool worker does not share with the caller).
    NumericsScope scope{kDetachedScope};
    Workspace& ws = group_workspace(config);
    Workspace::Frame frame(ws);
    const CsiPacket& packet = packets[i];
    ConstCMatrixView csi(packet.csi);
    if (config.sanitize) csi = sanitize_tof(csi, link, ws);
    outputs[i].count = estimate(
        csi, ws,
        std::span<PathEstimate>(slots).subspan(i * max_paths, max_paths));
    outputs[i].numerics = scope.counters();
    outputs[i].ws_peak_bytes = frame.peak_bytes();
  };
  if (config.pool != nullptr) {
    config.pool->parallel_for(packets.size(), estimate_packet);
  } else {
    for (std::size_t i = 0; i < packets.size(); ++i) estimate_packet(i);
  }

  ApResult result;
  double rssi_sum = 0.0;
  std::size_t total = 0;
  std::size_t ws_peak = 0;
  for (const auto& out : outputs) total += out.count;
  result.pooled_estimates.reserve(total);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto packet_slots =
        std::span<const PathEstimate>(slots).subspan(i * max_paths,
                                                     outputs[i].count);
    result.pooled_estimates.insert(result.pooled_estimates.end(),
                                   packet_slots.begin(), packet_slots.end());
    count_numerics(outputs[i].numerics);
    rssi_sum += packets[i].rssi_dbm;
    ws_peak = std::max(ws_peak, outputs[i].ws_peak_bytes);
  }
  SPOTFI_EXPECTS(!result.pooled_estimates.empty(),
                 "super-resolution produced no path estimates");

  {
    Workspace& ws = group_workspace(config);
    Workspace::Frame frame(ws);
    result.clusters =
        cluster_path_estimates(result.pooled_estimates, link, packets.size(),
                               rng, config.direct_path, ws);
    ws_peak = std::max(ws_peak, frame.peak_bytes());
  }
  if (ws_peak_out != nullptr) *ws_peak_out = ws_peak;
  const std::size_t pick = select_spotfi(result.clusters);
  result.observation.pose = pose;
  result.observation.direct_aoa_rad = result.clusters[pick].mean_aoa_rad;
  result.observation.likelihood = result.clusters[pick].likelihood;
  result.observation.rssi_dbm =
      rssi_sum / static_cast<double>(packets.size());
  return result;
}

}  // namespace

const char* to_string(ApStage stage) {
  switch (stage) {
    case ApStage::kPrimary: return "primary";
    case ApStage::kRelaxedMusic: return "relaxed-music";
    case ApStage::kEsprit: return "esprit";
    case ApStage::kRssiOnly: return "rssi-only";
    case ApStage::kFailed: return "failed";
  }
  return "unknown";
}

ApProcessor::ApProcessor(LinkConfig link, ArrayPose pose,
                         ApProcessorConfig config)
    : link_(link),
      pose_(pose),
      config_(std::move(config)),
      music_(link_, config_.music),
      esprit_(link_, config_.esprit) {}

ApResult ApProcessor::process(std::span<const CsiPacket> packets,
                              Rng& rng) const {
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");

  std::vector<CsiPacket> screened;
  if (config_.quality) {
    screened = screen_group(packets, *config_.quality);
    SPOTFI_EXPECTS(!screened.empty(),
                   "quality screen rejected every packet in the group");
    packets = screened;
  }

  return config_.front_end == FrontEnd::kMusic
             ? run_group(packets, link_, pose_, config_, rng,
                         config_.music.max_paths,
                         [this](ConstCMatrixView csi, Workspace& ws,
                                std::span<PathEstimate> out) {
                           return music_.estimate_into(csi, ws, out);
                         })
             : run_group(packets, link_, pose_, config_, rng,
                         config_.esprit.max_paths,
                         [this](ConstCMatrixView csi, Workspace& ws,
                                std::span<PathEstimate> out) {
                           return esprit_.estimate_into(csi, ws, out);
                         });
}

std::size_t ApProcessor::max_paths() const {
  return config_.front_end == FrontEnd::kMusic ? config_.music.max_paths
                                               : config_.esprit.max_paths;
}

std::size_t ApProcessor::estimate_packet(const CsiPacket& packet,
                                         Workspace& ws,
                                         std::span<PathEstimate> out) const {
  SPOTFI_EXPECTS(out.size() >= max_paths(),
                 "estimate_packet output span below max_paths()");
  Workspace::Frame frame(ws);
  ConstCMatrixView csi(packet.csi);
  if (config_.sanitize) csi = sanitize_tof(csi, link_, ws);
  return config_.front_end == FrontEnd::kMusic
             ? music_.estimate_into(csi, ws, out)
             : esprit_.estimate_into(csi, ws, out);
}

ApOutcome ApProcessor::process_robust(std::span<const CsiPacket> packets,
                                      Rng& rng) const {
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");
  ApOutcome out;

  // Collect every numerical-fallback event fired while this group is
  // processed. Detached: the counters are reported through
  // ApOutcome::numerics only, and the caller (SpotFiServer::try_localize)
  // merges them into its round scope explicitly — process_robust may run
  // on a pool worker where an implicit thread-local fold would be lost,
  // and an implicit fold on the inline path would then double-count.
  NumericsScope numerics_scope{kDetachedScope};
  auto finish = [&]() -> ApOutcome& {
    out.numerics = numerics_scope.counters();
    if (out.numerics.any()) {
      if (!out.note.empty()) out.note += "; ";
      out.note += "numerics: " + out.numerics.summary();
    }
    return out;
  };

  // Screen unconditionally on the robust path: it exists precisely
  // because input may be corrupt, so a missing quality config means
  // defaults, not no screening.
  const QualityConfig quality = config_.quality.value_or(QualityConfig{});
  const std::vector<CsiPacket> screened = screen_group(packets, quality);

  auto attempt = [&](ApStage stage, auto&& stage_fn) {
    try {
      ApResult candidate = stage_fn();
      // An estimator can "succeed" on corrupt input by propagating NaNs
      // into the observation; that counts as a stage failure.
      const ApObservation& obs = candidate.observation;
      if (!std::isfinite(obs.direct_aoa_rad) ||
          !std::isfinite(obs.likelihood) || !std::isfinite(obs.rssi_dbm) ||
          obs.likelihood <= 0.0) {
        throw NumericalError("produced a non-finite observation");
      }
      out.result = std::move(candidate);
      out.stage = stage;
      out.usable = true;
      return true;
    } catch (const std::exception& e) {
      if (!out.note.empty()) out.note += "; ";
      out.note += std::string(to_string(stage)) + ": " + e.what();
      return false;
    }
  };

  // The overload ladder's entry point: stages before `entry` are skipped
  // outright; the entry stage itself always runs; stages after it run
  // only when the fallback chain is enabled.
  const ApStage entry = config_.fallback.entry_stage;
  SPOTFI_EXPECTS(entry != ApStage::kFailed,
                 "entry_stage must name a runnable stage");
  const auto stage_allowed = [&](ApStage stage) {
    if (stage < entry) return false;
    if (stage == entry) return true;
    return config_.fallback.enabled;
  };

  if (!screened.empty()) {
    const std::span<const CsiPacket> group(screened);
    const bool primary_is_music = config_.front_end == FrontEnd::kMusic;
    if (stage_allowed(ApStage::kPrimary) &&
        attempt(ApStage::kPrimary, [&] {
          return run_group(
              group, link_, pose_, config_, rng, max_paths(),
              [&](ConstCMatrixView csi, Workspace& ws,
                  std::span<PathEstimate> dst) {
                return primary_is_music ? music_.estimate_into(csi, ws, dst)
                                        : esprit_.estimate_into(csi, ws, dst);
              },
              &out.workspace_peak_bytes);
        })) {
      return finish();
    }
    if (stage_allowed(ApStage::kRelaxedMusic)) {
      const JointMusicEstimator relaxed(link_, relaxed_music(config_.music));
      if (attempt(ApStage::kRelaxedMusic, [&] {
            return run_group(
                group, link_, pose_, config_, rng,
                relaxed.config().max_paths,
                [&](ConstCMatrixView csi, Workspace& ws,
                    std::span<PathEstimate> dst) {
                  return relaxed.estimate_into(csi, ws, dst);
                },
                &out.workspace_peak_bytes);
          })) {
        return finish();
      }
    }
    // Retrying ESPRIT after an ESPRIT-primary failure is redundant —
    // unless the ladder *enters* at ESPRIT, in which case it is the
    // requested estimator, not a retry.
    if (stage_allowed(ApStage::kEsprit) &&
        (primary_is_music || entry == ApStage::kEsprit)) {
      if (attempt(ApStage::kEsprit, [&] {
            return run_group(
                group, link_, pose_, config_, rng, config_.esprit.max_paths,
                [&](ConstCMatrixView csi, Workspace& ws,
                    std::span<PathEstimate> dst) {
                  return esprit_.estimate_into(csi, ws, dst);
                },
                &out.workspace_peak_bytes);
          })) {
        return finish();
      }
    }
  } else {
    out.note = "quality screen rejected every packet in the group";
  }

  if (stage_allowed(ApStage::kRssiOnly)) {
    // Last resort: RSSI-only. Even a packet whose CSI matrix is corrupt
    // can carry a valid RSSI report, so average over the raw group.
    double rssi_sum = 0.0;
    std::size_t n_rssi = 0;
    for (const auto& packet : packets) {
      if (std::isfinite(packet.rssi_dbm)) {
        rssi_sum += packet.rssi_dbm;
        ++n_rssi;
      }
    }
    if (n_rssi > 0) {
      out.result = ApResult{};
      out.result.observation.pose = pose_;
      out.result.observation.has_aoa = false;
      out.result.observation.likelihood = config_.fallback.rssi_only_likelihood;
      out.result.observation.rssi_dbm =
          rssi_sum / static_cast<double>(n_rssi);
      out.stage = ApStage::kRssiOnly;
      out.usable = true;
      return finish();
    }
    if (!out.note.empty()) out.note += "; ";
    out.note += "rssi-only: no finite RSSI in the group";
  }

  out.result = ApResult{};
  out.result.observation.pose = pose_;
  out.result.observation.likelihood = 0.0;  // ignored by the localizer
  out.stage = ApStage::kFailed;
  out.usable = false;
  return finish();
}

}  // namespace spotfi
