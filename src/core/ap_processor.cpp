#include "core/ap_processor.hpp"

namespace spotfi {

ApProcessor::ApProcessor(LinkConfig link, ArrayPose pose,
                         ApProcessorConfig config)
    : link_(link),
      pose_(pose),
      config_(std::move(config)),
      music_(link_, config_.music),
      esprit_(link_, config_.esprit) {}

ApResult ApProcessor::process(std::span<const CsiPacket> packets,
                              Rng& rng) const {
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");

  std::vector<CsiPacket> screened;
  if (config_.quality) {
    screened = screen_group(packets, *config_.quality);
    SPOTFI_EXPECTS(!screened.empty(),
                   "quality screen rejected every packet in the group");
    packets = screened;
  }

  ApResult result;
  double rssi_sum = 0.0;
  for (const auto& packet : packets) {
    const CMatrix csi = config_.sanitize
                            ? std::move(sanitize_tof(packet.csi, link_).csi)
                            : packet.csi;
    const auto estimates = config_.front_end == FrontEnd::kMusic
                               ? music_.estimate(csi)
                               : esprit_.estimate(csi);
    result.pooled_estimates.insert(result.pooled_estimates.end(),
                                   estimates.begin(), estimates.end());
    rssi_sum += packet.rssi_dbm;
  }
  SPOTFI_EXPECTS(!result.pooled_estimates.empty(),
                 "super-resolution produced no path estimates");

  result.clusters =
      cluster_path_estimates(result.pooled_estimates, link_, packets.size(),
                             rng, config_.direct_path);
  const std::size_t pick = select_spotfi(result.clusters);
  result.observation.pose = pose_;
  result.observation.direct_aoa_rad = result.clusters[pick].mean_aoa_rad;
  result.observation.likelihood = result.clusters[pick].likelihood;
  result.observation.rssi_dbm =
      rssi_sum / static_cast<double>(packets.size());
  return result;
}

}  // namespace spotfi
