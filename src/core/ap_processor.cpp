#include "core/ap_processor.hpp"

#include <cmath>
#include <optional>

#include "common/parallel.hpp"
#include "csi/sanitize.hpp"

namespace spotfi {
namespace {

/// A more forgiving MUSIC configuration for the retry stage: a coarser
/// grid and a thresholded, smaller signal subspace. Non-convergence and
/// spurious-peak failures are usually conditioning problems; trading
/// resolution for stability keeps an AoA observation alive.
JointMusicConfig relaxed_music(JointMusicConfig cfg) {
  cfg.aoa_step_rad *= 2.0;
  cfg.tof_step_s *= 2.0;
  cfg.min_relative_peak = std::min(cfg.min_relative_peak, 0.05);
  cfg.max_paths = std::min<std::size_t>(cfg.max_paths, 5);
  cfg.subspace.order_method = OrderMethod::kThreshold;
  cfg.subspace.relative_threshold =
      std::max(cfg.subspace.relative_threshold, 0.1);
  cfg.subspace.max_signal_dims =
      std::min<std::size_t>(cfg.subspace.max_signal_dims, 6);
  return cfg;
}

}  // namespace

const char* to_string(ApStage stage) {
  switch (stage) {
    case ApStage::kPrimary: return "primary";
    case ApStage::kRelaxedMusic: return "relaxed-music";
    case ApStage::kEsprit: return "esprit";
    case ApStage::kRssiOnly: return "rssi-only";
    case ApStage::kFailed: return "failed";
  }
  return "unknown";
}

ApProcessor::ApProcessor(LinkConfig link, ArrayPose pose,
                         ApProcessorConfig config)
    : link_(link),
      pose_(pose),
      config_(std::move(config)),
      music_(link_, config_.music),
      esprit_(link_, config_.esprit),
      sanitize_stage_(link_, config_.sanitize),
      music_stage_(music_),
      esprit_stage_(esprit_),
      cluster_stage_(link_, config_.direct_path),
      direct_path_stage_() {}

EstimationPipeline ApProcessor::make_pipeline(
    const PacketEstimateStage& estimate) const {
  EstimationPipeline::Stages stages;
  stages.sanitize = &sanitize_stage_;
  stages.estimate = &estimate;
  stages.cluster = &cluster_stage_;
  stages.direct_path = &direct_path_stage_;
  return EstimationPipeline(stages, config_.pool);
}

ApResult ApProcessor::process(std::span<const CsiPacket> packets,
                              Rng& rng) const {
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");

  std::vector<CsiPacket> screened;
  if (config_.quality) {
    screened = screen_group(packets, *config_.quality);
    SPOTFI_EXPECTS(!screened.empty(),
                   "quality screen rejected every packet in the group");
    packets = screened;
  }

  const PacketEstimateStage& estimate =
      config_.front_end == FrontEnd::kMusic
          ? static_cast<const PacketEstimateStage&>(music_stage_)
          : static_cast<const PacketEstimateStage&>(esprit_stage_);
  const EstimationPipeline pipeline = make_pipeline(estimate);
  SpanPacketSource source(packets);
  StageContext ctx;
  ctx.rng = &rng;
  return pipeline.run_group(ctx, source, pose_);
}

std::size_t ApProcessor::max_paths() const {
  return config_.front_end == FrontEnd::kMusic ? config_.music.max_paths
                                               : config_.esprit.max_paths;
}

std::size_t ApProcessor::estimate_packet(const CsiPacket& packet,
                                         Workspace& ws,
                                         std::span<PathEstimate> out) const {
  SPOTFI_EXPECTS(out.size() >= max_paths(),
                 "estimate_packet output span below max_paths()");
  Workspace::Frame frame(ws);
  StageContext ctx;
  ctx.ws = &ws;
  const ConstCMatrixView csi =
      sanitize_stage_.run_into(ctx, ConstCMatrixView(packet.csi));
  return config_.front_end == FrontEnd::kMusic
             ? music_stage_.run_into(ctx, csi, out)
             : esprit_stage_.run_into(ctx, csi, out);
}

ApOutcome ApProcessor::process_robust(std::span<const CsiPacket> packets,
                                      Rng& rng) const {
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");
  ApOutcome out;

  // Collect every numerical-fallback event fired while this group is
  // processed. Detached: the counters are reported through
  // ApOutcome::numerics only, and the caller (SpotFiServer::try_localize)
  // merges them into its round scope explicitly — process_robust may run
  // on a pool worker where an implicit thread-local fold would be lost,
  // and an implicit fold on the inline path would then double-count.
  NumericsScope numerics_scope{kDetachedScope};
  auto finish = [&]() -> ApOutcome& {
    out.numerics = numerics_scope.counters();
    if (out.numerics.any()) {
      if (!out.note.empty()) out.note += "; ";
      out.note += "numerics: " + out.numerics.summary();
    }
    return out;
  };

  // Screen unconditionally on the robust path: it exists precisely
  // because input may be corrupt, so a missing quality config means
  // defaults, not no screening.
  const QualityConfig quality = config_.quality.value_or(QualityConfig{});
  const std::vector<CsiPacket> screened = screen_group(packets, quality);

  // One fallback rung = one pipeline run with a substituted estimate
  // stage; the orchestration below only decides WHICH stage runs, never
  // HOW a group is processed.
  auto attempt = [&](ApStage stage, const PacketEstimateStage& estimate) {
    try {
      out.stage_breakdown = StageBreakdown{};
      const EstimationPipeline pipeline = make_pipeline(estimate);
      SpanPacketSource source(screened);
      StageContext ctx;
      ctx.rng = &rng;
      ctx.breakdown = &out.stage_breakdown;
      ApResult candidate =
          pipeline.run_group(ctx, source, pose_, &out.workspace_peak_bytes);
      // An estimator can "succeed" on corrupt input by propagating NaNs
      // into the observation; that counts as a stage failure.
      const ApObservation& obs = candidate.observation;
      if (!std::isfinite(obs.direct_aoa_rad) ||
          !std::isfinite(obs.likelihood) || !std::isfinite(obs.rssi_dbm) ||
          obs.likelihood <= 0.0) {
        throw NumericalError("produced a non-finite observation");
      }
      out.result = std::move(candidate);
      out.stage = stage;
      out.usable = true;
      return true;
    } catch (const std::exception& e) {
      if (!out.note.empty()) out.note += "; ";
      out.note += std::string(to_string(stage)) + ": " + e.what();
      return false;
    }
  };

  // The overload ladder's entry point: stages before `entry` are skipped
  // outright; the entry stage itself always runs; stages after it run
  // only when the fallback chain is enabled.
  const ApStage entry = config_.fallback.entry_stage;
  SPOTFI_EXPECTS(entry != ApStage::kFailed,
                 "entry_stage must name a runnable stage");
  const auto stage_allowed = [&](ApStage stage) {
    if (stage < entry) return false;
    if (stage == entry) return true;
    return config_.fallback.enabled;
  };

  if (!screened.empty()) {
    const bool primary_is_music = config_.front_end == FrontEnd::kMusic;
    // Lazily built on first use: the relaxed rung needs its own
    // (coarser-grid) estimator, which most groups never reach.
    std::optional<JointMusicEstimator> relaxed;
    std::optional<MusicEstimateStage> relaxed_stage;
    const auto rung_stage =
        [&](ApStage stage) -> const PacketEstimateStage* {
      switch (stage) {
        case ApStage::kPrimary:
          return primary_is_music
                     ? static_cast<const PacketEstimateStage*>(&music_stage_)
                     : static_cast<const PacketEstimateStage*>(&esprit_stage_);
        case ApStage::kRelaxedMusic:
          if (!relaxed) {
            relaxed.emplace(link_, relaxed_music(config_.music));
            relaxed_stage.emplace(*relaxed);
          }
          return &*relaxed_stage;
        case ApStage::kEsprit:
          // Retrying ESPRIT after an ESPRIT-primary failure is
          // redundant — unless the ladder *enters* at ESPRIT, in which
          // case it is the requested estimator, not a retry.
          if (!primary_is_music && entry != ApStage::kEsprit) return nullptr;
          return &esprit_stage_;
        default:
          return nullptr;
      }
    };
    constexpr ApStage kLadder[] = {ApStage::kPrimary, ApStage::kRelaxedMusic,
                                   ApStage::kEsprit};
    for (const ApStage stage : kLadder) {
      if (!stage_allowed(stage)) continue;
      const PacketEstimateStage* estimate = rung_stage(stage);
      if (estimate == nullptr) continue;
      if (attempt(stage, *estimate)) return finish();
    }
  } else {
    out.note = "quality screen rejected every packet in the group";
  }

  if (stage_allowed(ApStage::kRssiOnly)) {
    // Last resort: RSSI-only. Even a packet whose CSI matrix is corrupt
    // can carry a valid RSSI report, so average over the raw group.
    double rssi_sum = 0.0;
    std::size_t n_rssi = 0;
    for (const auto& packet : packets) {
      if (std::isfinite(packet.rssi_dbm)) {
        rssi_sum += packet.rssi_dbm;
        ++n_rssi;
      }
    }
    if (n_rssi > 0) {
      out.result = ApResult{};
      out.result.observation.pose = pose_;
      out.result.observation.has_aoa = false;
      out.result.observation.likelihood = config_.fallback.rssi_only_likelihood;
      out.result.observation.rssi_dbm =
          rssi_sum / static_cast<double>(n_rssi);
      out.stage = ApStage::kRssiOnly;
      out.usable = true;
      return finish();
    }
    if (!out.note.empty()) out.note += "; ";
    out.note += "rssi-only: no finite RSSI in the group";
  }

  out.result = ApResult{};
  out.result.observation.pose = pose_;
  out.result.observation.likelihood = 0.0;  // ignored by the localizer
  out.stage = ApStage::kFailed;
  out.usable = false;
  return finish();
}

}  // namespace spotfi
