#include "core/server.hpp"

namespace spotfi {

SpotFiServer::SpotFiServer(LinkConfig link, ServerConfig config)
    : link_(link), config_(std::move(config)) {}

LocalizationRound SpotFiServer::localize(std::span<const ApCapture> captures,
                                         Rng& rng) const {
  SPOTFI_EXPECTS(captures.size() >= 2, "need at least two APs");

  LocalizationRound round;
  std::vector<ApObservation> observations;
  observations.reserve(captures.size());
  for (const auto& capture : captures) {
    const ApProcessor processor(link_, capture.pose, config_.ap);
    round.ap_results.push_back(processor.process(capture.packets, rng));
    observations.push_back(round.ap_results.back().observation);
  }

  const SpotFiLocalizer localizer(config_.localizer);
  round.location = localizer.locate(observations);
  return round;
}

}  // namespace spotfi
