#include "core/server.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace spotfi {

SpotFiServer::SpotFiServer(LinkConfig link, ServerConfig config)
    : link_(link), config_(std::move(config)) {
  if (config_.shared_pool) {
    // An injected pool wins outright; a pool of size 1 (post-shutdown or
    // deliberately serial) still routes through it, which keeps arena
    // selection consistent across the sessions sharing it.
    pool_ = config_.shared_pool;
    return;
  }
  const std::size_t threads = ThreadPool::resolve_threads(config_.num_threads);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
}

std::size_t SpotFiServer::num_threads() const {
  return pool_ ? pool_->size() : 1;
}

void SpotFiServer::for_each_ap(
    std::size_t n, const std::function<void(std::size_t)>& task) const {
  if (pool_) {
    pool_->parallel_for(n, task);
  } else {
    for (std::size_t i = 0; i < n; ++i) task(i);
  }
}

ApProcessorConfig SpotFiServer::ap_config() const {
  ApProcessorConfig cfg = config_.ap;
  // The per-packet fan-out shares the per-AP pool: when the AP tasks
  // already occupy the workers, nested dispatch runs inline; when there
  // are fewer APs than lanes (or a caller drives ApProcessor directly),
  // the packet loop picks up the slack.
  cfg.pool = pool_.get();
  return cfg;
}

LocalizationRound SpotFiServer::localize(std::span<const ApCapture> captures,
                                         Rng& rng) const {
  SPOTFI_EXPECTS(captures.size() >= 2, "need at least two APs");

  // Fork one Rng stream per AP *before* dispatch, in capture order: the
  // estimates are then a pure function of (captures, seed), independent
  // of how many threads ran the APs or in which order they finished.
  const std::size_t n = captures.size();
  std::vector<Rng> streams;
  streams.reserve(n);
  for (std::size_t i = 0; i < n; ++i) streams.push_back(rng.fork());

  const ApProcessorConfig ap_cfg = ap_config();
  std::vector<ApResult> results(n);
  for_each_ap(n, [&](std::size_t i) {
    const ApProcessor processor(link_, captures[i].pose, ap_cfg);
    results[i] = processor.process(captures[i].packets, streams[i]);
  });

  LocalizationRound round;
  round.ap_results.reserve(n);
  std::vector<ApObservation> observations;
  observations.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    observations.push_back(results[i].observation);
    round.ap_results.push_back(std::move(results[i]));
  }

  const SpotFiLocalizer localizer(config_.localizer);
  round.location = localizer.locate(observations);
  return round;
}

Expected<LocalizationRound, RoundError> SpotFiServer::try_localize(
    std::span<const ApCapture> captures, Rng& rng) const {
  if (captures.size() < 2) {
    return RoundError{"need at least two AP captures", 0};
  }

  // Fork one Rng stream per AP *before* dispatch, in capture order (see
  // localize()): results are a pure function of (captures, seed).
  std::vector<Rng> streams;
  streams.reserve(captures.size());
  for (std::size_t i = 0; i < captures.size(); ++i) {
    streams.push_back(rng.fork());
  }
  return try_localize_forked(captures, streams);
}

Expected<LocalizationRound, RoundError> SpotFiServer::try_localize_forked(
    std::span<const ApCapture> captures, std::span<Rng> streams) const {
  SPOTFI_EXPECTS(streams.size() == captures.size() && captures.size() >= 2,
                 "try_localize_forked needs one forked stream per capture");

  // Per-AP stage: same deterministic fan-out as localize(), but through
  // the robust fallback chain. Each AP's numerics counters ride home in
  // its ApOutcome (process_robust collects into a detached scope), and
  // are merged into the round scope below in capture order.
  const std::size_t n = captures.size();
  const ApProcessorConfig ap_cfg = ap_config();
  std::vector<ApOutcome> outcomes(n);
  for_each_ap(n, [&](std::size_t i) {
    if (captures[i].packets.empty()) return;  // folded below
    const ApProcessor processor(link_, captures[i].pose, ap_cfg);
    outcomes[i] = processor.process_robust(captures[i].packets, streams[i]);
  });

  // Round-wide numerics telemetry: the merged per-AP counters plus
  // fusion-stage events (localizer multi-start rejections, LOO subset
  // solves) land here.
  NumericsScope numerics_scope;

  // Fusion-stage scratch comes off the dispatching thread's arena; the
  // frame also meters the stage's peak footprint for the round telemetry.
  Workspace& ws = pool_ ? pool_->workspace() : thread_workspace();
  Workspace::Frame fusion_frame(ws);

  LocalizationRound round;
  round.ap_results.reserve(n);
  round.ap_stages.reserve(n);
  std::vector<ApObservation> usable;
  std::vector<std::size_t> usable_ap;  ///< capture index per usable obs
  for (std::size_t i = 0; i < n; ++i) {
    if (captures[i].packets.empty()) {
      round.ap_results.emplace_back();
      round.ap_results.back().observation.pose = captures[i].pose;
      round.ap_results.back().observation.likelihood = 0.0;
      round.ap_stages.push_back(ApStage::kFailed);
      round.notes.push_back("ap " + std::to_string(i) + ": empty capture");
      round.degraded = true;
      continue;
    }
    ApOutcome& outcome = outcomes[i];
    count_numerics(outcome.numerics);
    round.workspace_peak_bytes =
        std::max(round.workspace_peak_bytes, outcome.workspace_peak_bytes);
    round.stage_breakdown.merge(outcome.stage_breakdown);
    round.ap_stages.push_back(outcome.stage);
    if (outcome.stage != ApStage::kPrimary) {
      round.degraded = true;
      std::string note =
          "ap " + std::to_string(i) + ": " + to_string(outcome.stage);
      if (!outcome.note.empty()) note += " (" + outcome.note + ")";
      round.notes.push_back(std::move(note));
    } else if (outcome.numerics.any()) {
      // The primary estimator succeeded but leaned on a numerical
      // fallback. Worth a note — not a degradation: `degraded` keeps
      // meaning "past the primary estimator or an outlier was rejected".
      round.notes.push_back("ap " + std::to_string(i) +
                            ": numerics: " + outcome.numerics.summary());
    }
    if (outcome.usable) {
      usable.push_back(outcome.result.observation);
      usable_ap.push_back(i);
    }
    round.ap_results.push_back(std::move(outcome.result));
  }

  if (usable.size() < 2) {
    return RoundError{"fewer than two usable AP observations", usable.size()};
  }

  // The fusion solves run through the localize stage so the round's
  // kLocalize telemetry bucket covers the primary solve and every LOO
  // re-solve alike.
  const SpotFiLocalizer localizer(config_.localizer);
  const LocalizeStage localize_stage(localizer);
  StageContext fusion_ctx;
  fusion_ctx.ws = &ws;
  fusion_ctx.breakdown = &round.stage_breakdown;
  fusion_ctx.frame = &fusion_frame;
  try {
    round.location = localize_stage.run_into(
        fusion_ctx, std::span<const ApObservation>(usable));
  } catch (const std::exception& e) {
    return RoundError{std::string("localizer: ") + e.what(), usable.size()};
  }

  // Leave-one-out residual rejection. For each AP, solve without it and
  // measure how far its measured bearing misses the consensus of the
  // others; greedily reject the worst offender past the angular
  // threshold and repeat on the survivors. A lying AP drags every subset
  // that still contains it, so a single pass can finger the wrong AP —
  // iterating until nothing exceeds the threshold (or the floor is hit)
  // peels outliers off one at a time.
  const FusionConfig& fusion = config_.fusion;
  if (fusion.loo_rejection) {
    while (usable.size() > fusion.loo_min_aps) {
      std::vector<double> misses;
      double worst_miss = 0.0;
      std::size_t worst = usable.size();
      LocationEstimate worst_estimate;
      for (std::size_t drop = 0; drop < usable.size(); ++drop) {
        if (!usable[drop].has_aoa) continue;  // no bearing to disagree with
        Workspace::Frame loo_frame(ws);
        const std::span<ApObservation> subset =
            ws.take<ApObservation>(usable.size() - 1);
        std::size_t fill = 0;
        for (std::size_t j = 0; j < usable.size(); ++j) {
          if (j != drop) subset[fill++] = usable[j];
        }
        StageContext loo_ctx;
        loo_ctx.ws = &ws;
        loo_ctx.breakdown = &round.stage_breakdown;
        loo_ctx.frame = &loo_frame;
        try {
          const LocationEstimate est = localize_stage.run_into(
              loo_ctx, std::span<const ApObservation>(subset));
          const double miss = std::abs(
              wrap_pi(usable[drop].pose.apparent_aoa_of(est.position) -
                      usable[drop].direct_aoa_rad));
          misses.push_back(miss);
          if (miss > worst_miss) {
            worst_miss = miss;
            worst = drop;
            worst_estimate = est;
          }
        } catch (const std::exception&) {
          // A degenerate subset just doesn't participate.
        }
      }
      if (worst >= usable.size() || worst_miss <= fusion.loo_max_aoa_miss_rad ||
          worst_miss <= fusion.loo_median_factor * median(misses)) {
        break;
      }
      round.location = worst_estimate;
      round.rejected_aps.push_back(usable_ap[worst]);
      round.degraded = true;
      round.notes.push_back(
          "ap " + std::to_string(usable_ap[worst]) +
          ": rejected as outlier by leave-one-out residuals");
      usable.erase(usable.begin() + static_cast<std::ptrdiff_t>(worst));
      usable_ap.erase(usable_ap.begin() + static_cast<std::ptrdiff_t>(worst));
    }
  }
  round.numerics = numerics_scope.counters();
  round.workspace_peak_bytes =
      std::max(round.workspace_peak_bytes, fusion_frame.peak_bytes());
  return round;
}

}  // namespace spotfi
