#include "core/server.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"

namespace spotfi {

SpotFiServer::SpotFiServer(LinkConfig link, ServerConfig config)
    : link_(link), config_(std::move(config)) {}

LocalizationRound SpotFiServer::localize(std::span<const ApCapture> captures,
                                         Rng& rng) const {
  SPOTFI_EXPECTS(captures.size() >= 2, "need at least two APs");

  LocalizationRound round;
  std::vector<ApObservation> observations;
  observations.reserve(captures.size());
  for (const auto& capture : captures) {
    const ApProcessor processor(link_, capture.pose, config_.ap);
    round.ap_results.push_back(processor.process(capture.packets, rng));
    observations.push_back(round.ap_results.back().observation);
  }

  const SpotFiLocalizer localizer(config_.localizer);
  round.location = localizer.locate(observations);
  return round;
}

Expected<LocalizationRound, RoundError> SpotFiServer::try_localize(
    std::span<const ApCapture> captures, Rng& rng) const {
  if (captures.size() < 2) {
    return RoundError{"need at least two AP captures", 0};
  }

  // Round-wide numerics telemetry: per-AP scopes inside process_robust
  // fold into this one, and fusion-stage events (localizer multi-start
  // rejections, LOO subset solves) land here directly.
  NumericsScope numerics_scope;

  LocalizationRound round;
  round.ap_results.reserve(captures.size());
  round.ap_stages.reserve(captures.size());
  std::vector<ApObservation> usable;
  std::vector<std::size_t> usable_ap;  ///< capture index per usable obs
  for (std::size_t i = 0; i < captures.size(); ++i) {
    const auto& capture = captures[i];
    if (capture.packets.empty()) {
      round.ap_results.emplace_back();
      round.ap_results.back().observation.pose = capture.pose;
      round.ap_results.back().observation.likelihood = 0.0;
      round.ap_stages.push_back(ApStage::kFailed);
      round.notes.push_back("ap " + std::to_string(i) + ": empty capture");
      round.degraded = true;
      continue;
    }
    const ApProcessor processor(link_, capture.pose, config_.ap);
    ApOutcome outcome = processor.process_robust(capture.packets, rng);
    round.ap_stages.push_back(outcome.stage);
    if (outcome.stage != ApStage::kPrimary) {
      round.degraded = true;
      std::string note =
          "ap " + std::to_string(i) + ": " + to_string(outcome.stage);
      if (!outcome.note.empty()) note += " (" + outcome.note + ")";
      round.notes.push_back(std::move(note));
    } else if (outcome.numerics.any()) {
      // The primary estimator succeeded but leaned on a numerical
      // fallback. Worth a note — not a degradation: `degraded` keeps
      // meaning "past the primary estimator or an outlier was rejected".
      round.notes.push_back("ap " + std::to_string(i) +
                            ": numerics: " + outcome.numerics.summary());
    }
    if (outcome.usable) {
      usable.push_back(outcome.result.observation);
      usable_ap.push_back(i);
    }
    round.ap_results.push_back(std::move(outcome.result));
  }

  if (usable.size() < 2) {
    return RoundError{"fewer than two usable AP observations", usable.size()};
  }

  const SpotFiLocalizer localizer(config_.localizer);
  try {
    round.location = localizer.locate(usable);
  } catch (const std::exception& e) {
    return RoundError{std::string("localizer: ") + e.what(), usable.size()};
  }

  // Leave-one-out residual rejection. For each AP, solve without it and
  // measure how far its measured bearing misses the consensus of the
  // others; greedily reject the worst offender past the angular
  // threshold and repeat on the survivors. A lying AP drags every subset
  // that still contains it, so a single pass can finger the wrong AP —
  // iterating until nothing exceeds the threshold (or the floor is hit)
  // peels outliers off one at a time.
  const FusionConfig& fusion = config_.fusion;
  if (fusion.loo_rejection) {
    while (usable.size() > fusion.loo_min_aps) {
      std::vector<double> misses;
      double worst_miss = 0.0;
      std::size_t worst = usable.size();
      LocationEstimate worst_estimate;
      for (std::size_t drop = 0; drop < usable.size(); ++drop) {
        if (!usable[drop].has_aoa) continue;  // no bearing to disagree with
        std::vector<ApObservation> subset;
        subset.reserve(usable.size() - 1);
        for (std::size_t j = 0; j < usable.size(); ++j) {
          if (j != drop) subset.push_back(usable[j]);
        }
        try {
          const LocationEstimate est = localizer.locate(subset);
          const double miss = std::abs(
              wrap_pi(usable[drop].pose.apparent_aoa_of(est.position) -
                      usable[drop].direct_aoa_rad));
          misses.push_back(miss);
          if (miss > worst_miss) {
            worst_miss = miss;
            worst = drop;
            worst_estimate = est;
          }
        } catch (const std::exception&) {
          // A degenerate subset just doesn't participate.
        }
      }
      if (worst >= usable.size() || worst_miss <= fusion.loo_max_aoa_miss_rad ||
          worst_miss <= fusion.loo_median_factor * median(misses)) {
        break;
      }
      round.location = worst_estimate;
      round.rejected_aps.push_back(usable_ap[worst]);
      round.degraded = true;
      round.notes.push_back(
          "ap " + std::to_string(usable_ap[worst]) +
          ": rejected as outlier by leave-one-out residuals");
      usable.erase(usable.begin() + static_cast<std::ptrdiff_t>(worst));
      usable_ap.erase(usable_ap.begin() + static_cast<std::ptrdiff_t>(worst));
    }
  }
  round.numerics = numerics_scope.counters();
  return round;
}

}  // namespace spotfi
