#include "core/session_manager.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace spotfi {
namespace {

const Clock& default_clock() {
  static const MonotonicClock clock;
  return clock;
}

}  // namespace

/// Per-tenant state. Address-stable (held by shared_ptr) because the
/// round planner closure keeps a raw pointer back into it. Counters
/// that cross the producer/consumer boundary are relaxed atomics —
/// they are telemetry, not synchronization.
struct SessionManager::Session {
  Session(const LinkConfig& link, const SessionConfig& cfg,
          StreamingConfig streaming)
      : id(0),
        localizer(link, std::move(streaming)),
        queue(cfg.overload.queue_capacity),
        policy(cfg.overload),
        cost(cfg.overload),
        rng(cfg.seed) {}

  SessionId id;
  StreamingLocalizer localizer;
  SpscQueue<IngestItem> queue;
  OverloadPolicy policy;
  RoundCostModel cost;
  Rng rng;

  // Producer-side counters.
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> degraded_admissions{0};
  std::atomic<std::uint64_t> shed_packets{0};
  // Pump-side counters (atomic so stats snapshots from other threads
  // never race; only the pump thread writes them).
  std::atomic<std::uint64_t> rounds_full{0};
  std::atomic<std::uint64_t> rounds_degraded{0};
  std::atomic<std::uint64_t> rounds_shed{0};
  std::atomic<std::uint64_t> deadline_limited_rounds{0};
  std::atomic<std::uint64_t> deadline_misses{0};
  std::atomic<std::uint64_t> fixes{0};
  std::atomic<std::uint64_t> failed_rounds{0};

  /// The plan of the round currently firing, written by the planner
  /// closure and read back by the pump right after push() returns.
  /// Pump-thread-only.
  RoundPlan last_plan{};

  [[nodiscard]] SessionStats snapshot() const {
    SessionStats s;
    s.offered = offered.load(std::memory_order_relaxed);
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.degraded_admissions =
        degraded_admissions.load(std::memory_order_relaxed);
    s.shed_packets = shed_packets.load(std::memory_order_relaxed);
    s.queue_high_water = queue.high_water();
    s.queue_capacity = queue.capacity();
    s.rounds_full = rounds_full.load(std::memory_order_relaxed);
    s.rounds_degraded = rounds_degraded.load(std::memory_order_relaxed);
    s.rounds_shed = rounds_shed.load(std::memory_order_relaxed);
    s.deadline_limited_rounds =
        deadline_limited_rounds.load(std::memory_order_relaxed);
    s.deadline_misses = deadline_misses.load(std::memory_order_relaxed);
    s.fixes = fixes.load(std::memory_order_relaxed);
    s.failed_rounds = failed_rounds.load(std::memory_order_relaxed);
    return s;
  }

  /// Runs one popped item through the localizer with full overload
  /// accounting. Pump-thread-only.
  [[nodiscard]] std::optional<LocationFix> run_item(IngestItem&& item,
                                                    const Clock& clock,
                                                    double deadline_s) {
    const std::uint64_t shed_before = localizer.shed_rounds();
    const std::uint64_t failed_before = localizer.failed_rounds();
    last_plan = RoundPlan{};
    const double t0 = clock.now_s();
    auto fix = localizer.push(item.ap_id, std::move(item.packet), rng);
    const double dt = clock.now_s() - t0;

    const bool round_shed = localizer.shed_rounds() != shed_before;
    const bool round_failed = localizer.failed_rounds() != failed_before;
    const bool round_planned = fix.has_value() || round_shed || round_failed;
    if (!round_planned) return fix;  // no round fired on this packet

    if (last_plan.deadline_limited) {
      deadline_limited_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (round_shed) {
      rounds_shed.fetch_add(1, std::memory_order_relaxed);
      return fix;
    }
    // The round actually ran: fold its measured cost back into the
    // model so the next deadline decision sees it.
    cost.observe(last_plan.level, dt);
    if (last_plan.level == ShedLevel::kFull) {
      rounds_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      rounds_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline_s > 0.0 && dt > deadline_s) {
      deadline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    if (round_failed) {
      failed_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (fix) fixes.fetch_add(1, std::memory_order_relaxed);
    return fix;
  }
};

SessionManager::SessionManager(LinkConfig link, SessionManagerConfig config)
    : link_(link),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &default_clock()) {
  const std::size_t threads = ThreadPool::resolve_threads(config_.num_threads);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

SessionId SessionManager::open_session(const SessionConfig& config) {
  SPOTFI_EXPECTS(config.aps.size() >= 2,
                 "a session needs at least two APs");
  StreamingConfig streaming = config.streaming;
  // One pool for every tenant: a session never spawns threads of its
  // own, regardless of what its ServerConfig asked for.
  streaming.server.shared_pool = pool_;
  streaming.server.num_threads = pool_ ? pool_->size() : 1;

  auto session = std::make_shared<Session>(link_, config, std::move(streaming));
  for (const ArrayPose& pose : config.aps) {
    (void)session->localizer.add_ap(pose);
  }
  // The planner closure is installed once per session (no per-packet
  // std::function churn): occupancy comes straight off the SPSC queue,
  // deadline slack from the session's own cost model.
  Session* raw = session.get();
  session->localizer.set_round_planner(
      [raw](std::size_t /*n_aps*/, double /*now_s*/) {
        raw->last_plan = raw->policy.plan_round(raw->queue.size(), raw->cost);
        return raw->last_plan;
      });

  const std::lock_guard<std::mutex> lock(mutex_);
  session->id = next_id_++;
  sessions_.push_back(std::move(session));
  return sessions_.back()->id;
}

void SessionManager::close_session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      std::find_if(sessions_.begin(), sessions_.end(),
                   [id](const auto& s) { return s->id == id; });
  if (it == sessions_.end()) {
    throw ContractViolation("close_session: unknown session id " +
                            std::to_string(id));
  }
  fold_stats(retired_, (*it)->snapshot());
  sessions_.erase(it);
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    SessionId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      std::find_if(sessions_.begin(), sessions_.end(),
                   [id](const auto& s) { return s->id == id; });
  if (it == sessions_.end()) {
    throw ContractViolation("unknown session id " + std::to_string(id));
  }
  return *it;
}

AdmissionVerdict SessionManager::offer(SessionId id, std::size_t ap_id,
                                       CsiPacket packet) {
  IngestItem item;
  item.ap_id = ap_id;
  item.packet = std::move(packet);
  return offer_or_return(id, item);
}

AdmissionVerdict SessionManager::offer_or_return(SessionId id,
                                                 IngestItem& item) {
  const auto session = find(id);
  session->offered.fetch_add(1, std::memory_order_relaxed);
  // Grade the entitlement on the depth observed *before* the push, then
  // let the queue itself arbitrate "full": try_push failure is the shed
  // signal, so admission can never block and never lies about capacity.
  // On failure try_push has not touched `item` — that guarantee is what
  // lets the transport receiver retry a refused frame without copying.
  AdmissionVerdict verdict = session->policy.admit(session->queue.size());
  if (!session->queue.try_push(std::move(item))) {
    verdict.kind = AdmissionVerdict::Kind::kShed;
    verdict.reason = "ingest queue full";
    session->shed_packets.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }
  session->accepted.fetch_add(1, std::memory_order_relaxed);
  if (verdict.kind == AdmissionVerdict::Kind::kDegraded) {
    session->degraded_admissions.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

std::vector<LocationFix> SessionManager::pump(SessionId id) {
  const auto session = find(id);
  const double deadline_s = session->policy.config().round_deadline_s;
  std::vector<LocationFix> out;
  while (auto item = session->queue.try_pop()) {
    if (auto fix = session->run_item(std::move(*item), *clock_, deadline_s)) {
      out.push_back(std::move(*fix));
    }
  }
  return out;
}

std::optional<LocationFix> SessionManager::poll(SessionId id, double now_s) {
  const auto session = find(id);
  const std::uint64_t shed_before = session->localizer.shed_rounds();
  const std::uint64_t failed_before = session->localizer.failed_rounds();
  session->last_plan = RoundPlan{};
  const double t0 = clock_->now_s();
  auto fix = session->localizer.poll(now_s, session->rng);
  const double dt = clock_->now_s() - t0;
  if (session->localizer.shed_rounds() != shed_before) {
    session->rounds_shed.fetch_add(1, std::memory_order_relaxed);
  } else if (session->localizer.failed_rounds() != failed_before) {
    session->failed_rounds.fetch_add(1, std::memory_order_relaxed);
  } else if (fix) {
    session->cost.observe(session->last_plan.level, dt);
    if (session->last_plan.level == ShedLevel::kFull) {
      session->rounds_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      session->rounds_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    session->fixes.fetch_add(1, std::memory_order_relaxed);
  }
  return fix;
}

std::size_t SessionManager::pump_all() {
  std::vector<std::shared_ptr<Session>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    live = sessions_;
  }
  std::size_t total = 0;
  for (const auto& session : live) {
    const double deadline_s = session->policy.config().round_deadline_s;
    while (auto item = session->queue.try_pop()) {
      if (session->run_item(std::move(*item), *clock_, deadline_s)) ++total;
    }
  }
  return total;
}

SessionStats SessionManager::session_stats(SessionId id) const {
  return find(id)->snapshot();
}

SessionStats SessionManager::global_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SessionStats total = retired_;
  for (const auto& session : sessions_) {
    fold_stats(total, session->snapshot());
  }
  return total;
}

const StreamingLocalizer& SessionManager::localizer(SessionId id) const {
  return find(id)->localizer;
}

std::size_t SessionManager::session_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

void SessionManager::fold_stats(SessionStats& into, const SessionStats& from) {
  into.offered += from.offered;
  into.accepted += from.accepted;
  into.degraded_admissions += from.degraded_admissions;
  into.shed_packets += from.shed_packets;
  into.queue_high_water =
      std::max(into.queue_high_water, from.queue_high_water);
  into.queue_capacity = std::max(into.queue_capacity, from.queue_capacity);
  into.rounds_full += from.rounds_full;
  into.rounds_degraded += from.rounds_degraded;
  into.rounds_shed += from.rounds_shed;
  into.deadline_limited_rounds += from.deadline_limited_rounds;
  into.deadline_misses += from.deadline_misses;
  into.fixes += from.fixes;
  into.failed_rounds += from.failed_rounds;
}

}  // namespace spotfi
