#include "core/session_manager.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace spotfi {
namespace {

const Clock& default_clock() {
  static const MonotonicClock clock;
  return clock;
}

}  // namespace

/// Per-tenant state. Address-stable (held by shared_ptr) because the
/// round planner closure keeps a raw pointer back into it. Counters
/// that cross the producer/consumer boundary are relaxed atomics —
/// they are telemetry, not synchronization.
struct SessionManager::Session {
  Session(const LinkConfig& link, const SessionConfig& cfg,
          StreamingConfig streaming)
      : id(0),
        localizer(link, std::move(streaming)),
        queue(cfg.overload.queue_capacity),
        policy(cfg.overload),
        cost(cfg.overload),
        rng(cfg.seed) {}

  SessionId id;
  StreamingLocalizer localizer;
  SpscQueue<IngestItem> queue;
  OverloadPolicy policy;
  RoundCostModel cost;
  Rng rng;

  // Producer-side counters.
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> degraded_admissions{0};
  std::atomic<std::uint64_t> shed_packets{0};
  // Pump-side counters (atomic so stats snapshots from other threads
  // never race; only the pump thread writes them).
  std::atomic<std::uint64_t> rounds_full{0};
  std::atomic<std::uint64_t> rounds_degraded{0};
  std::atomic<std::uint64_t> rounds_shed{0};
  std::atomic<std::uint64_t> deadline_limited_rounds{0};
  std::atomic<std::uint64_t> deadline_misses{0};
  std::atomic<std::uint64_t> fixes{0};
  std::atomic<std::uint64_t> failed_rounds{0};
  // Durability marks (DESIGN.md §14): how much of the accepted input
  // has been applied through the localizer, and how many durable round
  // ordinals have been handed out.
  std::atomic<std::uint64_t> applied_packets{0};
  std::atomic<std::uint64_t> applied_polls{0};
  std::atomic<std::uint64_t> emitted_fixes{0};
  /// queue_high_water recovered from a snapshot: the queue itself
  /// restarts empty, so the witness carries over as a floor.
  std::size_t high_water_floor = 0;

  /// The plan of the round currently firing, written by the planner
  /// closure and read back by the pump right after push() returns.
  /// Pump-thread-only.
  RoundPlan last_plan{};

  [[nodiscard]] SessionStats snapshot() const {
    SessionStats s;
    s.offered = offered.load(std::memory_order_relaxed);
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.degraded_admissions =
        degraded_admissions.load(std::memory_order_relaxed);
    s.shed_packets = shed_packets.load(std::memory_order_relaxed);
    s.queue_high_water = std::max(queue.high_water(), high_water_floor);
    s.queue_capacity = queue.capacity();
    s.rounds_full = rounds_full.load(std::memory_order_relaxed);
    s.rounds_degraded = rounds_degraded.load(std::memory_order_relaxed);
    s.rounds_shed = rounds_shed.load(std::memory_order_relaxed);
    s.deadline_limited_rounds =
        deadline_limited_rounds.load(std::memory_order_relaxed);
    s.deadline_misses = deadline_misses.load(std::memory_order_relaxed);
    s.fixes = fixes.load(std::memory_order_relaxed);
    s.failed_rounds = failed_rounds.load(std::memory_order_relaxed);
    return s;
  }

  /// Runs one popped item through the localizer with full overload
  /// accounting. Pump-thread-only.
  [[nodiscard]] std::optional<LocationFix> run_item(IngestItem&& item,
                                                    const Clock& clock,
                                                    double deadline_s) {
    const std::uint64_t shed_before = localizer.shed_rounds();
    const std::uint64_t failed_before = localizer.failed_rounds();
    last_plan = RoundPlan{};
    const double t0 = clock.now_s();
    auto fix = localizer.push(item.ap_id, std::move(item.packet), rng);
    const double dt = clock.now_s() - t0;
    applied_packets.fetch_add(1, std::memory_order_relaxed);
    if (fix) {
      fix->durable_round_index =
          emitted_fixes.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    const bool round_shed = localizer.shed_rounds() != shed_before;
    const bool round_failed = localizer.failed_rounds() != failed_before;
    const bool round_planned = fix.has_value() || round_shed || round_failed;
    if (!round_planned) return fix;  // no round fired on this packet

    if (last_plan.deadline_limited) {
      deadline_limited_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (round_shed) {
      rounds_shed.fetch_add(1, std::memory_order_relaxed);
      return fix;
    }
    // The round actually ran: fold its measured cost back into the
    // model so the next deadline decision sees it.
    cost.observe(last_plan.level, dt);
    if (last_plan.level == ShedLevel::kFull) {
      rounds_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      rounds_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline_s > 0.0 && dt > deadline_s) {
      deadline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    if (round_failed) {
      failed_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (fix) fixes.fetch_add(1, std::memory_order_relaxed);
    return fix;
  }

  /// The preparation half of run_item(), for the batched pump_all()
  /// path: runs the planner and ingest through push_deferred() and does
  /// every piece of accounting that is decided at preparation time
  /// (applied mark, shed and deadline-limited counters). Returns the
  /// prepared round when one is ready to execute. Pump-thread-only.
  [[nodiscard]] std::optional<PendingRound> prepare_item(IngestItem&& item) {
    const std::uint64_t shed_before = localizer.shed_rounds();
    last_plan = RoundPlan{};
    auto pending =
        localizer.push_deferred(item.ap_id, std::move(item.packet), rng);
    applied_packets.fetch_add(1, std::memory_order_relaxed);
    const bool round_shed = localizer.shed_rounds() != shed_before;
    if (!pending && !round_shed) return std::nullopt;  // no round planned
    if (last_plan.deadline_limited) {
      deadline_limited_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (round_shed) {
      rounds_shed.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    return pending;
  }

  /// The completion half of run_item(): finishes an executed round and
  /// does the post-execution accounting (cost-model feedback, fidelity
  /// and deadline-miss counters, durable fix ordinal). `dt` is the
  /// measured execution cost, `deadline_s` the session's round deadline.
  /// Pump-thread-only, in preparation order.
  [[nodiscard]] std::optional<LocationFix> complete_prepared(
      PendingRound&& pending, double dt, double deadline_s) {
    const std::uint64_t failed_before = localizer.failed_rounds();
    const ShedLevel level = pending.level;
    auto fix = localizer.complete_round(std::move(pending));
    if (fix) {
      fix->durable_round_index =
          emitted_fixes.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    // The round actually ran: fold its measured cost back into the
    // model so the next deadline decision sees it.
    cost.observe(level, dt);
    if (level == ShedLevel::kFull) {
      rounds_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      rounds_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline_s > 0.0 && dt > deadline_s) {
      deadline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    if (localizer.failed_rounds() != failed_before) {
      failed_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (fix) fixes.fetch_add(1, std::memory_order_relaxed);
    return fix;
  }

  /// Restores a previously exported durable state (quiesced contract).
  void restore(SessionDurableState state) {
    offered.store(state.stats.offered, std::memory_order_relaxed);
    accepted.store(state.stats.accepted, std::memory_order_relaxed);
    degraded_admissions.store(state.stats.degraded_admissions,
                              std::memory_order_relaxed);
    shed_packets.store(state.stats.shed_packets, std::memory_order_relaxed);
    high_water_floor = state.stats.queue_high_water;
    rounds_full.store(state.stats.rounds_full, std::memory_order_relaxed);
    rounds_degraded.store(state.stats.rounds_degraded,
                          std::memory_order_relaxed);
    rounds_shed.store(state.stats.rounds_shed, std::memory_order_relaxed);
    deadline_limited_rounds.store(state.stats.deadline_limited_rounds,
                                  std::memory_order_relaxed);
    deadline_misses.store(state.stats.deadline_misses,
                          std::memory_order_relaxed);
    fixes.store(state.stats.fixes, std::memory_order_relaxed);
    failed_rounds.store(state.stats.failed_rounds, std::memory_order_relaxed);
    applied_packets.store(state.applied_packets, std::memory_order_relaxed);
    applied_polls.store(state.applied_polls, std::memory_order_relaxed);
    emitted_fixes.store(state.emitted_fixes, std::memory_order_relaxed);
    rng.restore(state.rng);
    cost.restore_state(state.cost);
    localizer.restore_state(std::move(state.streaming));
  }
};

SessionManager::SessionManager(LinkConfig link, SessionManagerConfig config)
    : link_(link),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &default_clock()) {
  const std::size_t threads = ThreadPool::resolve_threads(config_.num_threads);
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

std::shared_ptr<SessionManager::Session> SessionManager::make_session(
    const SessionConfig& config) const {
  SPOTFI_EXPECTS(config.aps.size() >= 2,
                 "a session needs at least two APs");
  StreamingConfig streaming = config.streaming;
  // One pool for every tenant: a session never spawns threads of its
  // own, regardless of what its ServerConfig asked for.
  streaming.server.shared_pool = pool_;
  streaming.server.num_threads = pool_ ? pool_->size() : 1;

  auto session = std::make_shared<Session>(link_, config, std::move(streaming));
  for (const ArrayPose& pose : config.aps) {
    (void)session->localizer.add_ap(pose);
  }
  // The planner closure is installed once per session (no per-packet
  // std::function churn): occupancy comes straight off the SPSC queue,
  // deadline slack from the session's own cost model.
  Session* raw = session.get();
  session->localizer.set_round_planner(
      [raw](std::size_t /*n_aps*/, double /*now_s*/) {
        raw->last_plan = raw->policy.plan_round(raw->queue.size(), raw->cost);
        return raw->last_plan;
      });
  return session;
}

SessionId SessionManager::open_session(const SessionConfig& config) {
  auto session = make_session(config);
  const std::lock_guard<std::mutex> lock(mutex_);
  reap_draining_locked();
  session->id = next_id_++;
  sessions_.push_back(std::move(session));
  return sessions_.back()->id;
}

void SessionManager::close_session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id >= next_id_) {
    throw ContractViolation("close_session: unknown session id " +
                            std::to_string(id));
  }
  const auto it =
      std::find_if(sessions_.begin(), sessions_.end(),
                   [id](const auto& s) { return s->id == id; });
  if (it != sessions_.end()) {
    // A racing final pump() may still hold a reference; move the session
    // to the draining list and retire its stats only once that
    // reference drops, so late round counters are never lost.
    draining_.push_back(std::move(*it));
    sessions_.erase(it);
  }
  // else: the id was issued but is already closed — idempotent no-op.
  reap_draining_locked();
}

void SessionManager::reap_draining_locked() {
  auto it = draining_.begin();
  while (it != draining_.end()) {
    if (it->use_count() == 1) {
      fold_stats(retired_, (*it)->snapshot());
      it = draining_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    SessionId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      std::find_if(sessions_.begin(), sessions_.end(),
                   [id](const auto& s) { return s->id == id; });
  if (it == sessions_.end()) {
    throw ContractViolation("unknown session id " + std::to_string(id));
  }
  return *it;
}

AdmissionVerdict SessionManager::offer(SessionId id, std::size_t ap_id,
                                       CsiPacket packet) {
  IngestItem item;
  item.ap_id = ap_id;
  item.packet = std::move(packet);
  return offer_or_return(id, item);
}

AdmissionVerdict SessionManager::offer_or_return(SessionId id,
                                                 IngestItem& item) {
  const auto session = find(id);
  session->offered.fetch_add(1, std::memory_order_relaxed);
  // Grade the entitlement on the depth observed *before* the push, then
  // let the queue itself arbitrate "full": try_push failure is the shed
  // signal, so admission can never block and never lies about capacity.
  // On failure try_push has not touched `item` — that guarantee is what
  // lets the transport receiver retry a refused frame without copying.
  AdmissionVerdict verdict = session->policy.admit(session->queue.size());
  if (!session->queue.try_push(std::move(item))) {
    verdict.kind = AdmissionVerdict::Kind::kShed;
    verdict.reason = "ingest queue full";
    session->shed_packets.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }
  session->accepted.fetch_add(1, std::memory_order_relaxed);
  if (verdict.kind == AdmissionVerdict::Kind::kDegraded) {
    session->degraded_admissions.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

std::vector<LocationFix> SessionManager::pump(SessionId id) {
  const auto session = find(id);
  const double deadline_s = session->policy.config().round_deadline_s;
  std::vector<LocationFix> out;
  while (auto item = session->queue.try_pop()) {
    if (auto fix = session->run_item(std::move(*item), *clock_, deadline_s)) {
      out.push_back(std::move(*fix));
    }
  }
  return out;
}

std::optional<LocationFix> SessionManager::poll(SessionId id, double now_s) {
  const auto session = find(id);
  const std::uint64_t shed_before = session->localizer.shed_rounds();
  const std::uint64_t failed_before = session->localizer.failed_rounds();
  session->last_plan = RoundPlan{};
  const double t0 = clock_->now_s();
  auto fix = session->localizer.poll(now_s, session->rng);
  const double dt = clock_->now_s() - t0;
  session->applied_polls.fetch_add(1, std::memory_order_relaxed);
  if (fix) {
    fix->durable_round_index =
        session->emitted_fixes.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (session->localizer.shed_rounds() != shed_before) {
    session->rounds_shed.fetch_add(1, std::memory_order_relaxed);
  } else if (session->localizer.failed_rounds() != failed_before) {
    session->failed_rounds.fetch_add(1, std::memory_order_relaxed);
  } else if (fix) {
    session->cost.observe(session->last_plan.level, dt);
    if (session->last_plan.level == ShedLevel::kFull) {
      session->rounds_full.fetch_add(1, std::memory_order_relaxed);
    } else {
      session->rounds_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    session->fixes.fetch_add(1, std::memory_order_relaxed);
  }
  return fix;
}

std::size_t SessionManager::pump_all() {
  std::vector<std::shared_ptr<Session>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    live = sessions_;
  }

  /// One prepared round waiting in the shared batch. The shared_ptr
  /// keeps the session alive across the three phases even if a racing
  /// close_session() retires it mid-batch.
  struct BatchedRound {
    std::shared_ptr<Session> session;
    PendingRound round;
    double deadline_s = 0.0;
    double dt = 0.0;
  };

  // Phase 1 — prepare, serially in id order: drain every queue through
  // the planner, popping captures and forking Rng streams on this
  // thread. Everything order-sensitive happens here, so phases 2 and 3
  // cannot perturb any session's deterministic stream.
  std::vector<BatchedRound> batch;
  for (const auto& session : live) {
    const double deadline_s = session->policy.config().round_deadline_s;
    while (auto item = session->queue.try_pop()) {
      if (auto pending = session->prepare_item(std::move(*item))) {
        batch.push_back(
            BatchedRound{session, std::move(*pending), deadline_s, 0.0});
      }
    }
  }

  // Phase 2 — execute the shared batch: each prepared round is a
  // self-contained pure function of its captures and forked streams, so
  // rounds from different tenants (or several rounds of one tenant) run
  // concurrently on the pool, sharing its lane arenas and the process-
  // wide steering-table cache.
  const auto execute = [&](std::size_t i) {
    BatchedRound& r = batch[i];
    const double t0 = clock_->now_s();
    r.session->localizer.execute_round(r.round);
    r.dt = clock_->now_s() - t0;
  };
  if (pool_ && batch.size() > 1) {
    pool_->parallel_for(batch.size(), execute);
    batched_rounds_.fetch_add(batch.size(), std::memory_order_relaxed);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) execute(i);
  }

  // Phase 3 — complete, serially in preparation order: fix assembly,
  // tracker updates, cost-model feedback, and durable fix ordinals land
  // exactly as the per-session pump() sequence would have produced them.
  std::size_t total = 0;
  for (BatchedRound& r : batch) {
    if (r.session->complete_prepared(std::move(r.round), r.dt, r.deadline_s)) {
      ++total;
    }
  }
  return total;
}

SessionStats SessionManager::session_stats(SessionId id) const {
  return find(id)->snapshot();
}

SessionStats SessionManager::global_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SessionStats total = retired_;
  for (const auto& session : sessions_) {
    fold_stats(total, session->snapshot());
  }
  // Closed sessions whose final pump() has not let go yet: their
  // counters are final-or-growing, never folded into retired_ until the
  // last reference drops, so counting their live snapshot here keeps
  // the global totals exact at every instant.
  for (const auto& session : draining_) {
    fold_stats(total, session->snapshot());
  }
  return total;
}

const StreamingLocalizer& SessionManager::localizer(SessionId id) const {
  return find(id)->localizer;
}

std::size_t SessionManager::session_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<SessionId> SessionManager::session_ids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& session : sessions_) ids.push_back(session->id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

SessionId SessionManager::next_session_id() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

void SessionManager::advance_session_ids(SessionId next) {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = std::max(next_id_, next);
}

SessionStats SessionManager::retired_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SessionStats total = retired_;
  for (const auto& session : draining_) {
    fold_stats(total, session->snapshot());
  }
  return total;
}

void SessionManager::restore_retired_stats(const SessionStats& retired) {
  const std::lock_guard<std::mutex> lock(mutex_);
  retired_ = retired;
}

void SessionManager::reopen_session(SessionId id, const SessionConfig& config) {
  SPOTFI_EXPECTS(id != 0, "reopen_session: id 0 is never issued");
  auto session = make_session(config);
  const std::lock_guard<std::mutex> lock(mutex_);
  reap_draining_locked();
  const bool live =
      std::any_of(sessions_.begin(), sessions_.end(),
                  [id](const auto& s) { return s->id == id; }) ||
      std::any_of(draining_.begin(), draining_.end(),
                  [id](const auto& s) { return s->id == id; });
  SPOTFI_EXPECTS(!live, "reopen_session: id collides with a live session");
  session->id = id;
  sessions_.push_back(std::move(session));
  // Ids issued by any previous incarnation stay burned forever.
  next_id_ = std::max(next_id_, id + 1);
}

SessionDurableState SessionManager::export_session_state(SessionId id) const {
  const auto session = find(id);
  SessionDurableState out;
  out.id = session->id;
  out.stats = session->snapshot();
  out.applied_packets =
      session->applied_packets.load(std::memory_order_relaxed);
  out.applied_polls = session->applied_polls.load(std::memory_order_relaxed);
  out.emitted_fixes = session->emitted_fixes.load(std::memory_order_relaxed);
  out.rng = session->rng.state();
  out.cost = session->cost.export_state();
  out.streaming = session->localizer.export_state();
  return out;
}

void SessionManager::restore_session_state(SessionId id,
                                           SessionDurableState state) {
  SPOTFI_EXPECTS(state.id == id,
                 "restore_session_state: state belongs to another session");
  find(id)->restore(std::move(state));
}

std::optional<LocationFix> SessionManager::replay_packet(
    SessionId id, std::size_t ap_id, CsiPacket packet, bool count_admission) {
  const auto session = find(id);
  if (count_admission) {
    session->offered.fetch_add(1, std::memory_order_relaxed);
    session->accepted.fetch_add(1, std::memory_order_relaxed);
  }
  IngestItem item;
  item.ap_id = ap_id;
  item.packet = std::move(packet);
  const double deadline_s = session->policy.config().round_deadline_s;
  return session->run_item(std::move(item), *clock_, deadline_s);
}

std::optional<LocationFix> SessionManager::replay_poll(SessionId id,
                                                       double now_s) {
  return poll(id, now_s);
}

std::uint64_t SessionManager::applied_packets(SessionId id) const {
  return find(id)->applied_packets.load(std::memory_order_relaxed);
}

std::uint64_t SessionManager::applied_polls(SessionId id) const {
  return find(id)->applied_polls.load(std::memory_order_relaxed);
}

void SessionManager::fold_stats(SessionStats& into, const SessionStats& from) {
  into.offered += from.offered;
  into.accepted += from.accepted;
  into.degraded_admissions += from.degraded_admissions;
  into.shed_packets += from.shed_packets;
  into.queue_high_water =
      std::max(into.queue_high_water, from.queue_high_water);
  into.queue_capacity = std::max(into.queue_capacity, from.queue_capacity);
  into.rounds_full += from.rounds_full;
  into.rounds_degraded += from.rounds_degraded;
  into.rounds_shed += from.rounds_shed;
  into.deadline_limited_rounds += from.deadline_limited_rounds;
  into.deadline_misses += from.deadline_misses;
  into.fixes += from.fixes;
  into.failed_rounds += from.failed_rounds;
}

}  // namespace spotfi
