// Constant-velocity Kalman tracker over successive location fixes.
//
// The paper motivates indoor navigation (corridors, Sec. 4.3.3); a moving
// target produces a stream of per-group fixes whose independent errors a
// tracker can average down. This is a standard 4-state (x, y, vx, vy)
// Kalman filter with position-only measurements and a simple innovation
// gate that rejects the occasional gross SpotFi outlier (a wrong
// direct-path pick at several APs).
#pragma once

#include <array>
#include <optional>

#include "geom/vec2.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

struct TrackerConfig {
  /// Process noise: white acceleration density [m/s^2].
  double acceleration_sigma = 0.8;
  /// Measurement noise: per-axis fix standard deviation [m].
  double measurement_sigma = 0.8;
  /// Initial velocity uncertainty [m/s].
  double initial_velocity_sigma = 1.5;
  /// Reject fixes whose normalized innovation squared exceeds this
  /// (chi-square with 2 dof; 13.8 = 0.1% tail). 0 disables gating.
  double gate_nis = 13.8;
};

/// Complete filter state for durability snapshots. export_state() /
/// restore_state() round-trip bit-exactly, so a restored tracker
/// continues the track the original would have produced.
struct TrackerState {
  bool initialized = false;
  bool last_rejected = false;
  double last_t = 0.0;
  std::array<double, 4> state{};  ///< x, y, vx, vy
  std::array<double, 16> cov{};   ///< row-major 4x4 covariance
};

class LocationTracker {
 public:
  explicit LocationTracker(TrackerConfig config = {});

  /// Feeds one fix taken at time `t_s`. Returns the filtered position.
  /// The first fix initializes the track. Out-of-order timestamps throw.
  Vec2 update(Vec2 fix, double t_s);

  /// Position extrapolated to time `t_s` (>= last update time).
  [[nodiscard]] Vec2 predict(double t_s) const;

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] Vec2 position() const;
  [[nodiscard]] Vec2 velocity() const;
  /// Whether the previous update() call rejected its fix via the gate.
  [[nodiscard]] bool last_fix_rejected() const { return last_rejected_; }

  /// Snapshot/restore of the full filter state (durability). The config
  /// is not part of the state; restore into a same-configured tracker.
  [[nodiscard]] TrackerState export_state() const;
  void restore_state(const TrackerState& state);

 private:
  void predict_in_place(double dt);

  TrackerConfig config_;
  bool initialized_ = false;
  bool last_rejected_ = false;
  double last_t_ = 0.0;
  RVector state_{0.0, 0.0, 0.0, 0.0};  ///< x, y, vx, vy
  RMatrix cov_{4, 4};
};

}  // namespace spotfi
