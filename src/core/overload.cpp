#include "core/overload.hpp"

#include <algorithm>
#include <cmath>

namespace spotfi {

const char* to_string(ShedLevel level) {
  switch (level) {
    case ShedLevel::kFull: return "full";
    case ShedLevel::kCoarse: return "coarse-grid";
    case ShedLevel::kEsprit: return "esprit";
    case ShedLevel::kRssiOnly: return "rssi-only";
  }
  return "unknown";
}

ApStage entry_stage_for(ShedLevel level) {
  switch (level) {
    case ShedLevel::kFull: return ApStage::kPrimary;
    case ShedLevel::kCoarse: return ApStage::kRelaxedMusic;
    case ShedLevel::kEsprit: return ApStage::kEsprit;
    case ShedLevel::kRssiOnly: return ApStage::kRssiOnly;
  }
  return ApStage::kPrimary;
}

RoundCostModel::RoundCostModel(const OverloadConfig& config)
    : alpha_(config.cost_ewma_alpha), cost_s_(config.seed_cost_s) {
  SPOTFI_EXPECTS(alpha_ > 0.0 && alpha_ <= 1.0,
                 "cost_ewma_alpha must be in (0, 1]");
  for (const double c : cost_s_) {
    SPOTFI_EXPECTS(c >= 0.0 && std::isfinite(c),
                   "seed_cost_s entries must be finite and >= 0");
  }
}

void RoundCostModel::observe(ShedLevel level, double duration_s) {
  if (!(duration_s >= 0.0) || !std::isfinite(duration_s)) return;
  const std::size_t i = static_cast<std::size_t>(level);
  // First real sample replaces the seed outright; after that, EWMA.
  cost_s_[i] = seen_[i] ? (1.0 - alpha_) * cost_s_[i] + alpha_ * duration_s
                        : duration_s;
  seen_[i] = true;
}

OverloadPolicy::OverloadPolicy(OverloadConfig config)
    : config_(std::move(config)) {
  SPOTFI_EXPECTS(config_.queue_capacity >= 1,
                 "queue_capacity must be positive");
  const double fr[] = {0.0, config_.degrade_coarse_at,
                       config_.degrade_esprit_at, config_.degrade_rssi_at};
  for (std::size_t i = 1; i < kShedLevelCount; ++i) {
    SPOTFI_EXPECTS(fr[i] >= 0.0 && fr[i] <= 1.0,
                   "degrade fractions must be in [0, 1]");
    SPOTFI_EXPECTS(fr[i] >= fr[i - 1],
                   "degrade fractions must be non-decreasing");
  }
  SPOTFI_EXPECTS(config_.round_deadline_s >= 0.0,
                 "round_deadline_s must be >= 0");
  const double cap = static_cast<double>(config_.queue_capacity);
  for (std::size_t i = 0; i < kShedLevelCount; ++i) {
    rung_depth_[i] = static_cast<std::size_t>(std::ceil(fr[i] * cap));
  }
  // A fraction of 0 still means "from the first packet", not "always":
  // rung 0 (full fidelity) owns the empty queue.
  for (std::size_t i = 1; i < kShedLevelCount; ++i) {
    rung_depth_[i] = std::max<std::size_t>(rung_depth_[i], 1);
  }
}

ShedLevel OverloadPolicy::level_for_depth(std::size_t depth) const {
  std::size_t level = 0;
  for (std::size_t i = 1; i < kShedLevelCount; ++i) {
    if (depth >= rung_depth_[i]) level = i;
  }
  return static_cast<ShedLevel>(level);
}

AdmissionVerdict OverloadPolicy::admit(std::size_t depth) const {
  AdmissionVerdict verdict;
  verdict.level = level_for_depth(depth);
  if (verdict.level == ShedLevel::kFull) return verdict;  // accepted
  verdict.kind = AdmissionVerdict::Kind::kDegraded;
  verdict.reason = "ingest queue occupancy past a degrade rung";
  return verdict;
}

RoundPlan OverloadPolicy::plan_round(std::size_t depth,
                                     const RoundCostModel& cost) const {
  RoundPlan plan;
  plan.level = level_for_depth(depth);
  if (plan.level != ShedLevel::kFull) {
    plan.reason = "queue occupancy past a degrade rung";
  }
  if (config_.round_deadline_s <= 0.0) return plan;

  // Walk down the ladder from the occupancy rung until the estimated
  // cost fits the budget. Occupancy never *raises* fidelity: the
  // deadline can only degrade further.
  std::size_t level = static_cast<std::size_t>(plan.level);
  while (level + 1 < kShedLevelCount &&
         cost.estimate_s(static_cast<ShedLevel>(level)) >
             config_.round_deadline_s) {
    ++level;
  }
  if (cost.estimate_s(static_cast<ShedLevel>(level)) >
      config_.round_deadline_s) {
    plan.run = false;
    plan.level = static_cast<ShedLevel>(level);
    plan.deadline_limited = true;
    plan.reason = "deadline unmeetable at any fidelity";
    return plan;
  }
  if (level != static_cast<std::size_t>(plan.level)) {
    plan.level = static_cast<ShedLevel>(level);
    plan.deadline_limited = true;
    plan.reason = "deadline requires a cheaper fidelity";
  }
  return plan;
}

}  // namespace spotfi
