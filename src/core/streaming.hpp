// Streaming localization server: the online face of Fig. 1's central
// server.
//
// APs push (ap_id, CsiPacket) as packets arrive; once every registered
// AP has accumulated a full group for a target, the server runs
// Algorithm 2, feeds the fix through the Kalman tracker, and emits a
// LocationFix. Input packets are screened by csi/quality first, so a
// corrupted record never reaches the estimator.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "core/server.hpp"
#include "core/tracker.hpp"
#include "csi/quality.hpp"

namespace spotfi {

struct StreamingConfig {
  ServerConfig server{};
  /// Packets per localization group (per AP).
  std::size_t group_size = 10;
  /// Screen incoming packets (quality.hpp); rejected packets are counted
  /// but never buffered.
  bool screen_packets = true;
  QualityConfig quality{};
  /// Smooth fixes with the Kalman tracker.
  bool track = true;
  TrackerConfig tracker{};
  /// Drop buffered packets older than this once a round fires [s].
  double max_packet_age_s = 10.0;
};

struct LocationFix {
  Vec2 raw;       ///< the Eq. 9 solution for this group
  Vec2 tracked;   ///< tracker output (== raw when tracking is off)
  double time_s = 0.0;
  LocalizationRound round;  ///< full per-AP diagnostics
};

class StreamingLocalizer {
 public:
  StreamingLocalizer(LinkConfig link, StreamingConfig config = {});

  /// Registers an AP before streaming. Returns its id (dense, 0-based).
  std::size_t add_ap(const ArrayPose& pose);

  /// Pushes one packet from AP `ap_id`. When every AP has group_size
  /// buffered packets, a localization round fires and the fix is
  /// returned (and buffers are drained). Otherwise returns nullopt.
  [[nodiscard]] std::optional<LocationFix> push(std::size_t ap_id,
                                                const CsiPacket& packet,
                                                Rng& rng);

  [[nodiscard]] std::size_t ap_count() const { return buffers_.size(); }
  [[nodiscard]] std::size_t buffered(std::size_t ap_id) const;
  /// Packets dropped by the quality screen so far.
  [[nodiscard]] std::size_t rejected_count() const { return rejected_; }
  [[nodiscard]] const LocationTracker& tracker() const { return tracker_; }

 private:
  struct ApBuffer {
    ArrayPose pose;
    std::deque<CsiPacket> packets;
  };

  LinkConfig link_;
  StreamingConfig config_;
  std::vector<ApBuffer> buffers_;
  LocationTracker tracker_;
  std::size_t rejected_ = 0;
};

}  // namespace spotfi
