// Streaming localization server: the online face of Fig. 1's central
// server, hardened for dirty distributed CSI acquisition.
//
// APs push (ap_id, CsiPacket) as packets arrive. A localization round
// fires when every live AP has accumulated a full group — or, when some
// APs stall (crash, jam, congestion), after a per-round deadline with a
// minimum-AP quorum, so one dead AP degrades accuracy (Fig. 9a) instead
// of stalling the pipeline forever. Each AP carries a health state
// machine (healthy -> degraded -> dead, recovering on fresh packets),
// rounds run through SpotFiServer::try_localize (estimator fallback
// chains + leave-one-out outlier rejection), and round failures are
// reported as recoverable diagnostics, never exceptions.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "core/overload.hpp"
#include "core/server.hpp"
#include "core/tracker.hpp"
#include "csi/quality.hpp"
#include "csi/trace.hpp"

namespace spotfi {

/// Per-AP liveness, driven by packet-arrival silence.
enum class ApHealth {
  kHealthy,   ///< fresh packets are flowing
  kDegraded,  ///< silent beyond degraded_after_s — suspect
  kDead,      ///< silent beyond dead_after_s — excluded from round gating
};

[[nodiscard]] const char* to_string(ApHealth health);

/// Diagnostics for one AP's stream.
struct ApHealthState {
  ApHealth health = ApHealth::kHealthy;
  /// Timestamp of the last accepted packet [s]; NaN before the first.
  double last_accepted_s = std::numeric_limits<double>::quiet_NaN();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  /// Completed dead -> healthy recoveries.
  std::size_t recoveries = 0;
};

/// Quorum/deadline round firing and health thresholds. All times are in
/// stream time (packet timestamps), so no wall clock is required and
/// replays are deterministic.
struct DegradationConfig {
  /// Master switch; false restores the strict all-APs gating (a round
  /// fires only when every registered AP has a full group).
  bool enabled = true;
  /// Fire a deadline round only with at least this many full groups.
  std::size_t min_quorum = 2;
  /// How long past the first quorum of full groups to wait for the
  /// stragglers before firing anyway [s].
  double round_deadline_s = 2.0;
  /// Packet silence after which an AP is suspect [s].
  double degraded_after_s = 1.0;
  /// Packet silence after which an AP is dead — it no longer gates round
  /// firing [s]. Must be >= degraded_after_s.
  double dead_after_s = 3.0;
  /// An AP with fewer buffered packets than this contributes nothing to a
  /// deadline round (a too-small group only adds clustering noise).
  std::size_t min_group_packets = 3;
};

struct StreamingConfig {
  ServerConfig server{};
  /// Packets per localization group (per AP).
  std::size_t group_size = 10;
  /// Screen incoming packets (quality.hpp); rejected packets are counted
  /// but never buffered.
  bool screen_packets = true;
  QualityConfig quality{};
  /// Smooth fixes with the Kalman tracker.
  bool track = true;
  TrackerConfig tracker{};
  /// Drop buffered packets older than this once a round fires [s].
  double max_packet_age_s = 10.0;
  DegradationConfig degradation{};
};

/// Why a fired round produced no fix (recoverable; the stream continues).
struct RoundFailure {
  std::string reason;
  double time_s = 0.0;
};

struct LocationFix {
  Vec2 raw;       ///< the Eq. 9 solution for this group
  Vec2 tracked;   ///< tracker output (== raw when tracking is off)
  double time_s = 0.0;
  LocalizationRound round;  ///< full per-AP diagnostics
  /// True when the round fired on a quorum deadline, an estimator fell
  /// back past its primary stage, or an outlier AP was rejected.
  bool degraded = false;
  /// AP ids whose captures entered this round.
  std::vector<std::size_t> aps_used;
  /// Human-readable degradation reasons (empty = clean round).
  std::vector<std::string> reasons;
  /// Monotone per-session round ordinal, assigned by the session layer
  /// (1-based; 0 for fixes from an unmanaged localizer). Survives crash
  /// recovery, so consumers dedup re-emitted fixes by this index.
  std::uint64_t durable_round_index = 0;
};

/// Serializable state of one AP's stream (durability snapshots).
struct ApBufferState {
  ApHealthState health;
  /// Buffered packets awaiting a round, oldest first.
  std::vector<CsiPacket> packets;
};

/// Complete dynamic state of a StreamingLocalizer, exportable under
/// quiescence and restorable into a localizer built from the same
/// LinkConfig/StreamingConfig and AP registrations. A restored localizer
/// fed the same packet sequence produces byte-identical fixes. The
/// last_failure()/last_shed() diagnostics strings are intentionally not
/// part of the durable state.
struct StreamingState {
  std::vector<ApBufferState> aps;
  TrackerState tracker;
  IngestReport ingest;
  std::size_t rejected = 0;
  std::size_t shed_rounds = 0;
  std::size_t failed_rounds = 0;
  std::size_t fix_count = 0;
  ShedLevel fidelity = ShedLevel::kFull;
  double now_s = -std::numeric_limits<double>::infinity();
  bool has_stream_start = false;
  double stream_start_s = 0.0;
  bool has_armed_since = false;
  double armed_since_s = 0.0;
  double last_fix_time_s = -std::numeric_limits<double>::infinity();
};

/// Decides what happens to one about-to-fire round: the fidelity rung it
/// runs at, or that it is dropped (plan.run == false). Installed by the
/// session layer, which owns queue-occupancy and deadline state; the
/// streaming localizer stays mechanical. Consulted *after* the round's
/// captures are popped, so even a shed round drains its packet backlog.
using RoundPlanner = std::function<RoundPlan(std::size_t n_aps, double now_s)>;

/// A localization round that has been *prepared* (captures popped,
/// overload plan applied, per-AP Rng streams forked in capture order,
/// server variant resolved) but not yet executed. Splitting the round
/// lifecycle into prepare -> execute -> complete is what enables
/// cross-session batching: preparation and completion touch localizer
/// state and must run on the owning thread, while execute_round() is
/// const and self-contained, so the session layer can gather prepared
/// rounds from many tenants and execute them as one shared batch on the
/// pool. Because the streams were forked at preparation time, the fix
/// is byte-identical no matter where or when execution happens.
struct PendingRound {
  std::vector<ApCapture> captures;
  /// One forked stream per capture; empty when captures.size() < 2
  /// (the round will fail without consuming randomness, exactly like
  /// the inline path).
  std::vector<Rng> streams;
  std::vector<std::size_t> ap_ids;
  /// The fidelity variant resolved at preparation time (lazy variant
  /// construction is not thread-safe, execution may be concurrent).
  const SpotFiServer* server = nullptr;
  ShedLevel level = ShedLevel::kFull;
  const char* plan_reason = "";
  bool deadline_round = false;
  double now_s = 0.0;
  /// Newest packet timestamp in the round's captures (the fix time).
  double latest_t = -std::numeric_limits<double>::infinity();
  /// Filled by execute_round().
  std::optional<Expected<LocalizationRound, RoundError>> outcome;
};

class StreamingLocalizer {
 public:
  StreamingLocalizer(LinkConfig link, StreamingConfig config = {});

  /// Registers an AP before streaming. Returns its id (dense, 0-based).
  std::size_t add_ap(const ArrayPose& pose);

  /// Pushes one packet from AP `ap_id` and fires a localization round
  /// when one is due (all live APs full, or the quorum deadline expired).
  /// Returns the fix when a round fired and succeeded. Round-level
  /// failures (estimator breakdown, too few usable APs) are recorded via
  /// last_failure()/failed_rounds() and never escape as exceptions; only
  /// misuse (unknown ap_id, fewer than two registered APs) throws
  /// ContractViolation. Takes the packet by value: the session layer's
  /// ingest path moves packets straight from its bounded queue into the
  /// AP buffer without a copy.
  [[nodiscard]] std::optional<LocationFix> push(std::size_t ap_id,
                                                CsiPacket packet, Rng& rng);

  /// Advances stream time without a packet (a timer tick): ages buffers,
  /// updates AP health, and fires a deadline round if one is due. Useful
  /// when every remaining AP went silent at once.
  [[nodiscard]] std::optional<LocationFix> poll(double now_s, Rng& rng);

  /// Deferred-execution flavor of push(): identical ingest and firing
  /// logic, but when a round becomes due it is returned *prepared*
  /// instead of executed. The caller must pass it through
  /// execute_round() and then complete_round() (in preparation order
  /// per localizer) to obtain the fix; push() is exactly this
  /// composition. Returns nullopt when no round fired or the planner
  /// shed it (sheds are accounted internally, as in push()).
  [[nodiscard]] std::optional<PendingRound> push_deferred(std::size_t ap_id,
                                                         CsiPacket packet,
                                                         Rng& rng);
  /// Deferred-execution flavor of poll().
  [[nodiscard]] std::optional<PendingRound> poll_deferred(double now_s,
                                                          Rng& rng);
  /// Runs a prepared round's estimation + fusion into round.outcome.
  /// Const and state-free: safe to run on any thread, concurrently with
  /// other rounds (including this localizer's — the captures and
  /// streams are owned by the PendingRound).
  void execute_round(PendingRound& round) const;
  /// Folds an executed round back into localizer state (tracker,
  /// counters, diagnostics) and assembles the fix. Must run on the
  /// owning thread, in preparation order.
  [[nodiscard]] std::optional<LocationFix> complete_round(PendingRound round);

  /// Replays a capture file from `reader` as AP `ap_id`'s packet stream:
  /// records decode fail-soft, every good packet is pushed, and the
  /// reader's IngestReport — plus any records whose CSI shape disagrees
  /// with this deployment's link (counted as payload mismatches) — is
  /// folded into ingest_report(). Corrupt bytes never throw; they cost
  /// records, visibly. Returns the fixes fired during the replay. The
  /// reader is consumed.
  [[nodiscard]] std::vector<LocationFix> ingest(std::size_t ap_id,
                                                TraceReader& reader, Rng& rng);

  /// Folds a reader-side IngestReport into the stream-wide account, for
  /// callers that drive CsitoolReader/TraceReader themselves.
  void note_ingest(const IngestReport& report);
  /// Byte/record accounting across every capture ingested so far.
  [[nodiscard]] const IngestReport& ingest_report() const {
    return ingest_report_;
  }

  [[nodiscard]] std::size_t ap_count() const { return buffers_.size(); }
  [[nodiscard]] std::size_t buffered(std::size_t ap_id) const;
  /// Packets dropped by the quality screen so far.
  [[nodiscard]] std::size_t rejected_count() const { return rejected_; }
  [[nodiscard]] const LocationTracker& tracker() const { return tracker_; }

  /// Health diagnostics.
  [[nodiscard]] ApHealth ap_health(std::size_t ap_id) const;
  [[nodiscard]] const ApHealthState& ap_state(std::size_t ap_id) const;
  /// Rounds that fired but produced no fix.
  [[nodiscard]] std::size_t failed_rounds() const { return failed_rounds_; }
  [[nodiscard]] const std::optional<RoundFailure>& last_failure() const {
    return last_failure_;
  }
  /// Successful fixes emitted so far.
  [[nodiscard]] std::size_t fix_count() const { return fix_count_; }

  /// Fidelity rung for rounds fired while no planner is installed (the
  /// manual knob; kFull by default). With a planner, the plan wins.
  void set_fidelity(ShedLevel level) { fidelity_ = level; }
  [[nodiscard]] ShedLevel fidelity() const { return fidelity_; }
  /// Installs (or clears, with nullptr) the per-round overload planner.
  void set_round_planner(RoundPlanner planner) {
    planner_ = std::move(planner);
  }
  /// Rounds dropped by the planner (captures consumed, nothing run).
  [[nodiscard]] std::size_t shed_rounds() const { return shed_rounds_; }
  [[nodiscard]] const std::optional<RoundFailure>& last_shed() const {
    return last_shed_;
  }

  /// Snapshot/restore of the full dynamic state (durability). Restore
  /// requires the same AP registrations (count checked); the installed
  /// planner and the cached server variants are configuration, not
  /// state, and are untouched.
  [[nodiscard]] StreamingState export_state() const;
  void restore_state(StreamingState state);

 private:
  struct ApBuffer {
    ArrayPose pose;
    std::deque<CsiPacket> packets;
    ApHealthState state;
  };

  void age_out(double now_s);
  void update_health(double now_s);
  /// The packet-acceptance half of push(): screening, buffering, health
  /// and stream-time updates — everything up to round firing.
  void ingest_packet(std::size_t ap_id, CsiPacket packet);
  /// Prepares a round if one is due at `now_s`; nullopt otherwise (also
  /// when the planner sheds it, which is recorded instead).
  [[nodiscard]] std::optional<PendingRound> maybe_prepare(double now_s,
                                                          Rng& rng);
  /// Pops the captures, applies the overload plan, forks the streams,
  /// and resolves the server variant. Nullopt = shed.
  [[nodiscard]] std::optional<PendingRound> prepare_round(
      const std::vector<std::size_t>& ap_ids, bool deadline_round,
      double now_s, Rng& rng);
  /// The cached server variant for one fidelity rung. kFull is built at
  /// construction; the degraded variants are derived lazily from the
  /// same config with the chain entry stage moved — all of them dispatch
  /// on the kFull server's pool, so shedding never spawns threads.
  [[nodiscard]] const SpotFiServer& server_for(ShedLevel level);

  LinkConfig link_;
  StreamingConfig config_;
  std::vector<ApBuffer> buffers_;
  std::array<std::shared_ptr<const SpotFiServer>, kShedLevelCount> servers_;
  ShedLevel fidelity_ = ShedLevel::kFull;
  RoundPlanner planner_;
  std::size_t shed_rounds_ = 0;
  std::optional<RoundFailure> last_shed_;
  LocationTracker tracker_;
  IngestReport ingest_report_;
  std::size_t rejected_ = 0;
  /// Stream time: max packet timestamp seen (also advanced by poll()).
  double now_s_ = -std::numeric_limits<double>::infinity();
  /// Timestamp of the first packet ever pushed; silence of an AP that has
  /// never delivered is measured from here.
  std::optional<double> stream_start_s_;
  /// When the current quorum of full groups formed (deadline anchor).
  std::optional<double> armed_since_s_;
  double last_fix_time_s_ = -std::numeric_limits<double>::infinity();
  std::size_t failed_rounds_ = 0;
  std::size_t fix_count_ = 0;
  std::optional<RoundFailure> last_failure_;
};

}  // namespace spotfi
