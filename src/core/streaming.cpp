#include "core/streaming.hpp"

#include <algorithm>

namespace spotfi {

StreamingLocalizer::StreamingLocalizer(LinkConfig link,
                                       StreamingConfig config)
    : link_(link), config_(std::move(config)), tracker_(config_.tracker) {
  SPOTFI_EXPECTS(config_.group_size >= 1, "group_size must be positive");
}

std::size_t StreamingLocalizer::add_ap(const ArrayPose& pose) {
  buffers_.push_back({pose, {}});
  return buffers_.size() - 1;
}

std::size_t StreamingLocalizer::buffered(std::size_t ap_id) const {
  SPOTFI_EXPECTS(ap_id < buffers_.size(), "unknown AP id");
  return buffers_[ap_id].packets.size();
}

std::optional<LocationFix> StreamingLocalizer::push(std::size_t ap_id,
                                                    const CsiPacket& packet,
                                                    Rng& rng) {
  SPOTFI_EXPECTS(ap_id < buffers_.size(), "unknown AP id");
  SPOTFI_EXPECTS(buffers_.size() >= 2, "register at least two APs first");

  if (config_.screen_packets) {
    const QualityVerdict verdict = screen_packet(packet, config_.quality);
    if (!verdict.ok) {
      ++rejected_;
      return std::nullopt;
    }
  }
  auto& buffer = buffers_[ap_id];
  buffer.packets.push_back(packet);
  // Age out stale packets so a stalled AP does not pin an old group.
  const double now = packet.timestamp_s;
  for (auto& b : buffers_) {
    while (!b.packets.empty() &&
           now - b.packets.front().timestamp_s > config_.max_packet_age_s) {
      b.packets.pop_front();
    }
  }

  const bool ready = std::all_of(
      buffers_.begin(), buffers_.end(), [&](const ApBuffer& b) {
        return b.packets.size() >= config_.group_size;
      });
  if (!ready) return std::nullopt;

  // Assemble the captures from the oldest group_size packets per AP.
  std::vector<ApCapture> captures;
  double latest_t = 0.0;
  for (auto& b : buffers_) {
    ApCapture capture;
    capture.pose = b.pose;
    for (std::size_t i = 0; i < config_.group_size; ++i) {
      capture.packets.push_back(b.packets.front());
      latest_t = std::max(latest_t, b.packets.front().timestamp_s);
      b.packets.pop_front();
    }
    captures.push_back(std::move(capture));
  }

  const SpotFiServer server(link_, config_.server);
  LocationFix fix;
  fix.round = server.localize(captures, rng);
  fix.raw = fix.round.location.position;
  fix.time_s = latest_t;
  fix.tracked =
      config_.track ? tracker_.update(fix.raw, latest_t) : fix.raw;
  return fix;
}

}  // namespace spotfi
