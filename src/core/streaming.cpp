#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace spotfi {

const char* to_string(ApHealth health) {
  switch (health) {
    case ApHealth::kHealthy: return "healthy";
    case ApHealth::kDegraded: return "degraded";
    case ApHealth::kDead: return "dead";
  }
  return "unknown";
}

StreamingLocalizer::StreamingLocalizer(LinkConfig link,
                                       StreamingConfig config)
    : link_(link), config_(std::move(config)), tracker_(config_.tracker) {
  SPOTFI_EXPECTS(config_.group_size >= 1, "group_size must be positive");
  const DegradationConfig& d = config_.degradation;
  SPOTFI_EXPECTS(d.min_quorum >= 2, "min_quorum must be at least 2");
  SPOTFI_EXPECTS(d.round_deadline_s >= 0.0, "round_deadline_s must be >= 0");
  SPOTFI_EXPECTS(d.dead_after_s >= d.degraded_after_s,
                 "dead_after_s must be >= degraded_after_s");
  // The full-fidelity server (and its pool, when concurrency resolves
  // past 1) is built once here, not per round: rounds reuse it, and the
  // degraded variants derive from it on first use.
  servers_[0] = std::make_shared<const SpotFiServer>(link_, config_.server);
}

const SpotFiServer& StreamingLocalizer::server_for(ShedLevel level) {
  auto& slot = servers_[static_cast<std::size_t>(level)];
  if (!slot) {
    ServerConfig cfg = config_.server;
    cfg.shared_pool = servers_[0]->shared_pool();
    // A serial base server stays serial in every variant — a null
    // shared_pool would otherwise re-resolve SPOTFI_THREADS here and
    // could spawn a pool the full-fidelity path never had.
    if (!cfg.shared_pool) cfg.num_threads = 1;
    cfg.ap.fallback.entry_stage = entry_stage_for(level);
    slot = std::make_shared<const SpotFiServer>(link_, cfg);
  }
  return *slot;
}

std::size_t StreamingLocalizer::add_ap(const ArrayPose& pose) {
  buffers_.push_back({pose, {}, {}});
  return buffers_.size() - 1;
}

std::size_t StreamingLocalizer::buffered(std::size_t ap_id) const {
  SPOTFI_EXPECTS(ap_id < buffers_.size(), "unknown AP id");
  return buffers_[ap_id].packets.size();
}

ApHealth StreamingLocalizer::ap_health(std::size_t ap_id) const {
  return ap_state(ap_id).health;
}

const ApHealthState& StreamingLocalizer::ap_state(std::size_t ap_id) const {
  SPOTFI_EXPECTS(ap_id < buffers_.size(), "unknown AP id");
  return buffers_[ap_id].state;
}

void StreamingLocalizer::age_out(double now_s) {
  for (auto& b : buffers_) {
    while (!b.packets.empty() &&
           now_s - b.packets.front().timestamp_s > config_.max_packet_age_s) {
      b.packets.pop_front();
    }
  }
}

void StreamingLocalizer::update_health(double now_s) {
  if (!stream_start_s_) return;  // nothing has flowed yet
  const DegradationConfig& d = config_.degradation;
  for (auto& b : buffers_) {
    // An AP that never delivered has been silent since the stream began.
    const double last = b.state.accepted > 0 ? b.state.last_accepted_s
                                             : *stream_start_s_;
    const double silence = now_s - last;
    ApHealth next = ApHealth::kHealthy;
    if (silence >= d.dead_after_s) {
      next = ApHealth::kDead;
    } else if (silence >= d.degraded_after_s) {
      next = ApHealth::kDegraded;
    }
    if (next != b.state.health) {
      if (b.state.health == ApHealth::kDead && next == ApHealth::kHealthy) {
        ++b.state.recoveries;
      }
      b.state.health = next;
    }
  }
}

void StreamingLocalizer::ingest_packet(std::size_t ap_id, CsiPacket packet) {
  if (ap_id >= buffers_.size()) {
    throw ContractViolation(
        "StreamingLocalizer::push: unknown AP id " + std::to_string(ap_id) +
        " (" + std::to_string(buffers_.size()) + " APs registered)");
  }
  SPOTFI_EXPECTS(buffers_.size() >= 2, "register at least two APs first");

  now_s_ = std::max(now_s_, packet.timestamp_s);
  if (!stream_start_s_) stream_start_s_ = packet.timestamp_s;

  auto& buffer = buffers_[ap_id];
  bool accepted = true;
  if (config_.screen_packets) {
    const QualityVerdict verdict = screen_packet(packet, config_.quality);
    if (!verdict.ok) {
      ++rejected_;
      ++buffer.state.rejected;
      accepted = false;
    }
  }
  if (accepted) {
    ++buffer.state.accepted;
    buffer.state.last_accepted_s =
        std::max(buffer.state.last_accepted_s, packet.timestamp_s);
    if (std::isnan(buffer.state.last_accepted_s)) {
      buffer.state.last_accepted_s = packet.timestamp_s;
    }
    buffer.packets.push_back(std::move(packet));
  }

  age_out(now_s_);
  update_health(now_s_);
}

std::optional<LocationFix> StreamingLocalizer::push(std::size_t ap_id,
                                                    CsiPacket packet,
                                                    Rng& rng) {
  auto pending = push_deferred(ap_id, std::move(packet), rng);
  if (!pending) return std::nullopt;
  execute_round(*pending);
  return complete_round(std::move(*pending));
}

std::optional<PendingRound> StreamingLocalizer::push_deferred(
    std::size_t ap_id, CsiPacket packet, Rng& rng) {
  ingest_packet(ap_id, std::move(packet));
  return maybe_prepare(now_s_, rng);
}

std::optional<PendingRound> StreamingLocalizer::poll_deferred(double now_s,
                                                              Rng& rng) {
  if (buffers_.size() < 2) return std::nullopt;
  now_s_ = std::max(now_s_, now_s);
  age_out(now_s_);
  update_health(now_s_);
  return maybe_prepare(now_s_, rng);
}

std::vector<LocationFix> StreamingLocalizer::ingest(std::size_t ap_id,
                                                    TraceReader& reader,
                                                    Rng& rng) {
  SPOTFI_EXPECTS(ap_id < buffers_.size(), "unknown AP id");
  std::vector<LocationFix> fixes;
  std::size_t shape_drops = 0;
  while (auto item = reader.next()) {
    if (!*item) continue;  // already tallied in the reader's report
    CsiPacket& packet = item->value();
    if (packet.csi.rows() != link_.n_antennas ||
        packet.csi.cols() != link_.n_subcarriers) {
      // A valid capture from a different array geometry: unusable for
      // this deployment, but not worth aborting the replay over.
      ++shape_drops;
      continue;
    }
    if (auto fix = push(ap_id, std::move(packet), rng)) {
      fixes.push_back(std::move(*fix));
    }
  }
  // Reclassify shape-dropped records so the merged account stays
  // consistent: they were well-formed bytes, but no record reached the
  // pipeline for them.
  IngestReport merged = reader.report();
  merged.records_accepted -= shape_drops;
  merged.dropped[static_cast<std::size_t>(IngestErrorKind::kPayloadMismatch)] +=
      shape_drops;
  note_ingest(merged);
  return fixes;
}

void StreamingLocalizer::note_ingest(const IngestReport& report) {
  ingest_report_.merge(report);
}

std::optional<LocationFix> StreamingLocalizer::poll(double now_s, Rng& rng) {
  auto pending = poll_deferred(now_s, rng);
  if (!pending) return std::nullopt;
  execute_round(*pending);
  return complete_round(std::move(*pending));
}

std::optional<PendingRound> StreamingLocalizer::maybe_prepare(double now_s,
                                                              Rng& rng) {
  const DegradationConfig& d = config_.degradation;

  std::vector<std::size_t> ready;   // full group buffered
  std::vector<std::size_t> usable;  // enough packets for a partial group
  std::size_t live = 0, live_ready = 0;
  for (std::size_t a = 0; a < buffers_.size(); ++a) {
    const auto& b = buffers_[a];
    const bool full = b.packets.size() >= config_.group_size;
    if (full) ready.push_back(a);
    const std::size_t partial_floor =
        std::max<std::size_t>(std::min(d.min_group_packets, config_.group_size), 1);
    if (b.packets.size() >= partial_floor) usable.push_back(a);
    if (b.state.health != ApHealth::kDead) {
      ++live;
      if (full) ++live_ready;
    }
  }

  // Strict path (degradation off, or nothing is wrong): every registered
  // AP has a full group.
  if (ready.size() == buffers_.size()) {
    armed_since_s_.reset();
    return prepare_round(ready, /*deadline_round=*/false, now_s, rng);
  }
  if (!d.enabled) return std::nullopt;

  // Dead APs no longer gate the round: fire as soon as every live AP is
  // full (quorum permitting). Dead APs with a usable partial buffer still
  // contribute their packets.
  if (live >= 2 && live_ready == live && ready.size() >= d.min_quorum) {
    armed_since_s_.reset();
    return prepare_round(usable, /*deadline_round=*/true, now_s, rng);
  }

  // Deadline path: a quorum of full groups is waiting on stragglers.
  if (ready.size() >= d.min_quorum) {
    if (!armed_since_s_) armed_since_s_ = now_s;
    if (now_s - *armed_since_s_ >= d.round_deadline_s) {
      armed_since_s_.reset();
      return prepare_round(usable, /*deadline_round=*/true, now_s, rng);
    }
  } else {
    armed_since_s_.reset();
  }
  return std::nullopt;
}

std::optional<PendingRound> StreamingLocalizer::prepare_round(
    const std::vector<std::size_t>& ap_ids, bool deadline_round, double now_s,
    Rng& rng) {
  PendingRound pending;
  pending.ap_ids = ap_ids;
  pending.deadline_round = deadline_round;
  pending.now_s = now_s;
  pending.captures.reserve(ap_ids.size());
  for (const std::size_t a : ap_ids) {
    auto& b = buffers_[a];
    ApCapture capture;
    capture.pose = b.pose;
    const std::size_t take = std::min(b.packets.size(), config_.group_size);
    for (std::size_t i = 0; i < take; ++i) {
      pending.latest_t =
          std::max(pending.latest_t, b.packets.front().timestamp_s);
      capture.packets.push_back(std::move(b.packets.front()));
      b.packets.pop_front();
    }
    pending.captures.push_back(std::move(capture));
  }

  // Overload planning happens *after* the captures are popped: a shed
  // round still drains its backlog (that is the point of shedding), it
  // just never reaches the estimator.
  pending.level = fidelity_;
  if (planner_) {
    const RoundPlan plan = planner_(ap_ids.size(), now_s);
    if (!plan.run) {
      ++shed_rounds_;
      last_shed_ =
          RoundFailure{std::string("round shed: ") + plan.reason, now_s};
      return std::nullopt;
    }
    pending.level = plan.level;
    pending.plan_reason = plan.reason;
  }

  // Resolve (and lazily build) the fidelity variant now, on the owning
  // thread: execution may happen concurrently with other rounds.
  pending.server = &server_for(pending.level);

  // Fork the per-capture streams in capture order, mirroring
  // try_localize exactly: a <2-capture round fails without consuming
  // any randomness there, so none may be consumed here either.
  if (pending.captures.size() >= 2) {
    pending.streams.reserve(pending.captures.size());
    for (std::size_t i = 0; i < pending.captures.size(); ++i) {
      pending.streams.push_back(rng.fork());
    }
  }
  return pending;
}

void StreamingLocalizer::execute_round(PendingRound& round) const {
  if (round.captures.size() < 2) {
    round.outcome.emplace(RoundError{"need at least two AP captures", 0});
    return;
  }
  round.outcome.emplace(
      round.server->try_localize_forked(round.captures, round.streams));
}

std::optional<LocationFix> StreamingLocalizer::complete_round(
    PendingRound pending) {
  SPOTFI_EXPECTS(pending.outcome.has_value(),
                 "complete_round requires an executed round");
  auto& outcome = *pending.outcome;
  if (!outcome) {
    ++failed_rounds_;
    last_failure_ = RoundFailure{outcome.error().reason, pending.now_s};
    return std::nullopt;
  }

  LocationFix fix;
  fix.round = std::move(outcome).value();
  fix.round.fidelity = pending.level;
  fix.raw = fix.round.location.position;
  fix.time_s = pending.latest_t;
  fix.aps_used = pending.ap_ids;
  fix.degraded = pending.deadline_round || fix.round.degraded ||
                 pending.level != ShedLevel::kFull;
  fix.reasons = fix.round.notes;
  if (pending.level != ShedLevel::kFull) {
    std::string reason = std::string("overload: round ran at ") +
                         to_string(pending.level) + " fidelity";
    if (pending.plan_reason[0] != '\0') {
      reason += std::string(" (") + pending.plan_reason + ")";
    }
    fix.reasons.insert(fix.reasons.begin(), std::move(reason));
  }
  if (pending.deadline_round) {
    fix.reasons.insert(
        fix.reasons.begin(),
        "deadline round: " + std::to_string(pending.ap_ids.size()) + " of " +
            std::to_string(buffers_.size()) + " APs contributed");
  }
  // The tracker requires monotone time; reordered/stale feeds can fire a
  // round whose newest packet is older than the previous fix.
  if (config_.track && pending.latest_t > last_fix_time_s_) {
    fix.tracked = tracker_.update(fix.raw, pending.latest_t);
  } else {
    fix.tracked = fix.raw;
    if (config_.track) {
      fix.reasons.push_back("tracker skipped: non-monotone fix time");
    }
  }
  last_fix_time_s_ = std::max(last_fix_time_s_, pending.latest_t);
  ++fix_count_;
  return fix;
}

StreamingState StreamingLocalizer::export_state() const {
  StreamingState out;
  out.aps.reserve(buffers_.size());
  for (const ApBuffer& buffer : buffers_) {
    ApBufferState ap;
    ap.health = buffer.state;
    ap.packets.assign(buffer.packets.begin(), buffer.packets.end());
    out.aps.push_back(std::move(ap));
  }
  out.tracker = tracker_.export_state();
  out.ingest = ingest_report_;
  out.rejected = rejected_;
  out.shed_rounds = shed_rounds_;
  out.failed_rounds = failed_rounds_;
  out.fix_count = fix_count_;
  out.fidelity = fidelity_;
  out.now_s = now_s_;
  out.has_stream_start = stream_start_s_.has_value();
  out.stream_start_s = stream_start_s_.value_or(0.0);
  out.has_armed_since = armed_since_s_.has_value();
  out.armed_since_s = armed_since_s_.value_or(0.0);
  out.last_fix_time_s = last_fix_time_s_;
  return out;
}

void StreamingLocalizer::restore_state(StreamingState state) {
  SPOTFI_EXPECTS(state.aps.size() == buffers_.size(),
                 "restore_state: AP count does not match this deployment");
  for (std::size_t a = 0; a < buffers_.size(); ++a) {
    ApBuffer& buffer = buffers_[a];
    buffer.state = state.aps[a].health;
    buffer.packets.assign(
        std::make_move_iterator(state.aps[a].packets.begin()),
        std::make_move_iterator(state.aps[a].packets.end()));
  }
  tracker_.restore_state(state.tracker);
  ingest_report_ = state.ingest;
  rejected_ = state.rejected;
  shed_rounds_ = state.shed_rounds;
  failed_rounds_ = state.failed_rounds;
  fix_count_ = state.fix_count;
  fidelity_ = state.fidelity;
  now_s_ = state.now_s;
  stream_start_s_ = state.has_stream_start
                        ? std::optional<double>(state.stream_start_s)
                        : std::nullopt;
  armed_since_s_ = state.has_armed_since
                       ? std::optional<double>(state.armed_since_s)
                       : std::nullopt;
  last_fix_time_s_ = state.last_fix_time_s;
  last_failure_.reset();
  last_shed_.reset();
}

}  // namespace spotfi
