#include "core/tracker.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spotfi {

LocationTracker::LocationTracker(TrackerConfig config) : config_(config) {
  SPOTFI_EXPECTS(config_.acceleration_sigma > 0.0 &&
                     config_.measurement_sigma > 0.0,
                 "tracker noise parameters must be positive");
}

Vec2 LocationTracker::position() const {
  SPOTFI_EXPECTS(initialized_, "tracker has no fixes yet");
  return {state_[0], state_[1]};
}

Vec2 LocationTracker::velocity() const {
  SPOTFI_EXPECTS(initialized_, "tracker has no fixes yet");
  return {state_[2], state_[3]};
}

void LocationTracker::predict_in_place(double dt) {
  // State transition F = [I, dt*I; 0, I]; white-acceleration process
  // noise Q (discretized).
  state_[0] += dt * state_[2];
  state_[1] += dt * state_[3];

  RMatrix f = RMatrix::identity(4);
  f(0, 2) = f(1, 3) = dt;
  cov_ = f * cov_ * f.transpose();

  const double q = config_.acceleration_sigma * config_.acceleration_sigma;
  const double dt2 = dt * dt;
  const double dt3 = dt2 * dt;
  const double dt4 = dt3 * dt;
  for (int axis = 0; axis < 2; ++axis) {
    const std::size_t p = axis;      // position index
    const std::size_t v = axis + 2;  // velocity index
    cov_(p, p) += q * dt4 / 4.0;
    cov_(p, v) += q * dt3 / 2.0;
    cov_(v, p) += q * dt3 / 2.0;
    cov_(v, v) += q * dt2;
  }
}

Vec2 LocationTracker::update(Vec2 fix, double t_s) {
  last_rejected_ = false;
  if (!initialized_) {
    initialized_ = true;
    last_t_ = t_s;
    state_ = {fix.x, fix.y, 0.0, 0.0};
    cov_ = RMatrix(4, 4);
    const double r = config_.measurement_sigma * config_.measurement_sigma;
    cov_(0, 0) = cov_(1, 1) = r;
    cov_(2, 2) = cov_(3, 3) =
        config_.initial_velocity_sigma * config_.initial_velocity_sigma;
    return fix;
  }
  SPOTFI_EXPECTS(t_s >= last_t_, "fixes must arrive in time order");
  predict_in_place(t_s - last_t_);
  last_t_ = t_s;

  // Measurement H = [I 0]; innovation and its covariance (2x2).
  const double r = config_.measurement_sigma * config_.measurement_sigma;
  const double y0 = fix.x - state_[0];
  const double y1 = fix.y - state_[1];
  const double s00 = cov_(0, 0) + r;
  const double s01 = cov_(0, 1);
  const double s11 = cov_(1, 1) + r;
  const double det = s00 * s11 - s01 * s01;
  SPOTFI_ASSERT(det > 0.0, "innovation covariance not positive definite");
  // Normalized innovation squared for the gate.
  const double nis =
      (y0 * (s11 * y0 - s01 * y1) + y1 * (s00 * y1 - s01 * y0)) / det;
  if (config_.gate_nis > 0.0 && nis > config_.gate_nis) {
    last_rejected_ = true;
    return position();
  }

  // Kalman gain K = P H^T S^-1 (4x2).
  const double inv00 = s11 / det;
  const double inv01 = -s01 / det;
  const double inv11 = s00 / det;
  double k[4][2];
  for (std::size_t i = 0; i < 4; ++i) {
    const double p0 = cov_(i, 0);
    const double p1 = cov_(i, 1);
    k[i][0] = p0 * inv00 + p1 * inv01;
    k[i][1] = p0 * inv01 + p1 * inv11;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    state_[i] += k[i][0] * y0 + k[i][1] * y1;
  }
  // Covariance update P <- (I - K H) P.
  RMatrix kh(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    kh(i, 0) = k[i][0];
    kh(i, 1) = k[i][1];
  }
  cov_ = (RMatrix::identity(4) - kh) * cov_;
  return position();
}

TrackerState LocationTracker::export_state() const {
  TrackerState out;
  out.initialized = initialized_;
  out.last_rejected = last_rejected_;
  out.last_t = last_t_;
  for (std::size_t i = 0; i < 4; ++i) out.state[i] = state_[i];
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) out.cov[i * 4 + j] = cov_(i, j);
  }
  return out;
}

void LocationTracker::restore_state(const TrackerState& state) {
  initialized_ = state.initialized;
  last_rejected_ = state.last_rejected;
  last_t_ = state.last_t;
  state_.assign(state.state.begin(), state.state.end());
  cov_ = RMatrix(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) cov_(i, j) = state.cov[i * 4 + j];
  }
}

Vec2 LocationTracker::predict(double t_s) const {
  SPOTFI_EXPECTS(initialized_, "tracker has no fixes yet");
  SPOTFI_EXPECTS(t_s >= last_t_, "cannot predict into the past");
  const double dt = t_s - last_t_;
  return {state_[0] + dt * state_[2], state_[1] + dt * state_[3]};
}

}  // namespace spotfi
