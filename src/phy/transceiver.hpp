// Waveform-level transceiver: the substrate that *produces* CSI.
//
// Everywhere else in the library CSI is synthesized directly from the
// Eq. 1-7 signal model; this module instead walks the physical chain the
// Intel 5300 implements in silicon:
//
//   TX:  known LTF training symbols -> IFFT -> cyclic prefix -> samples
//   air: per-path fractional-sample delay, complex gain, and per-antenna
//        AoA phase; AWGN
//   RX:  packet detection by LTF cross-correlation (the detection point
//        IS the sampling-time offset), FFT, divide by the known training
//        sequence -> channel estimate per subcarrier -> report the 30
//        subcarriers the 5300 exposes
//
// Integration tests confirm the two CSI paths agree, closing the loop on
// the simulator's fidelity: SpotFi's estimators recover the same AoA/ToF
// from waveform-derived CSI as from the analytic model.
#pragma once

#include "channel/multipath.hpp"
#include "common/constants.hpp"
#include "common/rng.hpp"
#include "phy/ofdm.hpp"

namespace spotfi {

struct PhyConfig {
  OfdmConfig ofdm{};
  /// Antenna array geometry and carrier for the AoA phase.
  LinkConfig link = LinkConfig::intel5300_40mhz();
  /// Leading silence before the frame [samples]; the receiver's search
  /// for the frame start models the packet-detection delay.
  std::size_t lead_silence = 96;
  /// Number of LTF training symbols (averaged at the receiver).
  std::size_t n_ltf = 2;
  /// Complex AWGN SNR per receive antenna [dB].
  double snr_db = 30.0;
};

/// A transmitted frame: leading silence plus n_ltf LTF symbols.
struct PhyFrame {
  CVector samples;
  /// Sample index where the first LTF symbol's cyclic prefix begins.
  std::size_t frame_start = 0;
};

[[nodiscard]] PhyFrame transmit_ltf_frame(const PhyConfig& cfg);

/// Passes `frame` through the multipath channel: each path delays the
/// waveform by tof_s (fractional-sample, linear interpolation), scales it
/// by its complex gain, and applies the per-antenna AoA phase
/// progression; AWGN is added per antenna at cfg.snr_db. Returns
/// n_antennas streams (antenna-major rows).
[[nodiscard]] CMatrix apply_multipath_channel(
    const PhyFrame& frame, std::span<const PathComponent> paths,
    const PhyConfig& cfg, Rng& rng);

struct PhyCsiResult {
  /// n_antennas x 30 CSI on the 5300's 40 MHz report grid.
  CMatrix csi;
  /// Detected frame start [samples] (compare with PhyFrame::frame_start
  /// to measure the packet-detection delay).
  std::size_t detected_start = 0;
};

/// Receiver: detects the frame, estimates the channel on the occupied
/// subcarriers from the LTF symbols, and reports the 5300's subcarrier
/// subset. Throws DetectionError if no plausible frame is found — a missed
/// detection is a channel outcome, not a numerical failure.
[[nodiscard]] PhyCsiResult receive_csi(const CMatrix& rx_streams,
                                       const PhyConfig& cfg);

}  // namespace spotfi
