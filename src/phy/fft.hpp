// Radix-2 FFT — the only transform the OFDM substrate needs, implemented
// from scratch (the repository has no external math dependencies).
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// In-place iterative radix-2 Cooley-Tukey FFT. `x.size()` must be a
/// power of two. The inverse transform includes the 1/N normalization so
/// ifft(fft(x)) == x.
void fft_in_place(std::span<cplx> x, bool inverse = false);

/// Convenience wrappers returning a new vector.
[[nodiscard]] CVector fft(std::span<const cplx> x);
[[nodiscard]] CVector ifft(std::span<const cplx> x);

/// Naive O(N^2) DFT used as the test oracle.
[[nodiscard]] CVector dft_reference(std::span<const cplx> x);

}  // namespace spotfi
