#include "phy/fft.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace spotfi {

void fft_in_place(std::span<cplx> x, bool inverse) {
  const std::size_t n = x.size();
  SPOTFI_EXPECTS(n != 0 && (n & (n - 1)) == 0,
                 "FFT size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi /
                         static_cast<double>(len);
    const cplx wlen = std::polar(1.0, angle);
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= scale;
  }
}

CVector fft(std::span<const cplx> x) {
  CVector out(x.begin(), x.end());
  fft_in_place(out, false);
  return out;
}

CVector ifft(std::span<const cplx> x) {
  CVector out(x.begin(), x.end());
  fft_in_place(out, true);
  return out;
}

CVector dft_reference(std::span<const cplx> x) {
  const std::size_t n = x.size();
  CVector out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{};
    for (std::size_t t = 0; t < n; ++t) {
      acc += x[t] * std::polar(1.0, -2.0 * kPi *
                                        static_cast<double>(k * t) /
                                        static_cast<double>(n));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace spotfi
