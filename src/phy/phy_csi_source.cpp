#include "phy/phy_csi_source.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace spotfi {

PhyCsiSynthesizer::PhyCsiSynthesizer(PhyConfig phy,
                                     ImpairmentConfig impairments)
    : phy_(phy), impairments_(impairments), frame_(transmit_ltf_frame(phy_)) {
  SPOTFI_EXPECTS(phy_.link.n_subcarriers == 30,
                 "waveform source reports the 5300's 30-subcarrier grid");
}

LinkConfig PhyCsiSynthesizer::reported_link() const {
  LinkConfig link = phy_.link;
  link.subcarrier_spacing_hz = 4.0 * phy_.ofdm.subcarrier_spacing_hz();
  link.n_subcarriers = 30;
  return link;
}

CsiPacket PhyCsiSynthesizer::synthesize(std::span<const PathComponent> paths,
                                        double timestamp_s, Rng& rng) const {
  SPOTFI_EXPECTS(!paths.empty(), "need at least one path");

  // Per-packet common timing offset: transmit clock / trigger jitter.
  // Unlike the analytic source, this is applied to the *waveform*; the
  // receiver's detector absorbs the integer part and the remainder shows
  // up in the CSI as a real STO would.
  const double sto =
      impairments_.sto_base_s +
      rng.uniform(-impairments_.sto_jitter_s, impairments_.sto_jitter_s);
  std::vector<PathComponent> shifted(paths.begin(), paths.end());
  for (auto& p : shifted) {
    p.tof_s += sto;
    if (!p.is_direct) {
      p.phase_rad += rng.normal(0.0, impairments_.indirect_phase_jitter_rad);
      p.gain_db += rng.normal(0.0, impairments_.indirect_gain_jitter_db);
      p.tof_s += rng.normal(0.0, impairments_.indirect_tof_jitter_s);
      p.aoa_rad += rng.normal(0.0, impairments_.indirect_aoa_jitter_rad);
    }
  }

  // Link budget -> per-antenna waveform SNR.
  double rx_mw = 0.0;
  for (const auto& p : paths) {
    rx_mw += std::pow(10.0, (impairments_.tx_power_dbm + p.gain_db) / 10.0);
  }
  const double rx_dbm = 10.0 * std::log10(std::max(rx_mw, 1e-12));
  PhyConfig phy = phy_;
  phy.snr_db = std::min(rx_dbm - impairments_.noise_floor_dbm,
                        impairments_.max_snr_db);

  // Normalize path gains so the strongest is 0 dB (the SNR knob carries
  // the absolute level; keeps waveform amplitudes well-scaled).
  double strongest = -1e300;
  for (const auto& p : shifted) strongest = std::max(strongest, p.gain_db);
  for (auto& p : shifted) p.gain_db -= strongest;

  const CMatrix rx = apply_multipath_channel(frame_, shifted, phy, rng);
  PhyCsiResult received = receive_csi(rx, phy);

  CsiPacket packet;
  packet.timestamp_s = timestamp_s;
  packet.csi = std::move(received.csi);

  if (impairments_.random_common_phase) {
    const cplx cpo = std::polar(1.0, rng.uniform(0.0, 2.0 * kPi));
    for (auto& v : packet.csi.flat()) v *= cpo;
  }
  if (impairments_.quantize_8bit) {
    double max_comp = 0.0;
    for (const auto& v : packet.csi.flat()) {
      max_comp = std::max({max_comp, std::abs(v.real()), std::abs(v.imag())});
    }
    if (max_comp > 0.0) {
      const double scale = 114.0 / max_comp;
      for (auto& v : packet.csi.flat()) {
        const double re = std::round(v.real() * scale);
        const double im = std::round(v.imag() * scale);
        v = cplx(std::clamp(re, -128.0, 127.0) / scale,
                 std::clamp(im, -128.0, 127.0) / scale);
      }
    }
  }
  packet.rssi_dbm = rx_dbm + rng.normal(0.0, impairments_.rssi_shadowing_db);
  return packet;
}

std::vector<CsiPacket> PhyCsiSynthesizer::synthesize_burst(
    std::span<const PathComponent> paths, std::size_t n_packets,
    double interval_s, Rng& rng) const {
  SPOTFI_EXPECTS(n_packets > 0, "need at least one packet");
  std::vector<cplx> chain(phy_.link.n_antennas);
  for (auto& c : chain) {
    const double gain_db =
        rng.normal(0.0, impairments_.gain_calibration_sigma_db);
    const double phase =
        rng.normal(0.0, impairments_.phase_calibration_sigma_rad);
    c = std::polar(std::pow(10.0, gain_db / 20.0), phase);
  }
  std::vector<CsiPacket> burst;
  burst.reserve(n_packets);
  for (std::size_t i = 0; i < n_packets; ++i) {
    burst.push_back(
        synthesize(paths, static_cast<double>(i) * interval_s, rng));
    CMatrix& csi = burst.back().csi;
    for (std::size_t m = 0; m < csi.rows(); ++m) {
      for (std::size_t n = 0; n < csi.cols(); ++n) csi(m, n) *= chain[m];
    }
  }
  return burst;
}

}  // namespace spotfi
