// CSI source backed by the full waveform chain.
//
// Mirrors channel/CsiSynthesizer's interface but produces every packet by
// actually transmitting LTF symbols through the multipath channel and
// running the receiver (detection, FFT, channel estimation). STO arises
// physically here: a per-packet transmit-clock jitter shifts the whole
// frame, and whatever the correlator does not absorb lands in the CSI
// phase — no STO is ever injected into the CSI directly. Used by the
// experiment runner's waveform mode and the model-vs-waveform ablation.
#pragma once

#include "channel/csi_synthesis.hpp"
#include "phy/transceiver.hpp"

namespace spotfi {

class PhyCsiSynthesizer {
 public:
  PhyCsiSynthesizer(PhyConfig phy, ImpairmentConfig impairments);

  /// One packet through the waveform chain.
  [[nodiscard]] CsiPacket synthesize(std::span<const PathComponent> paths,
                                     double timestamp_s, Rng& rng) const;

  /// A burst with per-burst antenna calibration residuals, like
  /// CsiSynthesizer::synthesize_burst.
  [[nodiscard]] std::vector<CsiPacket> synthesize_burst(
      std::span<const PathComponent> paths, std::size_t n_packets,
      double interval_s, Rng& rng) const;

  [[nodiscard]] const PhyConfig& phy() const { return phy_; }
  /// Link configuration describing the produced CSI (reported-subcarrier
  /// spacing of the 5300's 40 MHz grid).
  [[nodiscard]] LinkConfig reported_link() const;

 private:
  PhyConfig phy_;
  ImpairmentConfig impairments_;
  PhyFrame frame_;
};

}  // namespace spotfi
