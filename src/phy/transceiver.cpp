#include "phy/transceiver.hpp"

#include <algorithm>
#include <cmath>

#include "phy/fft.hpp"

namespace spotfi {

PhyFrame transmit_ltf_frame(const PhyConfig& cfg) {
  SPOTFI_EXPECTS(cfg.n_ltf >= 1, "need at least one LTF symbol");
  const CVector symbol = ltf_time_symbol(cfg.ofdm);
  PhyFrame frame;
  frame.samples.assign(cfg.lead_silence, cplx{});
  frame.frame_start = cfg.lead_silence;
  for (std::size_t s = 0; s < cfg.n_ltf; ++s) {
    frame.samples.insert(frame.samples.end(), symbol.begin(), symbol.end());
  }
  // Trailing pad so delayed copies fit.
  frame.samples.insert(frame.samples.end(), cfg.ofdm.fft_size, cplx{});
  return frame;
}

CMatrix apply_multipath_channel(const PhyFrame& frame,
                                std::span<const PathComponent> paths,
                                const PhyConfig& cfg, Rng& rng) {
  SPOTFI_EXPECTS(!paths.empty(), "need at least one path");
  const std::size_t n_ant = cfg.link.n_antennas;
  const std::size_t n = frame.samples.size();

  // Exact fractional delays: apply each path as the all-pass
  // e^(-j*2*pi*f*tau) in the frequency domain of the zero-padded frame
  // (padding prevents circular wrap of the largest delay).
  std::size_t n_fft = 1;
  while (n_fft < 2 * n) n_fft <<= 1;
  CVector tx_freq(n_fft, cplx{});
  std::copy(frame.samples.begin(), frame.samples.end(), tx_freq.begin());
  fft_in_place(tx_freq, false);

  CMatrix rx(n_ant, n);
  CVector accum(n_fft);
  for (std::size_t m = 0; m < n_ant; ++m) {
    std::fill(accum.begin(), accum.end(), cplx{});
    for (const auto& path : paths) {
      SPOTFI_EXPECTS(path.tof_s >= 0.0, "negative path delay");
      SPOTFI_EXPECTS(path.tof_s * cfg.ofdm.sample_rate_hz <
                         static_cast<double>(n_fft - n),
                     "path delay exceeds the frame padding");
      const double phi_arg = -2.0 * kPi * cfg.link.antenna_spacing_m *
                             std::sin(path.aoa_rad) * cfg.link.carrier_hz /
                             kSpeedOfLight;
      const cplx g = path.complex_gain() *
                     std::polar(1.0, phi_arg * static_cast<double>(m));
      // Baseband frequency of FFT bin k (negative above n_fft/2).
      const double df = cfg.ofdm.sample_rate_hz / static_cast<double>(n_fft);
      const cplx rot =
          std::polar(1.0, -2.0 * kPi * df * path.tof_s);
      // Walk bins 0..n/2 with the positive-frequency phasor and mirror
      // the negative frequencies.
      cplx phasor{1.0, 0.0};
      for (std::size_t k = 0; k <= n_fft / 2; ++k) {
        accum[k] += g * phasor * tx_freq[k];
        if (k != 0 && k != n_fft / 2) {
          accum[n_fft - k] += g * std::conj(phasor) * tx_freq[n_fft - k];
        }
        phasor *= rot;
      }
    }
    fft_in_place(accum, true);
    for (std::size_t t = 0; t < n; ++t) rx(m, t) = accum[t];
  }

  // AWGN at the configured SNR relative to the strongest path's power
  // (LTF symbols have unit average power at the transmitter).
  double max_gain = 0.0;
  for (const auto& p : paths) {
    max_gain = std::max(max_gain, std::norm(p.complex_gain()));
  }
  const double noise_power = max_gain * std::pow(10.0, -cfg.snr_db / 10.0);
  const double sigma = std::sqrt(noise_power / 2.0);
  for (auto& v : rx.flat()) {
    v += cplx(rng.normal(0.0, sigma), rng.normal(0.0, sigma));
  }
  return rx;
}

PhyCsiResult receive_csi(const CMatrix& rx_streams, const PhyConfig& cfg) {
  const std::size_t n_ant = rx_streams.rows();
  const std::size_t n = rx_streams.cols();
  const std::size_t fft_size = cfg.ofdm.fft_size;
  const std::size_t cp = cfg.ofdm.cyclic_prefix;
  const std::size_t sym = cfg.ofdm.symbol_samples();
  const std::size_t frame_len = cfg.n_ltf * sym;
  SPOTFI_EXPECTS(n >= frame_len, "receive stream shorter than one frame");

  // Packet detection: cross-correlate antenna 0 with the known LTF core.
  const CVector symbol = ltf_time_symbol(cfg.ofdm);
  const std::span<const cplx> core(symbol.data() + cp, fft_size);
  double core_energy = 0.0;
  for (const auto& v : core) core_energy += std::norm(v);

  std::vector<double> corr(n - frame_len + 1, 0.0);
  const auto rx0 = rx_streams.row(0);
  for (std::size_t p = 0; p + frame_len <= n; ++p) {
    cplx acc{};
    for (std::size_t t = 0; t < fft_size; ++t) {
      acc += rx0[p + cp + t] * std::conj(core[t]);
    }
    corr[p] = std::abs(acc);
  }
  const auto peak_it = std::max_element(corr.begin(), corr.end());
  if (*peak_it <= 1e-9 * core_energy) {
    throw DetectionError("receive_csi: no frame detected");
  }
  std::size_t start = static_cast<std::size_t>(peak_it - corr.begin());
  // The repeated LTF produces equal peaks one symbol apart; take the
  // earliest one of comparable height.
  while (start >= sym && corr[start - sym] >= 0.8 * corr[start]) {
    start -= sym;
  }

  // Channel estimation: average the per-symbol estimates.
  const auto occupied = cfg.ofdm.occupied_subcarriers();
  const auto seq = ltf_sequence(cfg.ofdm);
  CMatrix channel(n_ant, occupied.size());
  for (std::size_t s = 0; s < cfg.n_ltf; ++s) {
    const std::size_t sym_start = start + s * sym + cp;
    SPOTFI_EXPECTS(sym_start + fft_size <= n, "detected frame runs off end");
    for (std::size_t m = 0; m < n_ant; ++m) {
      CVector time(fft_size);
      for (std::size_t t = 0; t < fft_size; ++t) {
        time[t] = rx_streams(m, sym_start + t);
      }
      fft_in_place(time, false);
      for (std::size_t i = 0; i < occupied.size(); ++i) {
        channel(m, i) += time[cfg.ofdm.bin_of(occupied[i])] / seq[i];
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(cfg.n_ltf);
  for (auto& v : channel.flat()) v *= inv;

  // Report the Intel 5300's 30-subcarrier subset (every 4th occupied
  // index from -58 to 58, skipping DC).
  PhyCsiResult result;
  result.detected_start = start;
  std::vector<std::size_t> report;
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    const int k = occupied[i];
    if (k % 4 == 2 || k % 4 == -2) report.push_back(i);
  }
  SPOTFI_ASSERT(report.size() == 30 || cfg.ofdm.max_occupied != 58,
                "unexpected report subset size");
  result.csi = CMatrix(n_ant, report.size());
  for (std::size_t m = 0; m < n_ant; ++m) {
    for (std::size_t j = 0; j < report.size(); ++j) {
      result.csi(m, j) = channel(m, report[j]);
    }
  }
  return result;
}

}  // namespace spotfi
