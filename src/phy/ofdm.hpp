// 802.11n-style OFDM numerology and training symbols for the waveform
// substrate.
//
// A 40 MHz HT channel: 128-point FFT at 40 Msps (312.5 kHz subcarrier
// spacing), 114 occupied subcarriers at indices -58..58 (DC and band
// edges null), 1/4 cyclic prefix. The long training field (LTF) carries a
// known +-1 sequence on the occupied subcarriers; dividing the received
// LTF by it yields the channel estimate the NIC quantizes into CSI.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace spotfi {

struct OfdmConfig {
  std::size_t fft_size = 128;
  std::size_t cyclic_prefix = 32;
  /// Sample rate [Hz]; subcarrier spacing = sample_rate / fft_size.
  double sample_rate_hz = 40e6;
  /// Highest occupied subcarrier index (+-).
  int max_occupied = 58;

  [[nodiscard]] double subcarrier_spacing_hz() const {
    return sample_rate_hz / static_cast<double>(fft_size);
  }
  [[nodiscard]] std::size_t symbol_samples() const {
    return fft_size + cyclic_prefix;
  }
  /// Occupied subcarrier indices (negative and positive, DC excluded).
  [[nodiscard]] std::vector<int> occupied_subcarriers() const;
  /// FFT bin for a (possibly negative) subcarrier index.
  [[nodiscard]] std::size_t bin_of(int subcarrier_index) const;
};

/// Deterministic +-1 training sequence on the occupied subcarriers
/// (one value per entry of occupied_subcarriers()).
[[nodiscard]] std::vector<double> ltf_sequence(const OfdmConfig& cfg);

/// Time-domain LTF symbol with cyclic prefix (symbol_samples() samples),
/// unit average power.
[[nodiscard]] CVector ltf_time_symbol(const OfdmConfig& cfg);

}  // namespace spotfi
