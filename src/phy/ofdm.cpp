#include "phy/ofdm.hpp"

#include <cmath>

#include "phy/fft.hpp"

namespace spotfi {

std::vector<int> OfdmConfig::occupied_subcarriers() const {
  SPOTFI_EXPECTS(max_occupied > 0 &&
                     static_cast<std::size_t>(max_occupied) < fft_size / 2,
                 "occupied band exceeds the FFT size");
  std::vector<int> indices;
  for (int k = -max_occupied; k <= max_occupied; ++k) {
    if (k != 0) indices.push_back(k);
  }
  return indices;
}

std::size_t OfdmConfig::bin_of(int subcarrier_index) const {
  SPOTFI_EXPECTS(std::abs(subcarrier_index) <
                     static_cast<int>(fft_size / 2),
                 "subcarrier index out of range");
  return subcarrier_index >= 0
             ? static_cast<std::size_t>(subcarrier_index)
             : fft_size + static_cast<std::size_t>(subcarrier_index);
}

std::vector<double> ltf_sequence(const OfdmConfig& cfg) {
  // Deterministic +-1 values from a tiny LCG so TX and RX agree without
  // sharing state; mimics the standard's fixed LTF sign pattern.
  const auto occupied = cfg.occupied_subcarriers();
  std::vector<double> seq;
  seq.reserve(occupied.size());
  std::uint32_t state = 0x1337u;
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    state = state * 1664525u + 1013904223u;
    seq.push_back((state >> 16) & 1u ? 1.0 : -1.0);
  }
  return seq;
}

CVector ltf_time_symbol(const OfdmConfig& cfg) {
  const auto occupied = cfg.occupied_subcarriers();
  const auto seq = ltf_sequence(cfg);
  CVector freq(cfg.fft_size, cplx{});
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    freq[cfg.bin_of(occupied[i])] = cplx(seq[i], 0.0);
  }
  CVector time = ifft(freq);
  // Normalize to unit average power.
  double power = 0.0;
  for (const auto& v : time) power += std::norm(v);
  power /= static_cast<double>(time.size());
  const double scale = 1.0 / std::sqrt(std::max(power, 1e-300));
  for (auto& v : time) v *= scale;
  // Prepend the cyclic prefix.
  CVector symbol;
  symbol.reserve(cfg.symbol_samples());
  symbol.insert(symbol.end(), time.end() - cfg.cyclic_prefix, time.end());
  symbol.insert(symbol.end(), time.begin(), time.end());
  return symbol;
}

}  // namespace spotfi
