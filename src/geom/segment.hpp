// Line segments and the primitives the ray tracer needs: segment-segment
// intersection, point projection, and mirror reflection across a segment's
// supporting line (used to enumerate first-order specular paths).
#pragma once

#include <optional>

#include "geom/vec2.hpp"

namespace spotfi {

struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return distance(a, b); }
  [[nodiscard]] Vec2 direction() const { return (b - a).normalized(); }
  [[nodiscard]] Vec2 midpoint() const { return (a + b) * 0.5; }
  /// Unit normal (counter-clockwise perpendicular of the direction).
  [[nodiscard]] Vec2 normal() const { return direction().perp(); }
  [[nodiscard]] Vec2 point_at(double t) const { return a + (b - a) * t; }
};

/// Intersection of two segments. Returns the parameter t along `p` (in
/// [0, 1]) if they properly intersect; collinear overlaps return nullopt.
/// `endpoint_tolerance` shrinks both segments slightly so that rays that
/// merely graze an endpoint do not count — this keeps wall-corner contacts
/// from double-counting attenuation.
[[nodiscard]] std::optional<double> segment_intersection(
    const Segment& p, const Segment& q, double endpoint_tolerance = 1e-9);

/// Closest distance from a point to a segment.
[[nodiscard]] double point_segment_distance(Vec2 point, const Segment& s);

/// Mirror image of a point across the infinite line supporting `s`.
[[nodiscard]] Vec2 mirror_across(Vec2 point, const Segment& s);

/// True if the perpendicular projection of `point` onto the supporting
/// line of `s` falls within the segment (with optional margin).
[[nodiscard]] bool projects_onto(Vec2 point, const Segment& s,
                                 double margin = 0.0);

}  // namespace spotfi
