#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

namespace spotfi {

std::optional<double> segment_intersection(const Segment& p, const Segment& q,
                                           double endpoint_tolerance) {
  const Vec2 r = p.b - p.a;
  const Vec2 s = q.b - q.a;
  const double denom = r.cross(s);
  if (std::abs(denom) < 1e-15 * std::max(1.0, r.norm() * s.norm())) {
    return std::nullopt;  // parallel or collinear
  }
  const Vec2 pq = q.a - p.a;
  const double t = pq.cross(s) / denom;
  const double u = pq.cross(r) / denom;
  const double eps = endpoint_tolerance;
  if (t < eps || t > 1.0 - eps || u < eps || u > 1.0 - eps) {
    return std::nullopt;
  }
  return t;
}

double point_segment_distance(Vec2 point, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.squared_norm();
  if (len2 <= 0.0) return distance(point, s.a);
  const double t = std::clamp((point - s.a).dot(d) / len2, 0.0, 1.0);
  return distance(point, s.a + d * t);
}

Vec2 mirror_across(Vec2 point, const Segment& s) {
  const Vec2 d = s.direction();
  const Vec2 rel = point - s.a;
  // Decompose into along-line and perpendicular components; flip the latter.
  const double along = rel.dot(d);
  const Vec2 foot = s.a + d * along;
  return foot + (foot - point);
}

bool projects_onto(Vec2 point, const Segment& s, double margin) {
  const Vec2 d = s.b - s.a;
  const double len = d.norm();
  if (len <= 0.0) return false;
  const double t = (point - s.a).dot(d / len);
  return t >= -margin && t <= len + margin;
}

}  // namespace spotfi
