// Floor plans: walls with RF material properties, plus the queries the
// channel simulator needs — how much a straight path is attenuated by the
// walls it crosses, and whether a link is line-of-sight.
//
// Walls both attenuate signals passing through them (transmission loss)
// and act as specular reflectors (reflection loss). Point scatterers
// (furniture, cabinets, people) are handled separately by the channel
// model.
#pragma once

#include <string>
#include <vector>

#include "geom/segment.hpp"

namespace spotfi {

/// RF properties of a wall material, in dB per crossing / per bounce.
struct WallMaterial {
  double transmission_loss_db = 6.0;
  double reflection_loss_db = 4.0;

  [[nodiscard]] static WallMaterial drywall() { return {5.0, 2.5}; }
  [[nodiscard]] static WallMaterial concrete() { return {14.0, 1.5}; }
  [[nodiscard]] static WallMaterial glass() { return {3.0, 5.0}; }
  [[nodiscard]] static WallMaterial metal() { return {30.0, 0.5}; }
};

struct Wall {
  Segment segment;
  WallMaterial material;
  std::string name;
};

/// A floor plan is a set of walls; all channel-simulator geometry queries
/// go through this class.
class FloorPlan {
 public:
  void add_wall(Wall wall);
  /// Adds the four walls of an axis-aligned rectangle (a room shell).
  void add_rectangle(Vec2 lo, Vec2 hi, const WallMaterial& material,
                     const std::string& name_prefix);

  [[nodiscard]] const std::vector<Wall>& walls() const { return walls_; }
  [[nodiscard]] std::size_t wall_count() const { return walls_.size(); }

  /// Total transmission loss [dB] accumulated by a straight ray from `from`
  /// to `to`, excluding wall `skip_wall` (pass size() to skip none) —
  /// used when the endpoint of a sub-ray lies on a reflecting wall.
  [[nodiscard]] double transmission_loss_db(
      Vec2 from, Vec2 to, std::size_t skip_wall = kNoWall) const;

  /// Number of walls a straight ray crosses.
  [[nodiscard]] std::size_t walls_crossed(Vec2 from, Vec2 to) const;

  /// A link is line-of-sight when the straight ray crosses no wall.
  [[nodiscard]] bool line_of_sight(Vec2 from, Vec2 to) const;

  static constexpr std::size_t kNoWall = static_cast<std::size_t>(-1);

 private:
  std::vector<Wall> walls_;
};

}  // namespace spotfi
