#include "geom/floorplan.hpp"

#include "common/error.hpp"

namespace spotfi {

void FloorPlan::add_wall(Wall wall) {
  SPOTFI_EXPECTS(wall.segment.length() > 0.0, "wall must have positive length");
  walls_.push_back(std::move(wall));
}

void FloorPlan::add_rectangle(Vec2 lo, Vec2 hi, const WallMaterial& material,
                              const std::string& name_prefix) {
  SPOTFI_EXPECTS(lo.x < hi.x && lo.y < hi.y,
                 "rectangle must have positive area");
  const Vec2 a{lo.x, lo.y};
  const Vec2 b{hi.x, lo.y};
  const Vec2 c{hi.x, hi.y};
  const Vec2 d{lo.x, hi.y};
  add_wall({{a, b}, material, name_prefix + "/south"});
  add_wall({{b, c}, material, name_prefix + "/east"});
  add_wall({{c, d}, material, name_prefix + "/north"});
  add_wall({{d, a}, material, name_prefix + "/west"});
}

double FloorPlan::transmission_loss_db(Vec2 from, Vec2 to,
                                       std::size_t skip_wall) const {
  const Segment ray{from, to};
  double loss = 0.0;
  for (std::size_t w = 0; w < walls_.size(); ++w) {
    if (w == skip_wall) continue;
    if (segment_intersection(ray, walls_[w].segment)) {
      loss += walls_[w].material.transmission_loss_db;
    }
  }
  return loss;
}

std::size_t FloorPlan::walls_crossed(Vec2 from, Vec2 to) const {
  const Segment ray{from, to};
  std::size_t n = 0;
  for (const auto& wall : walls_) {
    if (segment_intersection(ray, wall.segment)) ++n;
  }
  return n;
}

bool FloorPlan::line_of_sight(Vec2 from, Vec2 to) const {
  return walls_crossed(from, to) == 0;
}

}  // namespace spotfi
