// 2-D vector/point type for floor-plan geometry. The paper's testbed and
// localization are planar (AP and target heights are comparable), so all
// geometry in the simulator is 2-D.
#pragma once

#include <cmath>

namespace spotfi {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] constexpr double cross(Vec2 o) const {
    return x * o.y - y * o.x;
  }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double squared_norm() const { return x * x + y * y; }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
  /// Angle of the vector from +x axis, in (-pi, pi].
  [[nodiscard]] double angle() const { return std::atan2(y, x); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace spotfi
