#include "transport/transport.hpp"

#include <algorithm>
#include <utility>

namespace spotfi {

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kSendWindowFull: return "send-window-full";
    case TransportErrorKind::kConnectionLost: return "connection-lost";
    case TransportErrorKind::kRetriesExhausted: return "retries-exhausted";
    case TransportErrorKind::kNotConnected: return "not-connected";
  }
  return "unknown";
}

void TransportStats::merge(const TransportStats& other) {
  sent += other.sent;
  acked += other.acked;
  pending += other.pending;
  failed += other.failed;
  transmissions += other.transmissions;
  retransmissions += other.retransmissions;
  send_rejected += other.send_rejected;
  connect_attempts += other.connect_attempts;
  reconnects += other.reconnects;
  heartbeats_sent += other.heartbeats_sent;
  received += other.received;
  delivered += other.delivered;
  duplicates += other.duplicates;
  out_of_window += other.out_of_window;
  corrupt += other.corrupt;
  buffered += other.buffered;
  acks_sent += other.acks_sent;
  heartbeats_seen += other.heartbeats_seen;
  connects_seen += other.connects_seen;
  backpressure_deferrals += other.backpressure_deferrals;
}

TransportSink make_session_sink(SessionManager& manager, SessionId id) {
  return [&manager, id](std::size_t ap_id, CsiPacket& packet) {
    IngestItem item;
    item.ap_id = ap_id;
    item.packet = std::move(packet);
    if (!manager.offer_or_return(id, item).admitted()) {
      // Shed at the session queue: hand the payload back untouched so
      // the receiver retries on a later tick instead of losing an
      // about-to-be-acked frame.
      packet = std::move(item.packet);
      return false;
    }
    return true;
  };
}

SessionIngestStats session_ingest_report(
    const SessionManager& manager, SessionId id,
    const std::vector<const TransportSender*>& senders,
    const std::vector<const TransportReceiver*>& receivers) {
  SessionIngestStats report;
  report.session = manager.session_stats(id);
  for (const TransportSender* sender : senders) {
    SPOTFI_EXPECTS(sender != nullptr, "null sender in ingest report");
    report.transport.merge(sender->stats());
  }
  for (const TransportReceiver* receiver : receivers) {
    SPOTFI_EXPECTS(receiver != nullptr, "null receiver in ingest report");
    report.transport.merge(receiver->stats());
  }
  return report;
}

// ---------------------------------------------------------------------------
// TransportSender

TransportSender::TransportSender(LinkSimulator& link, TransportConfig config)
    : link_(&link), config_(config), rng_(config.seed) {
  SPOTFI_EXPECTS(config_.send_window >= 1,
                 "TransportSender: send_window must be >= 1");
  SPOTFI_EXPECTS(config_.rto_initial_s > 0.0 && config_.rto_backoff >= 1.0 &&
                     config_.rto_max_s >= config_.rto_initial_s,
                 "TransportSender: retransmit timer config invalid");
  SPOTFI_EXPECTS(config_.liveness_timeout_s > config_.heartbeat_interval_s,
                 "TransportSender: liveness timeout must exceed the "
                 "heartbeat interval");
  SPOTFI_EXPECTS(config_.timer_jitter_frac >= 0.0 &&
                     config_.timer_jitter_frac < 1.0,
                 "TransportSender: timer_jitter_frac must be in [0, 1)");
  window_.resize(config_.send_window);
  rx_buf_.reserve(2 * config_.send_window + 8);
  connect_backoff_s_ = config_.reconnect_backoff_initial_s;
}

double TransportSender::jittered(double base_s) {
  if (config_.timer_jitter_frac <= 0.0) return base_s;
  return base_s *
         (1.0 + config_.timer_jitter_frac * (2.0 * rng_.uniform() - 1.0));
}

Expected<std::uint64_t, TransportError> TransportSender::send(
    std::size_t ap_id, CsiPacket& packet, double now_s) {
  if (state_ == State::kFailed) {
    ++stats_.send_rejected;
    return TransportError{TransportErrorKind::kNotConnected, 0,
                          "transport failed permanently"};
  }
  if (next_seq_ - base_ >= config_.send_window) {
    ++stats_.send_rejected;
    return TransportError{TransportErrorKind::kSendWindowFull, next_seq_,
                          "send window full"};
  }
  SendSlot& slot = slot_of(next_seq_);
  slot.occupied = true;
  slot.transmitted = false;
  slot.seq = next_seq_;
  slot.ap_id = ap_id;
  slot.checksum = packet_checksum(packet);
  slot.retries = 0;
  slot.rto_s = config_.rto_initial_s;
  slot.next_retx_s = now_s;
  slot.packet = std::move(packet);
  ++next_seq_;
  ++stats_.sent;
  // While connecting, the frame waits in the window; establishment (or
  // the next tick) transmits it.
  if (state_ == State::kEstablished) transmit(slot, now_s, false);
  return slot.seq;
}

void TransportSender::transmit(SendSlot& slot, double now_s,
                               bool retransmission) {
  TransportFrame f;
  f.header.type = FrameType::kData;
  f.header.epoch = epoch_;
  f.header.seq = slot.seq;
  f.header.checksum = slot.checksum;
  f.header.ap_id = slot.ap_id;
  f.header.sent_at_s = now_s;
  // Copy, not move: the slot keeps the payload for retransmission until
  // the frame is acked (a real NIC would serialize it the same way).
  f.packet = slot.packet;
  link_->send(LinkDirection::kUplink, std::move(f), now_s);
  slot.transmitted = true;
  ++stats_.transmissions;
  if (retransmission) {
    ++slot.retries;
    ++stats_.retransmissions;
    slot.rto_s = std::min(slot.rto_s * config_.rto_backoff, config_.rto_max_s);
  }
  slot.next_retx_s = now_s + jittered(slot.rto_s);
  last_tx_s_ = now_s;
}

void TransportSender::process_ack(std::uint64_t cumulative_ack) {
  while (base_ <= cumulative_ack && base_ < next_seq_) {
    SendSlot& slot = slot_of(base_);
    if (slot.occupied && slot.seq == base_) {
      // Keep the payload storage: the slot will be reused by a later
      // seq and the stale matrix recycled, so steady state never
      // allocates for same-shaped captures.
      slot.occupied = false;
      ++stats_.acked;
    }
    ++base_;
  }
}

void TransportSender::enter_connecting(double now_s,
                                       const TransportError& why) {
  state_ = State::kConnecting;
  last_error_ = why;
  connect_backoff_s_ = config_.reconnect_backoff_initial_s;
  connect_attempts_this_outage_ = 0;
  next_connect_at_s_ = now_s;  // first attempt fires immediately
}

void TransportSender::fail_all_pending() {
  for (std::uint64_t seq = base_; seq < next_seq_; ++seq) {
    SendSlot& slot = slot_of(seq);
    if (slot.occupied) {
      slot.occupied = false;
      ++stats_.failed;
    }
  }
}

void TransportSender::tick(double now_s) {
  if (state_ == State::kFailed) return;

  // 1. Drain the downlink: acks and handshake completions.
  rx_buf_.clear();
  link_->poll(LinkDirection::kDownlink, now_s, rx_buf_);
  for (const TransportFrame& f : rx_buf_) {
    switch (f.header.type) {
      case FrameType::kConnectAck:
        // A cumulative ack is a monotone end-to-end truth — honor it
        // whatever its epoch. Only the *handshake* is epoch-gated, so a
        // stale connect-ack from an abandoned attempt cannot complete a
        // newer one.
        process_ack(f.header.cumulative_ack);
        if (f.header.epoch == epoch_) {
          last_rx_s_ = now_s;
          if (state_ == State::kConnecting) {
            state_ = State::kEstablished;
            ++establishments_;
            if (establishments_ > 1) ++stats_.reconnects;
            // Everything still pending is due for (re)transmission now:
            // the outage invalidated in-flight copies and timers.
            for (std::uint64_t seq = base_; seq < next_seq_; ++seq) {
              SendSlot& slot = slot_of(seq);
              if (!slot.occupied) continue;
              slot.retries = 0;
              slot.rto_s = config_.rto_initial_s;
              slot.next_retx_s = now_s;
            }
          }
        }
        break;
      case FrameType::kAck:
        process_ack(f.header.cumulative_ack);
        last_rx_s_ = now_s;
        break;
      default:
        break;  // data/connect/heartbeat never travel the downlink
    }
  }

  // 2. Liveness: a silent receiver means the connection is gone.
  if (state_ == State::kEstablished &&
      now_s - last_rx_s_ > config_.liveness_timeout_s) {
    enter_connecting(now_s,
                     TransportError{TransportErrorKind::kConnectionLost, 0,
                                    "liveness timeout"});
  }

  // 3. Reconnect state machine.
  if (state_ == State::kConnecting && now_s >= next_connect_at_s_) {
    if (config_.max_reconnects > 0 &&
        connect_attempts_this_outage_ >= config_.max_reconnects) {
      state_ = State::kFailed;
      last_error_ = TransportError{TransportErrorKind::kRetriesExhausted, 0,
                                   "reconnect budget spent"};
      fail_all_pending();
      return;
    }
    ++epoch_;
    ++stats_.connect_attempts;
    ++connect_attempts_this_outage_;
    TransportFrame f;
    f.header.type = FrameType::kConnect;
    f.header.epoch = epoch_;
    f.header.sent_at_s = now_s;
    link_->send(LinkDirection::kUplink, std::move(f), now_s);
    last_tx_s_ = now_s;
    next_connect_at_s_ = now_s + jittered(connect_backoff_s_);
    connect_backoff_s_ = std::min(connect_backoff_s_ * config_.rto_backoff,
                                 config_.reconnect_backoff_max_s);
    return;  // nothing else to do until the handshake answers
  }
  if (state_ != State::kEstablished) return;

  // 4. Retransmit timers, in sequence order (oldest debt first).
  for (std::uint64_t seq = base_; seq < next_seq_; ++seq) {
    SendSlot& slot = slot_of(seq);
    if (!slot.occupied || slot.next_retx_s > now_s) continue;
    if (slot.transmitted && slot.retries >= config_.max_retries) {
      // This frame has eaten its whole retry budget inside one epoch:
      // declare the connection dead and let the reconnect handshake
      // re-arm every pending frame.
      enter_connecting(
          now_s, TransportError{TransportErrorKind::kConnectionLost, slot.seq,
                                "retransmit budget spent"});
      return;
    }
    transmit(slot, now_s, /*retransmission=*/slot.transmitted);
  }

  // 5. Heartbeat on send-side silence, so the receiver keeps acking and
  // liveness stays observable even with no data in flight.
  if (now_s - last_tx_s_ >= config_.heartbeat_interval_s) {
    TransportFrame f;
    f.header.type = FrameType::kHeartbeat;
    f.header.epoch = epoch_;
    f.header.sent_at_s = now_s;
    link_->send(LinkDirection::kUplink, std::move(f), now_s);
    last_tx_s_ = now_s;
    ++stats_.heartbeats_sent;
  }
}

TransportStats TransportSender::stats() const {
  TransportStats s = stats_;
  // Derived, so the partition holds by construction.
  s.pending = s.sent - s.acked - s.failed;
  return s;
}

// ---------------------------------------------------------------------------
// TransportReceiver

TransportReceiver::TransportReceiver(LinkSimulator& link, TransportSink sink,
                                     TransportConfig config)
    : link_(&link), config_(config), sink_(std::move(sink)) {
  SPOTFI_EXPECTS(config_.reorder_window >= 1,
                 "TransportReceiver: reorder_window must be >= 1");
  SPOTFI_EXPECTS(static_cast<bool>(sink_),
                 "TransportReceiver: sink must be callable");
  window_.resize(config_.reorder_window);
  rx_buf_.reserve(2 * config_.reorder_window + 8);
}

void TransportReceiver::send_control(FrameType type, double now_s) {
  TransportFrame f;
  f.header.type = type;
  f.header.epoch = epoch_;
  f.header.cumulative_ack = next_expected_ - 1;
  f.header.sent_at_s = now_s;
  link_->send(LinkDirection::kDownlink, std::move(f), now_s);
}

bool TransportReceiver::drain() {
  bool advanced = false;
  while (true) {
    RecvSlot& slot = window_[next_expected_ % window_.size()];
    if (!slot.occupied || slot.seq != next_expected_) break;
    delivering_seq_ = slot.seq;
    const bool consumed = sink_(slot.ap_id, slot.packet);
    delivering_seq_ = 0;
    if (!consumed) {
      // Session backpressure: the packet stays in the slot (the sink
      // left it intact), the cumulative ack stalls here, and the
      // sender's window freezes — flow control end to end.
      ++stats_.backpressure_deferrals;
      break;
    }
    slot.occupied = false;
    --buffered_;
    ++stats_.delivered;
    ++next_expected_;
    advanced = true;
  }
  return advanced;
}

void TransportReceiver::tick(double now_s) {
  rx_buf_.clear();
  link_->poll(LinkDirection::kUplink, now_s, rx_buf_);
  bool want_ack = false;
  bool advanced = false;
  for (TransportFrame& f : rx_buf_) {
    switch (f.header.type) {
      case FrameType::kConnect:
        epoch_ = f.header.epoch;
        ++stats_.connects_seen;
        // The connect-ack tells the sender exactly where to resume:
        // everything through next_expected_-1 was already delivered.
        send_control(FrameType::kConnectAck, now_s);
        break;
      case FrameType::kHeartbeat:
        ++stats_.heartbeats_seen;
        want_ack = true;
        break;
      case FrameType::kData: {
        ++stats_.received;
        if (packet_checksum(f.packet) != f.header.checksum) {
          // Damaged in flight. Do not ack, do not touch the window —
          // to the protocol this frame was dropped, and the retransmit
          // timer repairs it.
          ++stats_.corrupt;
          break;
        }
        want_ack = true;
        const std::uint64_t seq = f.header.seq;
        if (seq < next_expected_) {
          ++stats_.duplicates;  // already delivered; re-ack only
          break;
        }
        if (seq >= next_expected_ + window_.size()) {
          // Too far ahead to buffer within bounded memory; the stalled
          // ack makes the sender retransmit it after the gap closes.
          ++stats_.out_of_window;
          break;
        }
        RecvSlot& slot = window_[seq % window_.size()];
        if (slot.occupied) {
          ++stats_.duplicates;  // in-window seqs map to slots uniquely
          break;
        }
        slot.occupied = true;
        slot.seq = seq;
        slot.ap_id = f.header.ap_id;
        slot.packet = std::move(f.packet);
        ++buffered_;
        // Deliver eagerly so later frames in this same poll batch are
        // classified against the advanced window — a burst of seqs
        // 1,2,3 arriving together must not trip the out-of-window cap.
        advanced = drain() || advanced;
        break;
      }
      default:
        break;  // acks never travel the uplink
    }
  }
  // Also retries frames the sink refused on an earlier tick, which is
  // why drain runs even on idle ticks.
  advanced = drain() || advanced;
  if (want_ack || advanced) {
    send_control(FrameType::kAck, now_s);
    ++stats_.acks_sent;
  }
}

TransportStats TransportReceiver::stats() const {
  TransportStats s = stats_;
  s.buffered = buffered_;
  return s;
}

ReceiverRecoveryState TransportReceiver::export_recovery_state() const {
  ReceiverRecoveryState out;
  out.epoch = epoch_;
  out.next_expected = next_expected_;
  out.stats = stats();
  out.stats.buffered = 0;  // derived from the window on restore
  for (std::uint64_t seq = next_expected_;
       seq < next_expected_ + window_.size(); ++seq) {
    const RecvSlot& slot = window_[seq % window_.size()];
    if (!slot.occupied || slot.seq != seq) continue;
    ReceiverRecoveryState::BufferedFrame frame;
    frame.seq = slot.seq;
    frame.ap_id = slot.ap_id;
    frame.packet = slot.packet;
    out.window.push_back(std::move(frame));
  }
  return out;
}

void TransportReceiver::restore_recovery_state(ReceiverRecoveryState state,
                                               std::uint64_t next_expected) {
  SPOTFI_EXPECTS(stats_.received == 0 && next_expected_ == 1,
                 "restore_recovery_state: receiver has already seen traffic");
  SPOTFI_EXPECTS(next_expected >= state.next_expected,
                 "restore_recovery_state: delivery mark cannot move back");
  epoch_ = state.epoch;
  stats_ = state.stats;
  // Everything in [state.next_expected, next_expected) was delivered to
  // the session after the snapshot (the journal proves it). Frames that
  // were parked in the snapshot window are already counted received;
  // frames that arrived after the snapshot are not — account for both
  // so the receiver partition stays exact across the restore.
  for (std::uint64_t seq = state.next_expected; seq < next_expected; ++seq) {
    const bool was_buffered =
        std::any_of(state.window.begin(), state.window.end(),
                    [seq](const auto& f) { return f.seq == seq; });
    if (!was_buffered) ++stats_.received;
    ++stats_.delivered;
  }
  next_expected_ = next_expected;
  buffered_ = 0;
  for (ReceiverRecoveryState::BufferedFrame& frame : state.window) {
    if (frame.seq < next_expected_) continue;  // overtaken by the mark
    SPOTFI_EXPECTS(frame.seq < next_expected_ + window_.size(),
                   "restore_recovery_state: frame beyond the reorder window");
    RecvSlot& slot = window_[frame.seq % window_.size()];
    slot.occupied = true;
    slot.seq = frame.seq;
    slot.ap_id = frame.ap_id;
    slot.packet = std::move(frame.packet);
    ++buffered_;
  }
}

}  // namespace spotfi
