// Reliable async ingest transport (DESIGN.md §13): the sender/receiver
// pair that delivers per-AP capture frames into the session layer with
// end-to-end guarantees over the injectable-fault link.
//
// Guarantees, and the machinery behind each:
//
//  * No acked frame is lost. Acks are cumulative and mean *delivered to
//    the application*, not merely received; the sender keeps every
//    unacked frame in a bounded window and retransmits on a per-frame
//    timer with exponential backoff + jitter until acked — across
//    reconnects, because sequence numbers outlive connection epochs and
//    a kConnectAck tells the sender exactly where to resume.
//  * No frame is delivered twice. The receiver tracks the next expected
//    sequence number for the lifetime of the link (not the epoch) and
//    holds out-of-order arrivals in a bounded reorder window; anything
//    below the delivery mark or already buffered is counted a duplicate
//    and dropped.
//  * Corruption is detected, never consumed. Payload checksums are
//    verified on arrival; a mismatch is counted and treated exactly
//    like a drop (the retransmit timer repairs it).
//  * Overload pushes back instead of overflowing. Delivery goes through
//    a TransportSink that may refuse (the session queue was full); the
//    receiver then stalls in-order delivery and stops advancing the
//    cumulative ack, which freezes the sender's window — backpressure
//    propagates to the capture source as kSendWindowFull, never as
//    silent loss.
//  * Failure is explicit. A dead link exhausts the reconnect budget and
//    every pending frame surfaces through the TransportError taxonomy
//    (mirroring PR-2's IngestError) — TransportStats partitions exactly
//    (sent = acked + pending + failed; received = delivered + duplicate
//    + out_of_window + corrupt + buffered) so nothing can vanish
//    between the counters.
//
// Threading contract (mirrors SessionManager's): one thread drives a
// sender (send/tick), one thread drives a receiver (tick) — the link in
// between is internally locked. stats() is safe from the driving thread
// at any time, or from any thread once the driver has quiesced.
// Steady-state delivery on an established connection performs no heap
// allocation in the transport machinery: window slots, reorder slots,
// link queues, and poll buffers are all pre-sized and recycled
// (payload storage travels by move; bench/perf_transport.cpp gates it).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "core/session_manager.hpp"
#include "transport/link.hpp"

namespace spotfi {

/// Why the transport refused or abandoned work. Mirrors IngestErrorKind:
/// an explicit, enumerable taxonomy instead of silent loss.
enum class TransportErrorKind : std::uint8_t {
  kSendWindowFull,    ///< backpressure: too many unacked frames in flight
  kConnectionLost,    ///< liveness timeout or retry budget spent; reconnecting
  kRetriesExhausted,  ///< reconnect budget spent; pending frames failed
  kNotConnected,      ///< send() after the transport failed permanently
};

inline constexpr std::size_t kTransportErrorKindCount = 4;

[[nodiscard]] const char* to_string(TransportErrorKind kind);

/// One transport failure. `detail` is a static string — the error path
/// allocates nothing.
struct TransportError {
  TransportErrorKind kind = TransportErrorKind::kSendWindowFull;
  /// Sequence number involved (0 when not frame-specific).
  std::uint64_t seq = 0;
  const char* detail = "";
};

struct TransportConfig {
  /// Max unacked data frames the sender holds (the bounded-memory cap;
  /// also the backpressure horizon).
  std::size_t send_window = 64;
  /// Receiver reorder/dedup window (frames ahead of the delivery mark it
  /// will buffer; anything further is out_of_window and retransmitted).
  std::size_t reorder_window = 64;
  /// Initial retransmit timeout [s]; doubles per retry up to rto_max_s.
  double rto_initial_s = 0.2;
  double rto_backoff = 2.0;
  double rto_max_s = 5.0;
  /// Uniform +-fraction of jitter on every timer, so retransmit storms
  /// from many senders decorrelate. Drawn from the transport's own
  /// seeded Rng — deterministic per seed.
  double timer_jitter_frac = 0.1;
  /// Retransmissions of one frame within one connection epoch before the
  /// sender declares the connection lost and reconnects.
  std::size_t max_retries = 8;
  /// Sender emits a heartbeat after this much send-side silence [s].
  double heartbeat_interval_s = 0.5;
  /// Receive-side silence after which the sender declares the connection
  /// lost [s]. Must exceed heartbeat_interval_s.
  double liveness_timeout_s = 2.0;
  /// Reconnect backoff: attempts fire immediately, then after this
  /// delay, doubling (by rto_backoff) up to the max.
  double reconnect_backoff_initial_s = 0.1;
  double reconnect_backoff_max_s = 5.0;
  /// Connect attempts per outage before the sender gives up and fails
  /// every pending frame (kRetriesExhausted). 0 = never give up.
  std::size_t max_reconnects = 0;
  /// Seed of the transport's private timer-jitter Rng.
  std::uint64_t seed = 1;
};

/// Counters for one transport endpoint (a sender fills the sent-side, a
/// receiver the received-side; merge() folds multiple connections).
///
/// Exact partitions, audited by the chaos harness:
///   sent     == acked + pending + failed
///   received == delivered + duplicates + out_of_window + corrupt
///               + buffered            (buffered == 0 at quiescence)
struct TransportStats {
  // -- sender side --
  std::uint64_t sent = 0;      ///< frames accepted into the send window
  std::uint64_t acked = 0;     ///< cumulatively acknowledged (delivered)
  std::uint64_t pending = 0;   ///< in the window awaiting ack
  std::uint64_t failed = 0;    ///< abandoned with a TransportError
  std::uint64_t transmissions = 0;    ///< data frames put on the wire
  std::uint64_t retransmissions = 0;  ///< subset that were retries
  std::uint64_t send_rejected = 0;    ///< send() refusals (window full)
  std::uint64_t connect_attempts = 0;
  std::uint64_t reconnects = 0;  ///< successful re-establishments
  std::uint64_t heartbeats_sent = 0;
  // -- receiver side --
  std::uint64_t received = 0;   ///< data frames that arrived
  std::uint64_t delivered = 0;  ///< handed to the sink exactly once
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_window = 0;
  std::uint64_t corrupt = 0;   ///< checksum mismatch (treated as a drop)
  std::uint64_t buffered = 0;  ///< currently held in the reorder window
  std::uint64_t acks_sent = 0;
  std::uint64_t heartbeats_seen = 0;
  std::uint64_t connects_seen = 0;
  /// Times the sink refused an in-order frame (session backpressure).
  std::uint64_t backpressure_deferrals = 0;

  void merge(const TransportStats& other);
};

/// Where the receiver hands in-order frames. Returns true when the
/// frame was consumed (packet moved from); false to refuse it — the
/// packet must be left intact and the receiver will retry on a later
/// tick without advancing the cumulative ack.
using TransportSink = std::function<bool(std::size_t ap_id, CsiPacket& packet)>;

/// A sink that feeds a SessionManager session through the wait-free
/// offer path. A shed verdict (queue full) refuses the frame — packet
/// handed back, retried later — so transport retries and admission
/// accounting stay consistent: every delivered frame is offered exactly
/// once per admission, and session offered == accepted + shed still
/// partitions exactly.
[[nodiscard]] TransportSink make_session_sink(SessionManager& manager,
                                              SessionId id);

class TransportSender;
class TransportReceiver;

/// One session's end-to-end ingest picture: the session-layer counters
/// next to the merged transport counters of every connection feeding it.
/// When all offers arrive via make_session_sink, the layers tie out:
/// transport.delivered == session.accepted and
/// transport.backpressure_deferrals == session.shed_packets.
struct SessionIngestStats {
  SessionStats session;
  TransportStats transport;
};

/// Merges the stats of this session's transport endpoints with its
/// SessionStats into one report (see SessionIngestStats for the
/// cross-layer invariants the combination exposes).
[[nodiscard]] SessionIngestStats session_ingest_report(
    const SessionManager& manager, SessionId id,
    const std::vector<const TransportSender*>& senders,
    const std::vector<const TransportReceiver*>& receivers);

/// The capture-side endpoint: frames in, reliability out.
class TransportSender {
 public:
  /// `link` must outlive the sender. The sender owns the uplink
  /// direction and polls the downlink for acks.
  TransportSender(LinkSimulator& link, TransportConfig config = {});

  TransportSender(const TransportSender&) = delete;
  TransportSender& operator=(const TransportSender&) = delete;

  /// Queues one capture frame for reliable delivery and returns its
  /// sequence number. On refusal (window full / transport failed) the
  /// packet is left intact in `packet` so the caller can retry, shed,
  /// or spill without a copy.
  [[nodiscard]] Expected<std::uint64_t, TransportError> send(
      std::size_t ap_id, CsiPacket& packet, double now_s);

  /// Advances the protocol to `now_s`: processes acks, fires retransmit
  /// and heartbeat timers, detects dead links, and walks the reconnect
  /// state machine. Call at least a few times per rto_initial_s.
  void tick(double now_s);

  [[nodiscard]] bool established() const {
    return state_ == State::kEstablished;
  }
  /// True once the reconnect budget is spent; send() refuses forever.
  [[nodiscard]] bool failed() const { return state_ == State::kFailed; }
  /// Every accepted frame acked — nothing in flight.
  [[nodiscard]] bool quiescent() const {
    return established() && base_ == next_seq_;
  }
  /// Highest cumulatively acked sequence number (0 = none yet).
  [[nodiscard]] std::uint64_t highest_acked() const { return base_ - 1; }
  [[nodiscard]] const std::optional<TransportError>& last_error() const {
    return last_error_;
  }
  [[nodiscard]] TransportStats stats() const;
  [[nodiscard]] const TransportConfig& config() const { return config_; }

 private:
  enum class State : std::uint8_t {
    kConnecting,   ///< initial connect or reconnect backoff
    kEstablished,  ///< data and heartbeats flowing
    kFailed,       ///< reconnect budget spent; terminal
  };

  struct SendSlot {
    bool occupied = false;
    bool transmitted = false;  ///< at least once this epoch
    std::uint64_t seq = 0;
    std::size_t ap_id = 0;
    std::uint64_t checksum = 0;
    std::size_t retries = 0;  ///< retransmissions this epoch
    double rto_s = 0.0;
    double next_retx_s = 0.0;
    /// Retained until acked; storage recycled across window reuse so the
    /// steady state never allocates.
    CsiPacket packet;
  };

  [[nodiscard]] SendSlot& slot_of(std::uint64_t seq) {
    return window_[seq % config_.send_window];
  }
  /// Timer value with +-timer_jitter_frac of seeded jitter applied.
  [[nodiscard]] double jittered(double base_s);
  void transmit(SendSlot& slot, double now_s, bool retransmission);
  void process_ack(std::uint64_t cumulative_ack);
  void enter_connecting(double now_s, const TransportError& why);
  void fail_all_pending();

  LinkSimulator* link_;
  TransportConfig config_;
  Rng rng_;
  State state_ = State::kConnecting;
  std::uint32_t epoch_ = 0;
  std::uint64_t base_ = 1;      ///< lowest unacked seq
  std::uint64_t next_seq_ = 1;  ///< next seq to assign
  std::vector<SendSlot> window_;
  std::vector<TransportFrame> rx_buf_;  ///< reused downlink poll buffer
  double last_rx_s_ = 0.0;
  double last_tx_s_ = 0.0;
  double next_connect_at_s_ = -1.0;
  double connect_backoff_s_ = 0.0;
  std::size_t connect_attempts_this_outage_ = 0;
  std::uint64_t establishments_ = 0;
  std::optional<TransportError> last_error_;
  TransportStats stats_;
};

/// Complete durable state of a TransportReceiver: the connection epoch,
/// the cumulative delivery mark, the counters, and the out-of-order
/// frames parked in the reorder window. Snapshotting this (and
/// journaling accepted packets with their transport seq) is what lets a
/// recovered receiver resume from the exact ack it last advertised — a
/// reconnecting sender retransmits only the unacked suffix and never
/// redelivers into a recovered session (DESIGN.md §14).
struct ReceiverRecoveryState {
  std::uint32_t epoch = 0;
  std::uint64_t next_expected = 1;
  TransportStats stats;
  struct BufferedFrame {
    std::uint64_t seq = 0;
    std::size_t ap_id = 0;
    CsiPacket packet;
  };
  /// Frames buffered ahead of the delivery mark, ascending seq.
  std::vector<BufferedFrame> window;
};

/// The server-side endpoint: verifies, dedups, reorders, acks, and
/// delivers exactly once into the sink.
class TransportReceiver {
 public:
  /// `link` must outlive the receiver. The receiver polls the uplink and
  /// owns the downlink direction.
  TransportReceiver(LinkSimulator& link, TransportSink sink,
                    TransportConfig config = {});

  TransportReceiver(const TransportReceiver&) = delete;
  TransportReceiver& operator=(const TransportReceiver&) = delete;

  /// Drains the uplink at `now_s`: answers connects and heartbeats,
  /// classifies data frames, delivers the in-order prefix through the
  /// sink (retrying frames the sink refused earlier), and acks.
  void tick(double now_s);

  /// Highest sequence number delivered to the sink (0 = none yet). Also
  /// the cumulative ack value the next kAck will carry.
  [[nodiscard]] std::uint64_t delivered_through() const {
    return next_expected_ - 1;
  }
  /// Nothing buffered awaiting reorder or backpressure retry.
  [[nodiscard]] bool quiescent() const { return buffered_ == 0; }
  [[nodiscard]] TransportStats stats() const;

  /// Sequence number of the frame currently being handed to the sink —
  /// valid only inside the sink callback (0 otherwise). Durable sinks
  /// journal it with the accepted packet so recovery can recompute the
  /// delivery mark (DESIGN.md §14).
  [[nodiscard]] std::uint64_t delivering_seq() const {
    return delivering_seq_;
  }

  /// Snapshot of the full receiver state for durability (quiesced
  /// contract: no concurrent tick()).
  [[nodiscard]] ReceiverRecoveryState export_recovery_state() const;
  /// Restores a snapshot into a freshly constructed receiver (nothing
  /// received yet), advancing the delivery mark to `next_expected`
  /// (>= state.next_expected) for deliveries the journal proves happened
  /// after the snapshot. Window frames overtaken by the recovered mark
  /// are counted delivered; post-snapshot deliveries of frames that
  /// never reached the snapshot window are counted received+delivered —
  /// the received == delivered + duplicates + out_of_window + corrupt +
  /// buffered partition stays exact across the restore.
  void restore_recovery_state(ReceiverRecoveryState state,
                              std::uint64_t next_expected);

 private:
  struct RecvSlot {
    bool occupied = false;
    std::uint64_t seq = 0;
    std::size_t ap_id = 0;
    CsiPacket packet;
  };

  /// Delivers the in-order prefix; returns true if the mark advanced.
  bool drain();
  void send_control(FrameType type, double now_s);

  LinkSimulator* link_;
  TransportConfig config_;
  TransportSink sink_;
  std::uint64_t next_expected_ = 1;
  std::uint32_t epoch_ = 0;  ///< latest connect epoch seen
  std::vector<RecvSlot> window_;
  std::vector<TransportFrame> rx_buf_;  ///< reused uplink poll buffer
  std::size_t buffered_ = 0;
  std::uint64_t delivering_seq_ = 0;  ///< set around the sink callback
  TransportStats stats_;
};

}  // namespace spotfi
