#include "transport/frame.hpp"

#include <cstring>

namespace spotfi {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_double(std::uint64_t& h, double v) {
  // Bit pattern, not value: the checksum must notice a flipped sign or
  // exponent bit even when the damaged value compares equal (-0.0) or
  // incomparable (NaN).
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_bytes(h, &bits, sizeof(bits));
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kConnect: return "connect";
    case FrameType::kConnectAck: return "connect-ack";
    case FrameType::kData: return "data";
    case FrameType::kAck: return "ack";
    case FrameType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

std::uint64_t packet_checksum(const CsiPacket& packet) {
  std::uint64_t h = kFnvOffset;
  const std::uint64_t rows = packet.csi.rows();
  const std::uint64_t cols = packet.csi.cols();
  fnv_bytes(h, &rows, sizeof(rows));
  fnv_bytes(h, &cols, sizeof(cols));
  for (const cplx& v : packet.csi.flat()) {
    fnv_double(h, v.real());
    fnv_double(h, v.imag());
  }
  fnv_double(h, packet.rssi_dbm);
  fnv_double(h, packet.timestamp_s);
  return h;
}

}  // namespace spotfi
