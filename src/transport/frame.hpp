// Wire protocol for the fault-tolerant ingest transport (DESIGN.md §13).
//
// SpotFi's central localizer only works if per-AP CSI captures actually
// reach it, and the distributed-testbed literature is blunt that the
// shipping is the hard part: capture boxes sit on flaky WiFi/ethernet
// backhauls that delay, drop, duplicate, reorder, and corrupt frames,
// and the boxes themselves disconnect mid-run. This header defines the
// small framed protocol the TransportSender/TransportReceiver pair
// speaks over such a link:
//
//   kConnect / kConnectAck — connection (re)establishment. The ack
//     carries the receiver's cumulative delivery mark, so a sender that
//     reconnects after an outage resumes from the last acked frame
//     instead of replaying the world or silently skipping ahead.
//   kData — one (ap_id, CsiPacket) capture frame, tagged with a
//     connection epoch, a per-connection sequence number, and a payload
//     checksum. Sequence numbers start at 1 and survive reconnects
//     (the seq space belongs to the session, not the epoch), which is
//     what makes end-to-end dedup across reconnects possible.
//   kAck — cumulative acknowledgement: every data frame with
//     seq <= cumulative_ack has been *delivered* (handed to the session
//     layer), not merely received. Out-of-order frames sit in the
//     receiver's reorder window unacked, TCP-style, so an ack is a
//     durable end-to-end claim the chaos harness can audit.
//   kHeartbeat — sender-originated liveness probe; the receiver answers
//     with a kAck so both directions carry traffic even when idle.
//
// Frames move as in-process values (this repo simulates the network —
// see transport/link.hpp), so "serialization" reduces to the checksum:
// packet_checksum() folds the payload's exact bit patterns, and the
// receiver recomputes it on arrival. A mismatch means the link damaged
// the frame in flight; the receiver counts it and treats the frame as a
// drop, letting the retransmit machinery repair it.
#pragma once

#include <cstdint>

#include "channel/csi_synthesis.hpp"

namespace spotfi {

enum class FrameType : std::uint8_t {
  kConnect = 0,
  kConnectAck = 1,
  kData = 2,
  kAck = 3,
  kHeartbeat = 4,
};

[[nodiscard]] const char* to_string(FrameType type);

struct FrameHeader {
  FrameType type = FrameType::kData;
  /// Connection generation; bumped by every (re)connect attempt so a
  /// stale kConnectAck from a previous attempt cannot complete a newer
  /// handshake.
  std::uint32_t epoch = 0;
  /// Data sequence number, 1-based, monotone per connection *lifetime*
  /// (reconnects do not reset it). 0 for control frames.
  std::uint64_t seq = 0;
  /// Cumulative delivery mark: every data frame with seq <= this value
  /// has been handed to the application exactly once. 0 = nothing yet.
  /// Meaningful on kAck and kConnectAck.
  std::uint64_t cumulative_ack = 0;
  /// packet_checksum() of the payload at send time (kData only).
  std::uint64_t checksum = 0;
  /// Which AP captured the payload (kData only).
  std::size_t ap_id = 0;
  /// Link-time stamp of the transmission [s] (diagnostics only — packet
  /// *capture* timestamps live inside the payload and are never touched
  /// by the transport, which is what keeps replays byte-identical).
  double sent_at_s = 0.0;
};

/// One frame in flight. Control frames carry an empty packet.
struct TransportFrame {
  FrameHeader header;
  CsiPacket packet;
};

/// FNV-1a over the payload's exact bit patterns (CSI entries, RSSI,
/// capture timestamp, and shape). Deterministic across platforms; any
/// single-bit flip in the payload changes it.
[[nodiscard]] std::uint64_t packet_checksum(const CsiPacket& packet);

}  // namespace spotfi
