// Deterministic lossy-link simulator for the ingest transport.
//
// The PR-1/PR-2 fault lineage damaged packets (channel/faults.hpp:
// FaultInjector) and bytes at rest (corrupt_*_log). This layer damages
// frames *in flight*: a bidirectional point-to-point link between one
// TransportSender and one TransportReceiver that delays with jitter,
// drops, duplicates, reorders, corrupts, and — during scheduled
// disconnect windows — blackholes traffic entirely, in both directions.
//
// Determinism is the whole point. All randomness flows from one seeded
// Rng, delivery is ordered by (delivery time, submission order), and
// time is whatever the caller's Clock says: drive the same sends and
// polls at the same timestamps with the same seed and every drop, every
// duplicate, every reorder replays exactly. That is what lets the chaos
// harness print a failing seed and have it reproduce.
//
// Threading: send() and poll() may be called concurrently from the two
// endpoints' threads (one internal mutex serializes them — the "wire").
// With multiple threads the *interleaving* of rng draws is scheduler-
// dependent, so deterministic replay is a single-driver-thread property.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "channel/faults.hpp"
#include "common/rng.hpp"
#include "transport/frame.hpp"

namespace spotfi {

/// The two directions of one sender<->receiver link.
enum class LinkDirection : std::uint8_t {
  kUplink = 0,    ///< sender -> receiver (data, connect, heartbeat)
  kDownlink = 1,  ///< receiver -> sender (acks, connect-ack)
};

/// Per-link fault model. Defaults are a perfect wire; probabilities are
/// i.i.d. per frame and apply to both directions.
struct LinkFaultModel {
  /// Base one-way propagation delay [s].
  double delay_s = 0.0;
  /// Uniform extra delay in [0, jitter_s) per frame [s].
  double jitter_s = 0.0;
  /// Silently swallow the frame.
  double drop_prob = 0.0;
  /// Deliver a second, independently delayed copy of the frame.
  double duplicate_prob = 0.0;
  /// Hold the frame an extra reorder_extra_s (+ jitter), so later frames
  /// overtake it.
  double reorder_prob = 0.0;
  double reorder_extra_s = 0.0;
  /// Flip one random payload bit in flight (control frames and empty
  /// payloads have their checksum field flipped instead — the receiver
  /// cannot tell the difference, and the detection path is identical).
  double corrupt_prob = 0.0;
  /// Hard disconnects: while a window is active, frames submitted in
  /// either direction are blackholed, and frames already in flight whose
  /// delivery time lands inside a window are blackholed at delivery.
  std::vector<FaultWindow> down_windows;
};

/// Every fault actually injected (not just configured), plus volume.
struct LinkStats {
  std::uint64_t submitted = 0;  ///< frames handed to send()
  std::uint64_t delivered = 0;  ///< frames handed back by poll()
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< extra copies enqueued
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t disconnect_dropped = 0;  ///< blackholed by a down window
};

class LinkSimulator {
 public:
  /// `reserve_in_flight` pre-sizes each direction's delivery queue so the
  /// established-connection steady state never allocates on the wire.
  explicit LinkSimulator(LinkFaultModel model, std::uint64_t seed = 1,
                         std::size_t reserve_in_flight = 256);

  LinkSimulator(const LinkSimulator&) = delete;
  LinkSimulator& operator=(const LinkSimulator&) = delete;

  /// Submits one frame at time `now_s`. The fault model decides its
  /// fate here (drop/duplicate/delay/corrupt), so a later poll is pure
  /// dequeue — no randomness is consumed at delivery.
  void send(LinkDirection dir, TransportFrame frame, double now_s);

  /// Appends every frame whose delivery time has arrived by `now_s`, in
  /// delivery order (ties broken by submission order). Frames whose
  /// delivery time falls inside a down window are blackholed here.
  void poll(LinkDirection dir, double now_s, std::vector<TransportFrame>& out);

  /// True when `t_s` is inside a configured disconnect window.
  [[nodiscard]] bool down_at(double t_s) const;

  [[nodiscard]] LinkStats stats() const;
  /// Frames currently in flight in `dir`.
  [[nodiscard]] std::size_t in_flight(LinkDirection dir) const;

 private:
  struct InFlight {
    double deliver_at_s = 0.0;
    std::uint64_t order = 0;  ///< submission tie-break
    TransportFrame frame;
  };
  struct Channel {
    /// Min-heap on (deliver_at_s, order), via std::push_heap/pop_heap.
    std::vector<InFlight> heap;
    std::uint64_t next_order = 0;
  };

  void enqueue(Channel& ch, TransportFrame&& frame, double deliver_at_s);
  void corrupt(TransportFrame& frame);

  mutable std::mutex mutex_;  ///< the wire: serializes both endpoints
  LinkFaultModel model_;
  Rng rng_;
  Channel channels_[2];
  LinkStats stats_;
};

}  // namespace spotfi
