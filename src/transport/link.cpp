#include "transport/link.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace spotfi {
namespace {

/// Heap comparator: std::*_heap build a max-heap, so "greater-than" on
/// (delivery time, submission order) makes the earliest frame the root.
struct Later {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a.deliver_at_s > b.deliver_at_s ||
           (a.deliver_at_s == b.deliver_at_s && a.order > b.order);
  }
};

}  // namespace

LinkSimulator::LinkSimulator(LinkFaultModel model, std::uint64_t seed,
                             std::size_t reserve_in_flight)
    : model_(std::move(model)), rng_(seed) {
  SPOTFI_EXPECTS(model_.delay_s >= 0.0 && model_.jitter_s >= 0.0 &&
                     model_.reorder_extra_s >= 0.0,
                 "LinkSimulator: delays must be non-negative");
  for (Channel& ch : channels_) ch.heap.reserve(reserve_in_flight);
}

bool LinkSimulator::down_at(double t_s) const {
  for (const FaultWindow& w : model_.down_windows) {
    if (w.contains(t_s)) return true;
  }
  return false;
}

void LinkSimulator::corrupt(TransportFrame& frame) {
  auto flat = frame.packet.csi.flat();
  if (!flat.empty()) {
    // Flip one random bit somewhere in the payload's doubles. complex<T>
    // is layout-compatible with T[2], so address the flat span as raw
    // doubles.
    const std::uint64_t n_doubles = 2 * flat.size();
    const std::uint64_t which = rng_.uniform_index(n_doubles + 2);
    double* target;
    if (which < n_doubles) {
      target = reinterpret_cast<double*>(flat.data()) + which;
    } else if (which == n_doubles) {
      target = &frame.packet.rssi_dbm;
    } else {
      target = &frame.packet.timestamp_s;
    }
    std::uint64_t bits;
    std::memcpy(&bits, target, sizeof(bits));
    bits ^= std::uint64_t{1} << rng_.uniform_index(64);
    std::memcpy(target, &bits, sizeof(bits));
  } else {
    // No payload storage to damage (control frame or empty packet): flip
    // a checksum bit instead. The receiver sees the same thing either
    // way — a checksum mismatch.
    frame.header.checksum ^= std::uint64_t{1} << rng_.uniform_index(64);
  }
}

void LinkSimulator::enqueue(Channel& ch, TransportFrame&& frame,
                            double deliver_at_s) {
  ch.heap.push_back(InFlight{deliver_at_s, ch.next_order++, std::move(frame)});
  std::push_heap(ch.heap.begin(), ch.heap.end(), Later{});
}

void LinkSimulator::send(LinkDirection dir, TransportFrame frame,
                         double now_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.submitted;
  if (down_at(now_s)) {
    ++stats_.disconnect_dropped;
    return;
  }
  if (model_.drop_prob > 0.0 && rng_.uniform() < model_.drop_prob) {
    ++stats_.dropped;
    return;
  }
  const bool duplicate =
      model_.duplicate_prob > 0.0 && rng_.uniform() < model_.duplicate_prob;
  const bool reorder =
      model_.reorder_prob > 0.0 && rng_.uniform() < model_.reorder_prob;
  if (model_.corrupt_prob > 0.0 && rng_.uniform() < model_.corrupt_prob) {
    corrupt(frame);
    ++stats_.corrupted;
  }
  double delay = model_.delay_s;
  if (model_.jitter_s > 0.0) delay += rng_.uniform(0.0, model_.jitter_s);
  if (reorder) {
    delay += model_.reorder_extra_s;
    if (model_.jitter_s > 0.0) delay += rng_.uniform(0.0, model_.jitter_s);
    ++stats_.reordered;
  }
  Channel& ch = channels_[static_cast<std::size_t>(dir)];
  if (duplicate) {
    double dup_delay = model_.delay_s;
    if (model_.jitter_s > 0.0) {
      dup_delay += rng_.uniform(0.0, model_.jitter_s);
    }
    enqueue(ch, TransportFrame(frame), now_s + dup_delay);
    ++stats_.duplicated;
  }
  enqueue(ch, std::move(frame), now_s + delay);
}

void LinkSimulator::poll(LinkDirection dir, double now_s,
                         std::vector<TransportFrame>& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Channel& ch = channels_[static_cast<std::size_t>(dir)];
  while (!ch.heap.empty() && ch.heap.front().deliver_at_s <= now_s) {
    std::pop_heap(ch.heap.begin(), ch.heap.end(), Later{});
    InFlight item = std::move(ch.heap.back());
    ch.heap.pop_back();
    if (down_at(item.deliver_at_s)) {
      // The wire went dark before this frame landed.
      ++stats_.disconnect_dropped;
      continue;
    }
    ++stats_.delivered;
    out.push_back(std::move(item.frame));
  }
}

LinkStats LinkSimulator::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t LinkSimulator::in_flight(LinkDirection dir) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return channels_[static_cast<std::size_t>(dir)].heap.size();
}

}  // namespace spotfi
