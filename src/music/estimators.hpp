// The two AoA estimators the paper evaluates.
//
// JointMusicEstimator — SpotFi's super-resolution algorithm (Sec. 3.1.2):
// smoothed CSI matrix -> noise subspace -> 2-D MUSIC pseudospectrum over
// (AoA, ToF) -> peaks = multipath components. The joint steering vector
// factors as ant(theta) (x) sub(tau), which lets the spectrum sweep
// precompute the per-tau inner products once per noise eigenvector and
// makes a full 181 x 320 grid cost milliseconds.
//
// MusicAoaEstimator — the classic antenna-only MUSIC (Sec. 3.1.1) used by
// the paper's practical ArrayTrack/Phaser baseline: the 3-antenna array
// with subcarriers as snapshots. With only 3 sensors it cannot resolve
// more than 2 paths, which is exactly the failure mode SpotFi fixes.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "common/constants.hpp"
#include "csi/smoothing.hpp"
#include "music/peaks.hpp"
#include "music/steering_cache.hpp"
#include "music/subspace.hpp"

namespace spotfi {

/// One estimated multipath component.
struct PathEstimate {
  double aoa_rad = 0.0;
  double tof_s = 0.0;   ///< sanitized ToF — offset by the (removed) STO
  double power = 0.0;   ///< MUSIC pseudospectrum height at the peak
};

/// 2-D pseudospectrum on the (AoA, ToF) grid; values[i][j] corresponds to
/// aoa_grid[i], tof_grid[j].
struct AoaTofSpectrum {
  RVector aoa_grid_rad;
  RVector tof_grid_s;
  RMatrix values;
};

/// 1-D pseudospectrum on an AoA grid.
struct AoaSpectrum {
  RVector aoa_grid_rad;
  RVector values;
};

struct JointMusicConfig {
  double aoa_min_rad = -kPi / 2.0;
  double aoa_max_rad = kPi / 2.0;
  double aoa_step_rad = kPi / 180.0;  ///< 1 degree
  /// ToF grid; when min/max are NaN the full unambiguous period
  /// [-T/2, T/2) with T = 1/f_delta is used and the axis treated circular.
  double tof_min_s = std::numeric_limits<double>::quiet_NaN();
  double tof_max_s = std::numeric_limits<double>::quiet_NaN();
  double tof_step_s = 2.5e-9;
  SmoothingConfig smoothing;
  SubspaceConfig subspace;
  /// Keep at most this many spectrum peaks.
  std::size_t max_paths = 8;
  /// Drop peaks below this fraction of the strongest peak. MUSIC ridges
  /// produce low sidelobe peaks along the ToF axis; an 8% floor keeps
  /// real paths (within ~11 dB of the strongest) and rejects sidelobes.
  double min_relative_peak = 0.08;
  /// Refine peak locations by parabolic interpolation.
  bool refine_peaks = true;
  /// Discard peaks sitting on the first/last AoA grid row: steering
  /// vectors compress near endfire and MUSIC piles spurious energy onto
  /// the +-90 deg boundary.
  bool exclude_aoa_edges = true;
};

class JointMusicEstimator {
 public:
  JointMusicEstimator(LinkConfig link, JointMusicConfig config = {});

  /// Full pipeline on one packet's CSI: smooth -> subspace -> spectrum ->
  /// peaks. CSI must be antennas x subcarriers per the link config.
  [[nodiscard]] std::vector<PathEstimate> estimate(const CMatrix& csi) const;

  /// Zero-allocation packet path: the same pipeline, but every scratch
  /// buffer (smoothed matrix, covariance, eigendecomposition, spectrum
  /// grid, peak list) is checked out of `ws` and the estimates are
  /// written into `out`, which must hold at least `config().max_paths`
  /// entries. Returns the number of estimates written. Bit-identical to
  /// estimate() — the value overload is a wrapper over this path.
  [[nodiscard]] std::size_t estimate_into(ConstCMatrixView csi, Workspace& ws,
                                          std::span<PathEstimate> out) const;

  /// The pseudospectrum (for inspection / the spectrum_explorer example).
  [[nodiscard]] AoaTofSpectrum spectrum(const CMatrix& csi) const;

  // -- piecewise stage entry points (src/pipeline wraps these as typed
  // stages; estimate_into composes exactly these three, so the staged
  // and monolithic paths are one code path and bit-identical) ----------

  /// Smoothed-CSI construction (Fig. 4) on the caller's arena. The
  /// returned view lives until the enclosing frame closes.
  [[nodiscard]] CMatrixView stage_smooth(ConstCMatrixView csi,
                                         Workspace& ws) const;
  /// Noise-subspace split of a smoothed matrix (Algorithm 2, line 5).
  [[nodiscard]] SubspacesRef stage_subspace(ConstCMatrixView smoothed,
                                            Workspace& ws) const;
  /// Pseudospectrum sweep + peak extraction: writes at most
  /// config().max_paths estimates into `out`, returns the count. The
  /// spectrum grid and peak list are arena scratch.
  [[nodiscard]] std::size_t stage_spectrum(const SubspacesRef& sub,
                                           Workspace& ws,
                                           std::span<PathEstimate> out) const;

  [[nodiscard]] const JointMusicConfig& config() const { return config_; }
  [[nodiscard]] const LinkConfig& link() const { return link_; }
  [[nodiscard]] const RVector& aoa_grid() const { return aoa_axis_->grid; }
  [[nodiscard]] const RVector& tof_grid() const { return tof_axis_->grid; }
  /// True when the ToF grid spans the full unambiguous period (grid wraps).
  [[nodiscard]] bool tof_axis_wraps() const { return tof_wraps_; }

 private:
  [[nodiscard]] AoaTofSpectrum spectrum_from_subspace(
      const Subspaces& sub) const;
  /// Core pseudospectrum sweep shared by both pipelines: reads a noise
  /// basis view, takes its g-table scratch from `ws`, writes into the
  /// caller-provided grid.
  void spectrum_values(ConstCMatrixView noise, Workspace& ws,
                       RMatrixView values) const;

  LinkConfig link_;
  JointMusicConfig config_;
  double tof_min_s_ = 0.0;
  double tof_max_s_ = 0.0;
  bool tof_wraps_ = false;
  // The grids are fixed at construction, so the steering vectors the
  // spectrum sweep needs are too. Precomputing them (flat,
  // row-per-grid-point tables) turns the per-packet sweep into pure
  // inner products — no trig/cexp inside estimate() — and makes the
  // estimator safely shareable across threads (all state is immutable
  // after construction). The tables are interned in the process-wide
  // SteeringTableCache, so the thousands of estimators a streaming
  // deployment constructs (per AP, per round, per session variant)
  // share one copy instead of recomputing ~80 KiB of trig each.
  std::shared_ptr<const SteeringAxisTable> aoa_axis_;
  std::shared_ptr<const SteeringAxisTable> tof_axis_;
};

struct MusicAoaConfig {
  double aoa_min_rad = -kPi / 2.0;
  double aoa_max_rad = kPi / 2.0;
  double aoa_step_rad = kPi / 180.0;
  SubspaceConfig subspace;
  /// Optional forward spatial smoothing: antenna subarray length; 0 keeps
  /// the full array (the paper's 3-antenna baseline configuration).
  std::size_t smoothing_ant_len = 0;
  std::size_t max_paths = 3;
  double min_relative_peak = 0.01;
  bool refine_peaks = true;
  /// See JointMusicConfig::exclude_aoa_edges.
  bool exclude_aoa_edges = true;
};

class MusicAoaEstimator {
 public:
  MusicAoaEstimator(LinkConfig link, MusicAoaConfig config = {});

  [[nodiscard]] std::vector<PathEstimate> estimate(const CMatrix& csi) const;
  [[nodiscard]] AoaSpectrum spectrum(const CMatrix& csi) const;

  [[nodiscard]] const MusicAoaConfig& config() const { return config_; }
  [[nodiscard]] const RVector& aoa_grid() const { return aoa_axis_->grid; }

 private:
  LinkConfig link_;
  MusicAoaConfig config_;
  /// Cached grid and steering table (see JointMusicEstimator): the
  /// subarray length is resolved at construction, so the steering matrix
  /// is fixed for the estimator's lifetime. Interned in the process-wide
  /// SteeringTableCache like the joint estimator's axes.
  std::size_t ant_len_ = 0;
  std::shared_ptr<const SteeringAxisTable> aoa_axis_;
};

}  // namespace spotfi
