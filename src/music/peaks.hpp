// Peak finding on MUSIC pseudospectra: local maxima on 1-D and 2-D grids
// with an optional circular axis (the ToF axis wraps at 1/f_delta) and
// sub-grid refinement by parabolic interpolation.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace spotfi {

struct GridPeak {
  std::size_t i = 0;  ///< row index (AoA axis for 2-D spectra)
  std::size_t j = 0;  ///< column index (ToF axis); 0 for 1-D spectra
  double value = 0.0;
};

/// Local maxima of a 1-D series (strictly greater than both neighbours;
/// plateau edges count once), sorted by value descending, dropping peaks
/// below `min_relative * global_max`, at most `max_peaks`.
[[nodiscard]] std::vector<GridPeak> find_peaks_1d(std::span<const double> f,
                                                  std::size_t max_peaks,
                                                  double min_relative = 0.0);

/// Local maxima of a 2-D grid over the 8-neighbourhood. When `wrap_cols`
/// is set the column axis is treated as circular (ToF periodicity).
[[nodiscard]] std::vector<GridPeak> find_peaks_2d(const RMatrix& grid,
                                                  bool wrap_cols,
                                                  std::size_t max_peaks,
                                                  double min_relative = 0.0);

/// Arena variant: peaks are collected in two passes (count, then fill)
/// into a `ws` checkout sized exactly, so the unbounded candidate set
/// never forces a heap allocation. The returned span lives until the
/// caller's enclosing frame closes. Identical peaks, order, and values
/// to the value overload.
[[nodiscard]] std::span<const GridPeak> find_peaks_2d(ConstRMatrixView grid,
                                                      bool wrap_cols,
                                                      std::size_t max_peaks,
                                                      double min_relative,
                                                      Workspace& ws);

/// Sub-grid offset in [-0.5, 0.5] of the extremum of the parabola through
/// (-1, f_m1), (0, f_0), (+1, f_p1). Returns 0 when the points are
/// degenerate or f_0 is not the largest.
[[nodiscard]] double parabolic_offset(double f_m1, double f_0, double f_p1);

}  // namespace spotfi
