// Steering vectors for the antenna array and the OFDM subcarrier grid.
//
// Eq. 1:  Phi(theta) = exp(-j*2*pi*d*sin(theta)*f/c)   — per-antenna factor
// Eq. 6:  Omega(tau) = exp(-j*2*pi*f_delta*tau)        — per-subcarrier factor
// Eq. 2:  a(theta)   = [1, Phi, ..., Phi^(M-1)]
// Eq. 7:  a(theta,tau) for the joint sensor array, antenna-major, which
//         factors as the Kronecker product a_ant(theta) (x) a_sub(tau).
#pragma once

#include "common/constants.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

/// Phi(theta) — phase factor between adjacent antennas (Eq. 1).
[[nodiscard]] cplx phi_factor(double aoa_rad, const LinkConfig& link);

/// Omega(tau) — phase factor between adjacent subcarriers (Eq. 6).
[[nodiscard]] cplx omega_factor(double tof_s, const LinkConfig& link);

/// Antenna steering vector [1, Phi, ..., Phi^(n_antennas-1)] (Eq. 2).
[[nodiscard]] CVector aoa_steering(double aoa_rad, std::size_t n_antennas,
                                   const LinkConfig& link);

/// Subcarrier steering vector [1, Omega, ..., Omega^(n_subcarriers-1)].
[[nodiscard]] CVector tof_steering(double tof_s, std::size_t n_subcarriers,
                                   const LinkConfig& link);

/// Joint steering vector of Eq. 7 for an ant_len x sub_len sensor
/// (sub)array, antenna-major: element [a*sub_len + s] = Phi^a * Omega^s.
/// Matches the row ordering of smoothed_csi().
[[nodiscard]] CVector joint_steering(double aoa_rad, double tof_s,
                                     std::size_t ant_len, std::size_t sub_len,
                                     const LinkConfig& link);

/// Allocation-free flavour: writes the Eq. 7 vector into `out` (size
/// ant_len * sub_len). Same recurrences as joint_steering — identical
/// bits; the value flavour wraps this one.
void joint_steering_into(double aoa_rad, double tof_s, std::size_t ant_len,
                         std::size_t sub_len, const LinkConfig& link,
                         std::span<cplx> out);

/// The ToF at which Omega aliases: tau and tau + tof_period are
/// indistinguishable on the subcarrier grid (1 / f_delta; 800 ns for the
/// 5300's 1.25 MHz reported spacing).
[[nodiscard]] double tof_period(const LinkConfig& link);

}  // namespace spotfi
