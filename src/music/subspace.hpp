// Signal/noise subspace split for MUSIC.
//
// Algorithm 2, line 5: "construct E_N whose columns are eigenvectors of
// X X^H corresponding to eigenvalues smaller than a threshold". We expose
// the threshold split plus a fixed-dimension variant used by tests and the
// ArrayTrack baseline.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// How the number of propagation paths (signal dimensions) is chosen.
enum class OrderMethod {
  /// Eigenvalue threshold relative to the largest (Algorithm 2, line 5).
  kThreshold,
  /// Minimum description length criterion (Wax & Kailath).
  kMdl,
  /// Akaike information criterion; tends to overestimate slightly.
  kAic,
};

struct SubspaceConfig {
  OrderMethod order_method = OrderMethod::kThreshold;
  /// Eigenvalues below `relative_threshold * lambda_max` belong to the
  /// noise subspace (kThreshold only).
  double relative_threshold = 0.03;
  /// Never assign more than this many dimensions to the signal subspace
  /// (indoor environments show at most ~8 significant paths, Sec. 3.1).
  std::size_t max_signal_dims = 10;
  /// Keep at least this many noise dimensions so the spectrum is defined.
  std::size_t min_noise_dims = 1;
};

/// Information-theoretic model order estimate from the eigenvalues of a
/// sample covariance (ascending) observed over `n_snapshots` snapshots.
/// Returns the k in [0, M-1] minimizing the MDL (or AIC) criterion.
[[nodiscard]] std::size_t estimate_model_order(
    std::span<const double> eigenvalues_ascending, std::size_t n_snapshots,
    OrderMethod method = OrderMethod::kMdl);

struct Subspaces {
  /// Noise-subspace basis; columns are orthonormal eigenvectors.
  CMatrix noise;
  /// Estimated number of propagation paths (signal dimensions).
  std::size_t n_signal = 0;
  /// Eigenvalues of the covariance, ascending (diagnostics/tests).
  RVector eigenvalues;
};

/// Splits the eigenvectors of covariance = X X^H (X = measurement matrix)
/// into signal and noise subspaces by eigenvalue threshold.
[[nodiscard]] Subspaces noise_subspace(const CMatrix& measurement,
                                       const SubspaceConfig& config = {});

/// Arena variant of Subspaces: the basis and eigenvalues live in the
/// caller's Workspace until its enclosing frame closes.
struct SubspacesRef {
  ConstCMatrixView noise;
  std::size_t n_signal = 0;
  std::span<const double> eigenvalues;
};

/// Zero-allocation subspace split: covariance, eigendecomposition, and
/// the split all run on `ws` scratch; same arithmetic (and bits) as the
/// value overload. Throws NumericalError when the eigendecomposition
/// does not converge, like the value overload.
[[nodiscard]] SubspacesRef noise_subspace(ConstCMatrixView measurement,
                                          const SubspaceConfig& config,
                                          Workspace& ws);

/// Same split with an explicitly chosen signal dimension.
[[nodiscard]] Subspaces noise_subspace_fixed(const CMatrix& measurement,
                                             std::size_t n_signal);

}  // namespace spotfi
