#include "music/estimators.hpp"

#include <cmath>

#include "music/steering.hpp"
#include "music/steering_cache.hpp"

namespace spotfi {

JointMusicEstimator::JointMusicEstimator(LinkConfig link,
                                         JointMusicConfig config)
    : link_(link), config_(config) {
  SPOTFI_EXPECTS(config_.smoothing.ant_len <= link_.n_antennas &&
                     config_.smoothing.sub_len <= link_.n_subcarriers,
                 "smoothing subarray exceeds the link dimensions");
  const double period = tof_period(link_);
  if (std::isnan(config_.tof_min_s) || std::isnan(config_.tof_max_s)) {
    // Full unambiguous range; leave one step gap at the top so the wrap
    // point is not sampled twice.
    tof_min_s_ = -period / 2.0;
    tof_max_s_ = period / 2.0 - config_.tof_step_s;
    tof_wraps_ = true;
  } else {
    SPOTFI_EXPECTS(config_.tof_max_s > config_.tof_min_s,
                   "invalid ToF grid range");
    tof_min_s_ = config_.tof_min_s;
    tof_max_s_ = config_.tof_max_s;
    tof_wraps_ = (tof_max_s_ - tof_min_s_) >= period - 2.0 * config_.tof_step_s;
  }
  aoa_axis_ = SteeringTableCache::get(
      SteeringTableCache::Axis::kAoa, config_.aoa_min_rad, config_.aoa_max_rad,
      config_.aoa_step_rad, config_.smoothing.ant_len, link_);
  tof_axis_ = SteeringTableCache::get(SteeringTableCache::Axis::kTof,
                                      tof_min_s_, tof_max_s_,
                                      config_.tof_step_s,
                                      config_.smoothing.sub_len, link_);
}

void JointMusicEstimator::spectrum_values(ConstCMatrixView noise,
                                          Workspace& ws,
                                          RMatrixView values) const {
  const std::size_t n_aoa = aoa_axis_->grid.size();
  const std::size_t n_tof = tof_axis_->grid.size();
  const std::size_t n_noise = noise.cols();
  const std::size_t ant_len = config_.smoothing.ant_len;
  const std::size_t sub_len = config_.smoothing.sub_len;
  SPOTFI_EXPECTS(values.rows() == n_aoa && values.cols() == n_tof,
                 "spectrum grid shape disagrees with the estimator grids");

  // The joint steering vector factors as ant(theta) (x) sub(tau) with
  // antenna-major rows, so for noise eigenvector e:
  //   e^H a(theta,tau) = sum_a ant_a * (sum_s conj(e[a*sub_len+s]) sub_s)
  // Precompute the inner parenthesis g[tau][e][a] once per subspace
  // (the steering tables themselves are cached at construction), then
  // the grid sweep is O(n_aoa * n_tof * n_noise * ant_len) of pure
  // flat-array inner products.
  Workspace::Frame frame(ws);
  const std::span<cplx> g = ws.take<cplx>(n_tof * n_noise * ant_len);
  for (std::size_t ti = 0; ti < n_tof; ++ti) {
    const cplx* sub_vec = &tof_axis_->steering[ti * sub_len];
    for (std::size_t e = 0; e < n_noise; ++e) {
      for (std::size_t a = 0; a < ant_len; ++a) {
        cplx acc{};
        for (std::size_t s = 0; s < sub_len; ++s) {
          acc += std::conj(noise(a * sub_len + s, e)) * sub_vec[s];
        }
        g[(ti * n_noise + e) * ant_len + a] = acc;
      }
    }
  }

  for (std::size_t ai = 0; ai < n_aoa; ++ai) {
    const cplx* ant_vec = &aoa_axis_->steering[ai * ant_len];
    for (std::size_t ti = 0; ti < n_tof; ++ti) {
      double denom = 0.0;
      const cplx* gt = &g[ti * n_noise * ant_len];
      for (std::size_t e = 0; e < n_noise; ++e) {
        cplx proj{};
        for (std::size_t a = 0; a < ant_len; ++a) {
          proj += ant_vec[a] * gt[e * ant_len + a];
        }
        denom += std::norm(proj);
      }
      values(ai, ti) = 1.0 / std::max(denom, 1e-12);
    }
  }
}

AoaTofSpectrum JointMusicEstimator::spectrum_from_subspace(
    const Subspaces& sub) const {
  AoaTofSpectrum sp;
  sp.aoa_grid_rad = aoa_axis_->grid;
  sp.tof_grid_s = tof_axis_->grid;
  sp.values = RMatrix(sp.aoa_grid_rad.size(), sp.tof_grid_s.size());
  spectrum_values(ConstCMatrixView(sub.noise), thread_workspace(),
                  sp.values.view());
  return sp;
}

AoaTofSpectrum JointMusicEstimator::spectrum(const CMatrix& csi) const {
  SPOTFI_EXPECTS(csi.rows() == link_.n_antennas &&
                     csi.cols() == link_.n_subcarriers,
                 "CSI shape disagrees with the link config");
  const CMatrix x = smoothed_csi(csi, config_.smoothing);
  return spectrum_from_subspace(noise_subspace(x, config_.subspace));
}

CMatrixView JointMusicEstimator::stage_smooth(ConstCMatrixView csi,
                                              Workspace& ws) const {
  SPOTFI_EXPECTS(csi.rows() == link_.n_antennas &&
                     csi.cols() == link_.n_subcarriers,
                 "CSI shape disagrees with the link config");
  return smoothed_csi(csi, ws, config_.smoothing);
}

SubspacesRef JointMusicEstimator::stage_subspace(ConstCMatrixView smoothed,
                                                 Workspace& ws) const {
  return noise_subspace(smoothed, config_.subspace, ws);
}

std::size_t JointMusicEstimator::stage_spectrum(
    const SubspacesRef& sub, Workspace& ws,
    std::span<PathEstimate> out) const {
  const RMatrixView values = workspace_matrix<double>(
      ws, aoa_axis_->grid.size(), tof_axis_->grid.size());
  spectrum_values(sub.noise, ws, values);

  std::span<const GridPeak> peaks = find_peaks_2d(
      ConstRMatrixView(values), tof_wraps_,
      config_.max_paths + (config_.exclude_aoa_edges ? config_.max_paths : 0),
      config_.min_relative_peak, ws);

  const RVector& aoa_grid = aoa_axis_->grid;
  const RVector& tof_grid = tof_axis_->grid;
  const std::size_t n_tof = tof_grid.size();
  const std::size_t last = aoa_grid.size() - 1;
  std::size_t n_out = 0;
  for (const GridPeak& pk : peaks) {
    // Same surviving set as the value path's erase_if + resize: skip edge
    // rows in order, cap at max_paths.
    if (config_.exclude_aoa_edges && (pk.i == 0 || pk.i == last)) continue;
    if (n_out == config_.max_paths) break;
    PathEstimate est;
    est.power = pk.value;
    double di = 0.0;
    double dj = 0.0;
    if (config_.refine_peaks) {
      if (pk.i > 0 && pk.i + 1 < aoa_grid.size()) {
        di = parabolic_offset(values(pk.i - 1, pk.j), values(pk.i, pk.j),
                              values(pk.i + 1, pk.j));
      }
      const std::size_t jm =
          pk.j > 0 ? pk.j - 1 : (tof_wraps_ ? n_tof - 1 : pk.j);
      const std::size_t jp =
          pk.j + 1 < n_tof ? pk.j + 1 : (tof_wraps_ ? 0 : pk.j);
      if (jm != pk.j && jp != pk.j) {
        dj = parabolic_offset(values(pk.i, jm), values(pk.i, pk.j),
                              values(pk.i, jp));
      }
    }
    est.aoa_rad = aoa_grid[pk.i] + di * config_.aoa_step_rad;
    est.tof_s = tof_grid[pk.j] + dj * config_.tof_step_s;
    out[n_out++] = est;
  }
  return n_out;
}

std::size_t JointMusicEstimator::estimate_into(
    ConstCMatrixView csi, Workspace& ws, std::span<PathEstimate> out) const {
  SPOTFI_EXPECTS(out.size() >= config_.max_paths,
                 "estimate_into output span smaller than max_paths");
  Workspace::Frame frame(ws);
  const CMatrixView x = stage_smooth(csi, ws);
  const SubspacesRef sub = stage_subspace(ConstCMatrixView(x), ws);
  return stage_spectrum(sub, ws, out);
}

std::vector<PathEstimate> JointMusicEstimator::estimate(
    const CMatrix& csi) const {
  Workspace& ws = thread_workspace();
  Workspace::Frame frame(ws);
  const std::span<PathEstimate> buf = ws.take<PathEstimate>(config_.max_paths);
  const std::size_t n = estimate_into(ConstCMatrixView(csi), ws, buf);
  return {buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n)};
}

MusicAoaEstimator::MusicAoaEstimator(LinkConfig link, MusicAoaConfig config)
    : link_(link), config_(config) {
  SPOTFI_EXPECTS(config_.smoothing_ant_len <= link_.n_antennas,
                 "smoothing subarray exceeds the antenna count");
  ant_len_ = config_.smoothing_ant_len == 0 ? link_.n_antennas
                                            : config_.smoothing_ant_len;
  aoa_axis_ = SteeringTableCache::get(
      SteeringTableCache::Axis::kAoa, config_.aoa_min_rad, config_.aoa_max_rad,
      config_.aoa_step_rad, ant_len_, link_);
}

AoaSpectrum MusicAoaEstimator::spectrum(const CMatrix& csi) const {
  SPOTFI_EXPECTS(csi.rows() == link_.n_antennas &&
                     csi.cols() == link_.n_subcarriers,
                 "CSI shape disagrees with the link config");
  const std::size_t ant_len = ant_len_;
  const CMatrix x = ant_len == link_.n_antennas
                        ? csi
                        : spatially_smoothed_snapshots(csi, ant_len);
  SubspaceConfig sub_cfg = config_.subspace;
  sub_cfg.max_signal_dims = std::min(sub_cfg.max_signal_dims, ant_len - 1);
  const Subspaces sub = noise_subspace(x, sub_cfg);

  AoaSpectrum sp;
  sp.aoa_grid_rad = aoa_axis_->grid;
  sp.values.resize(sp.aoa_grid_rad.size());
  const std::size_t n_noise = sub.noise.cols();
  for (std::size_t ai = 0; ai < sp.aoa_grid_rad.size(); ++ai) {
    const cplx* a = &aoa_axis_->steering[ai * ant_len];
    double denom = 0.0;
    for (std::size_t e = 0; e < n_noise; ++e) {
      cplx proj{};
      for (std::size_t m = 0; m < ant_len; ++m) {
        proj += std::conj(sub.noise(m, e)) * a[m];
      }
      denom += std::norm(proj);
    }
    sp.values[ai] = 1.0 / std::max(denom, 1e-12);
  }
  return sp;
}

std::vector<PathEstimate> MusicAoaEstimator::estimate(
    const CMatrix& csi) const {
  const AoaSpectrum sp = spectrum(csi);
  auto peaks =
      find_peaks_1d(sp.values,
                    config_.max_paths +
                        (config_.exclude_aoa_edges ? config_.max_paths : 0),
                    config_.min_relative_peak);
  if (config_.exclude_aoa_edges) {
    const std::size_t last = sp.aoa_grid_rad.size() - 1;
    std::erase_if(peaks, [&](const GridPeak& p) {
      return p.i == 0 || p.i == last;
    });
    if (peaks.size() > config_.max_paths) peaks.resize(config_.max_paths);
  }
  std::vector<PathEstimate> estimates;
  estimates.reserve(peaks.size());
  for (const auto& pk : peaks) {
    PathEstimate est;
    est.power = pk.value;
    double di = 0.0;
    if (config_.refine_peaks && pk.i > 0 &&
        pk.i + 1 < sp.aoa_grid_rad.size()) {
      di = parabolic_offset(sp.values[pk.i - 1], sp.values[pk.i],
                            sp.values[pk.i + 1]);
    }
    est.aoa_rad = sp.aoa_grid_rad[pk.i] + di * config_.aoa_step_rad;
    estimates.push_back(est);
  }
  return estimates;
}

}  // namespace spotfi
