// Cramér-Rao lower bounds for joint AoA/ToF estimation.
//
// For the deterministic single-path model mu = gamma * a(theta, tau)
// observed at the M x N virtual sensor array in complex AWGN of variance
// sigma^2, the Fisher information over (theta, tau, Re gamma, Im gamma)
// is J = (2 / sigma^2) * Re(D^H D) with D the Jacobian of mu. Inverting
// J and reading the (theta, theta) and (tau, tau) entries gives the best
// any unbiased estimator — MUSIC, ESPRIT, anything — can do. The
// bench/crlb_efficiency harness compares the implemented estimators
// against this floor.
#pragma once

#include "common/constants.hpp"

namespace spotfi {

struct CrlbResult {
  /// Standard-deviation lower bound on the AoA estimate [rad].
  double sigma_aoa_rad = 0.0;
  /// Standard-deviation lower bound on the ToF estimate [s].
  double sigma_tof_s = 0.0;
};

/// CRLB for a single path at (aoa, tof) observed once across all
/// n_antennas x n_subcarriers sensors at the given per-sensor SNR [dB]
/// (|gamma|^2 / sigma^2). Nuisance parameters (complex amplitude) are
/// accounted for. Throws NumericalError for degenerate geometries
/// (|aoa| at endfire, where the AoA information vanishes).
[[nodiscard]] CrlbResult single_path_crlb(double aoa_rad, double tof_s,
                                          double snr_db,
                                          const LinkConfig& link);

}  // namespace spotfi
