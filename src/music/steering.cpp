#include "music/steering.hpp"

#include <cmath>

namespace spotfi {

cplx phi_factor(double aoa_rad, const LinkConfig& link) {
  const double arg = -2.0 * kPi * link.antenna_spacing_m *
                     std::sin(aoa_rad) * link.carrier_hz / kSpeedOfLight;
  return std::polar(1.0, arg);
}

cplx omega_factor(double tof_s, const LinkConfig& link) {
  return std::polar(1.0, -2.0 * kPi * link.subcarrier_spacing_hz * tof_s);
}

CVector aoa_steering(double aoa_rad, std::size_t n_antennas,
                     const LinkConfig& link) {
  SPOTFI_EXPECTS(n_antennas >= 1, "need at least one antenna");
  CVector a(n_antennas);
  const cplx phi = phi_factor(aoa_rad, link);
  cplx acc{1.0, 0.0};
  for (std::size_t m = 0; m < n_antennas; ++m) {
    a[m] = acc;
    acc *= phi;
  }
  return a;
}

CVector tof_steering(double tof_s, std::size_t n_subcarriers,
                     const LinkConfig& link) {
  SPOTFI_EXPECTS(n_subcarriers >= 1, "need at least one subcarrier");
  CVector a(n_subcarriers);
  const cplx omega = omega_factor(tof_s, link);
  cplx acc{1.0, 0.0};
  for (std::size_t n = 0; n < n_subcarriers; ++n) {
    a[n] = acc;
    acc *= omega;
  }
  return a;
}

CVector joint_steering(double aoa_rad, double tof_s, std::size_t ant_len,
                       std::size_t sub_len, const LinkConfig& link) {
  CVector a(ant_len * sub_len);
  joint_steering_into(aoa_rad, tof_s, ant_len, sub_len, link, a);
  return a;
}

void joint_steering_into(double aoa_rad, double tof_s, std::size_t ant_len,
                         std::size_t sub_len, const LinkConfig& link,
                         std::span<cplx> out) {
  SPOTFI_EXPECTS(ant_len >= 1 && sub_len >= 1,
                 "need at least one antenna and one subcarrier");
  SPOTFI_EXPECTS(out.size() == ant_len * sub_len,
                 "joint steering output size mismatch");
  const cplx phi = phi_factor(aoa_rad, link);
  const cplx omega = omega_factor(tof_s, link);
  // Same cumulative-product recurrences as aoa_steering/tof_steering, so
  // the products match the value flavour bit for bit.
  cplx ant{1.0, 0.0};
  std::size_t r = 0;
  for (std::size_t m = 0; m < ant_len; ++m) {
    cplx sub{1.0, 0.0};
    for (std::size_t s = 0; s < sub_len; ++s, ++r) {
      out[r] = ant * sub;
      sub *= omega;
    }
    ant *= phi;
  }
}

double tof_period(const LinkConfig& link) {
  return 1.0 / link.subcarrier_spacing_hz;
}

}  // namespace spotfi
