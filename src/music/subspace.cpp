#include "music/subspace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/hermitian_eig.hpp"

namespace spotfi {
namespace {

/// eigh never throws for convergence; the subspace split is where a
/// partial decomposition becomes unusable (noise/signal separation is
/// meaningless without orthonormal eigenvectors), so the throw that the
/// MUSIC pipeline's fallback ladder expects is re-raised here.
void require_converged(bool converged, double off_diagonal_residual) {
  if (!converged) {
    throw NumericalError(
        "noise_subspace: covariance eigendecomposition did not converge "
        "(off-diagonal residual " +
        std::to_string(off_diagonal_residual) + ")");
  }
}

void require_converged(const HermitianEig& eig) {
  require_converged(eig.converged, eig.off_diagonal_residual);
}

/// Shared model-order selection on ascending eigenvalues (Algorithm 2,
/// line 5, plus the MDL/AIC information criteria and the dimension caps).
std::size_t select_signal_dims(std::span<const double> eigenvalues,
                               std::size_t n_snapshots,
                               const SubspaceConfig& config) {
  const std::size_t dim = eigenvalues.size();
  std::size_t n_signal = 0;
  if (config.order_method == OrderMethod::kThreshold) {
    const double lambda_max = eigenvalues.back();
    const double cut = config.relative_threshold * std::max(lambda_max, 0.0);
    for (std::size_t k = dim; k-- > 0;) {
      if (eigenvalues[k] > cut) ++n_signal;
      else break;
    }
  } else {
    n_signal =
        estimate_model_order(eigenvalues, n_snapshots, config.order_method);
  }
  n_signal = std::min(n_signal, config.max_signal_dims);
  const std::size_t max_signal =
      dim > config.min_noise_dims ? dim - config.min_noise_dims : 0;
  n_signal = std::min(n_signal, max_signal);
  n_signal = std::max<std::size_t>(n_signal, 1);
  return n_signal;
}

Subspaces split(const HermitianEig& eig, std::size_t n_signal) {
  const std::size_t dim = eig.eigenvalues.size();
  SPOTFI_EXPECTS(n_signal < dim, "signal subspace must leave noise dims");
  const std::size_t n_noise = dim - n_signal;

  Subspaces s;
  s.n_signal = n_signal;
  s.eigenvalues = eig.eigenvalues;
  s.noise = CMatrix(dim, n_noise);
  // Eigenvalues are ascending, so the first n_noise columns are noise.
  for (std::size_t j = 0; j < n_noise; ++j) {
    for (std::size_t i = 0; i < dim; ++i) {
      s.noise(i, j) = eig.eigenvectors(i, j);
    }
  }
  return s;
}

}  // namespace

std::size_t estimate_model_order(std::span<const double> eigenvalues,
                                 std::size_t n_snapshots,
                                 OrderMethod method) {
  SPOTFI_EXPECTS(eigenvalues.size() >= 2, "need at least two eigenvalues");
  SPOTFI_EXPECTS(n_snapshots >= 1, "need at least one snapshot");
  SPOTFI_EXPECTS(method != OrderMethod::kThreshold,
                 "estimate_model_order implements MDL/AIC only");
  const std::size_t m = eigenvalues.size();
  const double n = static_cast<double>(n_snapshots);

  double best_score = std::numeric_limits<double>::max();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < m; ++k) {
    // Smallest (m - k) eigenvalues — the candidate noise set. Eigenvalues
    // are ascending, so these are the leading entries.
    const auto p = static_cast<double>(m - k);
    double log_geo = 0.0;
    double arith = 0.0;
    for (std::size_t i = 0; i < m - k; ++i) {
      const double ev = std::max(eigenvalues[i], 1e-300);
      log_geo += std::log(ev);
      arith += ev;
    }
    log_geo /= p;
    arith /= p;
    const double log_ratio = log_geo - std::log(std::max(arith, 1e-300));
    const double fit = -n * p * log_ratio;
    const double dof = static_cast<double>(k) * (2.0 * m - k);
    const double penalty = method == OrderMethod::kMdl
                               ? 0.5 * dof * std::log(n)
                               : dof;  // AIC
    const double score = fit + penalty;
    if (score < best_score) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

Subspaces noise_subspace(const CMatrix& measurement,
                         const SubspaceConfig& config) {
  SPOTFI_EXPECTS(measurement.rows() >= 2, "measurement matrix too small");
  SPOTFI_EXPECTS(config.relative_threshold > 0.0 &&
                     config.relative_threshold < 1.0,
                 "relative_threshold must be in (0, 1)");
  const HermitianEig eig = eigh(measurement.gram());
  require_converged(eig);
  const std::size_t n_signal =
      select_signal_dims(eig.eigenvalues, measurement.cols(), config);
  return split(eig, n_signal);
}

SubspacesRef noise_subspace(ConstCMatrixView measurement,
                            const SubspaceConfig& config, Workspace& ws) {
  SPOTFI_EXPECTS(measurement.rows() >= 2, "measurement matrix too small");
  SPOTFI_EXPECTS(config.relative_threshold > 0.0 &&
                     config.relative_threshold < 1.0,
                 "relative_threshold must be in (0, 1)");
  const std::size_t dim = measurement.rows();

  // Results first (they outlive the scratch frame): the eigenvalue copy
  // and a dim x dim slab whose leading columns become the noise basis.
  const std::span<double> evals_out = ws.take<double>(dim);
  const CMatrixView noise_store = workspace_matrix<cplx>(ws, dim, dim);

  std::size_t n_signal = 0;
  {
    Workspace::Frame frame(ws);
    const CMatrixView g = workspace_matrix<cplx>(ws, dim, dim);
    gram_into<cplx>(measurement, g);
    const HermitianEigRef eig = eigh(ConstCMatrixView(g), ws);
    require_converged(eig.converged, eig.off_diagonal_residual);
    n_signal = select_signal_dims(eig.eigenvalues, measurement.cols(), config);
    const std::size_t n_noise = dim - n_signal;
    std::copy(eig.eigenvalues.begin(), eig.eigenvalues.end(),
              evals_out.begin());
    // Eigenvalues are ascending, so the first n_noise columns are noise.
    for (std::size_t i = 0; i < dim; ++i) {
      const cplx* src = eig.eigenvectors.row_ptr(i);
      cplx* dst = noise_store.row_ptr(i);
      std::copy(src, src + n_noise, dst);
    }
  }

  SubspacesRef s;
  s.n_signal = n_signal;
  s.eigenvalues = evals_out;
  // The noise basis is the leading-column window of the slab; row stride
  // stays `dim`.
  s.noise = ConstCMatrixView(noise_store.data(), dim, dim - n_signal, dim);
  return s;
}

Subspaces noise_subspace_fixed(const CMatrix& measurement,
                               std::size_t n_signal) {
  SPOTFI_EXPECTS(measurement.rows() >= 2, "measurement matrix too small");
  const HermitianEig eig = eigh(measurement.gram());
  require_converged(eig);
  return split(eig, n_signal);
}

}  // namespace spotfi
