#include "music/esprit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eig_general.hpp"
#include "linalg/hermitian_eig.hpp"
#include "music/steering.hpp"

namespace spotfi {
namespace {

/// Least-squares solution of A X = B for skinny complex A via the normal
/// equations (columns of X solved independently). A rank-deficient normal
/// matrix — coherent paths collapsing the signal subspace — goes through
/// the policy's regularization ladder instead of failing outright.
CMatrix complex_lstsq(const CMatrix& a, const CMatrix& b) {
  SPOTFI_EXPECTS(a.rows() == b.rows() && a.rows() >= a.cols(),
                 "complex_lstsq shape mismatch");
  const CMatrix at = a.adjoint();
  const CMatrix ata = at * a;
  const CMatrix atb = at * b;
  CMatrix x(a.cols(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const CVector col =
        solve_complex(ata, atb.col(j), NumericsPolicy::defaults());
    x.set_col(j, col);
  }
  return x;
}

/// Rows of `es` whose subarray index satisfies a predicate.
CMatrix select_rows(const CMatrix& es, const SmoothingConfig& cfg,
                    bool by_subcarrier, bool upper) {
  const std::size_t sub_len = cfg.sub_len;
  const std::size_t ant_len = cfg.ant_len;
  std::vector<std::size_t> rows;
  for (std::size_t a = 0; a < ant_len; ++a) {
    for (std::size_t s = 0; s < sub_len; ++s) {
      bool keep;
      if (by_subcarrier) {
        keep = upper ? (s >= 1) : (s + 1 < sub_len);
      } else {
        keep = upper ? (a >= 1) : (a + 1 < ant_len);
      }
      if (keep) rows.push_back(a * sub_len + s);
    }
  }
  CMatrix out(rows.size(), es.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < es.cols(); ++j) {
      out(i, j) = es(rows[i], j);
    }
  }
  return out;
}

}  // namespace

JointEspritEstimator::JointEspritEstimator(LinkConfig link,
                                           EspritConfig config)
    : link_(link), config_(config) {
  SPOTFI_EXPECTS(config_.smoothing.sub_len >= 2 &&
                     config_.smoothing.ant_len >= 2,
                 "ESPRIT needs at least a 2x2 subarray for both shifts");
  SPOTFI_EXPECTS(config_.smoothing.ant_len <= link_.n_antennas &&
                     config_.smoothing.sub_len <= link_.n_subcarriers,
                 "smoothing subarray exceeds the link dimensions");
}

std::vector<PathEstimate> JointEspritEstimator::estimate(
    const CMatrix& csi) const {
  SPOTFI_EXPECTS(csi.rows() == link_.n_antennas &&
                     csi.cols() == link_.n_subcarriers,
                 "CSI shape disagrees with the link config");
  const CMatrix x = smoothed_csi(csi, config_.smoothing);

  // Signal subspace: eigenvectors of the top-L eigenvalues.
  SubspaceConfig sub_cfg = config_.subspace;
  sub_cfg.max_signal_dims =
      std::min(sub_cfg.max_signal_dims, config_.max_paths);
  const Subspaces sub = noise_subspace(x, sub_cfg);
  const std::size_t dim = x.rows();
  const std::size_t n_signal = sub.n_signal;
  // Signal basis: the top-n_signal eigenvectors of the covariance.
  const HermitianEig eig = eigh(x.gram());
  if (!eig.converged) return {};  // no trustworthy signal basis
  CMatrix es(dim, n_signal);
  for (std::size_t k = 0; k < n_signal; ++k) {
    for (std::size_t i = 0; i < dim; ++i) {
      es(i, k) = eig.eigenvectors(i, dim - n_signal + k);
    }
  }

  // Shift-invariance operators.
  const CMatrix es_sub_lo = select_rows(es, config_.smoothing, true, false);
  const CMatrix es_sub_hi = select_rows(es, config_.smoothing, true, true);
  const CMatrix es_ant_lo = select_rows(es, config_.smoothing, false, false);
  const CMatrix es_ant_hi = select_rows(es, config_.smoothing, false, true);

  std::vector<PathEstimate> estimates;
  CMatrix f_tau, f_phi;
  try {
    f_tau = complex_lstsq(es_sub_lo, es_sub_hi);
    f_phi = complex_lstsq(es_ant_lo, es_ant_hi);
  } catch (const NumericalError&) {
    return estimates;  // degenerate subspace: no estimates
  }

  // Joint diagonalization: eigenvectors of F_tau diagonalize F_phi too
  // (in the noiseless case the operators commute). eig_general never
  // throws for convergence; a stalled iteration (near-defective operator
  // from coherent paths) surfaces through the `converged` flag instead.
  const GeneralEig te = eig_general(f_tau);
  if (!te.converged) return estimates;
  // Phi eigenvalues paired through the same basis: T^-1 F_phi T diagonal.
  CMatrix phi_in_basis(n_signal, n_signal);
  try {
    // Solve T * Y = F_phi * T for Y, then take the diagonal. A defective
    // eigenvector basis is near-singular; lean on the jitter ladder.
    const CMatrix rhs = f_phi * te.eigenvectors;
    for (std::size_t j = 0; j < n_signal; ++j) {
      const CVector col =
          solve_complex(te.eigenvectors, rhs.col(j), NumericsPolicy::defaults());
      phi_in_basis.set_col(j, col);
    }
  } catch (const NumericalError&) {
    return estimates;
  }

  const double two_pi_fd = 2.0 * kPi * link_.subcarrier_spacing_hz;
  const double sin_scale = link_.wavelength() /
                           (2.0 * kPi * link_.antenna_spacing_m);
  for (std::size_t k = 0; k < n_signal; ++k) {
    const cplx omega = te.eigenvalues[k];
    const cplx phi = phi_in_basis(k, k);
    if (std::abs(omega) < 1e-6) continue;
    PathEstimate est;
    est.tof_s = -std::arg(omega) / two_pi_fd;
    const double sin_theta = -std::arg(phi) * sin_scale;
    if (std::abs(sin_theta) > 1.0 - config_.endfire_margin) continue;
    est.aoa_rad = std::asin(sin_theta);
    estimates.push_back(est);
  }

  // Path powers: least-squares fit of the joint steering matrix to the
  // smoothed measurement.
  if (!estimates.empty()) {
    CMatrix steering(dim, estimates.size());
    for (std::size_t k = 0; k < estimates.size(); ++k) {
      const CVector a =
          joint_steering(estimates[k].aoa_rad, estimates[k].tof_s,
                         config_.smoothing.ant_len, config_.smoothing.sub_len,
                         link_);
      steering.set_col(k, a);
    }
    try {
      const CMatrix gains = complex_lstsq(steering, x);
      for (std::size_t k = 0; k < estimates.size(); ++k) {
        double p = 0.0;
        for (std::size_t j = 0; j < gains.cols(); ++j) {
          p += std::norm(gains(k, j));
        }
        estimates[k].power = p / static_cast<double>(gains.cols());
      }
    } catch (const NumericalError&) {
      // Nearly collinear steering vectors: keep unit powers.
      for (auto& est : estimates) est.power = 1.0;
    }
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const PathEstimate& a, const PathEstimate& b) {
              return a.power > b.power;
            });
  if (estimates.size() > config_.max_paths) {
    estimates.resize(config_.max_paths);
  }
  return estimates;
}

}  // namespace spotfi
