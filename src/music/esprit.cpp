#include "music/esprit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eig_general.hpp"
#include "linalg/hermitian_eig.hpp"
#include "music/steering.hpp"

namespace spotfi {
namespace {

/// Least-squares solution of A X = B for skinny complex A via the normal
/// equations (columns of X solved independently). A rank-deficient normal
/// matrix — coherent paths collapsing the signal subspace — goes through
/// the policy's regularization ladder instead of failing outright. The
/// result is checked out of `ws` (caller's frame); all scratch is
/// released before returning.
CMatrixView complex_lstsq(ConstCMatrixView a, ConstCMatrixView b,
                          Workspace& ws) {
  SPOTFI_EXPECTS(a.rows() == b.rows() && a.rows() >= a.cols(),
                 "complex_lstsq shape mismatch");
  const CMatrixView x = workspace_matrix<cplx>(ws, a.cols(), b.cols());
  Workspace::Frame scratch(ws);
  const CMatrixView at = workspace_matrix<cplx>(ws, a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) at(j, i) = std::conj(a(i, j));
  }
  const CMatrixView ata = workspace_matrix<cplx>(ws, a.cols(), a.cols());
  matmul_into<cplx>(at, a, ata);
  const CMatrixView atb = workspace_matrix<cplx>(ws, a.cols(), b.cols());
  matmul_into<cplx>(at, b, atb);
  const std::span<cplx> rhs = ws.take<cplx>(a.cols());
  const std::span<cplx> sol = ws.take<cplx>(a.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < a.cols(); ++i) rhs[i] = atb(i, j);
    solve_complex_into(ConstCMatrixView(ata), rhs, sol,
                       NumericsPolicy::defaults(), ws);
    for (std::size_t i = 0; i < a.cols(); ++i) x(i, j) = sol[i];
  }
  return x;
}

/// Rows of `es` whose subarray index satisfies a predicate; the selection
/// is checked out of `ws`.
CMatrixView select_rows(ConstCMatrixView es, const SmoothingConfig& cfg,
                        bool by_subcarrier, bool upper, Workspace& ws) {
  const std::size_t sub_len = cfg.sub_len;
  const std::size_t ant_len = cfg.ant_len;
  const std::size_t n_rows = by_subcarrier ? ant_len * (sub_len - 1)
                                           : (ant_len - 1) * sub_len;
  const CMatrixView out = workspace_matrix<cplx>(ws, n_rows, es.cols());
  std::size_t r = 0;
  for (std::size_t a = 0; a < ant_len; ++a) {
    for (std::size_t s = 0; s < sub_len; ++s) {
      bool keep;
      if (by_subcarrier) {
        keep = upper ? (s >= 1) : (s + 1 < sub_len);
      } else {
        keep = upper ? (a >= 1) : (a + 1 < ant_len);
      }
      if (!keep) continue;
      const cplx* src = es.row_ptr(a * sub_len + s);
      std::copy(src, src + es.cols(), out.row_ptr(r));
      ++r;
    }
  }
  SPOTFI_ASSERT(r == n_rows, "row selection count mismatch");
  return out;
}

}  // namespace

JointEspritEstimator::JointEspritEstimator(LinkConfig link,
                                           EspritConfig config)
    : link_(link), config_(config) {
  SPOTFI_EXPECTS(config_.smoothing.sub_len >= 2 &&
                     config_.smoothing.ant_len >= 2,
                 "ESPRIT needs at least a 2x2 subarray for both shifts");
  SPOTFI_EXPECTS(config_.smoothing.ant_len <= link_.n_antennas &&
                     config_.smoothing.sub_len <= link_.n_subcarriers,
                 "smoothing subarray exceeds the link dimensions");
}

std::vector<PathEstimate> JointEspritEstimator::estimate(
    const CMatrix& csi) const {
  Workspace& ws = thread_workspace();
  Workspace::Frame frame(ws);
  const std::span<PathEstimate> buf = ws.take<PathEstimate>(config_.max_paths);
  const std::size_t n = estimate_into(ConstCMatrixView(csi), ws, buf);
  return {buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n)};
}

std::size_t JointEspritEstimator::estimate_into(
    ConstCMatrixView csi, Workspace& ws, std::span<PathEstimate> out) const {
  SPOTFI_EXPECTS(csi.rows() == link_.n_antennas &&
                     csi.cols() == link_.n_subcarriers,
                 "CSI shape disagrees with the link config");
  SPOTFI_EXPECTS(out.size() >= config_.max_paths,
                 "estimate_into output span smaller than max_paths");
  Workspace::Frame frame(ws);
  const CMatrixView x = smoothed_csi(csi, ws, config_.smoothing);

  // Signal subspace: eigenvectors of the top-L eigenvalues.
  SubspaceConfig sub_cfg = config_.subspace;
  sub_cfg.max_signal_dims =
      std::min(sub_cfg.max_signal_dims, config_.max_paths);
  const SubspacesRef sub =
      noise_subspace(ConstCMatrixView(x), sub_cfg, ws);
  const std::size_t dim = x.rows();
  const std::size_t n_signal = sub.n_signal;
  // Signal basis: the top-n_signal eigenvectors of the covariance. The
  // model-order split above keeps only the noise columns, so the
  // decomposition runs once more for the signal side — same cost shape
  // as the value path, all scratch on the arena.
  const CMatrixView g = workspace_matrix<cplx>(ws, dim, dim);
  gram_into<cplx>(x, g);
  const HermitianEigRef eig = eigh(ConstCMatrixView(g), ws);
  if (!eig.converged) return 0;  // no trustworthy signal basis
  const CMatrixView es = workspace_matrix<cplx>(ws, dim, n_signal);
  for (std::size_t k = 0; k < n_signal; ++k) {
    for (std::size_t i = 0; i < dim; ++i) {
      es(i, k) = eig.eigenvectors(i, dim - n_signal + k);
    }
  }

  // Shift-invariance operators.
  const ConstCMatrixView es_view(es);
  const CMatrixView es_sub_lo =
      select_rows(es_view, config_.smoothing, true, false, ws);
  const CMatrixView es_sub_hi =
      select_rows(es_view, config_.smoothing, true, true, ws);
  const CMatrixView es_ant_lo =
      select_rows(es_view, config_.smoothing, false, false, ws);
  const CMatrixView es_ant_hi =
      select_rows(es_view, config_.smoothing, false, true, ws);

  CMatrixView f_tau, f_phi;
  try {
    f_tau = complex_lstsq(es_sub_lo, es_sub_hi, ws);
    f_phi = complex_lstsq(es_ant_lo, es_ant_hi, ws);
  } catch (const NumericalError&) {
    return 0;  // degenerate subspace: no estimates
  }

  // Joint diagonalization: eigenvectors of F_tau diagonalize F_phi too
  // (in the noiseless case the operators commute). eig_general never
  // throws for convergence; a stalled iteration (near-defective operator
  // from coherent paths) surfaces through the `converged` flag instead.
  const GeneralEigRef te = eig_general(ConstCMatrixView(f_tau), ws);
  if (!te.converged) return 0;
  // Phi eigenvalues paired through the same basis: T^-1 F_phi T diagonal.
  const CMatrixView phi_in_basis =
      workspace_matrix<cplx>(ws, n_signal, n_signal);
  try {
    // Solve T * Y = F_phi * T for Y, then take the diagonal. A defective
    // eigenvector basis is near-singular; lean on the jitter ladder.
    const CMatrixView rhs = workspace_matrix<cplx>(ws, n_signal, n_signal);
    matmul_into<cplx>(ConstCMatrixView(f_phi),
                      ConstCMatrixView(te.eigenvectors), rhs);
    const std::span<cplx> col = ws.take<cplx>(n_signal);
    const std::span<cplx> sol = ws.take<cplx>(n_signal);
    for (std::size_t j = 0; j < n_signal; ++j) {
      for (std::size_t i = 0; i < n_signal; ++i) col[i] = rhs(i, j);
      solve_complex_into(ConstCMatrixView(te.eigenvectors), col, sol,
                         NumericsPolicy::defaults(), ws);
      for (std::size_t i = 0; i < n_signal; ++i) phi_in_basis(i, j) = sol[i];
    }
  } catch (const NumericalError&) {
    return 0;
  }

  const std::span<PathEstimate> estimates = ws.take<PathEstimate>(n_signal);
  std::size_t n_est = 0;
  const double two_pi_fd = 2.0 * kPi * link_.subcarrier_spacing_hz;
  const double sin_scale = link_.wavelength() /
                           (2.0 * kPi * link_.antenna_spacing_m);
  for (std::size_t k = 0; k < n_signal; ++k) {
    const cplx omega = te.eigenvalues[k];
    const cplx phi = phi_in_basis(k, k);
    if (std::abs(omega) < 1e-6) continue;
    PathEstimate est;
    est.tof_s = -std::arg(omega) / two_pi_fd;
    const double sin_theta = -std::arg(phi) * sin_scale;
    if (std::abs(sin_theta) > 1.0 - config_.endfire_margin) continue;
    est.aoa_rad = std::asin(sin_theta);
    estimates[n_est++] = est;
  }

  // Path powers: least-squares fit of the joint steering matrix to the
  // smoothed measurement.
  if (n_est > 0) {
    const CMatrixView steering = workspace_matrix<cplx>(ws, dim, n_est);
    const std::span<cplx> a_col = ws.take<cplx>(dim);
    for (std::size_t k = 0; k < n_est; ++k) {
      joint_steering_into(estimates[k].aoa_rad, estimates[k].tof_s,
                          config_.smoothing.ant_len, config_.smoothing.sub_len,
                          link_, a_col);
      for (std::size_t i = 0; i < dim; ++i) steering(i, k) = a_col[i];
    }
    try {
      const CMatrixView gains =
          complex_lstsq(ConstCMatrixView(steering), ConstCMatrixView(x), ws);
      for (std::size_t k = 0; k < n_est; ++k) {
        double p = 0.0;
        for (std::size_t j = 0; j < gains.cols(); ++j) {
          p += std::norm(gains(k, j));
        }
        estimates[k].power = p / static_cast<double>(gains.cols());
      }
    } catch (const NumericalError&) {
      // Nearly collinear steering vectors: keep unit powers.
      for (std::size_t k = 0; k < n_est; ++k) estimates[k].power = 1.0;
    }
  }
  std::sort(estimates.begin(),
            estimates.begin() + static_cast<std::ptrdiff_t>(n_est),
            [](const PathEstimate& a, const PathEstimate& b) {
              return a.power > b.power;
            });
  const std::size_t n_out = std::min(n_est, config_.max_paths);
  std::copy(estimates.begin(),
            estimates.begin() + static_cast<std::ptrdiff_t>(n_out),
            out.begin());
  return n_out;
}

}  // namespace spotfi
