// Process-wide cache of precomputed MUSIC steering tables.
//
// A JointMusicEstimator's grids and steering tables are pure functions
// of (grid range/step, subarray length, link geometry). The hot paths
// construct estimators constantly — the server builds an ApProcessor
// (and with it two estimators) per AP per round, and every session's
// per-fidelity server variants repeat that — so without sharing, the
// same ~80 KiB of tables is recomputed thousands of times per second,
// and N tenants hold N copies. This cache interns the (grid, table)
// pair per exact parameter set: every estimator constructed for the
// same deployment shares one immutable table, across rounds, servers,
// sessions, and threads.
//
// Sharing is safe because entries are immutable after construction and
// handed out as shared_ptr<const>; correctness is safe because keys
// compare the exact bit patterns of every double that influences the
// table values (grid endpoints/step and the link's carrier, spacing,
// and subcarrier-spacing parameters), so two estimators share a table
// only when they would have computed bit-identical ones.
#pragma once

#include <cstddef>
#include <memory>

#include "common/constants.hpp"
#include "linalg/matrix.hpp"

namespace spotfi {

/// One axis of the joint steering precomputation: the sample grid and
/// the row-major steering table (grid.size() rows of `len` entries).
struct SteeringAxisTable {
  RVector grid;
  CVector steering;
  std::size_t len = 0;
};

/// Cache telemetry (process-wide totals).
struct SteeringCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};

class SteeringTableCache {
 public:
  enum class Axis {
    kAoa,  ///< aoa_steering rows over a linspace AoA grid
    kTof,  ///< tof_steering rows over a linspace ToF grid
  };

  /// The interned (grid, table) pair for one axis: linspace(lo, hi,
  /// step) sample points, steering vectors of length `len` under
  /// `link`. Computes and inserts on first request; thread-safe.
  [[nodiscard]] static std::shared_ptr<const SteeringAxisTable> get(
      Axis axis, double lo, double hi, double step, std::size_t len,
      const LinkConfig& link);

  [[nodiscard]] static SteeringCacheStats stats();
  /// Drops every cached entry (outstanding shared_ptrs stay valid) and
  /// zeroes the stats. Tests only.
  static void clear();

  /// Entries retained at most; beyond it the oldest entries are evicted
  /// (in-use tables stay alive through their shared_ptrs). Generous —
  /// a deployment uses a handful of configurations — but bounds memory
  /// when tests sweep many grids.
  static constexpr std::size_t kMaxEntries = 64;
};

/// The shared linspace used for every steering grid: lo + i * step,
/// including the endpoint when (hi - lo) is an exact multiple of step
/// up to a relative tolerance (see the implementation note).
[[nodiscard]] RVector linspace_grid(double lo, double hi, double step);

}  // namespace spotfi
