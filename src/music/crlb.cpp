#include "music/crlb.hpp"

#include <cmath>

#include "linalg/solve.hpp"
#include "music/steering.hpp"

namespace spotfi {

CrlbResult single_path_crlb(double aoa_rad, double tof_s, double snr_db,
                            const LinkConfig& link) {
  const std::size_t m_ant = link.n_antennas;
  const std::size_t n_sub = link.n_subcarriers;
  SPOTFI_EXPECTS(m_ant >= 2 && n_sub >= 2,
                 "CRLB needs at least 2 antennas and 2 subcarriers");

  // mu = gamma * a(theta, tau); take gamma = 1 (SNR carries the scale).
  // Jacobian columns: d mu / d theta, d mu / d tau, d mu / d Re(gamma),
  // d mu / d Im(gamma). The steering derivative is analytic:
  //   a[k] = exp(j*(m*phi_arg(theta) + n*omega_arg(tau)))
  //   da/dtheta[k] = j * m * dphi_arg/dtheta * a[k]
  //   da/dtau[k]   = j * n * domega_arg/dtau * a[k]
  const double phi_scale = -2.0 * kPi * link.antenna_spacing_m *
                           link.carrier_hz / kSpeedOfLight;
  const double dphi_dtheta = phi_scale * std::cos(aoa_rad);
  const double domega_dtau = -2.0 * kPi * link.subcarrier_spacing_hz;

  const CVector a =
      joint_steering(aoa_rad, tof_s, m_ant, n_sub, link);
  const std::size_t dim = a.size();
  CMatrix d(dim, 4);
  std::size_t k = 0;
  for (std::size_t m = 0; m < m_ant; ++m) {
    for (std::size_t n = 0; n < n_sub; ++n, ++k) {
      const cplx j_ak = cplx(0.0, 1.0) * a[k];
      d(k, 0) = j_ak * (static_cast<double>(m) * dphi_dtheta);
      d(k, 1) = j_ak * (static_cast<double>(n) * domega_dtau);
      d(k, 2) = a[k];                  // d/d Re(gamma)
      d(k, 3) = cplx(0.0, 1.0) * a[k]; // d/d Im(gamma)
    }
  }

  // Fisher information J = (2/sigma^2) Re(D^H D); per-sensor SNR with
  // |gamma| = 1 means sigma^2 = 10^(-snr/10).
  const double inv_sigma_sq = std::pow(10.0, snr_db / 10.0);
  const CMatrix dhd = d.adjoint() * d;
  RMatrix fim(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      fim(i, j) = 2.0 * inv_sigma_sq * dhd(i, j).real();
    }
  }

  // CRLB = [J^-1]_00 and [J^-1]_11: solve J x = e_i.
  CrlbResult result;
  RVector e0(4, 0.0), e1(4, 0.0);
  e0[0] = 1.0;
  e1[1] = 1.0;
  const RVector c0 = solve_spd(fim, e0);  // throws if singular (endfire)
  const RVector c1 = solve_spd(fim, e1);
  SPOTFI_EXPECTS(c0[0] > 0.0 && c1[1] > 0.0, "FIM not positive definite");
  result.sigma_aoa_rad = std::sqrt(c0[0]);
  result.sigma_tof_s = std::sqrt(c1[1]);
  return result;
}

}  // namespace spotfi
