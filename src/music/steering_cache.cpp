#include "music/steering_cache.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "music/steering.hpp"

namespace spotfi {
namespace {

/// Everything that influences an axis table's values, compared by exact
/// bit pattern. Both link frequencies and the spacing are included for
/// both axes (one of them is inert per axis) — a few inert bytes beat a
/// key that silently under-identifies when the steering model changes.
struct TableKey {
  std::uint8_t axis = 0;
  std::size_t len = 0;
  std::array<std::uint64_t, 6> bits{};  ///< lo, hi, step, carrier,
                                        ///< antenna spacing, subcarrier
                                        ///< spacing

  bool operator==(const TableKey&) const = default;
};

struct TableKeyHash {
  std::size_t operator()(const TableKey& k) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.axis;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(k.len);
    for (const std::uint64_t b : k.bits) mix(b);
    return static_cast<std::size_t>(h);
  }
};

struct CacheState {
  std::mutex mutex;
  std::unordered_map<TableKey, std::shared_ptr<const SteeringAxisTable>,
                     TableKeyHash>
      entries;
  std::deque<TableKey> insertion_order;  ///< oldest first, for eviction
  std::size_t hits = 0;
  std::size_t misses = 0;
};

CacheState& cache() {
  static CacheState state;
  return state;
}

/// Flattens steering vectors for every grid point into one row-major
/// table: row i holds steer(grid[i]).
template <typename SteerFn>
CVector steering_table(const RVector& grid, std::size_t len, SteerFn&& steer) {
  CVector table;
  table.reserve(grid.size() * len);
  for (const double x : grid) {
    const CVector v = steer(x);
    table.insert(table.end(), v.begin(), v.end());
  }
  return table;
}

}  // namespace

RVector linspace_grid(double lo, double hi, double step) {
  SPOTFI_EXPECTS(step > 0.0 && hi > lo, "invalid grid parameters");
  // A range that is an exact multiple of the step must include the
  // endpoint on every platform. (hi - lo) / step carries rounding error
  // proportional to its own magnitude, so the snap-to-integer tolerance
  // must be relative: a fixed 1e-9 absolute slack either misses an exact
  // multiple computed a few ulps low or swallows a genuine sub-step
  // shortfall, and the grid gains/drops its endpoint depending on libm.
  const double ratio = (hi - lo) / step;
  const double nearest = std::round(ratio);
  const double tol =
      64.0 * std::numeric_limits<double>::epsilon() * std::max(1.0, ratio);
  const auto count =
      std::abs(ratio - nearest) <= tol
          ? static_cast<std::size_t>(nearest) + 1
          : static_cast<std::size_t>(std::floor(ratio)) + 1;
  RVector g;
  g.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    g.push_back(lo + static_cast<double>(i) * step);
  }
  return g;
}

std::shared_ptr<const SteeringAxisTable> SteeringTableCache::get(
    Axis axis, double lo, double hi, double step, std::size_t len,
    const LinkConfig& link) {
  TableKey key;
  key.axis = static_cast<std::uint8_t>(axis);
  key.len = len;
  key.bits = {std::bit_cast<std::uint64_t>(lo),
              std::bit_cast<std::uint64_t>(hi),
              std::bit_cast<std::uint64_t>(step),
              std::bit_cast<std::uint64_t>(link.carrier_hz),
              std::bit_cast<std::uint64_t>(link.antenna_spacing_m),
              std::bit_cast<std::uint64_t>(link.subcarrier_spacing_hz)};

  CacheState& state = cache();
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.entries.find(key);
    if (it != state.entries.end()) {
      ++state.hits;
      return it->second;
    }
    ++state.misses;
  }

  // Compute outside the lock: table construction is the expensive part,
  // and a duplicate computation under a rare race costs less than
  // serializing every miss. Whichever insert lands first wins; both
  // results are bit-identical by construction.
  auto table = std::make_shared<SteeringAxisTable>();
  table->grid = linspace_grid(lo, hi, step);
  table->len = len;
  table->steering =
      axis == Axis::kAoa
          ? steering_table(table->grid, len,
                           [&](double aoa) {
                             return aoa_steering(aoa, len, link);
                           })
          : steering_table(table->grid, len, [&](double tof) {
              return tof_steering(tof, len, link);
            });

  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto [it, inserted] = state.entries.emplace(key, std::move(table));
  if (inserted) {
    state.insertion_order.push_back(key);
    while (state.entries.size() > kMaxEntries &&
           !state.insertion_order.empty()) {
      state.entries.erase(state.insertion_order.front());
      state.insertion_order.pop_front();
    }
  }
  return it->second;
}

SteeringCacheStats SteeringTableCache::stats() {
  CacheState& state = cache();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return {state.hits, state.misses, state.entries.size()};
}

void SteeringTableCache::clear() {
  CacheState& state = cache();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.entries.clear();
  state.insertion_order.clear();
  state.hits = 0;
  state.misses = 0;
}

}  // namespace spotfi
