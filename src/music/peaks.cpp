#include "music/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace spotfi {
namespace {

void sort_and_trim(std::vector<GridPeak>& peaks, std::size_t max_peaks,
                   double min_relative, double global_max) {
  std::sort(peaks.begin(), peaks.end(),
            [](const GridPeak& a, const GridPeak& b) {
              return a.value > b.value;
            });
  const double floor_value = min_relative * global_max;
  std::erase_if(peaks,
                [&](const GridPeak& p) { return p.value < floor_value; });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
}

/// Span flavor of sort_and_trim: after the descending sort every
/// below-floor peak sits in the tail, so erase_if reduces to shortening
/// the prefix — same surviving set and order as the vector flavor.
std::size_t sort_and_trim(std::span<GridPeak> peaks, std::size_t max_peaks,
                          double min_relative, double global_max) {
  std::sort(peaks.begin(), peaks.end(),
            [](const GridPeak& a, const GridPeak& b) {
              return a.value > b.value;
            });
  const double floor_value = min_relative * global_max;
  std::size_t n = peaks.size();
  while (n > 0 && peaks[n - 1].value < floor_value) --n;
  return std::min(n, max_peaks);
}

/// The 8-neighbourhood local-maximum test shared by both find_peaks_2d
/// flavors. Out-of-range neighbours simply do not exist (they neither
/// block a peak nor count as dominated); the column axis optionally
/// wraps. Flat regions are not peaks: dominance over at least one
/// neighbour is required so constant grids yield nothing.
bool is_peak_2d(ConstRMatrixView grid, bool wrap_cols, std::size_t i,
                std::size_t j) {
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  const double v = grid(i, j);
  auto value_at = [&](std::ptrdiff_t ii,
                      std::ptrdiff_t jj) -> std::optional<double> {
    if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(rows)) return std::nullopt;
    if (wrap_cols) {
      const auto c = static_cast<std::ptrdiff_t>(cols);
      jj = ((jj % c) + c) % c;
    } else if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(cols)) {
      return std::nullopt;
    }
    return grid(static_cast<std::size_t>(ii), static_cast<std::size_t>(jj));
  };
  bool strictly_above_one = false;
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      if (di == 0 && dj == 0) continue;
      const auto nb = value_at(static_cast<std::ptrdiff_t>(i) + di,
                               static_cast<std::ptrdiff_t>(j) + dj);
      if (!nb) continue;
      if (*nb > v) return false;
      if (*nb < v) strictly_above_one = true;
    }
  }
  return strictly_above_one;
}

double grid_max_abs(ConstRMatrixView grid) {
  double m = 0.0;
  for (std::size_t i = 0; i < grid.rows(); ++i)
    for (const double v : grid.row(i)) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace

std::vector<GridPeak> find_peaks_1d(std::span<const double> f,
                                    std::size_t max_peaks,
                                    double min_relative) {
  SPOTFI_EXPECTS(max_peaks > 0, "max_peaks must be positive");
  std::vector<GridPeak> peaks;
  if (f.empty()) return peaks;
  double global_max = f[0];
  for (double v : f) global_max = std::max(global_max, v);

  const std::size_t n = f.size();
  if (n == 1) {
    peaks.push_back({0, 0, f[0]});
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const bool left_ok = i == 0 ? f[i] > f[i + 1] : f[i] > f[i - 1];
      const bool right_ok = i == n - 1 ? f[i] > f[i - 1] : f[i] >= f[i + 1];
      // Interior plateaus: count only the left edge (strict > on the left).
      if (left_ok && right_ok) peaks.push_back({i, 0, f[i]});
    }
  }
  sort_and_trim(peaks, max_peaks, min_relative, global_max);
  return peaks;
}

std::vector<GridPeak> find_peaks_2d(const RMatrix& grid, bool wrap_cols,
                                    std::size_t max_peaks,
                                    double min_relative) {
  SPOTFI_EXPECTS(max_peaks > 0, "max_peaks must be positive");
  SPOTFI_EXPECTS(grid.rows() >= 1 && grid.cols() >= 1, "empty grid");
  const ConstRMatrixView g(grid);
  std::vector<GridPeak> peaks;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      if (is_peak_2d(g, wrap_cols, i, j)) peaks.push_back({i, j, g(i, j)});
    }
  }
  sort_and_trim(peaks, max_peaks, min_relative, grid_max_abs(g));
  return peaks;
}

std::span<const GridPeak> find_peaks_2d(ConstRMatrixView grid, bool wrap_cols,
                                        std::size_t max_peaks,
                                        double min_relative, Workspace& ws) {
  SPOTFI_EXPECTS(max_peaks > 0, "max_peaks must be positive");
  SPOTFI_EXPECTS(grid.rows() >= 1 && grid.cols() >= 1, "empty grid");

  // Pass 1: count candidates so the checkout is sized exactly.
  std::size_t count = 0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    for (std::size_t j = 0; j < grid.cols(); ++j) {
      if (is_peak_2d(grid, wrap_cols, i, j)) ++count;
    }
  }

  // Pass 2: refill in the same row-major order the vector flavor uses,
  // then the same descending sort, so the surviving set and order match
  // bit for bit (the sort is unstable; identical input order matters).
  std::span<GridPeak> peaks = ws.take<GridPeak>(count);
  std::size_t k = 0;
  for (std::size_t i = 0; i < grid.rows(); ++i) {
    for (std::size_t j = 0; j < grid.cols(); ++j) {
      if (is_peak_2d(grid, wrap_cols, i, j)) peaks[k++] = {i, j, grid(i, j)};
    }
  }
  const std::size_t n =
      sort_and_trim(peaks, max_peaks, min_relative, grid_max_abs(grid));
  return peaks.first(n);
}

double parabolic_offset(double f_m1, double f_0, double f_p1) {
  const double denom = f_m1 - 2.0 * f_0 + f_p1;
  if (!(f_0 >= f_m1 && f_0 >= f_p1) || std::abs(denom) < 1e-300) return 0.0;
  const double offset = 0.5 * (f_m1 - f_p1) / denom;
  return std::clamp(offset, -0.5, 0.5);
}

}  // namespace spotfi
