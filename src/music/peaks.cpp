#include "music/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace spotfi {
namespace {

void sort_and_trim(std::vector<GridPeak>& peaks, std::size_t max_peaks,
                   double min_relative, double global_max) {
  std::sort(peaks.begin(), peaks.end(),
            [](const GridPeak& a, const GridPeak& b) {
              return a.value > b.value;
            });
  const double floor_value = min_relative * global_max;
  std::erase_if(peaks,
                [&](const GridPeak& p) { return p.value < floor_value; });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
}

}  // namespace

std::vector<GridPeak> find_peaks_1d(std::span<const double> f,
                                    std::size_t max_peaks,
                                    double min_relative) {
  SPOTFI_EXPECTS(max_peaks > 0, "max_peaks must be positive");
  std::vector<GridPeak> peaks;
  if (f.empty()) return peaks;
  double global_max = f[0];
  for (double v : f) global_max = std::max(global_max, v);

  const std::size_t n = f.size();
  if (n == 1) {
    peaks.push_back({0, 0, f[0]});
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const bool left_ok = i == 0 ? f[i] > f[i + 1] : f[i] > f[i - 1];
      const bool right_ok = i == n - 1 ? f[i] > f[i - 1] : f[i] >= f[i + 1];
      // Interior plateaus: count only the left edge (strict > on the left).
      if (left_ok && right_ok) peaks.push_back({i, 0, f[i]});
    }
  }
  sort_and_trim(peaks, max_peaks, min_relative, global_max);
  return peaks;
}

std::vector<GridPeak> find_peaks_2d(const RMatrix& grid, bool wrap_cols,
                                    std::size_t max_peaks,
                                    double min_relative) {
  SPOTFI_EXPECTS(max_peaks > 0, "max_peaks must be positive");
  SPOTFI_EXPECTS(grid.rows() >= 1 && grid.cols() >= 1, "empty grid");
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  const double global_max = grid.max_abs();

  // Out-of-range neighbours simply do not exist (they neither block a peak
  // nor count as dominated); the column axis optionally wraps.
  auto value_at = [&](std::ptrdiff_t i,
                      std::ptrdiff_t j) -> std::optional<double> {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(rows)) return std::nullopt;
    if (wrap_cols) {
      const auto c = static_cast<std::ptrdiff_t>(cols);
      j = ((j % c) + c) % c;
    } else if (j < 0 || j >= static_cast<std::ptrdiff_t>(cols)) {
      return std::nullopt;
    }
    return grid(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  };

  std::vector<GridPeak> peaks;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = grid(i, j);
      bool is_peak = true;
      bool strictly_above_one = false;
      for (int di = -1; di <= 1 && is_peak; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          if (di == 0 && dj == 0) continue;
          const auto nb = value_at(static_cast<std::ptrdiff_t>(i) + di,
                                   static_cast<std::ptrdiff_t>(j) + dj);
          if (!nb) continue;
          if (*nb > v) {
            is_peak = false;
            break;
          }
          if (*nb < v) strictly_above_one = true;
        }
      }
      // Flat regions are not peaks; require dominance over at least one
      // neighbour to reject constant grids.
      if (is_peak && strictly_above_one) peaks.push_back({i, j, v});
    }
  }
  sort_and_trim(peaks, max_peaks, min_relative, global_max);
  return peaks;
}

double parabolic_offset(double f_m1, double f_0, double f_p1) {
  const double denom = f_m1 - 2.0 * f_0 + f_p1;
  if (!(f_0 >= f_m1 && f_0 >= f_p1) || std::abs(denom) < 1e-300) return 0.0;
  const double offset = 0.5 * (f_m1 - f_p1) / denom;
  return std::clamp(offset, -0.5, 0.5);
}

}  // namespace spotfi
