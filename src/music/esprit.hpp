// Joint AoA/ToF estimation by shift invariance (ESPRIT / JADE family).
//
// The paper's super-resolution step uses 2-D MUSIC; the literature it
// builds on (Van der Veen et al. [42], Vanderveen et al. [43]) solves the
// same problem search-free by exploiting the smoothed matrix's two shift
// invariances: rows shifted by one subcarrier scale signal components by
// Omega(tau_k), rows shifted by one antenna scale them by Phi(theta_k).
// Estimating the two shift operators on the signal subspace and jointly
// diagonalizing them yields paired (theta_k, tau_k) without any grid —
// an order of magnitude faster than the spectrum sweep, at the cost of
// more sensitivity to subspace errors. Provided as an alternative
// estimator and compared in bench/ablation_estimator.
#pragma once

#include "csi/smoothing.hpp"
#include "music/estimators.hpp"

namespace spotfi {

struct EspritConfig {
  SmoothingConfig smoothing{};
  SubspaceConfig subspace{};
  /// Keep at most this many paths (signal dimensions).
  std::size_t max_paths = 8;
  /// Drop estimates whose |sin(theta)| exceeds 1 - this margin (shift
  /// eigenvalues slightly off the unit circle map outside the physical
  /// AoA range).
  double endfire_margin = 1e-3;
};

class JointEspritEstimator {
 public:
  JointEspritEstimator(LinkConfig link, EspritConfig config = {});

  /// Estimates the multipath (AoA, ToF) pairs of one packet's CSI.
  /// `power` of each estimate is the least-squares path amplitude squared
  /// (comparable across paths of one packet, unlike MUSIC's spectrum
  /// height).
  [[nodiscard]] std::vector<PathEstimate> estimate(const CMatrix& csi) const;

  /// Workspace-assisted packet path: the large front-end buffers (smoothed
  /// matrix, covariance, both eigendecompositions, signal-basis slab) come
  /// out of `ws`; the small n_signal-sized shift-operator solves still use
  /// the value kernels (ESPRIT is the off-default estimator — only its
  /// dominant allocations move to the arena). Writes at most
  /// `config().max_paths` estimates into `out` and returns the count.
  /// Bit-identical to estimate(), which wraps this path.
  [[nodiscard]] std::size_t estimate_into(ConstCMatrixView csi, Workspace& ws,
                                          std::span<PathEstimate> out) const;

  [[nodiscard]] const EspritConfig& config() const { return config_; }

 private:
  LinkConfig link_;
  EspritConfig config_;
};

}  // namespace spotfi
