#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/hermitian_eig.hpp"

namespace spotfi {
namespace {

bool all_finite(const RMatrix& a) {
  for (const double v : a.flat()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool all_finite(std::span<const double> v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Largest diagonal magnitude — the natural scale for an SPD ridge.
double diagonal_scale(const RMatrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) s = std::max(s, std::abs(a(i, i)));
  return s;
}

/// Triangular solves L y = b, L^T x = y for a Cholesky factor L.
RVector cholesky_solve(const RMatrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  RVector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  RVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

/// Factors A = L L^T into a caller-provided slab whose upper triangle must
/// arrive zeroed (workspace checkouts are). Same loops and throws as the
/// value flavour.
void cholesky_into(ConstRMatrixView a, RMatrixView l) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        // !(sum > 0) also catches NaN pivots, so a poisoned input fails
        // here instead of silently propagating NaN through the factor.
        if (!(sum > 0.0)) {
          throw NumericalError("cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
}

}  // namespace

RMatrix cholesky(const RMatrix& a) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  RMatrix l(n, n);
  cholesky_into(ConstRMatrixView(a), l.view());
  return l;
}

RegularizedCholesky cholesky(const RMatrix& a, const NumericsPolicy& policy) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "cholesky requires a square matrix");
  if (!all_finite(a)) {
    throw NumericalError("cholesky: matrix has non-finite entries");
  }
  RegularizedCholesky result;
  try {
    result.l = cholesky(a);
    return result;
  } catch (const NumericalError&) {
    // Fall through to the ladder.
  }
  const double scale = std::max(diagonal_scale(a), 1e-300);
  double ridge = policy.initial_ridge * scale;
  for (int attempt = 1; attempt <= policy.max_ridge_steps; ++attempt) {
    RMatrix damped = a;
    for (std::size_t i = 0; i < a.rows(); ++i) damped(i, i) += ridge;
    try {
      result.l = cholesky(damped);
      result.ridge = ridge;
      result.attempts = attempt;
      count_numerics(&NumericsCounters::cholesky_regularized);
      return result;
    } catch (const NumericalError&) {
      ridge *= policy.ridge_growth;
    }
  }
  throw NumericalError(
      "cholesky: not positive definite even after the regularization ladder");
}

RVector solve_spd(const RMatrix& a, std::span<const double> b) {
  RVector x(b.size());
  solve_spd_into(ConstRMatrixView(a), b, x, thread_workspace());
  return x;
}

void solve_spd_into(ConstRMatrixView a, std::span<const double> b,
                    std::span<double> x, Workspace& ws) {
  SPOTFI_EXPECTS(a.rows() == b.size(), "solve_spd shape mismatch");
  SPOTFI_EXPECTS(x.size() == a.cols(), "solve_spd solution size mismatch");
  const std::size_t n = a.rows();
  Workspace::Frame frame(ws);
  const RMatrixView l = workspace_matrix<double>(ws, n, n);
  cholesky_into(a, l);
  const std::span<double> y = ws.take<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
}

RVector solve_spd(const RMatrix& a, std::span<const double> b,
                  const NumericsPolicy& policy) {
  SPOTFI_EXPECTS(a.rows() == b.size(), "solve_spd shape mismatch");
  if (!all_finite(b)) {
    throw NumericalError("solve_spd: rhs has non-finite entries");
  }
  return cholesky_solve(cholesky(a, policy).l, b);
}

RVector lstsq(const RMatrix& a, std::span<const double> b) {
  SPOTFI_EXPECTS(a.rows() >= a.cols(), "lstsq requires rows >= cols");
  SPOTFI_EXPECTS(a.rows() == b.size(), "lstsq shape mismatch");
  RVector x(a.cols());
  lstsq_into(ConstRMatrixView(a), b, x, thread_workspace());
  return x;
}

void lstsq_into(ConstRMatrixView a, std::span<const double> b,
                std::span<double> x, Workspace& ws) {
  SPOTFI_EXPECTS(a.rows() >= a.cols(), "lstsq requires rows >= cols");
  SPOTFI_EXPECTS(a.rows() == b.size(), "lstsq shape mismatch");
  SPOTFI_EXPECTS(x.size() == a.cols(), "lstsq solution size mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder QR, transforming b alongside.
  Workspace::Frame frame(ws);
  const RMatrixView r = workspace_clone<double>(ws, a);
  const std::span<double> rhs = ws.take<double>(m);
  std::copy(b.begin(), b.end(), rhs.begin());
  const std::span<double> v_buf = ws.take<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (!std::isfinite(norm)) {
      throw NumericalError("lstsq: matrix has non-finite entries");
    }
    if (norm <= 1e-13 * (1.0 + std::abs(r(k, k)))) {
      throw NumericalError("lstsq: rank-deficient matrix");
    }
    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    // Householder vector v (implicitly stored), v_k = r(k,k) - alpha.
    const std::span<double> v = v_buf.first(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vtv = dot(std::span<const double>(v), v);
    if (vtv <= 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns and to rhs.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      const double f = 2.0 * proj / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * rhs[i];
    const double f = 2.0 * proj / vtv;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= f * v[i - k];
    r(k, k) = alpha;
  }

  // Back substitution on the upper-triangular leading block.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) <= 1e-300) {
      throw NumericalError("lstsq: zero pivot in back substitution");
    }
    x[ii] = sum / r(ii, ii);
  }
}

RVector lstsq(const RMatrix& a, std::span<const double> b,
              const NumericsPolicy& policy) {
  SPOTFI_EXPECTS(a.rows() >= a.cols(), "lstsq requires rows >= cols");
  SPOTFI_EXPECTS(a.rows() == b.size(), "lstsq shape mismatch");
  if (!all_finite(a) || !all_finite(b)) {
    throw NumericalError("lstsq: input has non-finite entries");
  }
  try {
    return lstsq(a, b);
  } catch (const NumericalError&) {
    // Fall through to the regularized normal equations.
  }

  const RMatrix at = a.transpose();
  const RMatrix ata = at * a;
  const RVector atb = matvec(at, b);
  const double scale = std::max(diagonal_scale(ata), 1e-300);

  double ridge = policy.initial_ridge * scale;
  for (int attempt = 0; attempt < policy.max_ridge_steps; ++attempt) {
    RMatrix damped = ata;
    for (std::size_t i = 0; i < ata.rows(); ++i) damped(i, i) += ridge;
    try {
      RVector x = solve_spd(damped, atb);
      count_numerics(&NumericsCounters::lstsq_regularized);
      return x;
    } catch (const NumericalError&) {
      ridge *= policy.ridge_growth;
    }
  }

  if (policy.allow_pseudoinverse) {
    // Terminal fallback: minimum-norm least squares via the truncated
    // eigendecomposition of A^T A (its eigenvectors are A's right singular
    // vectors; eigenvalues are squared singular values).
    const SymmetricEig eig = eigh(ata);
    const double lambda_max = std::max(eig.eigenvalues.back(), 0.0);
    const double cut = policy.pinv_rcond * lambda_max;
    const std::size_t n = ata.rows();
    RVector x(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const double lambda = eig.eigenvalues[k];
      if (lambda <= cut || lambda <= 0.0) continue;
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += eig.eigenvectors(i, k) * atb[i];
      const double coeff = proj / lambda;
      for (std::size_t i = 0; i < n; ++i) x[i] += coeff * eig.eigenvectors(i, k);
    }
    count_numerics(&NumericsCounters::lstsq_pseudoinverse);
    return x;
  }
  throw NumericalError("lstsq: regularization ladder exhausted");
}

}  // namespace spotfi
