#include "linalg/solve.hpp"

#include <cmath>

namespace spotfi {

RMatrix cholesky(const RMatrix& a) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  RMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw NumericalError("cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

RVector solve_spd(const RMatrix& a, std::span<const double> b) {
  SPOTFI_EXPECTS(a.rows() == b.size(), "solve_spd shape mismatch");
  const RMatrix l = cholesky(a);
  const std::size_t n = a.rows();
  // Forward substitution: L y = b.
  RVector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  RVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

RVector lstsq(const RMatrix& a, std::span<const double> b) {
  SPOTFI_EXPECTS(a.rows() >= a.cols(), "lstsq requires rows >= cols");
  SPOTFI_EXPECTS(a.rows() == b.size(), "lstsq shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder QR, transforming b alongside.
  RMatrix r = a;
  RVector rhs(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm <= 1e-13 * (1.0 + std::abs(r(k, k)))) {
      throw NumericalError("lstsq: rank-deficient matrix");
    }
    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    // Householder vector v (implicitly stored), v_k = r(k,k) - alpha.
    RVector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vtv = dot(std::span<const double>(v), v);
    if (vtv <= 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns and to rhs.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      const double f = 2.0 * proj / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * rhs[i];
    const double f = 2.0 * proj / vtv;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= f * v[i - k];
    r(k, k) = alpha;
  }

  // Back substitution on the upper-triangular leading block.
  RVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) <= 1e-300) {
      throw NumericalError("lstsq: zero pivot in back substitution");
    }
    x[ii] = sum / r(ii, ii);
  }
  return x;
}

}  // namespace spotfi
