// Direct solvers for small dense real systems: Cholesky for SPD matrices
// (the normal equations inside Levenberg-Marquardt) and Householder QR for
// general least squares (the linear fit in ToF sanitization and the
// triangulation baselines).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace spotfi {

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix. Throws NumericalError if A is not positive definite.
[[nodiscard]] RMatrix cholesky(const RMatrix& a);

/// Solves A x = b for symmetric positive definite A via Cholesky.
[[nodiscard]] RVector solve_spd(const RMatrix& a, std::span<const double> b);

/// Minimizes ||A x - b||_2 for A with rows >= cols and full column rank,
/// using Householder QR. Throws NumericalError on rank deficiency.
[[nodiscard]] RVector lstsq(const RMatrix& a, std::span<const double> b);

}  // namespace spotfi
