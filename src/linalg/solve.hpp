// Direct solvers for small dense real systems: Cholesky for SPD matrices
// (the normal equations inside Levenberg-Marquardt) and Householder QR for
// general least squares (the linear fit in ToF sanitization and the
// triangulation baselines).
//
// Each solver comes in two flavours:
//  * strict — throws NumericalError at the first sign of indefiniteness or
//    rank deficiency (paper-faithful benches and tests that *want* to see
//    degeneracy);
//  * policy — takes a NumericsPolicy and walks the regularized retry
//    ladder (exact -> escalating relative Tikhonov ridge -> truncated
//    pseudo-inverse), reporting every fallback through NumericsCounters.
//    These throw only for inputs no regularization can save (non-finite
//    entries, exhausted ladder).
#pragma once

#include <span>

#include "linalg/matrix.hpp"
#include "linalg/numerics.hpp"

namespace spotfi {

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix. Throws NumericalError if A is not positive definite
/// (including when the input contains NaN/Inf).
[[nodiscard]] RMatrix cholesky(const RMatrix& a);

/// Cholesky with the regularized retry ladder: factors A + ridge * I for
/// the smallest ridge on the policy's ladder that is positive definite.
struct RegularizedCholesky {
  RMatrix l;
  /// Absolute ridge added to the diagonal (0.0 = exact factorization).
  double ridge = 0.0;
  /// Ladder attempts consumed (0 = exact path succeeded).
  int attempts = 0;
};
[[nodiscard]] RegularizedCholesky cholesky(const RMatrix& a,
                                           const NumericsPolicy& policy);

/// Solves A x = b for symmetric positive definite A via Cholesky (strict).
[[nodiscard]] RVector solve_spd(const RMatrix& a, std::span<const double> b);

/// Strict workspace variant: the factor and the intermediate solve live on
/// `ws`, the solution is written into `x` (size = A's dimension). The
/// value flavour wraps this one; same arithmetic, same throws.
void solve_spd_into(ConstRMatrixView a, std::span<const double> b,
                    std::span<double> x, Workspace& ws);

/// Policy variant: regularized retry ladder on the factorization.
[[nodiscard]] RVector solve_spd(const RMatrix& a, std::span<const double> b,
                                const NumericsPolicy& policy);

/// Minimizes ||A x - b||_2 for A with rows >= cols and full column rank,
/// using Householder QR. Throws NumericalError on rank deficiency.
[[nodiscard]] RVector lstsq(const RMatrix& a, std::span<const double> b);

/// Strict workspace variant of lstsq: the QR working copy, transformed
/// rhs, and Householder vectors live on `ws`; the solution is written
/// into `x` (size = A's column count). The value flavour wraps this one.
void lstsq_into(ConstRMatrixView a, std::span<const double> b,
                std::span<double> x, Workspace& ws);

/// Policy variant: QR first; on rank deficiency the ridged normal
/// equations (Tikhonov ladder), and finally a truncated-eigenvalue
/// pseudo-inverse (minimum-norm least squares) when the policy allows it.
[[nodiscard]] RVector lstsq(const RMatrix& a, std::span<const double> b,
                            const NumericsPolicy& policy);

}  // namespace spotfi
