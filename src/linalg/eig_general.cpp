#include "linalg/eig_general.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace spotfi {

void solve_complex_into(ConstCMatrixView a, std::span<const cplx> b,
                        std::span<cplx> x, Workspace& ws) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "solve_complex requires square A");
  SPOTFI_EXPECTS(a.rows() == b.size(), "solve_complex shape mismatch");
  SPOTFI_EXPECTS(x.size() == b.size(), "solve_complex solution size mismatch");
  const std::size_t n = a.rows();
  Workspace::Frame frame(ws);
  const CMatrixView lu = workspace_clone<cplx>(ws, a);
  std::copy(b.begin(), b.end(), x.begin());

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting on column k.
    std::size_t pivot = k;
    double best = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = std::abs(lu(i, k));
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) throw NumericalError("solve_complex: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(x[k], x[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const cplx factor = lu(i, k) / lu(k, k);
      lu(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
      x[i] -= factor * x[k];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    cplx sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu(ii, j) * x[j];
    x[ii] = sum / lu(ii, ii);
  }
}

CVector solve_complex(const CMatrix& a, std::span<const cplx> b) {
  CVector x(b.size());
  solve_complex_into(ConstCMatrixView(a), b, x, thread_workspace());
  return x;
}

void solve_complex_into(ConstCMatrixView a, std::span<const cplx> b,
                        std::span<cplx> x, const NumericsPolicy& policy,
                        Workspace& ws) {
  SPOTFI_EXPECTS(a.rows() == a.cols(), "solve_complex requires square A");
  SPOTFI_EXPECTS(a.rows() == b.size(), "solve_complex shape mismatch");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (const cplx& v : a.row(i)) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        throw NumericalError("solve_complex: matrix has non-finite entries");
      }
    }
  }
  for (const cplx& v : b) {
    if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
      throw NumericalError("solve_complex: rhs has non-finite entries");
    }
  }
  try {
    solve_complex_into(a, b, x, ws);
    return;
  } catch (const NumericalError&) {
    // Fall through to the jitter ladder.
  }
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const cplx& v : a.row(i)) max_abs = std::max(max_abs, std::abs(v));
  }
  const double scale = std::max(max_abs, 1e-300);
  double ridge = policy.initial_ridge * scale;
  Workspace::Frame frame(ws);
  const CMatrixView damped = workspace_matrix<cplx>(ws, n, n);
  for (int attempt = 0; attempt < policy.max_ridge_steps; ++attempt) {
    for (std::size_t i = 0; i < n; ++i) {
      const cplx* src = a.row_ptr(i);
      std::copy(src, src + n, damped.row_ptr(i));
      damped(i, i) += cplx(ridge, 0.0);
    }
    try {
      solve_complex_into(ConstCMatrixView(damped), b, x, ws);
      count_numerics(&NumericsCounters::solve_regularized);
      return;
    } catch (const NumericalError&) {
      ridge *= policy.ridge_growth;
    }
  }
  throw NumericalError("solve_complex: regularization ladder exhausted");
}

CVector solve_complex(const CMatrix& a, std::span<const cplx> b,
                      const NumericsPolicy& policy) {
  CVector x(b.size());
  solve_complex_into(ConstCMatrixView(a), b, x, policy, thread_workspace());
  return x;
}

namespace {

/// Complex Givens rotation zeroing `b` in the pair (a, b):
/// [c, s; -conj(s), c] * [a; b] = [r; 0] with real c.
struct Givens {
  double c = 1.0;
  cplx s{};
};

Givens make_givens(cplx a, cplx b) {
  const double norm = std::hypot(std::abs(a), std::abs(b));
  if (norm < 1e-300 || std::abs(b) == 0.0) return {};
  if (std::abs(a) == 0.0) {
    return {0.0, std::conj(b) / std::abs(b)};
  }
  const cplx sign_a = a / std::abs(a);
  return {std::abs(a) / norm, sign_a * std::conj(b) / norm};
}

/// Householder reduction of A to upper Hessenberg form (in place).
/// `v` is reflector scratch of size n, contents clobbered.
void hessenberg(CMatrixView h, std::span<cplx> v) {
  const std::size_t n = h.rows();
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Zero column k below the subdiagonal with a Householder reflector on
    // rows k+1..n-1.
    double norm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm += std::norm(h(i, k));
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;
    const cplx pivot = h(k + 1, k);
    const cplx alpha =
        std::abs(pivot) > 0.0 ? -(pivot / std::abs(pivot)) * norm
                              : cplx(-norm, 0.0);
    std::fill(v.begin(), v.end(), cplx{});
    v[k + 1] = pivot - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vtv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vtv += std::norm(v[i]);
    if (vtv < 1e-300) continue;

    // H <- P H P with P = I - 2 v v^H / (v^H v).
    for (std::size_t j = 0; j < n; ++j) {  // left: rows
      cplx proj{};
      for (std::size_t i = k + 1; i < n; ++i) {
        proj += std::conj(v[i]) * h(i, j);
      }
      const cplx f = 2.0 * proj / vtv;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= f * v[i];
    }
    for (std::size_t i = 0; i < n; ++i) {  // right: columns
      cplx proj{};
      for (std::size_t j = k + 1; j < n; ++j) proj += h(i, j) * v[j];
      const cplx f = 2.0 * proj / vtv;
      for (std::size_t j = k + 1; j < n; ++j) {
        h(i, j) -= f * std::conj(v[j]);
      }
    }
  }
}

/// Wilkinson shift: eigenvalue of the trailing 2x2 closest to h(m, m).
cplx wilkinson_shift(ConstCMatrixView h, std::size_t m) {
  const cplx a = h(m - 1, m - 1);
  const cplx b = h(m - 1, m);
  const cplx c = h(m, m - 1);
  const cplx d = h(m, m);
  const cplx tr2 = 0.5 * (a + d);
  const cplx disc = std::sqrt(tr2 * tr2 - (a * d - b * c));
  const cplx l1 = tr2 + disc;
  const cplx l2 = tr2 - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

double max_abs_of(ConstCMatrixView a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (const cplx& v : a.row(i)) m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace

GeneralEigRef eig_general(ConstCMatrixView input, Workspace& ws) {
  SPOTFI_EXPECTS(input.rows() == input.cols(),
                 "eig_general requires a square matrix");
  const std::size_t n = input.rows();
  GeneralEigRef result;
  result.eigenvalues = ws.take<cplx>(n);
  result.eigenvectors = workspace_matrix<cplx>(ws, n, n);
  if (n == 0) return result;
  for (std::size_t row = 0; row < n; ++row) {
    for (const cplx& v : input.row(row)) {
      if (std::isfinite(v.real()) && std::isfinite(v.imag())) continue;
      // Poisoned input: the QR iteration would only churn NaN until the
      // stall limit. Report a non-convergence up front.
      result.converged = false;
      result.max_residual = std::numeric_limits<double>::infinity();
      std::fill(result.eigenvalues.begin(), result.eigenvalues.end(),
                cplx(std::numeric_limits<double>::quiet_NaN(), 0.0));
      for (std::size_t i = 0; i < n; ++i) result.eigenvectors(i, i) = 1.0;
      count_numerics(&NumericsCounters::eig_general_nonconverged);
      return result;
    }
  }
  if (n == 1) {
    result.eigenvalues[0] = input(0, 0);
    result.eigenvectors(0, 0) = 1.0;
    return result;
  }

  Workspace::Frame scratch(ws);
  const CMatrixView h = workspace_clone<cplx>(ws, input);
  const std::span<cplx> reflector = ws.take<cplx>(n);
  hessenberg(h, reflector);
  const double scale = std::max(max_abs_of(ConstCMatrixView(h)), 1e-300);

  // Shifted QR with deflation on the active block [0, m].
  const std::span<Givens> rotations = ws.take<Givens>(n - 1);
  std::size_t m = n - 1;
  int iterations_since_deflation = 0;
  constexpr int kMaxPerEigenvalue = 60;
  while (true) {
    // Deflate all negligible subdiagonals.
    while (m > 0) {
      const double sub = std::abs(h(m, m - 1));
      if (sub <=
          1e-14 * (std::abs(h(m - 1, m - 1)) + std::abs(h(m, m)) + scale)) {
        h(m, m - 1) = cplx{};
        --m;
        iterations_since_deflation = 0;
      } else {
        break;
      }
    }
    if (m == 0) break;
    if (++iterations_since_deflation > kMaxPerEigenvalue) {
      // Stalled (near-defective input): keep the partial Schur diagonal as
      // the eigenvalue estimates and surface the stall via diagnostics.
      result.converged = false;
      count_numerics(&NumericsCounters::eig_general_nonconverged);
      break;
    }
    // Exceptional shift every 20 stalled iterations.
    const cplx mu = (iterations_since_deflation % 20 == 0)
                        ? h(m, m) + cplx(std::abs(h(m, m - 1)), 0.0)
                        : wilkinson_shift(ConstCMatrixView(h), m);

    // Explicit shifted QR step on the active block via Givens rotations:
    // H - mu I = Q R, then H <- R Q + mu I.
    for (std::size_t i = 0; i <= m; ++i) h(i, i) -= mu;
    for (std::size_t k = 0; k < m; ++k) {
      const Givens g = make_givens(h(k, k), h(k + 1, k));
      rotations[k] = g;
      // Apply from the left to rows k, k+1.
      for (std::size_t j = k; j <= m; ++j) {
        const cplx t1 = h(k, j);
        const cplx t2 = h(k + 1, j);
        h(k, j) = g.c * t1 + g.s * t2;
        h(k + 1, j) = -std::conj(g.s) * t1 + g.c * t2;
      }
      h(k + 1, k) = cplx{};  // exact zero by construction
    }
    for (std::size_t k = 0; k < m; ++k) {
      const Givens g = rotations[k];
      // Apply G^H from the right to columns k, k+1 (rows 0..k+1 are the
      // only ones with nonzeros there; row k+1 regains the Hessenberg
      // subdiagonal).
      // G^H block = [[c, -s], [conj(s), c]] acting on column pairs.
      for (std::size_t i = 0; i <= std::min(k + 1, m); ++i) {
        const cplx t1 = h(i, k);
        const cplx t2 = h(i, k + 1);
        h(i, k) = t1 * g.c + t2 * std::conj(g.s);
        h(i, k + 1) = -t1 * g.s + t2 * g.c;
      }
    }
    for (std::size_t i = 0; i <= m; ++i) h(i, i) += mu;
  }

  for (std::size_t i = 0; i < n; ++i) result.eigenvalues[i] = h(i, i);

  // Eigenvectors by inverse iteration on the original matrix.
  const CMatrixView shifted = workspace_matrix<cplx>(ws, n, n);
  const std::span<cplx> v = ws.take<cplx>(n);
  const std::span<cplx> v_next = ws.take<cplx>(n);
  Rng rng(0x5eedf00d);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx lambda = result.eigenvalues[k];
    // Slightly perturbed shift keeps (A - shift I) nonsingular.
    const cplx shift =
        lambda + cplx(1e-9 * (1.0 + std::abs(lambda)),
                      1e-10 * (1.0 + std::abs(lambda)));
    for (std::size_t i = 0; i < n; ++i) {
      const cplx* src = input.row_ptr(i);
      std::copy(src, src + n, shifted.row_ptr(i));
      shifted(i, i) -= shift;
    }

    for (auto& e : v) e = cplx(rng.normal(), rng.normal());
    for (int iter = 0; iter < 3; ++iter) {
      try {
        solve_complex_into(ConstCMatrixView(shifted), v, v_next, ws);
      } catch (const NumericalError&) {
        break;  // exactly singular: v already spans the null direction
      }
      std::copy(v_next.begin(), v_next.end(), v.begin());
      const double nv = norm2(std::span<const cplx>(v));
      if (nv < 1e-300) break;
      for (auto& e : v) e /= nv;
    }
    const double nv = norm2(std::span<const cplx>(v));
    SPOTFI_ASSERT(nv > 0.0, "inverse iteration collapsed");
    for (std::size_t i = 0; i < n; ++i) result.eigenvectors(i, k) = v[i] / nv;
  }

  // Residual diagnostic: how well each pair satisfies A v = lambda v,
  // relative to the matrix scale. Cheap at ESPRIT sizes (n <= ~16).
  for (std::size_t k = 0; k < n; ++k) {
    double res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cplx acc = -result.eigenvalues[k] * result.eigenvectors(i, k);
      for (std::size_t j = 0; j < n; ++j) {
        acc += input(i, j) * result.eigenvectors(j, k);
      }
      res += std::norm(acc);
    }
    result.max_residual =
        std::max(result.max_residual, std::sqrt(res) / scale);
  }
  return result;
}

GeneralEig eig_general(const CMatrix& input) {
  Workspace& ws = thread_workspace();
  Workspace::Frame frame(ws);
  const GeneralEigRef ref = eig_general(ConstCMatrixView(input), ws);
  GeneralEig result;
  result.converged = ref.converged;
  result.max_residual = ref.max_residual;
  result.eigenvalues.assign(ref.eigenvalues.begin(), ref.eigenvalues.end());
  const std::size_t n = input.rows();
  result.eigenvectors = CMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx* src = ref.eigenvectors.row_ptr(i);
    std::copy(src, src + n, result.eigenvectors.row(i).data());
  }
  return result;
}

}  // namespace spotfi
