// Numerical fault containment: the shared policy and telemetry layer for
// the dense-linalg kernels.
//
// SpotFi's estimate chain feeds its kernels adversarial inputs by physics:
// coherent multipath collapses the smoothed covariance toward rank
// deficiency before eigh ever runs, the Eq. 9 objective is non-convex, and
// ill-conditioning — not noise — is the dominant failure mode for
// super-resolution CSI estimators. Instead of every kernel throwing
// NumericalError and every caller catching ad hoc, the kernels share:
//
//  * NumericsPolicy — a retry ladder (exact -> escalating Tikhonov/jitter
//    regularization -> pivoted/pseudo-inverse fallback) with scales
//    expressed *relative* to the input, so the same policy works for
//    metre-scale geometry and nanosecond-scale ToF systems alike.
//  * NumericsCounters — a telemetry struct counting every time a kernel
//    had to leave the exact path. ApProcessor::process_robust and
//    SpotFiServer::try_localize surface these in ApOutcome::note /
//    LocalizationRound::notes so a degraded fix always says *why*.
//  * NumericsScope — a thread-local RAII collector. Kernels report through
//    count_numerics() without threading a counters pointer through every
//    signature; scopes nest, and a child folds its tallies into its parent
//    on destruction (per-AP scopes inside a per-round scope sum up).
#pragma once

#include <cstddef>
#include <string>

namespace spotfi {

/// Knobs for the regularized retry ladders. All regularization scales are
/// relative to the magnitude of the input matrix (its largest diagonal or
/// absolute entry), never absolute.
struct NumericsPolicy {
  /// Regularized attempts after the exact factorization fails. Each step
  /// multiplies the ridge by `ridge_growth`.
  int max_ridge_steps = 6;
  /// First ridge, as a fraction of the matrix scale.
  double initial_ridge = 1e-12;
  /// Ridge escalation factor between attempts.
  double ridge_growth = 100.0;
  /// Let lstsq fall through to a truncated-eigenvalue pseudo-inverse when
  /// even the ridged normal equations fail.
  bool allow_pseudoinverse = true;
  /// Relative eigenvalue cutoff for the pseudo-inverse: eigenvalues below
  /// `pinv_rcond * lambda_max` are treated as exact zeros.
  double pinv_rcond = 1e-10;

  /// The library-wide default policy.
  [[nodiscard]] static const NumericsPolicy& defaults();
};

/// Telemetry: how many times each containment mechanism fired. One counter
/// per mechanism, so a degradation note can name the exact fallback that
/// saved (or failed to save) a round.
struct NumericsCounters {
  std::size_t cholesky_regularized = 0;   ///< SPD solve needed a ridge
  std::size_t lstsq_regularized = 0;      ///< QR failed; ridged normal eqs
  std::size_t lstsq_pseudoinverse = 0;    ///< terminal pseudo-inverse used
  std::size_t solve_regularized = 0;      ///< complex LU needed jitter
  std::size_t eigh_nonconverged = 0;      ///< Jacobi hit the sweep limit
  std::size_t eig_general_nonconverged = 0;  ///< QR hit the iteration limit
  std::size_t levmar_nonfinite_trials = 0;   ///< trial residuals NaN/Inf
  std::size_t levmar_poisoned = 0;        ///< LM entered/hit non-finite terrain
  std::size_t levmar_solve_failed = 0;    ///< damped normal eqs not PD
  std::size_t localizer_starts_rejected = 0;  ///< diverged multi-start seeds
  std::size_t gmm_variance_floored = 0;   ///< GMM fed all-coincident points
  std::size_t gmm_nonfinite = 0;          ///< EM saw a non-finite likelihood
  std::size_t gdop_degenerate = 0;        ///< collinear bearing geometry

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] bool any() const { return total() > 0; }
  void merge(const NumericsCounters& other);
  /// Comma-separated "name=count" for the non-zero counters; empty string
  /// when nothing fired. This is what lands in degradation notes.
  [[nodiscard]] std::string summary() const;
};

/// Tag selecting a detached NumericsScope (see below).
struct DetachedScopeTag {
  explicit DetachedScopeTag() = default;
};
inline constexpr DetachedScopeTag kDetachedScope{};

/// RAII telemetry collector. While alive on a thread, count_numerics()
/// calls on that thread accumulate into it. Scopes nest: when a scope is
/// destroyed its counters fold into the enclosing scope (if any), so a
/// per-AP scope reports locally *and* contributes to the round total.
///
/// A *detached* scope still collects while active but never folds into
/// its parent — the counters leave only through counters(). Units of work
/// that may run on a pool worker (where there is no enclosing scope) use
/// detached scopes and hand their counters back in the task result; the
/// dispatching thread then merges them explicitly, in task-index order,
/// via count_numerics(const NumericsCounters&). That keeps the round
/// totals byte-identical whether a task ran inline (an enclosing scope
/// *was* active, but the detached child didn't double-report into it) or
/// on a worker (no enclosing scope existed to catch an implicit fold).
class NumericsScope {
 public:
  NumericsScope();
  explicit NumericsScope(DetachedScopeTag);
  ~NumericsScope();
  NumericsScope(const NumericsScope&) = delete;
  NumericsScope& operator=(const NumericsScope&) = delete;

  [[nodiscard]] const NumericsCounters& counters() const { return counters_; }

 private:
  friend void count_numerics(std::size_t NumericsCounters::*field,
                             std::size_t n);
  friend void count_numerics(const NumericsCounters& counters);
  NumericsCounters counters_;
  NumericsScope* parent_;
  bool detached_ = false;
};

/// Increments `field` on the innermost active scope of this thread; no-op
/// when no scope is active (strict/bench paths pay one branch).
void count_numerics(std::size_t NumericsCounters::*field, std::size_t n = 1);

/// Merges a whole counter set into the innermost active scope of this
/// thread (no-op without one) — how a dispatching thread folds in the
/// counters a detached, possibly-on-another-thread task reported.
void count_numerics(const NumericsCounters& counters);

/// True when a NumericsScope is active on this thread.
[[nodiscard]] bool numerics_scope_active();

}  // namespace spotfi
