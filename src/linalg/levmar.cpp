#include "linalg/levmar.hpp"

#include <cmath>

#include "linalg/numerics.hpp"
#include "linalg/solve.hpp"

namespace spotfi {
namespace {

double half_squared_norm(std::span<const double> r) {
  double s = 0.0;
  for (double v : r) s += v * v;
  return 0.5 * s;
}

bool all_finite(std::span<const double> v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool all_finite(ConstRMatrixView a) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (const double v : a.row(i)) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

/// Central-difference Jacobian written into a caller-provided slab. `xp`
/// is the perturbed-parameter scratch (size n).
void finite_difference_jacobian(const ResidualFn& f,
                                std::span<const double> x, std::size_t m,
                                const LevMarOptions& options, RMatrixView j,
                                std::span<double> xp) {
  std::copy(x.begin(), x.end(), xp.begin());
  for (std::size_t col = 0; col < x.size(); ++col) {
    const double scale = options.fd_scales.empty()
                             ? 1.0
                             : std::abs(options.fd_scales[col]);
    const double step =
        options.fd_step * std::max(std::abs(x[col]), std::max(scale, 1e-300));
    const double orig = xp[col];
    xp[col] = orig + step;
    const RVector rp = f(xp);
    xp[col] = orig - step;
    const RVector rm = f(xp);
    xp[col] = orig;
    SPOTFI_EXPECTS(rp.size() == m && rm.size() == m,
                   "residual size changed between evaluations");
    for (std::size_t row = 0; row < m; ++row)
      j(row, col) = (rp[row] - rm[row]) / (2.0 * step);
  }
}

}  // namespace

LevMarResult levenberg_marquardt(const ResidualFn& residuals,
                                 std::span<const double> x0,
                                 const LevMarOptions& options,
                                 const JacobianFn& jacobian) {
  return levenberg_marquardt(residuals, x0, options, jacobian,
                             thread_workspace());
}

LevMarResult levenberg_marquardt(const ResidualFn& residuals,
                                 std::span<const double> x0,
                                 const LevMarOptions& options,
                                 const JacobianFn& jacobian, Workspace& ws) {
  SPOTFI_EXPECTS(!x0.empty(), "levenberg_marquardt requires parameters");
  SPOTFI_EXPECTS(options.max_iterations > 0, "max_iterations must be > 0");
  SPOTFI_EXPECTS(
      options.fd_scales.empty() || options.fd_scales.size() == x0.size(),
      "fd_scales must be empty or match the parameter count");

  LevMarResult result;
  result.x.assign(x0.begin(), x0.end());

  if (!all_finite(result.x)) {
    result.diverged = true;
    result.reason = "non-finite initial parameters";
    count_numerics(&NumericsCounters::levmar_poisoned);
    return result;
  }

  RVector r = residuals(result.x);
  SPOTFI_EXPECTS(r.size() >= x0.size(),
                 "need at least as many residuals as parameters");
  result.cost = half_squared_norm(r);
  if (!all_finite(r) || !std::isfinite(result.cost)) {
    // The start itself sits in a non-finite region; there is no finite
    // gradient to follow out of it.
    result.diverged = true;
    result.reason = "non-finite residuals at the initial point";
    count_numerics(&NumericsCounters::levmar_poisoned);
    return result;
  }

  const std::size_t n = x0.size();
  const std::size_t m = r.size();
  double lambda = options.initial_lambda;

  // Characteristic parameter scale for the step-size trust guard.
  double x_scale = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    const double s = options.fd_scales.empty() ? 1.0 : options.fd_scales[a];
    x_scale = std::max(x_scale, std::max(std::abs(result.x[a]), s));
  }
  x_scale = std::max(x_scale, 1e-300);

  // All per-iteration buffers are hoisted out of the loop and fully
  // overwritten on every use, so steady-state iterations cost zero
  // allocations beyond the caller's residual closure.
  Workspace::Frame frame(ws);
  const RMatrixView j = workspace_matrix<double>(ws, m, n);
  const RMatrixView jtj = workspace_matrix<double>(ws, n, n);
  const RMatrixView damped = workspace_matrix<double>(ws, n, n);
  const std::span<double> jtr = ws.take<double>(n);
  const std::span<double> neg_jtr = ws.take<double>(n);
  const std::span<double> dx = ws.take<double>(n);
  const std::span<double> x_try = ws.take<double>(n);
  const std::span<double> fd_x = ws.take<double>(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (jacobian) {
      const RMatrix ja = jacobian(result.x);
      SPOTFI_EXPECTS(ja.rows() == m && ja.cols() == n,
                     "jacobian shape mismatch");
      for (std::size_t row = 0; row < m; ++row) {
        const auto src = ja.row(row);
        std::copy(src.begin(), src.end(), j.row(row).begin());
      }
    } else {
      finite_difference_jacobian(residuals, result.x, m, options, j, fd_x);
    }
    if (!all_finite(ConstRMatrixView(j))) {
      // The current point is finite but its neighborhood is not (FD probes
      // crossed into a NaN region, or an analytic Jacobian blew up). No
      // usable descent direction exists.
      result.diverged = true;
      result.reason = "non-finite Jacobian";
      count_numerics(&NumericsCounters::levmar_poisoned);
      return result;
    }

    // Normal equations: (J^T J + lambda * diag(J^T J)) dx = -J^T r.
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        double s = 0.0;
        for (std::size_t row = 0; row < m; ++row) s += j(row, a) * j(row, b);
        jtj(a, b) = jtj(b, a) = s;
      }
      double s = 0.0;
      for (std::size_t row = 0; row < m; ++row) s += j(row, a) * r[row];
      jtr[a] = s;
    }

    bool stepped = false;
    bool saw_nonfinite_trial = false;
    for (int attempt = 0; attempt < 12 && !stepped; ++attempt) {
      if (lambda > options.max_lambda) break;
      for (std::size_t a = 0; a < n; ++a) {
        const auto src = jtj.row(a);
        std::copy(src.begin(), src.end(), damped.row(a).begin());
        damped(a, a) += lambda * std::max(jtj(a, a), 1e-12);
      }
      for (std::size_t a = 0; a < n; ++a) neg_jtr[a] = -jtr[a];

      try {
        solve_spd_into(ConstRMatrixView(damped), neg_jtr, dx, ws);
      } catch (const NumericalError&) {
        count_numerics(&NumericsCounters::levmar_solve_failed);
        lambda *= options.lambda_up;
        continue;
      }
      const double step_norm = norm2(std::span<const double>(dx));
      if (!std::isfinite(step_norm) ||
          step_norm > options.max_step_factor * x_scale) {
        // Trust guard: a near-singular system produced an absurd step;
        // treat it like an uphill trial and damp harder.
        count_numerics(&NumericsCounters::levmar_solve_failed);
        lambda *= options.lambda_up;
        continue;
      }

      for (std::size_t a = 0; a < n; ++a) x_try[a] = result.x[a] + dx[a];
      RVector r_try = residuals(std::span<const double>(x_try));
      const double cost_try = half_squared_norm(r_try);
      if (!all_finite(r_try) || !std::isfinite(cost_try)) {
        // Stepped into a non-finite region: reject and shrink the step.
        ++result.nonfinite_trials;
        saw_nonfinite_trial = true;
        count_numerics(&NumericsCounters::levmar_nonfinite_trials);
        lambda *= options.lambda_up;
        continue;
      }

      if (cost_try < result.cost) {
        const double improvement =
            (result.cost - cost_try) / std::max(result.cost, 1e-300);
        std::copy(x_try.begin(), x_try.end(), result.x.begin());
        r = std::move(r_try);
        result.cost = cost_try;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (step_norm < options.step_tolerance ||
            improvement < options.cost_tolerance) {
          result.converged = true;
          return result;
        }
      } else {
        lambda *= options.lambda_up;
      }
    }
    if (!stepped) {
      if (saw_nonfinite_trial) {
        // Every surviving trial this iteration was non-finite: the iterate
        // is pinned against a NaN/Inf wall, not at a genuine minimum.
        result.diverged = true;
        result.reason = "surrounded by non-finite residuals";
        count_numerics(&NumericsCounters::levmar_poisoned);
        return result;
      }
      // Damping maxed out without improvement: local minimum.
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace spotfi
