#include "linalg/levmar.hpp"

#include <cmath>

#include "linalg/solve.hpp"

namespace spotfi {
namespace {

double half_squared_norm(std::span<const double> r) {
  double s = 0.0;
  for (double v : r) s += v * v;
  return 0.5 * s;
}

RMatrix finite_difference_jacobian(const ResidualFn& f,
                                   std::span<const double> x,
                                   std::size_t m, double h) {
  RVector xp(x.begin(), x.end());
  RMatrix j(m, x.size());
  for (std::size_t col = 0; col < x.size(); ++col) {
    const double step = h * std::max(1.0, std::abs(x[col]));
    const double orig = xp[col];
    xp[col] = orig + step;
    const RVector rp = f(xp);
    xp[col] = orig - step;
    const RVector rm = f(xp);
    xp[col] = orig;
    SPOTFI_EXPECTS(rp.size() == m && rm.size() == m,
                   "residual size changed between evaluations");
    for (std::size_t row = 0; row < m; ++row)
      j(row, col) = (rp[row] - rm[row]) / (2.0 * step);
  }
  return j;
}

}  // namespace

LevMarResult levenberg_marquardt(const ResidualFn& residuals,
                                 std::span<const double> x0,
                                 const LevMarOptions& options,
                                 const JacobianFn& jacobian) {
  SPOTFI_EXPECTS(!x0.empty(), "levenberg_marquardt requires parameters");
  SPOTFI_EXPECTS(options.max_iterations > 0, "max_iterations must be > 0");

  LevMarResult result;
  result.x.assign(x0.begin(), x0.end());
  RVector r = residuals(result.x);
  SPOTFI_EXPECTS(r.size() >= x0.size(),
                 "need at least as many residuals as parameters");
  result.cost = half_squared_norm(r);

  const std::size_t n = x0.size();
  const std::size_t m = r.size();
  double lambda = options.initial_lambda;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const RMatrix j =
        jacobian ? jacobian(result.x)
                 : finite_difference_jacobian(residuals, result.x, m,
                                              options.fd_step);
    SPOTFI_EXPECTS(j.rows() == m && j.cols() == n, "jacobian shape mismatch");

    // Normal equations: (J^T J + lambda * diag(J^T J)) dx = -J^T r.
    RMatrix jtj(n, n);
    RVector jtr(n, 0.0);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        double s = 0.0;
        for (std::size_t row = 0; row < m; ++row) s += j(row, a) * j(row, b);
        jtj(a, b) = jtj(b, a) = s;
      }
      double s = 0.0;
      for (std::size_t row = 0; row < m; ++row) s += j(row, a) * r[row];
      jtr[a] = s;
    }

    bool stepped = false;
    for (int attempt = 0; attempt < 12 && !stepped; ++attempt) {
      RMatrix damped = jtj;
      for (std::size_t a = 0; a < n; ++a) {
        damped(a, a) += lambda * std::max(jtj(a, a), 1e-12);
      }
      RVector neg_jtr(n);
      for (std::size_t a = 0; a < n; ++a) neg_jtr[a] = -jtr[a];

      RVector dx;
      try {
        dx = solve_spd(damped, neg_jtr);
      } catch (const NumericalError&) {
        lambda *= options.lambda_up;
        continue;
      }

      RVector x_try(result.x);
      for (std::size_t a = 0; a < n; ++a) x_try[a] += dx[a];
      const RVector r_try = residuals(x_try);
      const double cost_try = half_squared_norm(r_try);

      if (cost_try < result.cost) {
        const double improvement =
            (result.cost - cost_try) / std::max(result.cost, 1e-300);
        const double step_norm = norm2(std::span<const double>(dx));
        result.x = std::move(x_try);
        r = r_try;
        result.cost = cost_try;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (step_norm < options.step_tolerance ||
            improvement < options.cost_tolerance) {
          result.converged = true;
          return result;
        }
      } else {
        lambda *= options.lambda_up;
      }
    }
    if (!stepped) {
      // Damping maxed out without improvement: local minimum.
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace spotfi
