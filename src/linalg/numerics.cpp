#include "linalg/numerics.hpp"

#include <sstream>

namespace spotfi {
namespace {

thread_local NumericsScope* g_active_scope = nullptr;

struct NamedCounter {
  const char* name;
  std::size_t NumericsCounters::*field;
};

constexpr NamedCounter kCounters[] = {
    {"cholesky-regularized", &NumericsCounters::cholesky_regularized},
    {"lstsq-regularized", &NumericsCounters::lstsq_regularized},
    {"lstsq-pseudoinverse", &NumericsCounters::lstsq_pseudoinverse},
    {"solve-regularized", &NumericsCounters::solve_regularized},
    {"eigh-nonconverged", &NumericsCounters::eigh_nonconverged},
    {"eig-general-nonconverged", &NumericsCounters::eig_general_nonconverged},
    {"levmar-nonfinite-trials", &NumericsCounters::levmar_nonfinite_trials},
    {"levmar-poisoned", &NumericsCounters::levmar_poisoned},
    {"levmar-solve-failed", &NumericsCounters::levmar_solve_failed},
    {"starts-rejected", &NumericsCounters::localizer_starts_rejected},
    {"gmm-variance-floored", &NumericsCounters::gmm_variance_floored},
    {"gmm-nonfinite", &NumericsCounters::gmm_nonfinite},
    {"gdop-degenerate", &NumericsCounters::gdop_degenerate},
};

}  // namespace

const NumericsPolicy& NumericsPolicy::defaults() {
  static const NumericsPolicy policy{};
  return policy;
}

std::size_t NumericsCounters::total() const {
  std::size_t sum = 0;
  for (const auto& c : kCounters) sum += this->*(c.field);
  return sum;
}

void NumericsCounters::merge(const NumericsCounters& other) {
  for (const auto& c : kCounters) this->*(c.field) += other.*(c.field);
}

std::string NumericsCounters::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& c : kCounters) {
    const std::size_t n = this->*(c.field);
    if (n == 0) continue;
    if (!first) os << ", ";
    os << c.name << "=" << n;
    first = false;
  }
  return os.str();
}

NumericsScope::NumericsScope() : parent_(g_active_scope) {
  g_active_scope = this;
}

NumericsScope::NumericsScope(DetachedScopeTag)
    : parent_(g_active_scope), detached_(true) {
  g_active_scope = this;
}

NumericsScope::~NumericsScope() {
  g_active_scope = parent_;
  if (parent_ != nullptr && !detached_) parent_->counters_.merge(counters_);
}

void count_numerics(std::size_t NumericsCounters::*field, std::size_t n) {
  if (g_active_scope != nullptr) g_active_scope->counters_.*field += n;
}

void count_numerics(const NumericsCounters& counters) {
  if (g_active_scope != nullptr) g_active_scope->counters_.merge(counters);
}

bool numerics_scope_active() { return g_active_scope != nullptr; }

}  // namespace spotfi
