#include "linalg/matrix.hpp"

#include <cmath>

namespace spotfi {

CVector matvec(const CMatrix& a, std::span<const cplx> x) {
  CVector y(a.rows());
  matvec_into(a.view(), x, y);
  return y;
}

RVector matvec(const RMatrix& a, std::span<const double> x) {
  RVector y(a.rows());
  matvec_into(a.view(), x, y);
  return y;
}

void matvec_into(ConstCMatrixView a, std::span<const cplx> x,
                 std::span<cplx> y) {
  SPOTFI_EXPECTS(a.cols() == x.size(), "matvec shape mismatch");
  SPOTFI_EXPECTS(a.rows() == y.size(), "matvec output size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    cplx acc{};
    const auto row = a.row(i);
    for (std::size_t j = 0; j < x.size(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void matvec_into(ConstRMatrixView a, std::span<const double> x,
                 std::span<double> y) {
  SPOTFI_EXPECTS(a.cols() == x.size(), "matvec shape mismatch");
  SPOTFI_EXPECTS(a.rows() == y.size(), "matvec output size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < x.size(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

cplx dot(std::span<const cplx> x, std::span<const cplx> y) {
  SPOTFI_EXPECTS(x.size() == y.size(), "dot size mismatch");
  cplx acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

double dot(std::span<const double> x, std::span<const double> y) {
  SPOTFI_EXPECTS(x.size() == y.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const cplx> x) {
  double s = 0.0;
  for (const auto& v : x) s += std::norm(v);
  return std::sqrt(s);
}

double norm2(std::span<const double> x) {
  double s = 0.0;
  for (const auto& v : x) s += v * v;
  return std::sqrt(s);
}

}  // namespace spotfi
