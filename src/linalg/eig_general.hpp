// General (non-Hermitian) complex eigendecomposition for small dense
// matrices, plus a complex LU solver.
//
// The shift-invariance (ESPRIT/JADE) joint estimator diagonalizes small
// non-Hermitian matrices of size L x L (L = number of paths, <= ~10):
// eigenvalues carry Omega(tau_k)/Phi(theta_k) and the eigenvector basis
// pairs the two parameter sets. Implementation: Householder reduction to
// upper Hessenberg, shifted complex QR iteration for eigenvalues, inverse
// iteration for eigenvectors.
//
// Failure semantics: eig_general never throws for convergence. Near-
// defective shift-invariance operators (coherent paths) can stall the QR
// iteration; the result then carries `converged = false` plus a residual
// diagnostic, and the stall is counted in
// NumericsCounters::eig_general_nonconverged.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/numerics.hpp"

namespace spotfi {

/// Solves A x = b for a general square complex matrix via LU with partial
/// pivoting. Throws NumericalError if A is singular to working precision.
[[nodiscard]] CVector solve_complex(const CMatrix& a, std::span<const cplx> b);

/// Strict workspace variant: the LU working copy lives on `ws`, the
/// solution is written into `x` (size = A's dimension, must not alias
/// `b`). The value flavour wraps this one; same arithmetic, same throws.
/// On a singular-matrix throw `x` holds partially eliminated scratch.
void solve_complex_into(ConstCMatrixView a, std::span<const cplx> b,
                        std::span<cplx> x, Workspace& ws);

/// Policy variant: on a singular pivot, retries with an escalating
/// diagonal jitter (relative Tikhonov ridge) per the policy's ladder,
/// counting each fallback in NumericsCounters::solve_regularized. Throws
/// only for non-finite inputs or an exhausted ladder.
[[nodiscard]] CVector solve_complex(const CMatrix& a, std::span<const cplx> b,
                                    const NumericsPolicy& policy);

/// Workspace variant of the policy solver; the damped retry copies live
/// on `ws`. Same ladder, same counters, same throws as the value flavour.
void solve_complex_into(ConstCMatrixView a, std::span<const cplx> b,
                        std::span<cplx> x, const NumericsPolicy& policy,
                        Workspace& ws);

struct GeneralEig {
  /// Eigenvalues in the order discovered by the QR iteration.
  CVector eigenvalues;
  /// Unit-norm right eigenvectors; column k pairs with eigenvalues[k].
  CMatrix eigenvectors;
  /// False when the QR iteration stalled before deflating every
  /// eigenvalue; eigenvalues/eigenvectors are then approximations.
  bool converged = true;
  /// max_k ||A v_k - lambda_k v_k||_2 / scale — how well each
  /// (eigenvalue, eigenvector) pair actually satisfies the eigen
  /// equation. Near-defective inputs show large residuals even when the
  /// iteration "converged".
  double max_residual = 0.0;
};

/// Eigendecomposition of a general complex matrix. Intended for the small
/// (L <= ~16) matrices ESPRIT produces; cost is O(n^3) per QR sweep.
/// Never throws for convergence — inspect `converged` / `max_residual`.
[[nodiscard]] GeneralEig eig_general(const CMatrix& a);

/// Arena variant of GeneralEig: the eigenvalue span and eigenvector view
/// are checked out of the Workspace passed to eig_general() and stay
/// valid until the caller's enclosing frame closes (or the arena resets).
struct GeneralEigRef {
  std::span<cplx> eigenvalues;
  CMatrixView eigenvectors;
  bool converged = true;
  double max_residual = 0.0;
};

/// Zero-allocation eig_general: results are checked out of `ws`, all
/// scratch (Hessenberg copy, Givens rotations, inverse-iteration solves)
/// is taken and released inside an internal frame. Same arithmetic as
/// the value overload — identical bits; the value flavour wraps this one.
[[nodiscard]] GeneralEigRef eig_general(ConstCMatrixView a, Workspace& ws);

}  // namespace spotfi
