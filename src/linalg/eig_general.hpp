// General (non-Hermitian) complex eigendecomposition for small dense
// matrices, plus a complex LU solver.
//
// The shift-invariance (ESPRIT/JADE) joint estimator diagonalizes small
// non-Hermitian matrices of size L x L (L = number of paths, <= ~10):
// eigenvalues carry Omega(tau_k)/Phi(theta_k) and the eigenvector basis
// pairs the two parameter sets. Implementation: Householder reduction to
// upper Hessenberg, shifted complex QR iteration for eigenvalues, inverse
// iteration for eigenvectors.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// Solves A x = b for a general square complex matrix via LU with partial
/// pivoting. Throws NumericalError if A is singular to working precision.
[[nodiscard]] CVector solve_complex(const CMatrix& a, std::span<const cplx> b);

struct GeneralEig {
  /// Eigenvalues in the order discovered by the QR iteration.
  CVector eigenvalues;
  /// Unit-norm right eigenvectors; column k pairs with eigenvalues[k].
  CMatrix eigenvectors;
};

/// Eigendecomposition of a general complex matrix. Intended for the small
/// (L <= ~16) matrices ESPRIT produces; cost is O(n^3) per QR sweep.
/// Throws NumericalError if the QR iteration fails to converge.
[[nodiscard]] GeneralEig eig_general(const CMatrix& a);

}  // namespace spotfi
