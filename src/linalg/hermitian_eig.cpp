#include "linalg/hermitian_eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/numerics.hpp"

namespace spotfi {
namespace {

/// Sum of squared magnitudes of the strict upper triangle.
double off_diagonal_mass(ConstCMatrixView a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) s += std::norm(a(i, j));
  return s;
}

double max_abs(ConstCMatrixView a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j)));
  return m;
}

}  // namespace

HermitianEigRef eigh(ConstCMatrixView input, Workspace& ws) {
  SPOTFI_EXPECTS(input.rows() == input.cols(),
                 "eigh requires a square matrix");
  const std::size_t n = input.rows();

  // Results first: they must outlive the scratch frame below.
  HermitianEigRef result;
  result.eigenvalues = ws.take<double>(n);
  result.eigenvectors = workspace_matrix<cplx>(ws, n, n);
  if (n == 0) return result;

  // A poisoned input would only churn NaN through all 64 sweeps; report
  // it as a non-convergence immediately.
  for (std::size_t i = 0; i < n; ++i) {
    for (const cplx& v : input.row(i)) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        result.converged = false;
        result.rcond = 0.0;
        result.off_diagonal_residual =
            std::numeric_limits<double>::infinity();
        std::fill(result.eigenvalues.begin(), result.eigenvalues.end(),
                  std::numeric_limits<double>::quiet_NaN());
        for (std::size_t k = 0; k < n; ++k) result.eigenvectors(k, k) = 1.0;
        count_numerics(&NumericsCounters::eigh_nonconverged);
        return result;
      }
    }
  }

  Workspace::Frame scratch(ws);

  // Symmetrize: a <- (a + a^H)/2. Also measures how non-Hermitian the
  // input was so grossly wrong inputs fail fast.
  CMatrixView a = workspace_clone<cplx>(ws, input);
  double asym = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const cplx upper = a(i, j);
      const cplx lower = std::conj(a(j, i));
      asym = std::max(asym, std::abs(upper - lower));
      const cplx avg = 0.5 * (upper + lower);
      a(i, j) = avg;
      a(j, i) = std::conj(avg);
    }
    a(i, i) = cplx(a(i, i).real(), 0.0);
  }
  const double scale = std::max(max_abs(a), 1e-300);
  SPOTFI_EXPECTS(asym <= 1e-8 * std::max(scale, 1.0),
                 "eigh input is not Hermitian");

  CMatrixView v = workspace_matrix<cplx>(ws, n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;
  const double tol = 1e-26 * scale * scale * static_cast<double>(n * n);
  constexpr int kMaxSweeps = 64;

  int sweep = 0;
  for (; sweep < kMaxSweeps; ++sweep) {
    if (off_diagonal_mass(a) <= tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx apq = a(p, q);
        const double abs_apq = std::abs(apq);
        if (abs_apq <= 1e-300) {
          a(p, q) = a(q, p) = cplx{};
          continue;
        }
        // Phase rotation to make the pivot real: scale column q (and row q)
        // by conj(phase) so a(p,q) becomes |a(p,q)|.
        const cplx phase = apq / abs_apq;
        const cplx cphase = std::conj(phase);
        // D^H A D with D = diag(..., cphase at q, ...): scales column q by
        // cphase and row q by phase; the diagonal a(q,q) is unchanged.
        for (std::size_t k = 0; k < n; ++k) {
          if (k == q) continue;
          a(k, q) *= cphase;
          a(q, k) = std::conj(a(k, q));
        }
        for (std::size_t k = 0; k < n; ++k) v(k, q) *= cphase;

        // Real Jacobi rotation annihilating the (now real) pivot.
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const double b = a(p, q).real();  // == |apq|
        const double theta = (aqq - app) / (2.0 * b);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const cplx akp = a(k, p);
          const cplx akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
          a(p, k) = std::conj(a(k, p));
          a(q, k) = std::conj(a(k, q));
        }
        a(p, p) = cplx(app - t * b, 0.0);
        a(q, q) = cplx(aqq + t * b, 0.0);
        a(p, q) = a(q, p) = cplx{};

        for (std::size_t k = 0; k < n; ++k) {
          const cplx vkp = v(k, p);
          const cplx vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  result.sweeps = sweep;
  const double final_mass = off_diagonal_mass(a);
  result.off_diagonal_residual = final_mass / (scale * scale);
  if (sweep == kMaxSweeps && final_mass > tol) {
    // Surface the partial decomposition with diagnostics instead of a
    // bare convergence throw; callers (noise_subspace, ESPRIT) decide.
    result.converged = false;
    count_numerics(&NumericsCounters::eigh_nonconverged);
  }

  // Sort ascending, permuting eigenvector columns to match.
  const std::span<std::size_t> order = ws.take<std::size_t>(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i).real() < a(j, j).real();
  });

  for (std::size_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = a(order[k], order[k]).real();
    for (std::size_t i = 0; i < n; ++i)
      result.eigenvectors(i, k) = v(i, order[k]);
  }
  double abs_min = std::abs(result.eigenvalues.front());
  double abs_max = abs_min;
  for (const double ev : result.eigenvalues) {
    abs_min = std::min(abs_min, std::abs(ev));
    abs_max = std::max(abs_max, std::abs(ev));
  }
  result.rcond = abs_max > 0.0 ? abs_min / abs_max : 0.0;
  return result;
}

HermitianEig eigh(const CMatrix& input) {
  Workspace& ws = thread_workspace();
  Workspace::Frame frame(ws);
  const HermitianEigRef r = eigh(input.view(), ws);

  HermitianEig out;
  out.converged = r.converged;
  out.sweeps = r.sweeps;
  out.off_diagonal_residual = r.off_diagonal_residual;
  out.rcond = r.rcond;
  out.eigenvalues.assign(r.eigenvalues.begin(), r.eigenvalues.end());
  const std::size_t n = input.rows();
  out.eigenvectors = CMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx* src = r.eigenvectors.row_ptr(i);
    cplx* dst = out.eigenvectors.row(i).data();
    std::copy(src, src + n, dst);
  }
  return out;
}

SymmetricEig eigh(const RMatrix& a) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = cplx(a(i, j), 0.0);
  HermitianEig he = eigh(c);

  SymmetricEig result;
  result.eigenvalues = std::move(he.eigenvalues);
  result.converged = he.converged;
  result.sweeps = he.sweeps;
  result.off_diagonal_residual = he.off_diagonal_residual;
  result.rcond = he.rcond;
  result.eigenvectors = RMatrix(a.rows(), a.cols());
  // Eigenvectors of a real symmetric matrix are real up to a unit complex
  // phase; rotate each column so its largest entry is real before dropping
  // the imaginary part.
  for (std::size_t j = 0; j < a.cols(); ++j) {
    std::size_t imax = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double m = std::abs(he.eigenvectors(i, j));
      if (m > best) {
        best = m;
        imax = i;
      }
    }
    const cplx pivot = he.eigenvectors(imax, j);
    const cplx rot =
        std::abs(pivot) > 0.0 ? std::conj(pivot) / std::abs(pivot) : cplx{1.0};
    for (std::size_t i = 0; i < a.rows(); ++i)
      result.eigenvectors(i, j) = (he.eigenvectors(i, j) * rot).real();
  }
  return result;
}

}  // namespace spotfi
