// Levenberg-Marquardt nonlinear least squares.
//
// SpotFi's localization step (Algorithm 2, line 12) minimizes the
// non-convex objective of Eq. 9 over the target location and the path-loss
// model parameters. The paper uses "sequential convex optimization"; our
// solver realizes the same idea — repeatedly linearize the residuals and
// solve a damped convex quadratic — which is exactly Levenberg-Marquardt.
// Multi-start (handled by the caller) deals with local minima.
//
// Failure semantics: the solver never throws for numerical trouble and
// never returns non-finite parameters. Non-finite trial points are
// rejected like any uphill step (damping increases); a non-finite cost at
// the *current* point — poisoned residuals the solver cannot step away
// from — ends the run with `diverged = true` and a reason string. Callers
// doing multi-start must treat `diverged` starts as unusable regardless of
// their recorded cost.
#pragma once

#include <functional>
#include <string>

#include "linalg/matrix.hpp"

namespace spotfi {

/// Residual function: given parameters x (size n), returns residuals r
/// (size m >= n). The objective minimized is 0.5 * ||r(x)||^2.
using ResidualFn = std::function<RVector(std::span<const double>)>;

/// Optional analytic Jacobian: J(i,j) = d r_i / d x_j. When absent, a
/// central-difference Jacobian is used.
using JacobianFn = std::function<RMatrix(std::span<const double>)>;

struct LevMarOptions {
  int max_iterations = 100;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  /// Stop when the step norm falls below this.
  double step_tolerance = 1e-10;
  /// Stop when the cost improvement ratio falls below this.
  double cost_tolerance = 1e-12;
  /// Relative step size for the finite-difference Jacobian. The actual
  /// step for parameter j is fd_step * max(|x[j]|, scale_j) where scale_j
  /// comes from `fd_scales` (1.0 when unset).
  double fd_step = 1e-6;
  /// Per-parameter characteristic scales for the finite-difference step.
  /// Empty means every parameter uses scale 1.0. Parameters whose natural
  /// magnitude is far from 1 (e.g. ToF values around 1e-8 s) need their
  /// scale here or the FD step swamps (or never perturbs) the parameter.
  RVector fd_scales;
  /// Trust guard: reject any trial step whose norm exceeds this factor
  /// times the current parameter scale (prevents a near-singular normal
  /// system from catapulting the iterate into a non-finite region).
  double max_step_factor = 1e4;
  /// Trust guard: once damping has been driven above this the system is
  /// hopeless; stop instead of spinning the attempt loop.
  double max_lambda = 1e12;
};

struct LevMarResult {
  RVector x;
  double cost = 0.0;  ///< 0.5 * ||r||^2 at the solution.
  int iterations = 0;
  bool converged = false;
  /// True when the run was abandoned because the current point (not just a
  /// trial) had non-finite residuals/cost, or damping blew past max_lambda
  /// with non-finite trials in flight. `x`/`cost` are then the last finite
  /// state when one exists, but must not be treated as a solution.
  bool diverged = false;
  /// Human-readable cause when diverged (empty otherwise).
  std::string reason;
  /// Trial evaluations rejected because they produced non-finite
  /// residuals. Nonzero with diverged == false means the solver skirted a
  /// non-finite region and still finished on finite ground.
  std::size_t nonfinite_trials = 0;
};

/// Minimizes 0.5*||r(x)||^2 starting from x0.
[[nodiscard]] LevMarResult levenberg_marquardt(
    const ResidualFn& residuals, std::span<const double> x0,
    const LevMarOptions& options = {}, const JacobianFn& jacobian = {});

/// Workspace variant: the Jacobian, normal-equation, and trial buffers
/// live on `ws` (hoisted once per call, reused across iterations); only
/// the result struct and the caller's residual closures allocate. The
/// default overload wraps this one; results are bit-identical.
[[nodiscard]] LevMarResult levenberg_marquardt(
    const ResidualFn& residuals, std::span<const double> x0,
    const LevMarOptions& options, const JacobianFn& jacobian, Workspace& ws);

}  // namespace spotfi
