// Levenberg-Marquardt nonlinear least squares.
//
// SpotFi's localization step (Algorithm 2, line 12) minimizes the
// non-convex objective of Eq. 9 over the target location and the path-loss
// model parameters. The paper uses "sequential convex optimization"; our
// solver realizes the same idea — repeatedly linearize the residuals and
// solve a damped convex quadratic — which is exactly Levenberg-Marquardt.
// Multi-start (handled by the caller) deals with local minima.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace spotfi {

/// Residual function: given parameters x (size n), returns residuals r
/// (size m >= n). The objective minimized is 0.5 * ||r(x)||^2.
using ResidualFn = std::function<RVector(std::span<const double>)>;

/// Optional analytic Jacobian: J(i,j) = d r_i / d x_j. When absent, a
/// central-difference Jacobian is used.
using JacobianFn = std::function<RMatrix(std::span<const double>)>;

struct LevMarOptions {
  int max_iterations = 100;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  /// Stop when the step norm falls below this.
  double step_tolerance = 1e-10;
  /// Stop when the cost improvement ratio falls below this.
  double cost_tolerance = 1e-12;
  /// Step size for the finite-difference Jacobian.
  double fd_step = 1e-6;
};

struct LevMarResult {
  RVector x;
  double cost = 0.0;  ///< 0.5 * ||r||^2 at the solution.
  int iterations = 0;
  bool converged = false;
};

/// Minimizes 0.5*||r(x)||^2 starting from x0.
[[nodiscard]] LevMarResult levenberg_marquardt(
    const ResidualFn& residuals, std::span<const double> x0,
    const LevMarOptions& options = {}, const JacobianFn& jacobian = {});

}  // namespace spotfi
