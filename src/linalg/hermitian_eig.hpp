// Hermitian eigendecomposition — the core primitive behind MUSIC.
//
// MUSIC eigendecomposes the (Hermitian, positive semi-definite) covariance
// X X^H of the smoothed CSI matrix and splits the eigenvectors into signal
// and noise subspaces. The matrices are small (30x30 for the Intel 5300
// configuration), so a cyclic complex Jacobi iteration is the right choice:
// unconditionally stable, delivers orthonormal eigenvectors to machine
// precision, and costs microseconds at this size.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// Result of eigh(): eigenvalues ascending, eigenvectors[:, k] is the unit
/// eigenvector for eigenvalues[k]. For PSD inputs tiny negative values can
/// appear from rounding; callers thresholding "zero" eigenvalues should use
/// a relative tolerance.
struct HermitianEig {
  RVector eigenvalues;
  CMatrix eigenvectors;
};

/// Eigendecomposition of a Hermitian matrix via cyclic complex Jacobi.
///
/// Preconditions: `a` is square and Hermitian to within roundoff (the
/// routine symmetrizes internally and checks the asymmetry is small).
/// Throws NumericalError if the sweep limit is reached before the
/// off-diagonal mass drops below tolerance (does not happen for genuinely
/// Hermitian input).
[[nodiscard]] HermitianEig eigh(const CMatrix& a);

/// Real symmetric convenience wrapper (used by tests and PCA-style code).
struct SymmetricEig {
  RVector eigenvalues;
  RMatrix eigenvectors;
};
[[nodiscard]] SymmetricEig eigh(const RMatrix& a);

}  // namespace spotfi
