// Hermitian eigendecomposition — the core primitive behind MUSIC.
//
// MUSIC eigendecomposes the (Hermitian, positive semi-definite) covariance
// X X^H of the smoothed CSI matrix and splits the eigenvectors into signal
// and noise subspaces. The matrices are small (30x30 for the Intel 5300
// configuration), so a cyclic complex Jacobi iteration is the right choice:
// unconditionally stable, delivers orthonormal eigenvectors to machine
// precision, and costs microseconds at this size.
//
// Failure semantics: eigh never throws for convergence. Coherent multipath
// routinely drives the covariance to (near) rank deficiency, so instead of
// a bare NumericalError the result carries condition and residual
// diagnostics (`converged`, `off_diagonal_residual`, `rcond`, `sweeps`) and
// callers decide what a partial decomposition is worth. Non-convergence is
// counted in NumericsCounters::eigh_nonconverged when a NumericsScope is
// active.
#pragma once

#include "linalg/matrix.hpp"

namespace spotfi {

/// Result of eigh(): eigenvalues ascending, eigenvectors[:, k] is the unit
/// eigenvector for eigenvalues[k]. For PSD inputs tiny negative values can
/// appear from rounding; callers thresholding "zero" eigenvalues should use
/// a relative tolerance.
struct HermitianEig {
  RVector eigenvalues;
  CMatrix eigenvectors;
  /// False when the sweep limit was reached before the off-diagonal mass
  /// dropped below tolerance; the decomposition is then approximate (does
  /// not happen for genuinely Hermitian input).
  bool converged = true;
  /// Jacobi sweeps consumed.
  int sweeps = 0;
  /// Final off-diagonal Frobenius mass relative to the squared matrix
  /// scale — a residual measure of how far from diagonal the iteration
  /// stopped (0 for a clean decomposition).
  double off_diagonal_residual = 0.0;
  /// Reciprocal condition number min|lambda| / max|lambda| (1.0 for the
  /// empty/scalar case, 0.0 for an exactly singular input). Rank-deficient
  /// covariances are *expected* in MUSIC — this is a diagnostic, not an
  /// error signal.
  double rcond = 1.0;
};

/// Eigendecomposition of a Hermitian matrix via cyclic complex Jacobi.
///
/// Preconditions: `a` is square and Hermitian to within roundoff (the
/// routine symmetrizes internally and checks the asymmetry is small).
/// Never throws for convergence — inspect `converged` and the residual
/// diagnostics instead.
[[nodiscard]] HermitianEig eigh(const CMatrix& a);

/// Arena variant of HermitianEig: the eigenvalue span and eigenvector
/// view live in the Workspace passed to eigh() and stay valid until the
/// caller's enclosing frame closes (or the arena resets).
struct HermitianEigRef {
  std::span<double> eigenvalues;
  CMatrixView eigenvectors;
  bool converged = true;
  int sweeps = 0;
  double off_diagonal_residual = 0.0;
  double rcond = 1.0;
};

/// Zero-allocation eigh: results are checked out of `ws` (then scratch
/// is taken and released inside an internal frame). Same arithmetic as
/// the value overload — identical bits in eigenvalues and eigenvectors.
[[nodiscard]] HermitianEigRef eigh(ConstCMatrixView a, Workspace& ws);

/// Real symmetric convenience wrapper (used by tests and PCA-style code).
struct SymmetricEig {
  RVector eigenvalues;
  RMatrix eigenvectors;
  bool converged = true;
  int sweeps = 0;
  double off_diagonal_residual = 0.0;
  double rcond = 1.0;
};
[[nodiscard]] SymmetricEig eigh(const RMatrix& a);

}  // namespace spotfi
