// Dense row-major matrix/vector types used throughout the library.
//
// Two instantiations matter: Matrix<double> (RMatrix) and
// Matrix<std::complex<double>> (CMatrix). The MUSIC pipeline works on
// 30x30-ish matrices, so a straightforward dense implementation with
// cache-friendly row-major storage is the right tool; no external linear
// algebra dependency is used anywhere in the repository.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace spotfi {

using cplx = std::complex<double>;

namespace detail {
template <typename T>
struct is_complex : std::false_type {};
template <typename U>
struct is_complex<std::complex<U>> : std::true_type {};
}  // namespace detail

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  Matrix(std::size_t rows, std::size_t cols, const T& fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major initializer: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      SPOTFI_EXPECTS(r.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<T> row(std::size_t i) {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] std::vector<T> col(std::size_t j) const {
    SPOTFI_ASSERT(j < cols_, "column index out of range");
    std::vector<T> c(rows_);
    for (std::size_t i = 0; i < rows_; ++i) c[i] = (*this)(i, j);
    return c;
  }

  void set_col(std::size_t j, std::span<const T> values) {
    SPOTFI_EXPECTS(j < cols_ && values.size() == rows_,
                   "set_col size mismatch");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
  }

  [[nodiscard]] std::span<T> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> flat() const {
    return {data_.data(), data_.size()};
  }

  Matrix& operator+=(const Matrix& rhs) {
    SPOTFI_EXPECTS(same_shape(rhs), "shape mismatch in +=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    SPOTFI_EXPECTS(same_shape(rhs), "shape mismatch in -=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
    return *this;
  }
  Matrix& operator*=(const T& s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  [[nodiscard]] friend Matrix operator+(Matrix a, const Matrix& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Matrix operator-(Matrix a, const Matrix& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(Matrix a, const T& s) {
    a *= s;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(const T& s, Matrix a) {
    a *= s;
    return a;
  }

  /// Matrix product. Row-major ikj ordering (B rows and the C row stream
  /// through cache), k unrolled two-wide so each pass over the C row
  /// does two multiply-adds per load/store — raw pointers throughout, no
  /// bounds-checked element accessors on the hot path.
  [[nodiscard]] friend Matrix operator*(const Matrix& a, const Matrix& b) {
    SPOTFI_EXPECTS(a.cols_ == b.rows_, "shape mismatch in matrix product");
    Matrix c(a.rows_, b.cols_);
    const std::size_t kk = a.cols_;
    const std::size_t n = b.cols_;
    for (std::size_t i = 0; i < a.rows_; ++i) {
      const T* arow = &a.data_[i * kk];
      T* crow = &c.data_[i * n];
      std::size_t k = 0;
      for (; k + 1 < kk; k += 2) {
        const T a0 = arow[k];
        const T a1 = arow[k + 1];
        const T* b0 = &b.data_[k * n];
        const T* b1 = b0 + n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j];
        }
      }
      if (k < kk) {
        const T a0 = arow[k];
        const T* b0 = &b.data_[k * n];
        for (std::size_t j = 0; j < n; ++j) crow[j] += a0 * b0[j];
      }
    }
    return c;
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Conjugate transpose (equals transpose for real T).
  [[nodiscard]] Matrix adjoint() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        if constexpr (detail::is_complex<T>::value) {
          t(j, i) = std::conj((*this)(i, j));
        } else {
          t(j, i) = (*this)(i, j);
        }
      }
    }
    return t;
  }

  /// A * A^H — the (unnormalized) covariance MUSIC eigendecomposes.
  /// Lower triangle only, mirrored; the row-dot runs two independent
  /// accumulators so the (serial) multiply-add dependency chain halves.
  [[nodiscard]] Matrix gram() const {
    Matrix g(rows_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      const T* ri = &data_[i * cols_];
      T* grow = &g.data_[i * rows_];
      for (std::size_t j = 0; j <= i; ++j) {
        const T* rj = &data_[j * cols_];
        T acc0{};
        T acc1{};
        std::size_t k = 0;
        for (; k + 1 < cols_; k += 2) {
          if constexpr (detail::is_complex<T>::value) {
            acc0 += ri[k] * std::conj(rj[k]);
            acc1 += ri[k + 1] * std::conj(rj[k + 1]);
          } else {
            acc0 += ri[k] * rj[k];
            acc1 += ri[k + 1] * rj[k + 1];
          }
        }
        if (k < cols_) {
          if constexpr (detail::is_complex<T>::value) {
            acc0 += ri[k] * std::conj(rj[k]);
          } else {
            acc0 += ri[k] * rj[k];
          }
        }
        const T acc = acc0 + acc1;
        grow[j] = acc;
        if constexpr (detail::is_complex<T>::value) {
          g.data_[j * rows_ + i] = std::conj(acc);
        } else {
          g.data_[j * rows_ + i] = acc;
        }
      }
    }
    return g;
  }

  [[nodiscard]] double frobenius_norm() const {
    double s = 0.0;
    for (const auto& v : data_) s += std::norm(v);
    return std::sqrt(s);
  }

  [[nodiscard]] double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  [[nodiscard]] bool same_shape(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RMatrix = Matrix<double>;
using CMatrix = Matrix<cplx>;
using RVector = std::vector<double>;
using CVector = std::vector<cplx>;

/// y = A x for a complex matrix and vector.
[[nodiscard]] CVector matvec(const CMatrix& a, std::span<const cplx> x);
[[nodiscard]] RVector matvec(const RMatrix& a, std::span<const double> x);

/// Hermitian inner product <x, y> = sum_i conj(x_i) y_i.
[[nodiscard]] cplx dot(std::span<const cplx> x, std::span<const cplx> y);
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

[[nodiscard]] double norm2(std::span<const cplx> x);
[[nodiscard]] double norm2(std::span<const double> x);

}  // namespace spotfi
