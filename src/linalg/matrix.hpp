// Dense row-major matrix/vector types used throughout the library.
//
// Two instantiations matter: Matrix<double> (RMatrix) and
// Matrix<std::complex<double>> (CMatrix). The MUSIC pipeline works on
// 30x30-ish matrices, so a straightforward dense implementation with
// cache-friendly row-major storage is the right tool; no external linear
// algebra dependency is used anywhere in the repository.
//
// Two calling conventions share one set of kernels:
//  * Owning Matrix<T> values — the ergonomic API for tests, examples,
//    and cold paths.
//  * Non-owning MatrixView<T>/ConstMatrixView<T> — stride-aware windows
//    over memory someone else owns (a Matrix, or a Workspace arena
//    checkout via workspace_matrix). The hot path threads views through
//    the pipeline so a steady-state packet allocates nothing.
// The value operators delegate to the view kernels (matmul_into,
// gram_into, ...), so both conventions execute the exact same arithmetic
// in the exact same order: results are byte-identical by construction.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/workspace.hpp"

namespace spotfi {

using cplx = std::complex<double>;

namespace detail {
template <typename T>
struct is_complex : std::false_type {};
template <typename U>
struct is_complex<std::complex<U>> : std::true_type {};
}  // namespace detail

template <typename T>
class Matrix;

/// Mutable non-owning window: `rows x cols` elements over row-major
/// storage with a row stride (stride == cols when contiguous). Cheap to
/// copy (pointer + three sizes); never owns or frees memory. The
/// underlying storage must outlive the view — arena-backed views die
/// with their Workspace::Frame.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::size_t rows, std::size_t cols, std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    SPOTFI_ASSERT(stride >= cols, "row stride below row width");
  }
  MatrixView(T* data, std::size_t rows, std::size_t cols)
      : MatrixView(data, rows, cols, cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] T* data() const { return data_; }

  T& operator()(std::size_t i, std::size_t j) const {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * stride_ + j];
  }

  [[nodiscard]] T* row_ptr(std::size_t i) const {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return data_ + i * stride_;
  }
  [[nodiscard]] std::span<T> row(std::size_t i) const {
    return {row_ptr(i), cols_};
  }

  /// A rows x cols sub-window anchored at (r0, c0); shares the stride.
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t rows, std::size_t cols) const {
    SPOTFI_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                  "block out of range");
    return {data_ + r0 * stride_ + c0, rows, cols, stride_};
  }

  void fill(const T& v) const {
    for (std::size_t i = 0; i < rows_; ++i) {
      T* r = row_ptr(i);
      for (std::size_t j = 0; j < cols_; ++j) r[j] = v;
    }
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Read-only counterpart of MatrixView. Implicitly constructible from a
/// MatrixView or a (const) Matrix, so kernels written against const
/// views accept every storage flavor.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, std::size_t rows, std::size_t cols,
                  std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    SPOTFI_ASSERT(stride >= cols, "row stride below row width");
  }
  ConstMatrixView(const T* data, std::size_t rows, std::size_t cols)
      : ConstMatrixView(data, rows, cols, cols) {}
  ConstMatrixView(MatrixView<T> m)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(m.data(), m.rows(), m.cols(), m.stride()) {}
  ConstMatrixView(const Matrix<T>& m);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] const T* data() const { return data_; }

  const T& operator()(std::size_t i, std::size_t j) const {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * stride_ + j];
  }

  [[nodiscard]] const T* row_ptr(std::size_t i) const {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return data_ + i * stride_;
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const {
    return {row_ptr(i), cols_};
  }

  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t rows,
                                      std::size_t cols) const {
    SPOTFI_ASSERT(r0 + rows <= rows_ && c0 + cols <= cols_,
                  "block out of range");
    return {data_ + r0 * stride_ + c0, rows, cols, stride_};
  }

 private:
  const T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// c += a * b. Row-major ikj ordering (B rows and the C row stream
/// through cache), k unrolled two-wide so each pass over the C row does
/// two multiply-adds per load/store — raw row pointers throughout, no
/// bounds-checked element accessors on the hot path. `c` must arrive
/// zero-initialized for a plain product (Matrix construction and
/// Workspace checkouts both guarantee that).
template <typename T>
void matmul_into(ConstMatrixView<T> a, ConstMatrixView<T> b,
                 MatrixView<T> c) {
  SPOTFI_EXPECTS(a.cols() == b.rows(), "shape mismatch in matrix product");
  SPOTFI_EXPECTS(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch in matrix product");
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T* arow = a.row_ptr(i);
    T* crow = c.row_ptr(i);
    std::size_t k = 0;
    for (; k + 1 < kk; k += 2) {
      const T a0 = arow[k];
      const T a1 = arow[k + 1];
      const T* b0 = b.row_ptr(k);
      const T* b1 = b.row_ptr(k + 1);
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j];
      }
    }
    if (k < kk) {
      const T a0 = arow[k];
      const T* b0 = b.row_ptr(k);
      for (std::size_t j = 0; j < n; ++j) crow[j] += a0 * b0[j];
    }
  }
}

/// g = a * a^H — the (unnormalized) covariance MUSIC eigendecomposes.
/// Lower triangle only, mirrored; the row-dot runs two independent
/// accumulators so the (serial) multiply-add dependency chain halves.
/// Overwrites g completely.
template <typename T>
void gram_into(ConstMatrixView<T> a, MatrixView<T> g) {
  SPOTFI_EXPECTS(g.rows() == a.rows() && g.cols() == a.rows(),
                 "output shape mismatch in gram");
  const std::size_t cols = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T* ri = a.row_ptr(i);
    T* grow = g.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const T* rj = a.row_ptr(j);
      T acc0{};
      T acc1{};
      std::size_t k = 0;
      for (; k + 1 < cols; k += 2) {
        if constexpr (detail::is_complex<T>::value) {
          acc0 += ri[k] * std::conj(rj[k]);
          acc1 += ri[k + 1] * std::conj(rj[k + 1]);
        } else {
          acc0 += ri[k] * rj[k];
          acc1 += ri[k + 1] * rj[k + 1];
        }
      }
      if (k < cols) {
        if constexpr (detail::is_complex<T>::value) {
          acc0 += ri[k] * std::conj(rj[k]);
        } else {
          acc0 += ri[k] * rj[k];
        }
      }
      const T acc = acc0 + acc1;
      grow[j] = acc;
      if constexpr (detail::is_complex<T>::value) {
        g(j, i) = std::conj(acc);
      } else {
        g(j, i) = acc;
      }
    }
  }
}

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  Matrix(std::size_t rows, std::size_t cols, const T& fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major initializer: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      SPOTFI_EXPECTS(r.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Non-owning windows over this matrix's storage. The matrix must
  /// outlive (and not reallocate under) the view.
  [[nodiscard]] MatrixView<T> view() {
    return {data_.data(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView<T> view() const {
    return {data_.data(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView<T> cview() const { return view(); }

  T& operator()(std::size_t i, std::size_t j) {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    SPOTFI_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<T> row(std::size_t i) {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const {
    SPOTFI_ASSERT(i < rows_, "row index out of range");
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] std::vector<T> col(std::size_t j) const {
    SPOTFI_ASSERT(j < cols_, "column index out of range");
    std::vector<T> c(rows_);
    for (std::size_t i = 0; i < rows_; ++i) c[i] = (*this)(i, j);
    return c;
  }

  void set_col(std::size_t j, std::span<const T> values) {
    SPOTFI_EXPECTS(j < cols_ && values.size() == rows_,
                   "set_col size mismatch");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
  }

  [[nodiscard]] std::span<T> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> flat() const {
    return {data_.data(), data_.size()};
  }

  Matrix& operator+=(const Matrix& rhs) {
    SPOTFI_EXPECTS(same_shape(rhs), "shape mismatch in +=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    SPOTFI_EXPECTS(same_shape(rhs), "shape mismatch in -=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
    return *this;
  }
  Matrix& operator*=(const T& s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  [[nodiscard]] friend Matrix operator+(Matrix a, const Matrix& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Matrix operator-(Matrix a, const Matrix& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(Matrix a, const T& s) {
    a *= s;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(const T& s, Matrix a) {
    a *= s;
    return a;
  }

  /// Matrix product; thin wrapper over the view kernel matmul_into.
  [[nodiscard]] friend Matrix operator*(const Matrix& a, const Matrix& b) {
    SPOTFI_EXPECTS(a.cols_ == b.rows_, "shape mismatch in matrix product");
    Matrix c(a.rows_, b.cols_);
    matmul_into<T>(a.view(), b.view(), c.view());
    return c;
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// Conjugate transpose (equals transpose for real T).
  [[nodiscard]] Matrix adjoint() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        if constexpr (detail::is_complex<T>::value) {
          t(j, i) = std::conj((*this)(i, j));
        } else {
          t(j, i) = (*this)(i, j);
        }
      }
    }
    return t;
  }

  /// A * A^H; thin wrapper over the view kernel gram_into.
  [[nodiscard]] Matrix gram() const {
    Matrix g(rows_, rows_);
    gram_into<T>(view(), g.view());
    return g;
  }

  [[nodiscard]] double frobenius_norm() const {
    double s = 0.0;
    for (const auto& v : data_) s += std::norm(v);
    return std::sqrt(s);
  }

  [[nodiscard]] double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  [[nodiscard]] bool same_shape(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

template <typename T>
ConstMatrixView<T>::ConstMatrixView(const Matrix<T>& m)
    : ConstMatrixView(m.view()) {}

using RMatrix = Matrix<double>;
using CMatrix = Matrix<cplx>;
using RVector = std::vector<double>;
using CVector = std::vector<cplx>;

using RMatrixView = MatrixView<double>;
using CMatrixView = MatrixView<cplx>;
using ConstRMatrixView = ConstMatrixView<double>;
using ConstCMatrixView = ConstMatrixView<cplx>;

/// Checks a zero-filled rows x cols view out of a workspace arena. The
/// view lives until the enclosing Workspace::Frame closes.
template <typename T>
[[nodiscard]] MatrixView<T> workspace_matrix(Workspace& ws, std::size_t rows,
                                             std::size_t cols) {
  return {ws.take<T>(rows * cols).data(), rows, cols, cols};
}

/// Copies src into an arena checkout (contiguous), e.g. to mutate a
/// caller's matrix without touching it or the heap.
template <typename T>
[[nodiscard]] MatrixView<T> workspace_clone(Workspace& ws,
                                            ConstMatrixView<T> src) {
  MatrixView<T> dst = workspace_matrix<T>(ws, src.rows(), src.cols());
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const T* s = src.row_ptr(i);
    T* d = dst.row_ptr(i);
    for (std::size_t j = 0; j < src.cols(); ++j) d[j] = s[j];
  }
  return dst;
}

/// y = A x for a complex matrix and vector.
[[nodiscard]] CVector matvec(const CMatrix& a, std::span<const cplx> x);
[[nodiscard]] RVector matvec(const RMatrix& a, std::span<const double> x);

/// y = A x into a caller-provided output (no allocation).
void matvec_into(ConstCMatrixView a, std::span<const cplx> x,
                 std::span<cplx> y);
void matvec_into(ConstRMatrixView a, std::span<const double> x,
                 std::span<double> y);

/// Hermitian inner product <x, y> = sum_i conj(x_i) y_i.
[[nodiscard]] cplx dot(std::span<const cplx> x, std::span<const cplx> y);
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

[[nodiscard]] double norm2(std::span<const cplx> x);
[[nodiscard]] double norm2(std::span<const double> x);

}  // namespace spotfi
