#include "pipeline/stage.hpp"

#include "common/clock.hpp"

namespace spotfi {

const char* to_string(StagePhase phase) {
  switch (phase) {
    case StagePhase::kSanitize:
      return "sanitize";
    case StagePhase::kSubspace:
      return "subspace";
    case StagePhase::kSpectrum:
      return "spectrum";
    case StagePhase::kCluster:
      return "cluster";
    case StagePhase::kLocalize:
      return "localize";
  }
  return "unknown";
}

double stage_now_s() {
  // A dedicated monotonic clock, never the session Clock: test sessions
  // run on FakeClock whose auto-advance steps time on every read, so
  // telemetry reads through the session clock would change deadline
  // behavior. MonotonicClock is stateless and thread-safe.
  static const MonotonicClock clock;
  return clock.now_s();
}

}  // namespace spotfi
