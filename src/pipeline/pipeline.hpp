// Pull-based composition of the per-AP estimation stages.
//
// EstimationPipeline owns no stage and no data: it borrows a stage set
// (sanitize + packet-estimate + cluster + direct-path) and pulls
// packets from a PacketSource, fanning the per-packet stages out over
// an optional ThreadPool exactly like the former monolithic
// ApProcessor loop — slotted by index, folded in packet order, so the
// result is byte-identical at any thread count.
//
// The pull boundary is what enables cross-session batching: the
// SessionManager gathers co-scheduled tenants' groups and runs them
// back-to-back through pipelines sharing one pool and its lane arenas,
// so steering tables (interned in SteeringTableCache) and warmed
// arenas amortize across sessions instead of per-tenant copies.
#pragma once

#include <span>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "pipeline/stages.hpp"

namespace spotfi {

class ThreadPool;

/// Everything the per-AP stage pipeline produces; the server consumes
/// `observation`, the diagnostics and benches use the rest.
struct ApResult {
  /// Clusters sorted by likelihood (descending).
  std::vector<ClusterSummary> clusters;
  /// Pooled per-packet estimates (Fig. 5(c) scatter).
  std::vector<PathEstimate> pooled_estimates;
  /// The selected direct path as a fusion-ready observation.
  ApObservation observation;
};

/// Pull source of a packet group. next() hands out packets until
/// exhausted (then nullptr); remaining() sizes the fan-out up front.
class PacketSource {
 public:
  virtual ~PacketSource() = default;
  [[nodiscard]] virtual const CsiPacket* next() = 0;
  [[nodiscard]] virtual std::size_t remaining() const = 0;
};

/// The common case: a group already materialized as a span.
class SpanPacketSource final : public PacketSource {
 public:
  explicit SpanPacketSource(std::span<const CsiPacket> packets)
      : packets_(packets) {}

  [[nodiscard]] const CsiPacket* next() override {
    return i_ < packets_.size() ? &packets_[i_++] : nullptr;
  }
  [[nodiscard]] std::size_t remaining() const override {
    return packets_.size() - i_;
  }

 private:
  std::span<const CsiPacket> packets_;
  std::size_t i_ = 0;
};

/// Composes sanitize -> estimate (per packet, fanned out) -> pool ->
/// cluster -> direct-path for one packet group. Which PacketEstimateStage
/// is plugged in IS the fidelity decision — the fallback/shed ladder
/// substitutes stages here instead of branching in the orchestration.
class EstimationPipeline {
 public:
  /// Borrowed stages; every pointer must outlive the pipeline and be
  /// non-null.
  struct Stages {
    const SanitizeStage* sanitize = nullptr;
    const PacketEstimateStage* estimate = nullptr;
    const ClusterStage* cluster = nullptr;
    const DirectPathStage* direct_path = nullptr;
  };

  /// `pool` is the optional per-packet fan-out engine (nullptr =
  /// serial); nested dispatch from a pool worker runs inline.
  explicit EstimationPipeline(Stages stages, ThreadPool* pool = nullptr)
      : stages_(stages), pool_(pool) {}

  /// Runs one group pulled from `source`. The caller's ctx supplies the
  /// group Rng (consumed only by the cluster stage, exactly once), the
  /// optional telemetry sink, and the deadline; workspaces are managed
  /// internally (each packet runs on its executing thread's lane
  /// arena). `ws_peak_out` (when set) receives the largest single-frame
  /// footprint of the group. Requires a non-empty source; throws when
  /// estimation produces no path estimates.
  [[nodiscard]] ApResult run_group(StageContext& ctx, PacketSource& source,
                                   const ArrayPose& pose,
                                   std::size_t* ws_peak_out = nullptr) const;

  [[nodiscard]] const Stages& stages() const { return stages_; }
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

 private:
  Stages stages_;
  ThreadPool* pool_;
};

}  // namespace spotfi
