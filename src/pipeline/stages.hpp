// Concrete stages wrapping the SpotFi kernels (see stage.hpp for the
// contract). Each stage is a thin, immutable adapter over an existing
// kernel or estimator — the staged path and the monolithic value path
// run the same code and stay bit-identical.
#pragma once

#include <span>
#include <vector>

#include "csi/sanitize.hpp"
#include "localize/spotfi_localizer.hpp"
#include "music/esprit.hpp"
#include "music/estimators.hpp"
#include "pipeline/direct_path.hpp"
#include "pipeline/stage.hpp"

namespace spotfi {

/// Algorithm 1 phase sanitization. Pass-through when disabled (the
/// Fig. 5 ablation), still typed as a stage so the pipeline composition
/// is unconditional.
class SanitizeStage final : public Stage<ConstCMatrixView, ConstCMatrixView> {
 public:
  SanitizeStage(LinkConfig link, bool enabled)
      : link_(link), enabled_(enabled) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kSanitize;
  }
  [[nodiscard]] const char* name() const override { return "sanitize"; }

 private:
  [[nodiscard]] ConstCMatrixView do_run(StageContext& ctx,
                                        const ConstCMatrixView& in)
      const override {
    if (!enabled_) return in;
    return ConstCMatrixView(sanitize_tof(in, link_, *ctx.ws));
  }

  LinkConfig link_;
  bool enabled_;
};

/// Smoothed-CSI construction (Fig. 4). Metered under kSubspace — see
/// StagePhase for why smoothing has no bucket of its own.
class SmoothingStage final : public Stage<ConstCMatrixView, CMatrixView> {
 public:
  explicit SmoothingStage(const JointMusicEstimator& est) : est_(&est) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kSubspace;
  }
  [[nodiscard]] const char* name() const override { return "smoothing"; }

 private:
  [[nodiscard]] CMatrixView do_run(StageContext& ctx,
                                   const ConstCMatrixView& in) const override {
    return est_->stage_smooth(in, *ctx.ws);
  }

  const JointMusicEstimator* est_;
};

/// Noise-subspace split (Algorithm 2 line 5) — the eigendecomposition
/// ROADMAP item 1 will replace behind this boundary.
class SubspaceStage final : public Stage<ConstCMatrixView, SubspacesRef> {
 public:
  explicit SubspaceStage(const JointMusicEstimator& est) : est_(&est) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kSubspace;
  }
  [[nodiscard]] const char* name() const override { return "subspace"; }

 private:
  [[nodiscard]] SubspacesRef do_run(StageContext& ctx,
                                    const ConstCMatrixView& in) const override {
    return est_->stage_subspace(in, *ctx.ws);
  }

  const JointMusicEstimator* est_;
};

struct SpectrumIn {
  SubspacesRef sub;
  std::span<PathEstimate> out;
};

/// Pseudospectrum sweep + peak extraction — the grid sweep ROADMAP
/// item 2 will replace behind this boundary. Returns the number of
/// estimates written into in.out.
class SpectrumStage final : public Stage<SpectrumIn, std::size_t> {
 public:
  explicit SpectrumStage(const JointMusicEstimator& est) : est_(&est) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kSpectrum;
  }
  [[nodiscard]] const char* name() const override { return "spectrum"; }

 private:
  [[nodiscard]] std::size_t do_run(StageContext& ctx,
                                   const SpectrumIn& in) const override {
    return est_->stage_spectrum(in.sub, *ctx.ws, in.out);
  }

  const JointMusicEstimator* est_;
};

/// One packet's CSI -> path estimates. This is the substitution point
/// of the fallback/shed ladder: which concrete estimate stage the
/// pipeline runs IS the fidelity decision (MUSIC full grid, MUSIC
/// relaxed grid, ESPRIT), replacing the former ad-hoc branches.
class PacketEstimateStage {
 public:
  virtual ~PacketEstimateStage() = default;

  /// Writes at most max_paths() estimates into `out`, returns the
  /// count. `out` must hold at least max_paths() entries.
  [[nodiscard]] virtual std::size_t run_into(
      StageContext& ctx, ConstCMatrixView csi,
      std::span<PathEstimate> out) const = 0;
  [[nodiscard]] virtual std::size_t max_paths() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// MUSIC estimate composed from the smoothing/subspace/spectrum stages,
/// so per-phase telemetry attributes the eig-vs-sweep split. No frame
/// of its own: intermediates and outputs live in the caller's frame
/// (the per-packet frame the pipeline opens).
class MusicEstimateStage final : public PacketEstimateStage {
 public:
  explicit MusicEstimateStage(const JointMusicEstimator& est)
      : est_(&est), smooth_(est), subspace_(est), spectrum_(est) {}

  [[nodiscard]] std::size_t run_into(
      StageContext& ctx, ConstCMatrixView csi,
      std::span<PathEstimate> out) const override {
    SPOTFI_EXPECTS(out.size() >= est_->config().max_paths,
                   "estimate_into output span smaller than max_paths");
    const CMatrixView x = smooth_.run_into(ctx, csi);
    const SubspacesRef sub = subspace_.run_into(ctx, ConstCMatrixView(x));
    return spectrum_.run_into(ctx, SpectrumIn{sub, out});
  }

  [[nodiscard]] std::size_t max_paths() const override {
    return est_->config().max_paths;
  }
  [[nodiscard]] const char* name() const override { return "music"; }

 private:
  const JointMusicEstimator* est_;
  SmoothingStage smooth_;
  SubspaceStage subspace_;
  SpectrumStage spectrum_;
};

/// Search-free shift-invariance estimate (the ESPRIT fallback rung).
/// Metered whole under kSubspace: ESPRIT is eigendecomposition-
/// dominated and has no grid sweep.
class EspritEstimateStage final : public PacketEstimateStage {
 public:
  explicit EspritEstimateStage(const JointEspritEstimator& est)
      : est_(&est) {}

  [[nodiscard]] std::size_t run_into(
      StageContext& ctx, ConstCMatrixView csi,
      std::span<PathEstimate> out) const override {
    StageMeter meter(ctx, StagePhase::kSubspace);
    return est_->estimate_into(csi, *ctx.ws, out);
  }

  [[nodiscard]] std::size_t max_paths() const override {
    return est_->config().max_paths;
  }
  [[nodiscard]] const char* name() const override { return "esprit"; }

 private:
  const JointEspritEstimator* est_;
};

struct ClusterIn {
  std::span<const PathEstimate> pooled;
  std::size_t n_packets = 0;
};

/// Sec. 3.2 clustering of the pooled group estimates (Eq. 8 scoring).
/// Consumes ctx.rng — the only randomness in the per-AP pipeline.
class ClusterStage final
    : public Stage<ClusterIn, std::vector<ClusterSummary>> {
 public:
  ClusterStage(LinkConfig link, DirectPathConfig config)
      : link_(link), config_(config) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kCluster;
  }
  [[nodiscard]] const char* name() const override { return "cluster"; }

 private:
  [[nodiscard]] std::vector<ClusterSummary> do_run(
      StageContext& ctx, const ClusterIn& in) const override {
    return cluster_path_estimates(in.pooled, link_, in.n_packets, *ctx.rng,
                                  config_, *ctx.ws);
  }

  LinkConfig link_;
  DirectPathConfig config_;
};

struct DirectPathIn {
  std::span<const ClusterSummary> clusters;
  const ArrayPose* pose = nullptr;
  double rssi_dbm = 0.0;
};

/// Direct-path selection (Eq. 8 argmax) folded into the fusion-ready
/// ApObservation. Pure; metered under kCluster with the clustering it
/// concludes.
class DirectPathStage final : public Stage<DirectPathIn, ApObservation> {
 public:
  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kCluster;
  }
  [[nodiscard]] const char* name() const override { return "direct-path"; }

 private:
  [[nodiscard]] ApObservation do_run(StageContext& /*ctx*/,
                                     const DirectPathIn& in) const override {
    const std::size_t pick = select_spotfi(in.clusters);
    ApObservation obs;
    obs.pose = *in.pose;
    obs.direct_aoa_rad = in.clusters[pick].mean_aoa_rad;
    obs.likelihood = in.clusters[pick].likelihood;
    obs.rssi_dbm = in.rssi_dbm;
    return obs;
  }
};

/// Eq. 9 AP fusion. Wraps a borrowed localizer so the server's primary
/// solve and its leave-one-out re-solves run through one stage (and
/// one telemetry bucket).
class LocalizeStage final
    : public Stage<std::span<const ApObservation>, LocationEstimate> {
 public:
  explicit LocalizeStage(const SpotFiLocalizer& localizer)
      : localizer_(&localizer) {}

  [[nodiscard]] StagePhase phase() const override {
    return StagePhase::kLocalize;
  }
  [[nodiscard]] const char* name() const override { return "localize"; }

 private:
  [[nodiscard]] LocationEstimate do_run(
      StageContext& ctx,
      const std::span<const ApObservation>& in) const override {
    return localizer_->locate(in, *ctx.ws);
  }

  const SpotFiLocalizer* localizer_;
};

}  // namespace spotfi
