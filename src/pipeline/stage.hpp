// Typed estimation stages (ROADMAP: the pull-based stage pipeline).
//
// Every step of SpotFi's estimation — sanitize, smoothing, subspace,
// spectrum, cluster, direct-path, localize — is wrapped as a
// Stage<In, Out> running over the PR-5 Workspace arenas. The stage
// boundary is what lets the open ROADMAP items land independently: an
// iterative eigensolver replaces the subspace stage, a coarse-to-fine
// SIMD sweep replaces the spectrum stage, and the PR-1 fallback ladder
// plus the PR-6 shed levels become *stage substitutions* (which
// estimate stage runs) instead of ad-hoc branches.
//
// Stage contract (DESIGN.md §15):
//  - Stages are immutable after construction and shareable across
//    threads; all mutable state flows through the StageContext.
//  - A stage allocates its OUTPUT into the caller's open arena frame
//    (ctx.ws) and never opens a frame around it — outputs must outlive
//    the stage call. Internal scratch may use nested frames freely.
//  - Randomness comes only from ctx.rng (a stream forked by the caller
//    in deterministic order), never from ambient state.
//  - Telemetry is opt-in: when ctx.breakdown is null a stage performs
//    no clock reads and no accounting — the hot path stays untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/workspace.hpp"

namespace spotfi {

class Rng;

/// Telemetry buckets for the stage breakdown. Smoothing is folded into
/// kSubspace (the two always run back-to-back and smoothing is ~free
/// next to the eigendecomposition), matching the ROADMAP items-1/2
/// cost split the breakdown exists to measure.
enum class StagePhase : std::uint8_t {
  kSanitize = 0,
  kSubspace,
  kSpectrum,
  kCluster,
  kLocalize,
};

inline constexpr std::size_t kStagePhaseCount = 5;

[[nodiscard]] const char* to_string(StagePhase phase);

/// Per-phase wall time and arena footprint of one unit of work (a
/// packet, a group, a round — whatever the producer metered).
struct StageBreakdown {
  std::array<double, kStagePhaseCount> seconds{};
  std::array<std::size_t, kStagePhaseCount> workspace_peak_bytes{};

  /// Folds another breakdown in: times accumulate; workspace peaks take
  /// the max, because sibling units (packets in a group, APs in a
  /// round) reuse the same arenas rather than holding them at once.
  void merge(const StageBreakdown& other) {
    for (std::size_t i = 0; i < kStagePhaseCount; ++i) {
      seconds[i] += other.seconds[i];
      workspace_peak_bytes[i] =
          workspace_peak_bytes[i] > other.workspace_peak_bytes[i]
              ? workspace_peak_bytes[i]
              : other.workspace_peak_bytes[i];
    }
  }

  [[nodiscard]] bool any() const {
    for (std::size_t i = 0; i < kStagePhaseCount; ++i) {
      if (seconds[i] != 0.0 || workspace_peak_bytes[i] != 0) return true;
    }
    return false;
  }

  [[nodiscard]] double total_seconds() const {
    double t = 0.0;
    for (const double s : seconds) t += s;
    return t;
  }
};

/// Everything a stage invocation may touch beyond its typed input. The
/// caller owns every pointee; a stage never stores the context.
struct StageContext {
  /// Arena the stage's output is allocated from. Required.
  Workspace* ws = nullptr;
  /// Deterministic random stream for this unit of work (forked by the
  /// orchestrator in capture order). Null for stages that are
  /// randomness-free.
  Rng* rng = nullptr;
  /// Telemetry sink; null disables all metering (and its clock reads).
  StageBreakdown* breakdown = nullptr;
  /// The innermost frame enclosing the stage outputs, used to meter
  /// per-phase arena peaks. Only consulted when breakdown is set.
  const Workspace::Frame* frame = nullptr;
  /// Remaining wall-clock budget for the enclosing round; 0 = no
  /// deadline. Stages may use it to pick cheaper strategies (the shed
  /// ladder already does this one level up via stage substitution).
  double deadline_s = 0.0;
};

/// Monotonic time for stage metering. Deliberately NOT the session
/// Clock: sessions run on FakeClock in tests, where every now_s() read
/// advances time — telemetry reads would perturb deadline logic.
[[nodiscard]] double stage_now_s();

/// RAII meter around one stage invocation: accumulates wall time and
/// the enclosing frame's peak growth into breakdown[phase]. A no-op
/// (no clock reads) when ctx carries no breakdown sink.
///
/// The peak delta is valid at stage boundaries: any nested frame a
/// kernel opened has closed by then, folding its peak into the
/// enclosing frame (common/workspace.hpp), so the delta captures the
/// stage's full footprint including scratch.
class StageMeter {
 public:
  StageMeter(const StageContext& ctx, StagePhase phase)
      : breakdown_(ctx.breakdown), frame_(ctx.frame), phase_(phase) {
    if (breakdown_ == nullptr) return;
    t0_ = stage_now_s();
    peak0_ = frame_ != nullptr ? frame_->peak_bytes() : 0;
  }

  StageMeter(const StageMeter&) = delete;
  StageMeter& operator=(const StageMeter&) = delete;

  ~StageMeter() {
    if (breakdown_ == nullptr) return;
    const auto i = static_cast<std::size_t>(phase_);
    breakdown_->seconds[i] += stage_now_s() - t0_;
    if (frame_ != nullptr) {
      const std::size_t peak = frame_->peak_bytes();
      breakdown_->workspace_peak_bytes[i] += peak > peak0_ ? peak - peak0_ : 0;
    }
  }

 private:
  StageBreakdown* breakdown_;
  const Workspace::Frame* frame_;
  StagePhase phase_;
  double t0_ = 0.0;
  std::size_t peak0_ = 0;
};

/// A typed estimation stage. run_into() meters the invocation (when the
/// context asks for it) around the virtual do_run(); subclasses
/// implement do_run() under the contract at the top of this header.
template <typename In, typename Out>
class Stage {
 public:
  virtual ~Stage() = default;

  [[nodiscard]] Out run_into(StageContext& ctx, const In& in) const {
    StageMeter meter(ctx, phase());
    return do_run(ctx, in);
  }

  [[nodiscard]] virtual StagePhase phase() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

 private:
  [[nodiscard]] virtual Out do_run(StageContext& ctx, const In& in) const = 0;
};

}  // namespace spotfi
