#include "pipeline/direct_path.hpp"

#include <algorithm>
#include <cmath>

#include "music/steering.hpp"

namespace spotfi {

std::vector<ClusterSummary> cluster_path_estimates(
    std::span<const PathEstimate> estimates, const LinkConfig& link,
    std::size_t n_packets, Rng& rng, const DirectPathConfig& config) {
  return cluster_path_estimates(estimates, link, n_packets, rng, config,
                                thread_workspace());
}

std::vector<ClusterSummary> cluster_path_estimates(
    std::span<const PathEstimate> estimates, const LinkConfig& link,
    std::size_t n_packets, Rng& rng, const DirectPathConfig& config,
    Workspace& ws) {
  SPOTFI_EXPECTS(!estimates.empty(), "need at least one path estimate");
  SPOTFI_EXPECTS(config.n_clusters >= 1, "need at least one cluster");
  SPOTFI_EXPECTS(n_packets >= 1, "need at least one packet");

  // Normalize both axes into [-1, 1] so cluster geometry and the Eq. 8
  // weights are scale-free (Fig. 5(c): "ToF and AoA values are normalized
  // so that their values lie in the same range").
  const double aoa_scale = kPi / 2.0;
  const double tof_scale = std::isnan(config.tof_scale_s)
                               ? tof_period(link) / 2.0
                               : config.tof_scale_s;
  SPOTFI_EXPECTS(tof_scale > 0.0, "ToF scale must be positive");

  Workspace::Frame frame(ws);
  const RMatrixView points = workspace_matrix<double>(ws, estimates.size(), 2);
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    points(i, 0) = estimates[i].aoa_rad / aoa_scale;
    points(i, 1) = estimates[i].tof_s / tof_scale;
  }

  std::vector<std::size_t> assignment;
  std::size_t k_eff = 0;
  if (config.use_gmm) {
    GmmResult gmm =
        fit_gmm(ConstRMatrixView(points), config.n_clusters, rng, {}, ws);
    assignment = std::move(gmm.assignment);
    k_eff = gmm.components.size();
  } else {
    KMeansResult km =
        kmeans(ConstRMatrixView(points), config.n_clusters, rng, {}, ws);
    assignment = std::move(km.assignment);
    k_eff = km.centroids.rows();
  }

  // Per-cluster statistics on the *hard* assignment: Eq. 8 uses the
  // population variance of the members.
  struct Acc {
    double sum_aoa = 0.0, sum_tof = 0.0;
    double sum_aoa2 = 0.0, sum_tof2 = 0.0;
    double sum_power = 0.0;
    std::size_t n = 0;
  };
  const std::span<Acc> acc = ws.take<Acc>(k_eff);
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    Acc& a = acc[assignment[i]];
    const double na = points(i, 0);
    const double nt = points(i, 1);
    a.sum_aoa += na;
    a.sum_tof += nt;
    a.sum_aoa2 += na * na;
    a.sum_tof2 += nt * nt;
    a.sum_power += estimates[i].power;
    ++a.n;
  }

  std::vector<ClusterSummary> clusters;
  clusters.reserve(k_eff);
  for (const Acc& a : acc) {
    if (a.n == 0) continue;
    const double n = static_cast<double>(a.n);
    ClusterSummary c;
    const double mean_aoa_n = a.sum_aoa / n;
    const double mean_tof_n = a.sum_tof / n;
    c.mean_aoa_rad = mean_aoa_n * aoa_scale;
    c.mean_tof_s = mean_tof_n * tof_scale;
    c.sigma_aoa =
        std::sqrt(std::max(a.sum_aoa2 / n - mean_aoa_n * mean_aoa_n, 0.0));
    c.sigma_tof =
        std::sqrt(std::max(a.sum_tof2 / n - mean_tof_n * mean_tof_n, 0.0));
    c.count = a.n;
    c.mean_power = a.sum_power / n;
    clusters.push_back(c);
  }
  // Eq. 8. The sanitized ToF axis has an arbitrary per-group origin (the
  // STO fit), so the mean-ToF term is measured relative to the earliest
  // cluster: "higher ToF signifies lower likelihood" either way, but the
  // relative form is invariant to the fit's offset.
  double min_mean_tof_n = std::numeric_limits<double>::max();
  for (const auto& c : clusters) {
    min_mean_tof_n = std::min(min_mean_tof_n, c.mean_tof_s / tof_scale);
  }
  for (auto& c : clusters) {
    const double hits_per_packet =
        static_cast<double>(c.count) / static_cast<double>(n_packets);
    const double rel_tof_n = c.mean_tof_s / tof_scale - min_mean_tof_n;
    c.likelihood = std::exp(config.w_count * hits_per_packet -
                            config.w_sigma_aoa * c.sigma_aoa -
                            config.w_sigma_tof * c.sigma_tof -
                            config.w_mean_tof * rel_tof_n);
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const ClusterSummary& a, const ClusterSummary& b) {
              return a.likelihood > b.likelihood;
            });
  return clusters;
}

std::size_t select_spotfi(std::span<const ClusterSummary> clusters) {
  SPOTFI_EXPECTS(!clusters.empty(), "no clusters to select from");
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].likelihood > clusters[best].likelihood) best = i;
  }
  return best;
}

std::size_t select_smallest_tof(std::span<const ClusterSummary> clusters) {
  SPOTFI_EXPECTS(!clusters.empty(), "no clusters to select from");
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].mean_tof_s < clusters[best].mean_tof_s) best = i;
  }
  return best;
}

std::size_t select_strongest(std::span<const ClusterSummary> clusters) {
  SPOTFI_EXPECTS(!clusters.empty(), "no clusters to select from");
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (clusters[i].mean_power > clusters[best].mean_power) best = i;
  }
  return best;
}

std::size_t select_oracle(std::span<const ClusterSummary> clusters,
                          double true_aoa_rad) {
  SPOTFI_EXPECTS(!clusters.empty(), "no clusters to select from");
  std::size_t best = 0;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    if (std::abs(clusters[i].mean_aoa_rad - true_aoa_rad) <
        std::abs(clusters[best].mean_aoa_rad - true_aoa_rad)) {
      best = i;
    }
  }
  return best;
}

}  // namespace spotfi
