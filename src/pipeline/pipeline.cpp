#include "pipeline/pipeline.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "linalg/numerics.hpp"

namespace spotfi {

ApResult EstimationPipeline::run_group(StageContext& ctx,
                                       PacketSource& source,
                                       const ArrayPose& pose,
                                       std::size_t* ws_peak_out) const {
  struct PacketOutput {
    std::size_t count = 0;
    std::size_t ws_peak_bytes = 0;
    NumericsCounters numerics;
    StageBreakdown breakdown;
  };

  // Pull the whole group up front: the per-packet fan-out needs random
  // access, and a group is small (the paper uses 10-40 packets).
  std::vector<const CsiPacket*> packets;
  packets.reserve(source.remaining());
  while (const CsiPacket* p = source.next()) packets.push_back(p);
  SPOTFI_EXPECTS(!packets.empty(), "need at least one packet");

  const std::size_t max_paths = stages_.estimate->max_paths();
  std::vector<PacketOutput> outputs(packets.size());
  std::vector<PathEstimate> slots(packets.size() * max_paths);
  const auto estimate_packet = [&](std::size_t i) {
    // Detached: counters travel home in the task output and are merged
    // by the dispatching thread below, never through the thread-local
    // scope stack (which a pool worker does not share with the caller).
    NumericsScope scope{kDetachedScope};
    Workspace& ws =
        pool_ != nullptr ? pool_->workspace() : thread_workspace();
    Workspace::Frame frame(ws);
    StageContext pctx;
    pctx.ws = &ws;
    pctx.breakdown = ctx.breakdown != nullptr ? &outputs[i].breakdown : nullptr;
    pctx.frame = &frame;
    pctx.deadline_s = ctx.deadline_s;
    const ConstCMatrixView csi = stages_.sanitize->run_into(
        pctx, ConstCMatrixView(packets[i]->csi));
    outputs[i].count = stages_.estimate->run_into(
        pctx, csi,
        std::span<PathEstimate>(slots).subspan(i * max_paths, max_paths));
    outputs[i].numerics = scope.counters();
    outputs[i].ws_peak_bytes = frame.peak_bytes();
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(packets.size(), estimate_packet);
  } else {
    for (std::size_t i = 0; i < packets.size(); ++i) estimate_packet(i);
  }

  ApResult result;
  double rssi_sum = 0.0;
  std::size_t total = 0;
  std::size_t ws_peak = 0;
  for (const auto& out : outputs) total += out.count;
  result.pooled_estimates.reserve(total);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto packet_slots =
        std::span<const PathEstimate>(slots).subspan(i * max_paths,
                                                     outputs[i].count);
    result.pooled_estimates.insert(result.pooled_estimates.end(),
                                   packet_slots.begin(), packet_slots.end());
    count_numerics(outputs[i].numerics);
    if (ctx.breakdown != nullptr) ctx.breakdown->merge(outputs[i].breakdown);
    rssi_sum += packets[i]->rssi_dbm;
    ws_peak = std::max(ws_peak, outputs[i].ws_peak_bytes);
  }
  SPOTFI_EXPECTS(!result.pooled_estimates.empty(),
                 "super-resolution produced no path estimates");

  {
    Workspace& ws =
        pool_ != nullptr ? pool_->workspace() : thread_workspace();
    Workspace::Frame frame(ws);
    StageContext gctx;
    gctx.ws = &ws;
    gctx.rng = ctx.rng;
    gctx.breakdown = ctx.breakdown;
    gctx.frame = &frame;
    gctx.deadline_s = ctx.deadline_s;
    result.clusters = stages_.cluster->run_into(
        gctx, ClusterIn{result.pooled_estimates, packets.size()});
    ws_peak = std::max(ws_peak, frame.peak_bytes());
  }
  if (ws_peak_out != nullptr) *ws_peak_out = ws_peak;

  StageContext sctx;  // select is frame-free: no arena, no peak meter
  sctx.ws = ctx.ws;
  sctx.breakdown = ctx.breakdown;
  sctx.deadline_s = ctx.deadline_s;
  DirectPathIn select_in;
  select_in.clusters = result.clusters;
  select_in.pose = &pose;
  select_in.rssi_dbm = rssi_sum / static_cast<double>(packets.size());
  result.observation = stages_.direct_path->run_into(sctx, select_in);
  return result;
}

}  // namespace spotfi
