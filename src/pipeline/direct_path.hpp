// Direct-path identification (Sec. 3.2).
//
// SpotFi accumulates the (AoA, ToF) estimates of every MUSIC peak over a
// group of packets, normalizes both axes into a common range (Fig. 5(c)),
// clusters them ("Gaussian mean clustering with five clusters"), and
// scores each cluster with the likelihood of Eq. 8:
//
//   likelihood_k = exp(w_C*C_k - w_th*sigma_theta_k - w_tau*sigma_tau_k
//                      - w_s*tau_bar_k)
//
// Direct paths form tight, populous, early-ToF clusters; reflections are
// loose and late. The paper's compared selection rules (smallest ToF =
// LTEye, strongest spectrum power = CUPID, oracle) are provided for the
// Fig. 8(b) reproduction.
#pragma once

#include <vector>

#include "cluster/gmm.hpp"
#include "common/constants.hpp"
#include "music/estimators.hpp"

namespace spotfi {

/// One clustered propagation path, aggregated over a packet group.
struct ClusterSummary {
  double mean_aoa_rad = 0.0;
  double mean_tof_s = 0.0;
  /// Population standard deviations in *normalized* units (both axes
  /// scaled into [-1, 1]), so the Eq. 8 weights share a scale.
  double sigma_aoa = 0.0;
  double sigma_tof = 0.0;
  /// Number of per-packet estimates in the cluster (C_k in Eq. 8).
  std::size_t count = 0;
  /// Mean MUSIC spectrum power of the cluster's members (CUPID's metric).
  double mean_power = 0.0;
  /// Eq. 8 likelihood.
  double likelihood = 0.0;
};

struct DirectPathConfig {
  /// Number of clusters; the paper uses five (at best five significant
  /// paths indoors).
  std::size_t n_clusters = 5;
  /// Eq. 8 weights. Defaults calibrated by bench/ablation_weights over
  /// all three deployments (normalized AoA/ToF axes). The count term is
  /// normalized by the number of packets in the group (so a cluster hit
  /// once per packet scores 1.0 regardless of group size); the paper's
  /// raw count would otherwise swamp the other terms for long traces.
  double w_count = 1.5;       ///< w_C, per cluster hit per packet
  double w_sigma_aoa = 5.0;   ///< w_theta, per unit normalized AoA stddev
  double w_sigma_tof = 2.0;   ///< w_tau, per unit normalized ToF stddev
  double w_mean_tof = 4.0;    ///< w_s, per unit normalized mean ToF
  /// Cluster with a Gaussian mixture (paper); false = plain k-means.
  bool use_gmm = true;
  /// Normalization scale for ToF: values are divided by this before
  /// clustering. NaN = use half the unambiguous ToF period.
  double tof_scale_s = std::numeric_limits<double>::quiet_NaN();
};

/// Clusters per-packet path estimates and scores each cluster with Eq. 8.
/// Returns clusters sorted by likelihood, descending (the first entry is
/// SpotFi's direct-path choice). Requires at least one estimate.
/// `n_packets` is the size of the packet group the estimates were pooled
/// from; it normalizes the count term (pass 1 to use raw counts).
[[nodiscard]] std::vector<ClusterSummary> cluster_path_estimates(
    std::span<const PathEstimate> estimates, const LinkConfig& link,
    std::size_t n_packets, Rng& rng, const DirectPathConfig& config = {});

/// Workspace overload: the normalized point matrix, the clustering
/// scratch, and the per-cluster accumulators live on `ws`; only the
/// returned summaries (and the clusterers' own result structs) allocate.
/// The default overload wraps this one; results are bit-identical.
[[nodiscard]] std::vector<ClusterSummary> cluster_path_estimates(
    std::span<const PathEstimate> estimates, const LinkConfig& link,
    std::size_t n_packets, Rng& rng, const DirectPathConfig& config,
    Workspace& ws);

/// Selection rules compared in Fig. 8(b). Each returns an index into
/// `clusters` (which must be non-empty).
[[nodiscard]] std::size_t select_spotfi(
    std::span<const ClusterSummary> clusters);
[[nodiscard]] std::size_t select_smallest_tof(
    std::span<const ClusterSummary> clusters);  ///< LTEye's rule
[[nodiscard]] std::size_t select_strongest(
    std::span<const ClusterSummary> clusters);  ///< CUPID's rule
[[nodiscard]] std::size_t select_oracle(
    std::span<const ClusterSummary> clusters, double true_aoa_rad);

}  // namespace spotfi
