// The per-AP summary the central server fuses: array pose, the selected
// direct-path AoA with its likelihood value (Eq. 8), and the mean RSSI —
// the inputs to the localization objective of Eq. 9.
#pragma once

#include "channel/multipath.hpp"

namespace spotfi {

struct ApObservation {
  /// AP array position and orientation (known from one-time measurement).
  ArrayPose pose;
  /// Direct-path AoA selected by the likelihood procedure [rad].
  double direct_aoa_rad = 0.0;
  /// Likelihood value of the selected path (weight l_i in Eq. 9).
  double likelihood = 1.0;
  /// Mean observed RSSI over the packet group [dBm].
  double rssi_dbm = 0.0;
  /// False for an RSSI-only observation (the estimator fallback chain's
  /// last resort): the AoA term of Eq. 9 is skipped, only the RSSI range
  /// constraint contributes.
  bool has_aoa = true;
};

}  // namespace spotfi
