#include "localize/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"

namespace spotfi {

Vec2 triangulate_aoa(std::span<const ApObservation> observations) {
  SPOTFI_EXPECTS(observations.size() >= 2,
                 "triangulation needs at least two APs");
  // Each AP defines the line {a + t*u}: a = AP position, u = bearing
  // direction. Perpendicular residual (I - u u^T)(x - a) gives the normal
  // equations sum w (I - u u^T) x = sum w (I - u u^T) a.
  RMatrix m(2, 2);
  RVector rhs(2, 0.0);
  for (const auto& obs : observations) {
    const double w = std::max(obs.likelihood, 0.0);
    if (w <= 0.0) continue;
    const Vec2 n = obs.pose.normal_dir();
    const Vec2 ax = obs.pose.axis_dir();
    const Vec2 u = n * std::cos(obs.direct_aoa_rad) +
                   ax * std::sin(obs.direct_aoa_rad);
    const double pxx = 1.0 - u.x * u.x;
    const double pxy = -u.x * u.y;
    const double pyy = 1.0 - u.y * u.y;
    const Vec2 a = obs.pose.position;
    m(0, 0) += w * pxx;
    m(0, 1) += w * pxy;
    m(1, 0) += w * pxy;
    m(1, 1) += w * pyy;
    rhs[0] += w * (pxx * a.x + pxy * a.y);
    rhs[1] += w * (pxy * a.x + pyy * a.y);
  }
  const RVector x = solve_spd(m, rhs);  // throws on degenerate geometry
  return {x[0], x[1]};
}

Vec2 trilaterate_rssi(std::span<const ApObservation> observations,
                      const RssiTrilaterationConfig& config) {
  SPOTFI_EXPECTS(observations.size() >= 3,
                 "trilateration needs at least three APs");
  std::vector<double> ranges;
  Vec2 centroid{};
  for (const auto& obs : observations) {
    ranges.push_back(config.path_loss.distance_m(obs.rssi_dbm));
    centroid += obs.pose.position;
  }
  centroid = centroid / static_cast<double>(observations.size());

  const ResidualFn residuals = [&](std::span<const double> p) {
    RVector r(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      const double d =
          distance({p[0], p[1]}, observations[i].pose.position);
      r[i] = d - ranges[i];
    }
    return r;
  };
  const RVector x0{centroid.x, centroid.y};
  const LevMarResult res = levenberg_marquardt(residuals, x0, config.levmar);
  return {res.x[0], res.x[1]};
}

double spectrum_at(const AoaSpectrum& spectrum, double aoa_rad) {
  const auto& grid = spectrum.aoa_grid_rad;
  SPOTFI_EXPECTS(grid.size() >= 2 && grid.size() == spectrum.values.size(),
                 "malformed spectrum");
  if (aoa_rad <= grid.front()) return spectrum.values.front();
  if (aoa_rad >= grid.back()) return spectrum.values.back();
  const auto it = std::upper_bound(grid.begin(), grid.end(), aoa_rad);
  const std::size_t hi = static_cast<std::size_t>(it - grid.begin());
  const std::size_t lo = hi - 1;
  const double f = (aoa_rad - grid[lo]) / (grid[hi] - grid[lo]);
  return spectrum.values[lo] + f * (spectrum.values[hi] - spectrum.values[lo]);
}

Vec2 arraytrack_locate(std::span<const ApSpectrum> spectra,
                       const ArrayTrackConfig& config) {
  SPOTFI_EXPECTS(spectra.size() >= 2, "need at least two AP spectra");
  SPOTFI_EXPECTS(config.grid_step_m > 0.0, "grid step must be positive");
  SPOTFI_EXPECTS(config.area_max.x > config.area_min.x &&
                     config.area_max.y > config.area_min.y,
                 "search area must have positive extent");

  auto score = [&](Vec2 loc) {
    double s = 0.0;
    for (const auto& ap : spectra) {
      const double bearing = ap.pose.apparent_aoa_of(loc);
      s += std::log(std::max(spectrum_at(ap.spectrum, bearing), 1e-12));
    }
    return s;
  };

  // Coarse grid sweep.
  Vec2 best = config.area_min;
  double best_score = -std::numeric_limits<double>::max();
  for (double x = config.area_min.x; x <= config.area_max.x;
       x += config.grid_step_m) {
    for (double y = config.area_min.y; y <= config.area_max.y;
         y += config.grid_step_m) {
      const double s = score({x, y});
      if (s > best_score) {
        best_score = s;
        best = {x, y};
      }
    }
  }
  // Local refinement: shrinking pattern search.
  double step = config.grid_step_m / 2.0;
  while (step > 0.01) {
    bool improved = false;
    for (const Vec2 d : {Vec2{step, 0.0}, Vec2{-step, 0.0}, Vec2{0.0, step},
                         Vec2{0.0, -step}}) {
      const Vec2 cand = best + d;
      if (cand.x < config.area_min.x || cand.x > config.area_max.x ||
          cand.y < config.area_min.y || cand.y > config.area_max.y) {
        continue;
      }
      const double s = score(cand);
      if (s > best_score) {
        best_score = s;
        best = cand;
        improved = true;
      }
    }
    if (!improved) step /= 2.0;
  }
  return best;
}

}  // namespace spotfi
