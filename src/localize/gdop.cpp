#include "localize/gdop.hpp"

#include <cmath>

#include "linalg/hermitian_eig.hpp"
#include "linalg/numerics.hpp"
#include "linalg/solve.hpp"

namespace spotfi {

Expected<GdopResult, std::string> try_bearing_gdop(
    std::span<const ArrayPose> aps, Vec2 point, double sigma_aoa_rad) {
  SPOTFI_EXPECTS(aps.size() >= 2, "GDOP needs at least two APs");
  SPOTFI_EXPECTS(sigma_aoa_rad > 0.0, "AoA sigma must be positive");

  // Each bearing i measures the direction to the target; a small AoA
  // error sigma displaces the implied position by d_i * sigma along the
  // unit vector u_perp_i perpendicular to the line of sight. Fisher
  // information: sum_i u_perp_i u_perp_i^T / (d_i * sigma)^2.
  RMatrix fim(2, 2);
  for (const auto& ap : aps) {
    const Vec2 los = point - ap.position;
    const double d = los.norm();
    if (d < 1e-6) continue;  // on top of an AP: that AP adds nothing
    const Vec2 u_perp = (los / d).perp();
    const double w = 1.0 / ((d * sigma_aoa_rad) * (d * sigma_aoa_rad));
    fim(0, 0) += w * u_perp.x * u_perp.x;
    fim(0, 1) += w * u_perp.x * u_perp.y;
    fim(1, 0) += w * u_perp.x * u_perp.y;
    fim(1, 1) += w * u_perp.y * u_perp.y;
  }

  // Covariance = FIM^-1; its eigenvalues are the squared ellipse axes.
  const double det = fim(0, 0) * fim(1, 1) - fim(0, 1) * fim(1, 0);
  if (!(det > 1e-12 * (1.0 + fim.max_abs() * fim.max_abs()))) {
    // !(>) also rejects a NaN determinant from non-finite poses.
    count_numerics(&NumericsCounters::gdop_degenerate);
    return std::string(
        "bearing_gdop: degenerate geometry (all bearings parallel — "
        "APs collinear with the query point, or non-finite input)");
  }
  RMatrix cov(2, 2);
  cov(0, 0) = fim(1, 1) / det;
  cov(0, 1) = -fim(0, 1) / det;
  cov(1, 0) = -fim(1, 0) / det;
  cov(1, 1) = fim(0, 0) / det;

  const SymmetricEig eig = eigh(cov);
  GdopResult result;
  result.minor_m = std::sqrt(std::max(eig.eigenvalues[0], 0.0));
  result.major_m = std::sqrt(std::max(eig.eigenvalues[1], 0.0));
  result.drms_m = std::hypot(result.major_m, result.minor_m);
  return result;
}

GdopResult bearing_gdop(std::span<const ArrayPose> aps, Vec2 point,
                        double sigma_aoa_rad) {
  Expected<GdopResult, std::string> r =
      try_bearing_gdop(aps, point, sigma_aoa_rad);
  if (!r) throw NumericalError(r.error());
  return std::move(*r);
}

}  // namespace spotfi
