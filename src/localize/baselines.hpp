// Baseline localizers the paper compares against (or builds on):
//
//  * AoaTriangulator — weighted least-squares intersection of the bearing
//    rays defined by each AP's direct-path AoA; the classic AoA-only
//    localization primitive.
//  * RssiTrilaterator — RADAR-style ranging from RSSI through a known
//    path-loss model (Sec. 2, "RSSI based approaches").
//  * ArrayTrackLocalizer — the paper's practical ArrayTrack/Phaser
//    comparison: each AP contributes its (packet-averaged) MUSIC-AoA
//    pseudospectrum; the location maximizing the product of the spectra
//    evaluated at the bearing towards the candidate is returned
//    (ArrayTrack Sec. 5's spectrum synthesis, on 3 antennas).
#pragma once

#include <vector>

#include "linalg/levmar.hpp"
#include "localize/observation.hpp"
#include "localize/pathloss.hpp"
#include "music/estimators.hpp"

namespace spotfi {

/// Weighted least-squares intersection of the APs' bearing lines.
/// Requires >= 2 observations with non-collinear bearings; throws
/// NumericalError when the geometry is degenerate.
[[nodiscard]] Vec2 triangulate_aoa(std::span<const ApObservation> observations);

struct RssiTrilaterationConfig {
  PathLossModel path_loss{};
  LevMarOptions levmar{};
};

/// Ranges each AP via the path-loss model and solves for the position
/// minimizing the range residuals. Requires >= 3 observations.
[[nodiscard]] Vec2 trilaterate_rssi(
    std::span<const ApObservation> observations,
    const RssiTrilaterationConfig& config = {});

/// One AP's contribution to ArrayTrack-style localization.
struct ApSpectrum {
  ArrayPose pose;
  AoaSpectrum spectrum;
};

struct ArrayTrackConfig {
  Vec2 area_min{0.0, 0.0};
  Vec2 area_max{20.0, 20.0};
  /// Coarse search grid step [m].
  double grid_step_m = 0.25;
};

/// Location maximizing sum_i log(spectrum_i(bearing_i(location))).
[[nodiscard]] Vec2 arraytrack_locate(std::span<const ApSpectrum> spectra,
                                     const ArrayTrackConfig& config = {});

/// Linear interpolation of a pseudospectrum at an arbitrary angle;
/// angles outside the grid clamp to the boundary value.
[[nodiscard]] double spectrum_at(const AoaSpectrum& spectrum, double aoa_rad);

}  // namespace spotfi
