// Log-distance path-loss model relating RSSI to distance — the "standard
// widely used path loss model" the server assumes (Sec. 3.3, citing
// RADAR [3] and Goldsmith [71]).
//
//   rssi(d) = p0_dbm - 10 * exponent * log10(d / d0)
//
// In Algorithm 2 the model parameters (p0, exponent) are optimization
// variables fitted jointly with the target location, so the system needs
// no RSSI calibration.
#pragma once

#include "common/error.hpp"

namespace spotfi {

struct PathLossModel {
  /// RSSI at the reference distance [dBm].
  double p0_dbm = -35.0;
  /// Path-loss exponent (2 = free space; 2.5-4 typical indoors).
  double exponent = 2.5;
  /// Reference distance [m].
  double d0_m = 1.0;

  /// Predicted RSSI at distance `d_m` (clamped below at 10 cm).
  [[nodiscard]] double rssi_dbm(double d_m) const;

  /// Distance that would produce `rssi`; inverse of rssi_dbm.
  [[nodiscard]] double distance_m(double rssi) const;
};

}  // namespace spotfi
