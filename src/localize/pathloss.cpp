#include "localize/pathloss.hpp"

#include <algorithm>
#include <cmath>

namespace spotfi {

double PathLossModel::rssi_dbm(double d_m) const {
  SPOTFI_ASSERT(d0_m > 0.0, "reference distance must be positive");
  const double d = std::max(d_m, 0.1);
  return p0_dbm - 10.0 * exponent * std::log10(d / d0_m);
}

double PathLossModel::distance_m(double rssi) const {
  SPOTFI_ASSERT(exponent > 0.0, "exponent must be positive");
  return d0_m * std::pow(10.0, (p0_dbm - rssi) / (10.0 * exponent));
}

}  // namespace spotfi
