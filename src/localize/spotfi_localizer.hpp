// SpotFi's localization step (Sec. 3.3, Algorithm 2 line 12).
//
// Finds the target location minimizing the likelihood-weighted deviation
// between predicted and observed AoA/RSSI at every AP (Eq. 9):
//
//   sum_i l_i [ w_p * (p_bar_i(x) - p_i)^2 + w_th * (th_bar_i(x) - th_i)^2 ]
//
// jointly over the location and the path-loss model parameters (p0,
// exponent), so no RSSI calibration is required. The objective is
// non-convex in the location; the paper applies sequential convex
// optimization, realized here as multi-start Levenberg-Marquardt (each LM
// step solves one convexified quadratic) seeded from a coarse grid over
// the search area.
#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "linalg/levmar.hpp"
#include "localize/observation.hpp"
#include "localize/pathloss.hpp"

namespace spotfi {

struct LocalizerConfig {
  /// Search-area bounds [m].
  Vec2 area_min{0.0, 0.0};
  Vec2 area_max{20.0, 20.0};
  /// Multi-start seed grid resolution per axis.
  std::size_t seed_grid = 5;
  /// Relative weight of the RSSI residual (w_p in the notation above).
  double rssi_weight = 0.35;
  /// Relative weight of the AoA residual [1/rad].
  double aoa_weight = 12.0;
  /// Exponent applied to the Eq. 8 likelihoods when used as fusion
  /// weights: w_i = l_i^gamma. Raising gamma sharpens the contrast
  /// between confident and doubtful APs (gamma = 1 is the paper's plain
  /// l_i weighting).
  double likelihood_exponent = 2.0;
  /// Huber scale for the AoA residual [rad]: deviations beyond this
  /// contribute linearly instead of quadratically, bounding the influence
  /// of an AP whose direct-path pick is plain wrong. 0 disables
  /// (paper-faithful pure least squares).
  double aoa_huber_rad = 0.1;
  /// Soft area constraint: residual weight per meter outside the search
  /// box. Keeps the (unconstrained) LM solve from running away to an
  /// out-of-building optimum that a pair of consistent wrong bearings
  /// can create — the constrained optimum is then found *on* the
  /// boundary instead of being clamped to it afterwards.
  double area_penalty_per_m = 8.0;
  /// Initial path-loss parameters (also optimized per Algorithm 2).
  PathLossModel initial_path_loss{};
  /// Bounds keeping the fitted path-loss exponent physical.
  double min_exponent = 1.2;
  double max_exponent = 6.0;
  LevMarOptions levmar{};
};

struct LocationEstimate {
  Vec2 position;
  /// Fitted path-loss model at the solution.
  PathLossModel path_loss;
  /// Final value of the Eq. 9 objective.
  double cost = 0.0;
  bool converged = false;
  /// Multi-start bookkeeping: seeds attempted, and seeds whose LM run was
  /// rejected (diverged, or finished on a non-finite cost/position). A
  /// rejected start never wins the multi-start comparison, whatever its
  /// recorded cost.
  std::size_t starts_tried = 0;
  std::size_t starts_rejected = 0;
};

class SpotFiLocalizer {
 public:
  explicit SpotFiLocalizer(LocalizerConfig config = {});

  /// Localizes from >= 2 AP observations. Observations with non-positive
  /// likelihood are ignored; throws ContractViolation if fewer than two
  /// remain, and NumericalError if *every* multi-start seed diverged (the
  /// observations are numerically unusable — e.g. non-finite RSSI).
  [[nodiscard]] LocationEstimate locate(
      std::span<const ApObservation> observations) const;

  /// Workspace variant: the usable-observation list, the multi-start seed
  /// grid, and the LM solver scratch (Jacobian, normal equations, trial
  /// points) live on `ws`, frame-scoped; only the residual closure's
  /// return vectors allocate. The value flavour wraps this one; results
  /// are identical.
  [[nodiscard]] LocationEstimate locate(
      std::span<const ApObservation> observations, Workspace& ws) const;

  /// The Eq. 9 objective at a given location/path-loss (diagnostics and
  /// tests).
  [[nodiscard]] double objective(std::span<const ApObservation> observations,
                                 Vec2 location,
                                 const PathLossModel& model) const;

  [[nodiscard]] const LocalizerConfig& config() const { return config_; }

 private:
  LocalizerConfig config_;
};

}  // namespace spotfi
