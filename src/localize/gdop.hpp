// Geometric dilution of precision for bearing-based localization.
//
// Given the AP array poses and an assumed per-AP AoA error sigma, the
// linearized covariance of the triangulated position at a candidate
// point predicts *where* a deployment will localize well before ever
// collecting a packet — the analytic counterpart of the site_survey
// example, and the quantitative form of the paper's corridor discussion
// ("many APs have inaccurate and correlated AoA measurements").
#pragma once

#include <vector>

#include "channel/multipath.hpp"

namespace spotfi {

struct GdopResult {
  /// 1-sigma error ellipse semi-axes [m], major >= minor.
  double major_m = 0.0;
  double minor_m = 0.0;
  /// Root-mean-square position error sqrt(major^2 + minor^2) [m].
  double drms_m = 0.0;
};

/// Linearized position covariance at `point` for bearing measurements
/// from `aps`, each with independent AoA noise `sigma_aoa_rad`. A bearing
/// from AP i constrains the component of the position error perpendicular
/// to the line of sight with standard deviation d_i * sigma; the combined
/// Fisher information is summed and inverted. Degenerate geometry (all
/// APs collinear with the point, so the Fisher information is singular)
/// returns the reason as the error alternative; the count lands in
/// NumericsCounters::gdop_degenerate when a scope is active.
[[nodiscard]] Expected<GdopResult, std::string> try_bearing_gdop(
    std::span<const ArrayPose> aps, Vec2 point, double sigma_aoa_rad);

/// Throwing convenience wrapper over try_bearing_gdop: raises
/// NumericalError on degenerate geometry.
[[nodiscard]] GdopResult bearing_gdop(std::span<const ArrayPose> aps,
                                      Vec2 point, double sigma_aoa_rad);

}  // namespace spotfi
