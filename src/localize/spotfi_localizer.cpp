#include "localize/spotfi_localizer.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/angles.hpp"
#include "linalg/numerics.hpp"

namespace spotfi {
namespace {

/// Pseudo-residual realizing a Huber loss: quadratic inside `delta`,
/// linear outside, so that r^2 equals the Huber objective.
double huberize(double r, double delta) {
  if (delta <= 0.0) return r;
  const double a = std::abs(r);
  if (a <= delta) return r;
  return std::copysign(std::sqrt(delta * (2.0 * a - delta)), r);
}

/// Residual block for one AP: sqrt(w_i) * [w_th * huber(dtheta), w_p * dp]
/// with w_i = l_i^gamma.
void ap_residuals(const ApObservation& obs, Vec2 loc,
                  const PathLossModel& model, const LocalizerConfig& cfg,
                  double* out) {
  const double weight =
      std::pow(std::max(obs.likelihood, 0.0), cfg.likelihood_exponent);
  const double root_w = std::sqrt(weight);
  // Predict the *apparent* AoA: the measured value lives in the ULA's
  // aliased [-pi/2, pi/2] range.
  const double d = distance(loc, obs.pose.position);
  const double predicted_rssi = model.rssi_dbm(d);
  if (obs.has_aoa) {
    const double predicted_aoa = obs.pose.apparent_aoa_of(loc);
    const double dtheta = huberize(wrap_pi(predicted_aoa - obs.direct_aoa_rad),
                                   cfg.aoa_huber_rad);
    out[0] = root_w * cfg.aoa_weight * dtheta;
  } else {
    out[0] = 0.0;  // RSSI-only observation: no bearing constraint
  }
  out[1] = root_w * cfg.rssi_weight * (predicted_rssi - obs.rssi_dbm);
}

}  // namespace

SpotFiLocalizer::SpotFiLocalizer(LocalizerConfig config) : config_(config) {
  SPOTFI_EXPECTS(config_.area_max.x > config_.area_min.x &&
                     config_.area_max.y > config_.area_min.y,
                 "search area must have positive extent");
  SPOTFI_EXPECTS(config_.seed_grid >= 1, "seed grid must be non-empty");
  SPOTFI_EXPECTS(config_.min_exponent > 0.0 &&
                     config_.max_exponent > config_.min_exponent,
                 "invalid path-loss exponent bounds");
}

double SpotFiLocalizer::objective(std::span<const ApObservation> observations,
                                  Vec2 location,
                                  const PathLossModel& model) const {
  double cost = 0.0;
  double r[2];
  for (const auto& obs : observations) {
    if (obs.likelihood <= 0.0) continue;
    ap_residuals(obs, location, model, config_, r);
    cost += r[0] * r[0] + r[1] * r[1];
  }
  return cost;
}

LocationEstimate SpotFiLocalizer::locate(
    std::span<const ApObservation> observations) const {
  return locate(observations, thread_workspace());
}

LocationEstimate SpotFiLocalizer::locate(
    std::span<const ApObservation> observations, Workspace& ws) const {
  Workspace::Frame frame(ws);
  std::size_t n_used = 0;
  for (const auto& obs : observations) {
    if (obs.likelihood > 0.0) ++n_used;
  }
  const std::span<ApObservation> used_store =
      ws.take<ApObservation>(n_used);
  std::size_t fill = 0;
  for (const auto& obs : observations) {
    if (obs.likelihood > 0.0) used_store[fill++] = obs;
  }
  const std::span<const ApObservation> used = used_store;
  SPOTFI_EXPECTS(used.size() >= 2,
                 "need at least two usable AP observations to localize");

  // The RSSI model p0 - 10*exponent*log10(d) is *linear* in (p0,
  // exponent), so for any candidate location the optimal path-loss
  // parameters have a closed form (weighted least squares, exponent
  // clamped to its physical bounds). LM therefore optimizes the location
  // only — far better conditioned than carrying the model parameters as
  // LM unknowns.
  auto fit_path_loss = [this, &used](Vec2 loc) {
    double s_w = 0.0, s_g = 0.0, s_gg = 0.0, s_r = 0.0, s_gr = 0.0;
    for (const auto& obs : used) {
      const double w =
          std::pow(std::max(obs.likelihood, 0.0), config_.likelihood_exponent);
      const double d = std::max(distance(loc, obs.pose.position), 0.1);
      const double g = -10.0 * std::log10(d);  // rssi = p0 + g * exponent
      s_w += w;
      s_g += w * g;
      s_gg += w * g * g;
      s_r += w * obs.rssi_dbm;
      s_gr += w * g * obs.rssi_dbm;
    }
    PathLossModel model = config_.initial_path_loss;
    const double denom = s_w * s_gg - s_g * s_g;
    if (std::abs(denom) > 1e-12 && s_w > 0.0) {
      model.exponent = std::clamp((s_w * s_gr - s_g * s_r) / denom,
                                  config_.min_exponent,
                                  config_.max_exponent);
    }
    if (s_w > 0.0) {
      // Optimal p0 given the (possibly clamped) exponent.
      model.p0_dbm = (s_r - model.exponent * s_g) / s_w;
    }
    return model;
  };

  const ResidualFn residuals = [&, this](std::span<const double> p) {
    const Vec2 loc{p[0], p[1]};
    const PathLossModel model = fit_path_loss(loc);
    RVector r(2 * used.size() + 2);
    for (std::size_t i = 0; i < used.size(); ++i) {
      ap_residuals(used[i], loc, model, config_, &r[2 * i]);
    }
    // Soft area-bound penalties (zero inside the box).
    auto overflow = [](double v, double lo, double hi) {
      return v < lo ? lo - v : (v > hi ? v - hi : 0.0);
    };
    r[2 * used.size()] =
        config_.area_penalty_per_m *
        overflow(loc.x, config_.area_min.x, config_.area_max.x);
    r[2 * used.size() + 1] =
        config_.area_penalty_per_m *
        overflow(loc.y, config_.area_min.y, config_.area_max.y);
    return r;
  };

  // Multi-start seeds: a coarse grid over the search area, plus the
  // centroid of the AP positions.
  const std::size_t g = config_.seed_grid;
  const std::span<Vec2> seeds = ws.take<Vec2>(g * g + 1);
  for (std::size_t ix = 0; ix < g; ++ix) {
    for (std::size_t iy = 0; iy < g; ++iy) {
      const double fx = (static_cast<double>(ix) + 0.5) / static_cast<double>(g);
      const double fy = (static_cast<double>(iy) + 0.5) / static_cast<double>(g);
      seeds[ix * g + iy] = {config_.area_min.x +
                                fx * (config_.area_max.x - config_.area_min.x),
                            config_.area_min.y +
                                fy * (config_.area_max.y - config_.area_min.y)};
    }
  }
  Vec2 centroid{};
  for (const auto& obs : used) centroid += obs.pose.position;
  seeds[g * g] = centroid / static_cast<double>(used.size());

  LocationEstimate best;
  best.cost = std::numeric_limits<double>::max();
  bool have_winner = false;
  for (const auto& seed : seeds) {
    ++best.starts_tried;
    const double x0[2] = {seed.x, seed.y};
    const LevMarResult res =
        levenberg_marquardt(residuals, x0, config_.levmar, {}, ws);
    // A diverged run carries no usable solution, and a NaN cost would
    // silently lose every `<` comparison — either way the start must be
    // rejected explicitly, never allowed to leave `best` default-initialized
    // at the origin as if (0, 0) were an estimate.
    if (res.diverged || !std::isfinite(res.cost) ||
        !std::isfinite(res.x[0]) || !std::isfinite(res.x[1])) {
      ++best.starts_rejected;
      count_numerics(&NumericsCounters::localizer_starts_rejected);
      continue;
    }
    if (res.cost < best.cost) {
      best.cost = res.cost;
      best.position = {res.x[0], res.x[1]};
      best.converged = res.converged;
      have_winner = true;
    }
  }
  if (!have_winner) {
    throw NumericalError(
        "locate: all " + std::to_string(best.starts_tried) +
        " multi-start seeds diverged; observations are numerically unusable");
  }
  best.path_loss = fit_path_loss(best.position);
  // LM cost is 0.5*||r||^2; report the Eq. 9 value.
  best.cost *= 2.0;
  // Clamp into the search area (an AP-poor geometry can push the optimum
  // slightly outside).
  best.position.x =
      std::clamp(best.position.x, config_.area_min.x, config_.area_max.x);
  best.position.y =
      std::clamp(best.position.y, config_.area_min.y, config_.area_max.y);
  return best;
}

}  // namespace spotfi
