#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "spotfi::spotfi_common" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_common.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_common )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_common "${_IMPORT_PREFIX}/lib/libspotfi_common.a" )

# Import target "spotfi::spotfi_linalg" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_linalg.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_linalg )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_linalg "${_IMPORT_PREFIX}/lib/libspotfi_linalg.a" )

# Import target "spotfi::spotfi_geom" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_geom APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_geom PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_geom.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_geom )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_geom "${_IMPORT_PREFIX}/lib/libspotfi_geom.a" )

# Import target "spotfi::spotfi_channel" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_channel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_channel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_channel.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_channel )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_channel "${_IMPORT_PREFIX}/lib/libspotfi_channel.a" )

# Import target "spotfi::spotfi_phy" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_phy APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_phy PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_phy.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_phy )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_phy "${_IMPORT_PREFIX}/lib/libspotfi_phy.a" )

# Import target "spotfi::spotfi_csi" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_csi APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_csi PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_csi.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_csi )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_csi "${_IMPORT_PREFIX}/lib/libspotfi_csi.a" )

# Import target "spotfi::spotfi_music" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_music APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_music PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_music.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_music )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_music "${_IMPORT_PREFIX}/lib/libspotfi_music.a" )

# Import target "spotfi::spotfi_cluster" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_cluster APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_cluster PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_cluster.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_cluster )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_cluster "${_IMPORT_PREFIX}/lib/libspotfi_cluster.a" )

# Import target "spotfi::spotfi_localize" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_localize APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_localize PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_localize.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_localize )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_localize "${_IMPORT_PREFIX}/lib/libspotfi_localize.a" )

# Import target "spotfi::spotfi_core" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_core.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_core )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_core "${_IMPORT_PREFIX}/lib/libspotfi_core.a" )

# Import target "spotfi::spotfi_testbed" for configuration "RelWithDebInfo"
set_property(TARGET spotfi::spotfi_testbed APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(spotfi::spotfi_testbed PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspotfi_testbed.a"
  )

list(APPEND _cmake_import_check_targets spotfi::spotfi_testbed )
list(APPEND _cmake_import_check_files_for_spotfi::spotfi_testbed "${_IMPORT_PREFIX}/lib/libspotfi_testbed.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
