file(REMOVE_RECURSE
  "CMakeFiles/spotfi_csi.dir/csi/intel5300.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/intel5300.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/phase.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/phase.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/quality.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/quality.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/regrid.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/regrid.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/sanitize.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/sanitize.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/smoothing.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/smoothing.cpp.o.d"
  "CMakeFiles/spotfi_csi.dir/csi/trace.cpp.o"
  "CMakeFiles/spotfi_csi.dir/csi/trace.cpp.o.d"
  "libspotfi_csi.a"
  "libspotfi_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
