# Empty dependencies file for spotfi_csi.
# This may be replaced when dependencies are built.
