
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csi/intel5300.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/intel5300.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/intel5300.cpp.o.d"
  "/root/repo/src/csi/phase.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/phase.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/phase.cpp.o.d"
  "/root/repo/src/csi/quality.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/quality.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/quality.cpp.o.d"
  "/root/repo/src/csi/regrid.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/regrid.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/regrid.cpp.o.d"
  "/root/repo/src/csi/sanitize.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/sanitize.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/sanitize.cpp.o.d"
  "/root/repo/src/csi/smoothing.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/smoothing.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/smoothing.cpp.o.d"
  "/root/repo/src/csi/trace.cpp" "src/CMakeFiles/spotfi_csi.dir/csi/trace.cpp.o" "gcc" "src/CMakeFiles/spotfi_csi.dir/csi/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
