file(REMOVE_RECURSE
  "libspotfi_csi.a"
)
