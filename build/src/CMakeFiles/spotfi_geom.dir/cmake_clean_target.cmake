file(REMOVE_RECURSE
  "libspotfi_geom.a"
)
