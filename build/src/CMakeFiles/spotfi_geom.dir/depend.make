# Empty dependencies file for spotfi_geom.
# This may be replaced when dependencies are built.
