file(REMOVE_RECURSE
  "CMakeFiles/spotfi_geom.dir/geom/floorplan.cpp.o"
  "CMakeFiles/spotfi_geom.dir/geom/floorplan.cpp.o.d"
  "CMakeFiles/spotfi_geom.dir/geom/segment.cpp.o"
  "CMakeFiles/spotfi_geom.dir/geom/segment.cpp.o.d"
  "libspotfi_geom.a"
  "libspotfi_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
