
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/floorplan.cpp" "src/CMakeFiles/spotfi_geom.dir/geom/floorplan.cpp.o" "gcc" "src/CMakeFiles/spotfi_geom.dir/geom/floorplan.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/CMakeFiles/spotfi_geom.dir/geom/segment.cpp.o" "gcc" "src/CMakeFiles/spotfi_geom.dir/geom/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
