# Empty dependencies file for spotfi_core.
# This may be replaced when dependencies are built.
