file(REMOVE_RECURSE
  "libspotfi_core.a"
)
