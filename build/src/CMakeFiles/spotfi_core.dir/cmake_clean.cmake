file(REMOVE_RECURSE
  "CMakeFiles/spotfi_core.dir/core/ap_processor.cpp.o"
  "CMakeFiles/spotfi_core.dir/core/ap_processor.cpp.o.d"
  "CMakeFiles/spotfi_core.dir/core/direct_path.cpp.o"
  "CMakeFiles/spotfi_core.dir/core/direct_path.cpp.o.d"
  "CMakeFiles/spotfi_core.dir/core/server.cpp.o"
  "CMakeFiles/spotfi_core.dir/core/server.cpp.o.d"
  "CMakeFiles/spotfi_core.dir/core/streaming.cpp.o"
  "CMakeFiles/spotfi_core.dir/core/streaming.cpp.o.d"
  "CMakeFiles/spotfi_core.dir/core/tracker.cpp.o"
  "CMakeFiles/spotfi_core.dir/core/tracker.cpp.o.d"
  "libspotfi_core.a"
  "libspotfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
