# Empty dependencies file for spotfi_linalg.
# This may be replaced when dependencies are built.
