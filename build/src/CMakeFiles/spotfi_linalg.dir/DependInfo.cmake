
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eig_general.cpp" "src/CMakeFiles/spotfi_linalg.dir/linalg/eig_general.cpp.o" "gcc" "src/CMakeFiles/spotfi_linalg.dir/linalg/eig_general.cpp.o.d"
  "/root/repo/src/linalg/hermitian_eig.cpp" "src/CMakeFiles/spotfi_linalg.dir/linalg/hermitian_eig.cpp.o" "gcc" "src/CMakeFiles/spotfi_linalg.dir/linalg/hermitian_eig.cpp.o.d"
  "/root/repo/src/linalg/levmar.cpp" "src/CMakeFiles/spotfi_linalg.dir/linalg/levmar.cpp.o" "gcc" "src/CMakeFiles/spotfi_linalg.dir/linalg/levmar.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/spotfi_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/spotfi_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "src/CMakeFiles/spotfi_linalg.dir/linalg/solve.cpp.o" "gcc" "src/CMakeFiles/spotfi_linalg.dir/linalg/solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
