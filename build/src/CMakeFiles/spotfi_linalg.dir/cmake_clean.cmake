file(REMOVE_RECURSE
  "CMakeFiles/spotfi_linalg.dir/linalg/eig_general.cpp.o"
  "CMakeFiles/spotfi_linalg.dir/linalg/eig_general.cpp.o.d"
  "CMakeFiles/spotfi_linalg.dir/linalg/hermitian_eig.cpp.o"
  "CMakeFiles/spotfi_linalg.dir/linalg/hermitian_eig.cpp.o.d"
  "CMakeFiles/spotfi_linalg.dir/linalg/levmar.cpp.o"
  "CMakeFiles/spotfi_linalg.dir/linalg/levmar.cpp.o.d"
  "CMakeFiles/spotfi_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/spotfi_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/spotfi_linalg.dir/linalg/solve.cpp.o"
  "CMakeFiles/spotfi_linalg.dir/linalg/solve.cpp.o.d"
  "libspotfi_linalg.a"
  "libspotfi_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
