file(REMOVE_RECURSE
  "libspotfi_linalg.a"
)
