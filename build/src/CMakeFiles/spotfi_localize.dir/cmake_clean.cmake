file(REMOVE_RECURSE
  "CMakeFiles/spotfi_localize.dir/localize/baselines.cpp.o"
  "CMakeFiles/spotfi_localize.dir/localize/baselines.cpp.o.d"
  "CMakeFiles/spotfi_localize.dir/localize/gdop.cpp.o"
  "CMakeFiles/spotfi_localize.dir/localize/gdop.cpp.o.d"
  "CMakeFiles/spotfi_localize.dir/localize/pathloss.cpp.o"
  "CMakeFiles/spotfi_localize.dir/localize/pathloss.cpp.o.d"
  "CMakeFiles/spotfi_localize.dir/localize/spotfi_localizer.cpp.o"
  "CMakeFiles/spotfi_localize.dir/localize/spotfi_localizer.cpp.o.d"
  "libspotfi_localize.a"
  "libspotfi_localize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
