
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localize/baselines.cpp" "src/CMakeFiles/spotfi_localize.dir/localize/baselines.cpp.o" "gcc" "src/CMakeFiles/spotfi_localize.dir/localize/baselines.cpp.o.d"
  "/root/repo/src/localize/gdop.cpp" "src/CMakeFiles/spotfi_localize.dir/localize/gdop.cpp.o" "gcc" "src/CMakeFiles/spotfi_localize.dir/localize/gdop.cpp.o.d"
  "/root/repo/src/localize/pathloss.cpp" "src/CMakeFiles/spotfi_localize.dir/localize/pathloss.cpp.o" "gcc" "src/CMakeFiles/spotfi_localize.dir/localize/pathloss.cpp.o.d"
  "/root/repo/src/localize/spotfi_localizer.cpp" "src/CMakeFiles/spotfi_localize.dir/localize/spotfi_localizer.cpp.o" "gcc" "src/CMakeFiles/spotfi_localize.dir/localize/spotfi_localizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_music.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_csi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
