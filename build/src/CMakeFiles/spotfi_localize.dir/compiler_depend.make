# Empty compiler generated dependencies file for spotfi_localize.
# This may be replaced when dependencies are built.
