file(REMOVE_RECURSE
  "libspotfi_localize.a"
)
