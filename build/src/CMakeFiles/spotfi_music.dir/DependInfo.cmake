
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/music/crlb.cpp" "src/CMakeFiles/spotfi_music.dir/music/crlb.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/crlb.cpp.o.d"
  "/root/repo/src/music/esprit.cpp" "src/CMakeFiles/spotfi_music.dir/music/esprit.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/esprit.cpp.o.d"
  "/root/repo/src/music/estimators.cpp" "src/CMakeFiles/spotfi_music.dir/music/estimators.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/estimators.cpp.o.d"
  "/root/repo/src/music/peaks.cpp" "src/CMakeFiles/spotfi_music.dir/music/peaks.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/peaks.cpp.o.d"
  "/root/repo/src/music/steering.cpp" "src/CMakeFiles/spotfi_music.dir/music/steering.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/steering.cpp.o.d"
  "/root/repo/src/music/subspace.cpp" "src/CMakeFiles/spotfi_music.dir/music/subspace.cpp.o" "gcc" "src/CMakeFiles/spotfi_music.dir/music/subspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_csi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
