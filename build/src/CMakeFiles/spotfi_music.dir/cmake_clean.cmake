file(REMOVE_RECURSE
  "CMakeFiles/spotfi_music.dir/music/crlb.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/crlb.cpp.o.d"
  "CMakeFiles/spotfi_music.dir/music/esprit.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/esprit.cpp.o.d"
  "CMakeFiles/spotfi_music.dir/music/estimators.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/estimators.cpp.o.d"
  "CMakeFiles/spotfi_music.dir/music/peaks.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/peaks.cpp.o.d"
  "CMakeFiles/spotfi_music.dir/music/steering.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/steering.cpp.o.d"
  "CMakeFiles/spotfi_music.dir/music/subspace.cpp.o"
  "CMakeFiles/spotfi_music.dir/music/subspace.cpp.o.d"
  "libspotfi_music.a"
  "libspotfi_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
