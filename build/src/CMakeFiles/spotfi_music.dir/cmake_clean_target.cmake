file(REMOVE_RECURSE
  "libspotfi_music.a"
)
