# Empty compiler generated dependencies file for spotfi_music.
# This may be replaced when dependencies are built.
