file(REMOVE_RECURSE
  "libspotfi_phy.a"
)
