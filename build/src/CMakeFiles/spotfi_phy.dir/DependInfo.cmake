
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/fft.cpp" "src/CMakeFiles/spotfi_phy.dir/phy/fft.cpp.o" "gcc" "src/CMakeFiles/spotfi_phy.dir/phy/fft.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/CMakeFiles/spotfi_phy.dir/phy/ofdm.cpp.o" "gcc" "src/CMakeFiles/spotfi_phy.dir/phy/ofdm.cpp.o.d"
  "/root/repo/src/phy/phy_csi_source.cpp" "src/CMakeFiles/spotfi_phy.dir/phy/phy_csi_source.cpp.o" "gcc" "src/CMakeFiles/spotfi_phy.dir/phy/phy_csi_source.cpp.o.d"
  "/root/repo/src/phy/transceiver.cpp" "src/CMakeFiles/spotfi_phy.dir/phy/transceiver.cpp.o" "gcc" "src/CMakeFiles/spotfi_phy.dir/phy/transceiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
