file(REMOVE_RECURSE
  "CMakeFiles/spotfi_phy.dir/phy/fft.cpp.o"
  "CMakeFiles/spotfi_phy.dir/phy/fft.cpp.o.d"
  "CMakeFiles/spotfi_phy.dir/phy/ofdm.cpp.o"
  "CMakeFiles/spotfi_phy.dir/phy/ofdm.cpp.o.d"
  "CMakeFiles/spotfi_phy.dir/phy/phy_csi_source.cpp.o"
  "CMakeFiles/spotfi_phy.dir/phy/phy_csi_source.cpp.o.d"
  "CMakeFiles/spotfi_phy.dir/phy/transceiver.cpp.o"
  "CMakeFiles/spotfi_phy.dir/phy/transceiver.cpp.o.d"
  "libspotfi_phy.a"
  "libspotfi_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
