# Empty dependencies file for spotfi_phy.
# This may be replaced when dependencies are built.
