
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/gmm.cpp" "src/CMakeFiles/spotfi_cluster.dir/cluster/gmm.cpp.o" "gcc" "src/CMakeFiles/spotfi_cluster.dir/cluster/gmm.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/CMakeFiles/spotfi_cluster.dir/cluster/kmeans.cpp.o" "gcc" "src/CMakeFiles/spotfi_cluster.dir/cluster/kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
