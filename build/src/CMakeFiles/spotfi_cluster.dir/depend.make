# Empty dependencies file for spotfi_cluster.
# This may be replaced when dependencies are built.
