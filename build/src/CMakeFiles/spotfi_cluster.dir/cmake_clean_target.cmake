file(REMOVE_RECURSE
  "libspotfi_cluster.a"
)
