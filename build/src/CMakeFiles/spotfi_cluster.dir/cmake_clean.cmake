file(REMOVE_RECURSE
  "CMakeFiles/spotfi_cluster.dir/cluster/gmm.cpp.o"
  "CMakeFiles/spotfi_cluster.dir/cluster/gmm.cpp.o.d"
  "CMakeFiles/spotfi_cluster.dir/cluster/kmeans.cpp.o"
  "CMakeFiles/spotfi_cluster.dir/cluster/kmeans.cpp.o.d"
  "libspotfi_cluster.a"
  "libspotfi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
