file(REMOVE_RECURSE
  "libspotfi_testbed.a"
)
