# Empty dependencies file for spotfi_testbed.
# This may be replaced when dependencies are built.
