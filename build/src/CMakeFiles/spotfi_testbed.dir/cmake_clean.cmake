file(REMOVE_RECURSE
  "CMakeFiles/spotfi_testbed.dir/testbed/deployment.cpp.o"
  "CMakeFiles/spotfi_testbed.dir/testbed/deployment.cpp.o.d"
  "CMakeFiles/spotfi_testbed.dir/testbed/experiment.cpp.o"
  "CMakeFiles/spotfi_testbed.dir/testbed/experiment.cpp.o.d"
  "libspotfi_testbed.a"
  "libspotfi_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
