file(REMOVE_RECURSE
  "CMakeFiles/spotfi_common.dir/common/angles.cpp.o"
  "CMakeFiles/spotfi_common.dir/common/angles.cpp.o.d"
  "CMakeFiles/spotfi_common.dir/common/error.cpp.o"
  "CMakeFiles/spotfi_common.dir/common/error.cpp.o.d"
  "CMakeFiles/spotfi_common.dir/common/rng.cpp.o"
  "CMakeFiles/spotfi_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/spotfi_common.dir/common/stats.cpp.o"
  "CMakeFiles/spotfi_common.dir/common/stats.cpp.o.d"
  "libspotfi_common.a"
  "libspotfi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
