file(REMOVE_RECURSE
  "libspotfi_common.a"
)
