# Empty dependencies file for spotfi_common.
# This may be replaced when dependencies are built.
