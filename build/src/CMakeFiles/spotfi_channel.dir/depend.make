# Empty dependencies file for spotfi_channel.
# This may be replaced when dependencies are built.
