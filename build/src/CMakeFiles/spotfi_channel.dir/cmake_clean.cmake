file(REMOVE_RECURSE
  "CMakeFiles/spotfi_channel.dir/channel/csi_synthesis.cpp.o"
  "CMakeFiles/spotfi_channel.dir/channel/csi_synthesis.cpp.o.d"
  "CMakeFiles/spotfi_channel.dir/channel/multipath.cpp.o"
  "CMakeFiles/spotfi_channel.dir/channel/multipath.cpp.o.d"
  "libspotfi_channel.a"
  "libspotfi_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotfi_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
