file(REMOVE_RECURSE
  "libspotfi_channel.a"
)
