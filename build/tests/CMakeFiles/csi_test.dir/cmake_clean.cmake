file(REMOVE_RECURSE
  "CMakeFiles/csi_test.dir/csi_test.cpp.o"
  "CMakeFiles/csi_test.dir/csi_test.cpp.o.d"
  "csi_test"
  "csi_test.pdb"
  "csi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
