# Empty compiler generated dependencies file for csi_test.
# This may be replaced when dependencies are built.
