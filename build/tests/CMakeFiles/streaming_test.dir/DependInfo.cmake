
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/streaming_test.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/streaming_test.dir/streaming_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spotfi_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_music.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spotfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
