# Empty compiler generated dependencies file for localize_test.
# This may be replaced when dependencies are built.
