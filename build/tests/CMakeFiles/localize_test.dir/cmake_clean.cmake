file(REMOVE_RECURSE
  "CMakeFiles/localize_test.dir/localize_test.cpp.o"
  "CMakeFiles/localize_test.dir/localize_test.cpp.o.d"
  "localize_test"
  "localize_test.pdb"
  "localize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
