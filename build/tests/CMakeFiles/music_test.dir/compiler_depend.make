# Empty compiler generated dependencies file for music_test.
# This may be replaced when dependencies are built.
