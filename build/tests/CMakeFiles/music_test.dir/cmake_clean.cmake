file(REMOVE_RECURSE
  "CMakeFiles/music_test.dir/music_test.cpp.o"
  "CMakeFiles/music_test.dir/music_test.cpp.o.d"
  "music_test"
  "music_test.pdb"
  "music_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
