file(REMOVE_RECURSE
  "CMakeFiles/intel5300_test.dir/intel5300_test.cpp.o"
  "CMakeFiles/intel5300_test.dir/intel5300_test.cpp.o.d"
  "intel5300_test"
  "intel5300_test.pdb"
  "intel5300_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intel5300_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
