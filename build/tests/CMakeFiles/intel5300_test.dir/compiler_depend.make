# Empty compiler generated dependencies file for intel5300_test.
# This may be replaced when dependencies are built.
