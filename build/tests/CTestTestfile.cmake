# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/csi_test[1]_include.cmake")
include("/root/repo/build/tests/music_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/localize_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/intel5300_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
