file(REMOVE_RECURSE
  "CMakeFiles/office_tracking.dir/office_tracking.cpp.o"
  "CMakeFiles/office_tracking.dir/office_tracking.cpp.o.d"
  "office_tracking"
  "office_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
