# Empty dependencies file for office_tracking.
# This may be replaced when dependencies are built.
