file(REMOVE_RECURSE
  "CMakeFiles/lost_device.dir/lost_device.cpp.o"
  "CMakeFiles/lost_device.dir/lost_device.cpp.o.d"
  "lost_device"
  "lost_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lost_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
