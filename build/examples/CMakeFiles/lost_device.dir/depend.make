# Empty dependencies file for lost_device.
# This may be replaced when dependencies are built.
