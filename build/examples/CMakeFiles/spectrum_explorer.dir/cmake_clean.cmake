file(REMOVE_RECURSE
  "CMakeFiles/spectrum_explorer.dir/spectrum_explorer.cpp.o"
  "CMakeFiles/spectrum_explorer.dir/spectrum_explorer.cpp.o.d"
  "spectrum_explorer"
  "spectrum_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
