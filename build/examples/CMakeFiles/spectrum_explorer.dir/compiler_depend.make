# Empty compiler generated dependencies file for spectrum_explorer.
# This may be replaced when dependencies are built.
