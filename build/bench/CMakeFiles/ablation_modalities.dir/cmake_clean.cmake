file(REMOVE_RECURSE
  "CMakeFiles/ablation_modalities.dir/ablation_modalities.cpp.o"
  "CMakeFiles/ablation_modalities.dir/ablation_modalities.cpp.o.d"
  "ablation_modalities"
  "ablation_modalities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
