# Empty compiler generated dependencies file for ablation_modalities.
# This may be replaced when dependencies are built.
