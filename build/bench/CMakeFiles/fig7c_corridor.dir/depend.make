# Empty dependencies file for fig7c_corridor.
# This may be replaced when dependencies are built.
