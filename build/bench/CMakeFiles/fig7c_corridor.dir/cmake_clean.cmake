file(REMOVE_RECURSE
  "CMakeFiles/fig7c_corridor.dir/fig7c_corridor.cpp.o"
  "CMakeFiles/fig7c_corridor.dir/fig7c_corridor.cpp.o.d"
  "fig7c_corridor"
  "fig7c_corridor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_corridor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
