# Empty compiler generated dependencies file for fig5_sanitization.
# This may be replaced when dependencies are built.
