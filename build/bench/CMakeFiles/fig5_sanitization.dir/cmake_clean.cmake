file(REMOVE_RECURSE
  "CMakeFiles/fig5_sanitization.dir/fig5_sanitization.cpp.o"
  "CMakeFiles/fig5_sanitization.dir/fig5_sanitization.cpp.o.d"
  "fig5_sanitization"
  "fig5_sanitization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sanitization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
