file(REMOVE_RECURSE
  "CMakeFiles/fig5c_clusters.dir/fig5c_clusters.cpp.o"
  "CMakeFiles/fig5c_clusters.dir/fig5c_clusters.cpp.o.d"
  "fig5c_clusters"
  "fig5c_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
