# Empty dependencies file for fig5c_clusters.
# This may be replaced when dependencies are built.
