file(REMOVE_RECURSE
  "CMakeFiles/fig8a_aoa.dir/fig8a_aoa.cpp.o"
  "CMakeFiles/fig8a_aoa.dir/fig8a_aoa.cpp.o.d"
  "fig8a_aoa"
  "fig8a_aoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_aoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
