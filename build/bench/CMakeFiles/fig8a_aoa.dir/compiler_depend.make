# Empty compiler generated dependencies file for fig8a_aoa.
# This may be replaced when dependencies are built.
