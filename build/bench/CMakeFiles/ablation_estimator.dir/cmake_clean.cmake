file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimator.dir/ablation_estimator.cpp.o"
  "CMakeFiles/ablation_estimator.dir/ablation_estimator.cpp.o.d"
  "ablation_estimator"
  "ablation_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
