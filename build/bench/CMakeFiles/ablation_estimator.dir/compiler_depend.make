# Empty compiler generated dependencies file for ablation_estimator.
# This may be replaced when dependencies are built.
