# Empty dependencies file for crlb_efficiency.
# This may be replaced when dependencies are built.
