file(REMOVE_RECURSE
  "CMakeFiles/crlb_efficiency.dir/crlb_efficiency.cpp.o"
  "CMakeFiles/crlb_efficiency.dir/crlb_efficiency.cpp.o.d"
  "crlb_efficiency"
  "crlb_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crlb_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
