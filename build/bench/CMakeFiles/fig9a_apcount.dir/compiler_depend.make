# Empty compiler generated dependencies file for fig9a_apcount.
# This may be replaced when dependencies are built.
