file(REMOVE_RECURSE
  "CMakeFiles/fig9a_apcount.dir/fig9a_apcount.cpp.o"
  "CMakeFiles/fig9a_apcount.dir/fig9a_apcount.cpp.o.d"
  "fig9a_apcount"
  "fig9a_apcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_apcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
