file(REMOVE_RECURSE
  "CMakeFiles/fig7b_nlos.dir/fig7b_nlos.cpp.o"
  "CMakeFiles/fig7b_nlos.dir/fig7b_nlos.cpp.o.d"
  "fig7b_nlos"
  "fig7b_nlos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_nlos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
