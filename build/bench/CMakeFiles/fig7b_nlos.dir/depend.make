# Empty dependencies file for fig7b_nlos.
# This may be replaced when dependencies are built.
