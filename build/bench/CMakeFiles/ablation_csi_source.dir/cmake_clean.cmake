file(REMOVE_RECURSE
  "CMakeFiles/ablation_csi_source.dir/ablation_csi_source.cpp.o"
  "CMakeFiles/ablation_csi_source.dir/ablation_csi_source.cpp.o.d"
  "ablation_csi_source"
  "ablation_csi_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_csi_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
