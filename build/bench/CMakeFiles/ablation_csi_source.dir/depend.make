# Empty dependencies file for ablation_csi_source.
# This may be replaced when dependencies are built.
