file(REMOVE_RECURSE
  "CMakeFiles/perf_music.dir/perf_music.cpp.o"
  "CMakeFiles/perf_music.dir/perf_music.cpp.o.d"
  "perf_music"
  "perf_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
