# Empty dependencies file for perf_music.
# This may be replaced when dependencies are built.
