# Empty compiler generated dependencies file for fig8b_selection.
# This may be replaced when dependencies are built.
