file(REMOVE_RECURSE
  "CMakeFiles/fig8b_selection.dir/fig8b_selection.cpp.o"
  "CMakeFiles/fig8b_selection.dir/fig8b_selection.cpp.o.d"
  "fig8b_selection"
  "fig8b_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
