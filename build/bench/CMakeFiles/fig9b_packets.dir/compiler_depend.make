# Empty compiler generated dependencies file for fig9b_packets.
# This may be replaced when dependencies are built.
