file(REMOVE_RECURSE
  "CMakeFiles/fig9b_packets.dir/fig9b_packets.cpp.o"
  "CMakeFiles/fig9b_packets.dir/fig9b_packets.cpp.o.d"
  "fig9b_packets"
  "fig9b_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
