file(REMOVE_RECURSE
  "CMakeFiles/ablation_weights.dir/ablation_weights.cpp.o"
  "CMakeFiles/ablation_weights.dir/ablation_weights.cpp.o.d"
  "ablation_weights"
  "ablation_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
