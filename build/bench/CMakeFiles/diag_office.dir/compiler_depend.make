# Empty compiler generated dependencies file for diag_office.
# This may be replaced when dependencies are built.
