file(REMOVE_RECURSE
  "CMakeFiles/diag_office.dir/diag_office.cpp.o"
  "CMakeFiles/diag_office.dir/diag_office.cpp.o.d"
  "diag_office"
  "diag_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
