# Empty compiler generated dependencies file for fig7a_office.
# This may be replaced when dependencies are built.
