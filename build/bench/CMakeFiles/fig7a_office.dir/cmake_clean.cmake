file(REMOVE_RECURSE
  "CMakeFiles/fig7a_office.dir/fig7a_office.cpp.o"
  "CMakeFiles/fig7a_office.dir/fig7a_office.cpp.o.d"
  "fig7a_office"
  "fig7a_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
