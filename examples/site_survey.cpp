// Site survey: map localization accuracy across a deployment.
//
// Sweeps a grid of probe locations over the chosen deployment, localizes
// each with a short packet burst, and renders an ASCII accuracy map —
// the planning workflow an operator would run before rolling SpotFi out
// on a floor ("where do I need another AP?"). Cells under 0.5 m print
// '#', under 1 m '+', under 2 m '.', worse ' '.
//
//   ./site_survey [office|nlos|corridor] [packets] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::string which = argc >= 2 ? argv[1] : "office";
  ExperimentConfig config;
  config.packets_per_group =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const std::uint64_t seed =
      argc >= 4 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  const Deployment deployment = which == "corridor" ? corridor_deployment()
                                : which == "nlos"   ? high_nlos_deployment()
                                                    : office_deployment();
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const ExperimentRunner runner(link, deployment, config);

  const double step_x = (deployment.area_max.x - deployment.area_min.x) / 12.0;
  const double step_y = (deployment.area_max.y - deployment.area_min.y) / 7.0;
  std::printf("site survey — %s deployment, %zu packets per probe, "
              "cell %.1f x %.1f m, seed=%llu\n\n",
              deployment.name.c_str(), config.packets_per_group, step_x,
              step_y, static_cast<unsigned long long>(seed));

  Rng rng(seed);
  std::vector<double> errors;
  std::vector<std::string> map_rows;
  for (double y = deployment.area_max.y - step_y / 2.0;
       y > deployment.area_min.y; y -= step_y) {
    std::string row;
    for (double x = deployment.area_min.x + step_x / 2.0;
         x < deployment.area_max.x; x += step_x) {
      const Vec2 probe{x, y};
      const TargetRun run = runner.run_target(probe, rng);
      errors.push_back(run.error_m);
      row += run.error_m < 0.5   ? '#'
             : run.error_m < 1.0 ? '+'
             : run.error_m < 2.0 ? '.'
                                 : ' ';
    }
    map_rows.push_back(row);
  }

  std::printf("accuracy map ('#' <0.5 m, '+' <1 m, '.' <2 m, ' ' worse); "
              "top row is y = %.1f m:\n\n", deployment.area_max.y);
  for (const auto& row : map_rows) std::printf("   |%s|\n", row.c_str());
  std::printf("\nAPs at:");
  for (const auto& ap : deployment.aps) {
    std::printf(" (%.1f, %.1f)", ap.position.x, ap.position.y);
  }
  std::printf("\n\nsurvey summary: median %.2f m, p80 %.2f m over %zu "
              "probes\n",
              median(errors), percentile(errors, 80.0), errors.size());
  return 0;
}
