// Corrupt-capture drill: replay damaged CSI trace files through the
// streaming localizer and watch ingestion degrade gracefully.
//
// Five office APs capture CSI for a static target. Each AP's capture is
// serialized to the SPFI trace format and then run through the byte-level
// fault injector — bit flips, mid-record truncations, garbage runs,
// duplicated frames, and length-field tampering, the kinds of damage a
// flaky SD card or a dropped TCP proxy inflicts on real logs. The
// resynchronizing TraceReader recovers everything salvageable, the
// localizer replays both the clean and the corrupted captures, and the
// final IngestReport accounts for every byte of input.
//
//   ./corrupt_capture [seed] [corruption]
//
// `corruption` is the per-frame probability of each fault class
// (default 0.05).
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "channel/faults.hpp"
#include "common/stats.hpp"
#include "core/streaming.hpp"
#include "csi/trace.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

std::vector<std::uint8_t> to_bytes(const std::ostringstream& os) {
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

struct ReplayResult {
  std::vector<double> errors;
  std::size_t fixes = 0;
  IngestReport report;
};

/// Replays one trace blob per AP through StreamingLocalizer::ingest.
ReplayResult replay(const LinkConfig& link, const Deployment& deployment,
                    const std::vector<ApCapture>& captures,
                    const std::vector<std::vector<std::uint8_t>>& blobs,
                    Vec2 target, std::uint64_t seed, bool narrate) {
  StreamingConfig cfg;
  cfg.group_size = 5;
  cfg.server.localizer.area_min = deployment.area_min;
  cfg.server.localizer.area_max = deployment.area_max;
  // Offline replay feeds the APs one whole file at a time, so stream-time
  // silence between APs is an artifact, not an outage: keep the strict
  // all-APs round gating.
  cfg.degradation.enabled = false;
  StreamingLocalizer server(link, cfg);
  for (const auto& capture : captures) server.add_ap(capture.pose);

  ReplayResult result;
  Rng rng(seed);
  for (std::size_t a = 0; a < blobs.size(); ++a) {
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(blobs[a].data()),
                    blobs[a].size()));
    TraceReader reader(is);
    const auto fixes = server.ingest(a, reader, rng);
    if (narrate) {
      std::printf("AP %zu: %s\n", a, reader.report().summary().c_str());
    }
    for (const auto& fix : fixes) {
      result.errors.push_back(distance(fix.raw, target));
    }
    result.fixes += fixes.size();
  }
  result.report = server.ingest_report();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const double corruption = argc >= 3 ? std::atof(argv[2]) : 0.05;
  if (corruption < 0.0 || corruption > 1.0) {
    std::fprintf(stderr, "corruption must be in [0, 1] (got %s)\n", argv[2]);
    return 1;
  }

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 40;
  const ExperimentRunner runner(link, office_deployment(), config);

  const Vec2 target{6.0, 3.5};
  Rng capture_rng(seed);
  const auto captures = runner.simulate_captures(target, capture_rng);

  // Serialize each AP's capture as an SPFI trace file (in memory here;
  // write_trace(path, ...) produces the same bytes on disk).
  std::vector<std::vector<std::uint8_t>> clean;
  for (const auto& capture : captures) {
    std::ostringstream os;
    write_trace(os, link, capture.packets);
    clean.push_back(to_bytes(os));
  }

  // Damage every fault class at the same per-frame rate.
  ByteFaultPlan plan;
  plan.bit_flip_prob = corruption;
  plan.truncate_prob = corruption;
  plan.garbage_prob = corruption;
  plan.duplicate_prob = corruption;
  plan.length_tamper_prob = corruption;

  Rng corrupt_rng(seed + 1);
  std::vector<std::vector<std::uint8_t>> dirty;
  std::size_t bytes_in = 0;
  std::size_t frames_hit = 0;
  std::size_t frames_total = 0;
  for (std::size_t a = 0; a < clean.size(); ++a) {
    ByteFaultStats stats;
    dirty.push_back(corrupt_trace_log(clean[a], plan, corrupt_rng, &stats));
    bytes_in += dirty.back().size();
    frames_hit += stats.frames_corrupted();
    frames_total += captures[a].packets.size();
  }

  std::printf("corrupt-capture drill — %zu APs, %zu packets/AP, seed=%llu\n",
              captures.size(), captures.front().packets.size(),
              static_cast<unsigned long long>(seed));
  std::printf("injector damaged %zu of %zu frames (%.0f%% per class)\n\n",
              frames_hit, frames_total, 100.0 * corruption);

  const auto faulty = replay(link, runner.deployment(), captures, dirty,
                             target, seed + 2, /*narrate=*/true);
  const auto pristine = replay(link, runner.deployment(), captures, clean,
                               target, seed + 2, /*narrate=*/false);

  std::printf("\ncombined ingest: %s\n", faulty.report.summary().c_str());
  const std::size_t consumed = faulty.report.bytes_consumed();
  std::printf("byte accounting: %zu accepted + %zu skipped = %zu of %zu in\n",
              faulty.report.bytes_accepted, faulty.report.bytes_skipped,
              consumed, bytes_in);

  std::printf("\nclean replay  : %zu fixes", pristine.fixes);
  if (!pristine.errors.empty()) {
    std::printf(", median error %.2f m", median(pristine.errors));
  }
  std::printf("\ncorrupt replay: %zu fixes", faulty.fixes);
  if (!faulty.errors.empty()) {
    std::printf(", median error %.2f m", median(faulty.errors));
  }
  std::printf("\n");
  return consumed == bytes_in ? 0 : 1;
}
