// Office tracking: localize a target moving through the office testbed.
//
// A cart (as in the paper's experiments) rolls along a waypoint path; at
// each stop it transmits a short burst and the SpotFi server produces a
// location fix. Prints the track and summarizes the error statistics —
// the "indoor navigation" workload the paper's corridors section
// motivates, run in the office deployment.
//
//   ./office_tracking [seed] [packets_per_fix]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.hpp"
#include "core/tracker.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  ExperimentConfig config;
  config.packets_per_group =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 15;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const ExperimentRunner runner(link, office_deployment(), config);

  // Waypoints: a loop around the office interior.
  std::vector<Vec2> waypoints;
  for (double x = 2.5; x <= 13.5; x += 1.5) waypoints.push_back({x, 2.5});
  for (double y = 4.0; y <= 8.0; y += 1.5) waypoints.push_back({13.5, y});
  for (double x = 12.0; x >= 2.5; x -= 1.5) waypoints.push_back({x, 8.0});
  for (double y = 6.5; y >= 4.0; y -= 1.5) waypoints.push_back({2.5, y});

  std::printf("office tracking — %zu waypoints, %zu packets per fix, "
              "seed=%llu\n\n",
              waypoints.size(), config.packets_per_group,
              static_cast<unsigned long long>(seed));
  std::printf("%-5s %-14s %-14s %-8s %-14s %-8s\n", "stop", "truth",
              "raw fix", "err[m]", "tracked", "err[m]");

  // The cart rolls ~1 m/s between stops; a constant-velocity Kalman
  // tracker smooths the fix stream and rejects gross outliers.
  TrackerConfig tracker_cfg;
  tracker_cfg.measurement_sigma = 0.9;
  tracker_cfg.acceleration_sigma = 1.6;
  LocationTracker tracker(tracker_cfg);

  Rng rng(seed);
  std::vector<double> raw_errors, tracked_errors;
  for (std::size_t i = 0; i < waypoints.size(); ++i) {
    const TargetRun run = runner.run_target(waypoints[i], rng);
    const double t = 1.5 * static_cast<double>(i);  // seconds per stop
    const Vec2 tracked = tracker.update(run.round.location.position, t);
    raw_errors.push_back(run.error_m);
    tracked_errors.push_back(distance(tracked, run.truth));
    std::printf("%-5zu (%5.2f,%5.2f) (%5.2f,%5.2f) %8.2f (%5.2f,%5.2f) "
                "%8.2f%s\n",
                i, run.truth.x, run.truth.y,
                run.round.location.position.x,
                run.round.location.position.y, run.error_m, tracked.x,
                tracked.y, tracked_errors.back(),
                tracker.last_fix_rejected() ? "  [fix gated]" : "");
  }

  std::printf("\nraw fixes   : median %.2f m, p80 %.2f m, worst %.2f m\n",
              median(raw_errors), percentile(raw_errors, 80.0),
              percentile(raw_errors, 100.0));
  std::printf("with tracker: median %.2f m, p80 %.2f m, worst %.2f m "
              "over %zu fixes\n",
              median(tracked_errors), percentile(tracked_errors, 80.0),
              percentile(tracked_errors, 100.0), tracked_errors.size());
  return 0;
}
