// Flaky uplink drill: two APs stream CSI to the localization session
// over lossy, jittery simulated links, and the transport layer makes the
// stream reliable anyway.
//
// Each AP gets its own connection (sender + receiver pair) over a link
// that drops 5% of frames and jitters delivery by up to 50 ms. Midway
// through the run AP 0's link goes hard-down for long enough to trip the
// liveness timeout, forcing a full disconnect/reconnect cycle that
// resumes from the last acked frame. The example prints fixes as they
// fire, the reconnect when it happens, and closes with the per-AP
// TransportStats and the localization error — demonstrating that a flaky
// network changes *when* packets arrive, never *what* gets computed.
//
//   ./flaky_uplink [seed] [duration_s] [loss_prob] [jitter_s] [delay_s]
//                  [link_seed]
//
// The link parameters default to the classic drill (5% loss, 50 ms
// jitter, 5 ms delay, link_seed = seed + 10), so a chaos-test failure
// printed with a seed replays from this binary verbatim:
//
//   ./flaky_uplink 1 8 0.05 0.05 0.005 <SPOTFI_CHAOS_SEED>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/session_manager.hpp"
#include "testbed/experiment.hpp"
#include "transport/transport.hpp"

namespace {

using namespace spotfi;

void print_stats(const char* label, const TransportStats& tx,
                 const TransportStats& rx, const LinkStats& wire) {
  std::printf("%s\n", label);
  std::printf("  sender  : sent %llu = acked %llu + pending %llu + "
              "failed %llu; %llu transmissions (%llu retransmits), "
              "%llu reconnects\n",
              (unsigned long long)tx.sent, (unsigned long long)tx.acked,
              (unsigned long long)tx.pending, (unsigned long long)tx.failed,
              (unsigned long long)tx.transmissions,
              (unsigned long long)tx.retransmissions,
              (unsigned long long)tx.reconnects);
  std::printf("  receiver: received %llu = delivered %llu + dup %llu + "
              "out-of-window %llu + corrupt %llu + buffered %llu\n",
              (unsigned long long)rx.received,
              (unsigned long long)rx.delivered,
              (unsigned long long)rx.duplicates,
              (unsigned long long)rx.out_of_window,
              (unsigned long long)rx.corrupt, (unsigned long long)rx.buffered);
  std::printf("  wire    : %llu dropped, %llu duplicated, %llu corrupted, "
              "%llu swallowed by the outage\n",
              (unsigned long long)wire.dropped,
              (unsigned long long)wire.duplicated,
              (unsigned long long)wire.corrupted,
              (unsigned long long)wire.disconnect_dropped);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 7) {
    std::fprintf(stderr,
                 "usage: %s [seed] [duration_s] [loss_prob] [jitter_s] "
                 "[delay_s] [link_seed]\n",
                 argv[0]);
    return 1;
  }
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const double duration_s = argc >= 3 ? std::atof(argv[2]) : 8.0;
  if (duration_s < 2.0) {
    std::fprintf(stderr, "duration must be >= 2 s (got %s)\n",
                 argc >= 3 ? argv[2] : "?");
    return 1;
  }
  const double loss_prob = argc >= 4 ? std::atof(argv[3]) : 0.05;
  if (loss_prob < 0.0 || loss_prob > 0.5) {
    std::fprintf(stderr, "loss_prob must be in [0, 0.5] (got %s)\n", argv[3]);
    return 1;
  }
  const double jitter_s = argc >= 5 ? std::atof(argv[4]) : 0.050;
  const double delay_s = argc >= 6 ? std::atof(argv[5]) : 0.005;
  if (jitter_s < 0.0 || delay_s < 0.0) {
    std::fprintf(stderr, "jitter_s and delay_s must be >= 0\n");
    return 1;
  }
  // A chaos failure prints the link seed that produced it; passing it
  // here replays the same fault schedule through the example.
  const std::uint64_t link_seed =
      argc >= 7 ? static_cast<std::uint64_t>(std::atoll(argv[6])) : seed + 10;

  const LinkConfig link_cfg = LinkConfig::intel5300_40mhz();
  Deployment deployment = office_deployment();
  deployment.aps.resize(2);  // two APs is the minimum that triangulates
  ExperimentConfig ecfg;
  ecfg.packets_per_group = static_cast<std::size_t>(duration_s / 0.1);
  const ExperimentRunner runner(link_cfg, deployment, ecfg);
  const Vec2 target{6.0, 3.5};
  Rng capture_rng(seed);
  const auto captures = runner.simulate_captures(target, capture_rng);

  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(link_cfg, mgr_cfg);
  SessionConfig scfg;
  scfg.streaming.group_size = 5;
  scfg.streaming.server.localizer.area_min = runner.deployment().area_min;
  scfg.streaming.server.localizer.area_max = runner.deployment().area_max;
  for (const auto& c : captures) scfg.aps.push_back(c.pose);
  scfg.seed = seed;
  const SessionId session = manager.open_session(scfg);

  // The wire: 5% loss, up to 50 ms of jitter, and a hard outage on
  // AP 0's link for the middle of the run — longer than the liveness
  // timeout, so the sender must reconnect and resume.
  const double outage_begin = duration_s * 0.4;
  const double outage_end = outage_begin + 1.2;
  TransportConfig tcfg;
  tcfg.rto_initial_s = 0.1;
  tcfg.heartbeat_interval_s = 0.25;
  tcfg.liveness_timeout_s = 0.8;

  struct Uplink {
    std::unique_ptr<LinkSimulator> link;
    std::unique_ptr<TransportSender> sender;
    std::unique_ptr<TransportReceiver> receiver;
    std::size_t next_packet = 0;
    std::uint64_t reconnects_seen = 0;
  };
  std::vector<Uplink> uplinks(captures.size());
  for (std::size_t a = 0; a < captures.size(); ++a) {
    LinkFaultModel model;
    model.delay_s = delay_s;
    model.jitter_s = jitter_s;
    model.drop_prob = loss_prob;
    if (a == 0) model.down_windows = {{outage_begin, outage_end}};
    uplinks[a].link = std::make_unique<LinkSimulator>(model, link_seed + a);
    tcfg.seed = seed + 20 + a;
    uplinks[a].sender =
        std::make_unique<TransportSender>(*uplinks[a].link, tcfg);
    uplinks[a].receiver = std::make_unique<TransportReceiver>(
        *uplinks[a].link, make_session_sink(manager, session), tcfg);
  }

  std::printf("flaky uplink — 2 APs, %.1f s stream, seed=%llu, "
              "link_seed=%llu\n",
              duration_s, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(link_seed));
  std::printf("links: %.1f%% loss, %.0f ms jitter, %.0f ms delay; "
              "AP 0 hard-down in [%.1f, %.1f) s\n\n",
              loss_prob * 100.0, jitter_s * 1000.0, delay_s * 1000.0,
              outage_begin, outage_end);

  std::vector<double> errors;
  const std::size_t n_packets = captures.front().packets.size();
  const double dt = 0.005;
  for (double t = 0.0; t < duration_s + 30.0; t += dt) {
    bool all_idle = true;
    for (std::size_t a = 0; a < uplinks.size(); ++a) {
      Uplink& up = uplinks[a];
      // Pace the capture stream by its own timestamps; the send window
      // applies backpressure when the wire falls behind.
      while (up.next_packet < n_packets &&
             captures[a].packets[up.next_packet].timestamp_s <= t) {
        CsiPacket packet = captures[a].packets[up.next_packet];
        if (!up.sender->send(a, packet, t).has_value()) break;
        ++up.next_packet;
      }
      up.sender->tick(t);
      up.receiver->tick(t);
      const TransportStats tx = up.sender->stats();
      if (tx.reconnects > up.reconnects_seen) {
        up.reconnects_seen = tx.reconnects;
        std::printf("t=%5.2f  AP %zu reconnected, resuming after seq %llu\n",
                    t, a,
                    (unsigned long long)up.sender->highest_acked());
      }
      all_idle = all_idle && up.next_packet == n_packets &&
                 up.sender->quiescent() && up.receiver->quiescent();
    }
    for (const auto& fix : manager.pump(session)) {
      const double err = distance(fix.raw, target);
      errors.push_back(err);
      std::printf("t=%5.2f  fix (%5.2f,%5.2f) err %.2f m%s\n", t, fix.raw.x,
                  fix.raw.y, err, fix.degraded ? " [degraded]" : "");
    }
    if (all_idle) break;
  }

  std::printf("\n");
  for (std::size_t a = 0; a < uplinks.size(); ++a) {
    char label[32];
    std::snprintf(label, sizeof(label), "AP %zu uplink:", a);
    print_stats(label, uplinks[a].sender->stats(),
                uplinks[a].receiver->stats(), uplinks[a].link->stats());
  }
  // The cross-layer report: merged transport counters next to the
  // session's own, tying delivered == accepted end to end.
  std::vector<const TransportSender*> senders;
  std::vector<const TransportReceiver*> receivers;
  for (const Uplink& up : uplinks) {
    senders.push_back(up.sender.get());
    receivers.push_back(up.receiver.get());
  }
  const SessionIngestStats report =
      session_ingest_report(manager, session, senders, receivers);
  std::printf("session : offered %llu = accepted %llu + shed %llu "
              "(transport delivered %llu)\n",
              (unsigned long long)report.session.offered,
              (unsigned long long)report.session.accepted,
              (unsigned long long)report.session.shed_packets,
              (unsigned long long)report.transport.delivered);
  if (!errors.empty()) {
    std::printf("fixes   : %zu, median error %.2f m, p80 %.2f m\n",
                errors.size(), median(errors), percentile(errors, 80.0));
  }
  return 0;
}
