// AP outage drill: stream CSI through the fault injector and watch the
// pipeline degrade gracefully instead of stalling.
//
// Six office APs stream packets for a static target. Mid-run, one AP
// "crashes" (a silent outage window) while a second suffers heavy packet
// loss. The streaming server keeps firing quorum deadline rounds, marks
// the silent AP degraded and then dead, and picks it back up the moment
// packets flow again. Prints a timeline of health transitions and fixes,
// then the error statistics with and without the outage.
//
//   ./ap_outage [seed] [duration_s]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "channel/faults.hpp"
#include "common/stats.hpp"
#include "core/streaming.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

/// One full streaming run; returns raw fix errors. With `narrate`, prints
/// fixes and AP-health transitions as they happen.
std::vector<double> run_stream(const std::vector<ApCapture>& captures,
                               const Deployment& deployment, Vec2 target,
                               const FaultPlan& plan, std::uint64_t seed,
                               bool narrate) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  StreamingConfig cfg;
  cfg.group_size = 5;
  cfg.server.localizer.area_min = deployment.area_min;
  cfg.server.localizer.area_max = deployment.area_max;
  cfg.degradation.round_deadline_s = 0.5;
  cfg.degradation.degraded_after_s = 0.5;
  cfg.degradation.dead_after_s = 1.0;
  StreamingLocalizer server(link, cfg);
  for (const auto& capture : captures) server.add_ap(capture.pose);

  FaultInjector injector(plan, captures.size());
  Rng rng(seed);
  std::vector<ApHealth> last_health(captures.size(), ApHealth::kHealthy);
  std::vector<double> errors;

  const std::size_t n_packets = captures.front().packets.size();
  for (std::size_t p = 0; p < n_packets; ++p) {
    for (std::size_t a = 0; a < captures.size(); ++a) {
      for (const auto& packet :
           injector.inject(a, captures[a].packets[p], rng)) {
        const auto fix = server.push(a, packet, rng);
        if (fix && narrate) {
          std::string tags;
          if (fix->degraded) tags += " [degraded]";
          for (const auto& reason : fix->reasons) {
            tags += "\n         - " + reason;
          }
          std::printf("t=%5.2f  fix (%5.2f,%5.2f) err %.2f m, %zu APs%s\n",
                      fix->time_s, fix->raw.x, fix->raw.y,
                      distance(fix->raw, target), fix->aps_used.size(),
                      tags.c_str());
        }
        if (fix) errors.push_back(distance(fix->raw, target));
      }
      if (narrate && server.ap_health(a) != last_health[a]) {
        std::printf("t=%5.2f  AP %zu: %s -> %s\n",
                    captures[a].packets[p].timestamp_s, a,
                    to_string(last_health[a]), to_string(server.ap_health(a)));
        last_health[a] = server.ap_health(a);
      }
    }
  }
  if (narrate) {
    std::printf("\n%zu fixes, %zu failed rounds, %zu packets screened out\n",
                server.fix_count(), server.failed_rounds(),
                server.rejected_count());
    const FaultStats& stats = injector.stats();
    std::printf("injected faults: %zu swallowed by outage, %zu lost, "
                "%zu delivered\n",
                stats.outage_swallowed, stats.lost, stats.delivered);
    for (std::size_t a = 0; a < server.ap_count(); ++a) {
      const ApHealthState& state = server.ap_state(a);
      std::printf("AP %zu: %s, %zu accepted, %zu recoveries\n", a,
                  to_string(state.health), state.accepted, state.recoveries);
    }
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const double duration_s = argc >= 3 ? std::atof(argv[2]) : 6.0;
  if (duration_s < 1.0) {
    std::fprintf(stderr, "duration must be >= 1 s (got %s)\n",
                 argc >= 3 ? argv[2] : "?");
    return 1;
  }

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = static_cast<std::size_t>(duration_s / 0.1);
  const ExperimentRunner runner(link, office_deployment(), config);

  const Vec2 target{6.0, 3.5};
  Rng capture_rng(seed);
  const auto captures = runner.simulate_captures(target, capture_rng);

  // AP 2 crashes for the middle third of the run; AP 4 drops a third of
  // its packets throughout.
  FaultPlan plan;
  plan.aps.resize(captures.size());
  plan.aps[2].outages = {{duration_s / 3.0, 2.0 * duration_s / 3.0}};
  plan.aps[4].loss_prob = 0.35;

  std::printf("AP outage drill — %zu APs, %.1f s stream, seed=%llu\n",
              captures.size(), duration_s,
              static_cast<unsigned long long>(seed));
  std::printf("AP 2 silent in [%.1f, %.1f) s; AP 4 loses 35%% of packets\n\n",
              duration_s / 3.0, 2.0 * duration_s / 3.0);

  const auto faulty_errors = run_stream(captures, runner.deployment(), target,
                                        plan, seed + 1, /*narrate=*/true);
  const auto clean_errors = run_stream(captures, runner.deployment(), target,
                                       FaultPlan{}, seed + 1,
                                       /*narrate=*/false);

  if (!faulty_errors.empty() && !clean_errors.empty()) {
    std::printf("\nclean stream : median %.2f m, p80 %.2f m over %zu fixes\n",
                median(clean_errors), percentile(clean_errors, 80.0),
                clean_errors.size());
    std::printf("faulty stream: median %.2f m, p80 %.2f m over %zu fixes\n",
                median(faulty_errors), percentile(faulty_errors, 80.0),
                faulty_errors.size());
  }
  return 0;
}
