// Lost device: localize a static, obstructed target from recorded traces.
//
// The scenario the paper motivates: a phone lost somewhere in a building,
// transmitting a short burst. The target sits inside a walled room of the
// high-NLoS testbed, so most APs have no line of sight. This example also
// exercises the offline trace path: each AP's capture is written to a
// csitool-style binary trace file, read back, and only then processed —
// exactly the "APs export CSI to a central server" flow of Fig. 1.
//
//   ./lost_device [target_x target_y] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/angles.hpp"
#include "csi/trace.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;

  Vec2 target{2.5, 7.0};  // inside the left room
  std::uint64_t seed = 1;
  if (argc >= 3) {
    target.x = std::atof(argv[1]);
    target.y = std::atof(argv[2]);
  }
  if (argc >= 4) seed = static_cast<std::uint64_t>(std::atoll(argv[3]));

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 20;
  const ExperimentRunner runner(link, high_nlos_deployment(), config);
  const auto& deployment = runner.deployment();

  std::printf("lost device scenario — high-NLoS deployment, target "
              "(%.1f, %.1f), %zu LoS APs of %zu\n",
              target.x, target.y, count_los_aps(deployment, target),
              deployment.aps.size());

  // Capture at every AP and export to trace files.
  Rng rng(seed);
  const auto captures = runner.simulate_captures(target, rng);
  const auto trace_dir =
      std::filesystem::temp_directory_path() / "spotfi_lost_device";
  std::filesystem::create_directories(trace_dir);
  std::vector<std::string> trace_files;
  for (std::size_t a = 0; a < captures.size(); ++a) {
    const auto path = trace_dir / ("ap" + std::to_string(a) + ".dat");
    write_trace(path.string(), link, captures[a].packets);
    trace_files.push_back(path.string());
  }
  std::printf("wrote %zu trace files to %s\n", trace_files.size(),
              trace_dir.string().c_str());

  // Server side: read the traces back and localize.
  std::vector<ApCapture> from_disk;
  for (std::size_t a = 0; a < trace_files.size(); ++a) {
    const Trace trace = read_trace(trace_files[a]);
    ApCapture capture;
    capture.pose = deployment.aps[a];
    capture.packets = trace.packets;
    from_disk.push_back(std::move(capture));
  }

  ServerConfig server_config;
  server_config.localizer.area_min = deployment.area_min;
  server_config.localizer.area_max = deployment.area_max;
  const SpotFiServer server(link, server_config);
  const LocalizationRound round = server.localize(from_disk, rng);

  std::printf("\n%-4s %-12s %-6s %-12s %-12s %-10s\n", "AP", "position",
              "LoS", "true AoA", "picked AoA", "likelihood");
  const auto truth = runner.ground_truth(target);
  for (std::size_t a = 0; a < round.ap_results.size(); ++a) {
    const auto& obs = round.ap_results[a].observation;
    std::printf("%-4zu (%5.1f,%4.1f) %-6s %9.1f deg %9.1f deg %10.3g\n", a,
                obs.pose.position.x, obs.pose.position.y,
                truth[a].line_of_sight ? "yes" : "no",
                rad_to_deg(truth[a].direct_aoa_rad),
                rad_to_deg(obs.direct_aoa_rad), obs.likelihood);
  }
  const Vec2 est = round.location.position;
  std::printf("\ndevice found near (%.2f, %.2f); true location "
              "(%.2f, %.2f); error %.2f m\n",
              est.x, est.y, target.x, target.y, distance(est, target));
  return 0;
}
