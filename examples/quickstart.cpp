// Quickstart: localize one static target end-to-end.
//
// Builds the paper's office testbed, places a target, synthesizes the
// impaired CSI each AP would capture, and runs the full SpotFi pipeline
// (Algorithm 2): sanitize -> joint AoA/ToF MUSIC -> cluster -> direct-path
// likelihood -> weighted localization. Prints the per-AP direct-path
// picks and the final location estimate.
//
//   ./quickstart [target_x target_y] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/angles.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;

  Vec2 target{6.0, 3.5};
  std::uint64_t seed = 2;
  if (argc >= 3) {
    target.x = std::atof(argv[1]);
    target.y = std::atof(argv[2]);
  }
  if (argc >= 4) seed = static_cast<std::uint64_t>(std::atoll(argv[3]));

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 15;
  const ExperimentRunner runner(link, office_deployment(), config);

  std::printf("SpotFi quickstart — office deployment (16 m x 10 m, %zu APs)\n",
              runner.deployment().aps.size());
  std::printf("target ground truth: (%.2f, %.2f), %zu packets per AP\n\n",
              target.x, target.y, config.packets_per_group);

  Rng rng(seed);
  const TargetRun run = runner.run_target(target, rng);

  std::printf("%-4s %-12s %-10s %-12s %-12s %-10s\n", "AP", "position",
              "LoS", "true AoA", "est AoA", "likelihood");
  for (std::size_t i = 0; i < run.round.ap_results.size(); ++i) {
    const auto& obs = run.round.ap_results[i].observation;
    const auto& truth = run.ap_truth[i];
    std::printf("%-4zu (%5.1f,%4.1f) %-10s %9.1f deg %9.1f deg %10.3g\n", i,
                obs.pose.position.x, obs.pose.position.y,
                truth.line_of_sight ? "yes" : "no",
                rad_to_deg(truth.direct_aoa_rad),
                rad_to_deg(obs.direct_aoa_rad), obs.likelihood);
  }

  const Vec2 est = run.round.location.position;
  std::printf("\nestimated location : (%.2f, %.2f)\n", est.x, est.y);
  std::printf("localization error : %.2f m\n", run.error_m);
  std::printf("fitted path loss   : p0 = %.1f dBm, exponent = %.2f\n",
              run.round.location.path_loss.p0_dbm,
              run.round.location.path_loss.exponent);
  return 0;
}
