// Crash recovery drill: a durable localization session dies mid-stream
// and a fresh process resumes it without losing or double-counting a
// single packet or fix.
//
// Six APs stream a simulated capture into a DurableSessionManager that
// journals every accepted packet and emitted fix to a write-ahead log
// and snapshots session state as it goes. Partway through, a seeded
// CrashInjector kills the "process" at one of the durability I/O kill
// points (the same hook the crash-sweep tests drive). A second manager
// then recovers from the surviving files — latest valid snapshot,
// journal suffix replay, torn-tail truncation — re-emits the fixes the
// dying process had already made durable, and finishes the stream. The
// example closes by comparing every fix against an uncrashed reference
// run: byte-identical, and the admission stats partition exactly.
//
//   ./crash_recovery [seed] [kill_point 0..6]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "durability/durability.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;
};

Feed make_feed(std::uint64_t seed) {
  ExperimentConfig ecfg;
  ecfg.packets_per_group = 6;
  ExperimentRunner runner(LinkConfig::intel5300_40mhz(), office_deployment(),
                          ecfg);
  Rng rng(seed);
  auto captures = runner.simulate_captures({6.0, 3.5}, rng);
  return {std::move(runner), std::move(captures)};
}

SessionConfig session_config(const Feed& feed, std::uint64_t seed) {
  SessionConfig scfg;
  scfg.streaming.group_size = 3;
  scfg.streaming.server.localizer.area_min = feed.runner.deployment().area_min;
  scfg.streaming.server.localizer.area_max = feed.runner.deployment().area_max;
  for (const auto& c : feed.captures) scfg.aps.push_back(c.pose);
  scfg.seed = seed;
  scfg.overload.queue_capacity = 512;
  return scfg;
}

/// Offers packet `i` of the interleaved feed (AP-major round-robin) and
/// pumps, collecting fixes keyed by durable round index — the dedup key
/// recovery consumers use.
void drive(DurableSessionManager& dm, SessionId id, const Feed& feed,
           std::map<std::uint64_t, LocationFix>& fixes, bool announce) {
  const std::size_t naps = feed.captures.size();
  const std::size_t per_ap = feed.captures.front().packets.size();
  for (std::uint64_t i = dm.manager().applied_packets(id);
       i < per_ap * naps; ++i) {
    const std::size_t p = static_cast<std::size_t>(i) / naps;
    const std::size_t a = static_cast<std::size_t>(i) % naps;
    (void)dm.offer(id, a, feed.captures[a].packets[p]);
    for (LocationFix& fix : dm.pump(id)) {
      if (announce && !fixes.contains(fix.durable_round_index)) {
        std::printf("  fix #%llu  (%5.2f, %5.2f)\n",
                    (unsigned long long)fix.durable_round_index, fix.raw.x,
                    fix.raw.y);
      }
      fixes.emplace(fix.durable_round_index, std::move(fix));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 3) {
    std::fprintf(stderr, "usage: %s [seed] [kill_point 0..6]\n", argv[0]);
    return 1;
  }
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7;
  // Default to the subtlest point: the snapshot is published but the
  // dying pump() never returned the fix — recovery must re-emit it from
  // the journaled values.
  const int kill_point = argc >= 3 ? std::atoi(argv[2]) : 6;
  if (kill_point < 0 || kill_point > 6) {
    std::fprintf(stderr, "kill_point must be in 0..6 (got %s)\n", argv[2]);
    return 1;
  }
  const auto point = static_cast<CrashPoint>(kill_point);

  const Feed feed = make_feed(seed);
  const std::uint64_t mgr_seed = 77;
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto config_of = [&](SessionId) { return session_config(feed, mgr_seed); };

  // Reference: the same stream with durability off — what the fixes
  // *should* be, to the bit.
  std::map<std::uint64_t, LocationFix> want;
  {
    DurableSessionManager plain(link, mgr_cfg, DurabilityConfig{});
    (void)plain.recover(config_of);
    const SessionId id = plain.open_session(session_config(feed, mgr_seed));
    drive(plain, id, feed, want, /*announce=*/false);
  }

  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("spotfi-crash-recovery-" + std::to_string(seed)))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CrashInjector injector;
  DurabilityConfig dcfg;
  dcfg.enabled = true;
  dcfg.dir = dir;
  dcfg.snapshot_every_fixes = 1;
  dcfg.crash = &injector;
  injector.arm(point, /*nth_visit=*/2, seed);

  std::printf("crash recovery drill — seed=%llu, killing at %s (visit 2)\n",
              (unsigned long long)seed, to_string(point));
  std::printf("journal + snapshots in %s\n\n", dir.c_str());

  // Incarnation 1: stream until the injector pulls the plug.
  std::map<std::uint64_t, LocationFix> got;
  bool crashed = false;
  {
    DurableSessionManager dm(link, mgr_cfg, dcfg);
    (void)dm.recover(config_of);
    const SessionId id = dm.open_session(session_config(feed, mgr_seed));
    std::printf("incarnation 1 (session %llu):\n", (unsigned long long)id);
    try {
      drive(dm, id, feed, got, /*announce=*/true);
    } catch (const CrashInjected& e) {
      crashed = true;
      std::printf("  *** crash injected: %s ***\n", e.what());
    }
  }
  injector.disarm();
  if (!crashed) {
    std::printf("  stream finished before visit 2 of %s — rerun with "
                "another seed or kill point\n", to_string(point));
  }

  // Incarnation 2: a fresh process finds the files and resumes.
  {
    DurableSessionManager dm(link, mgr_cfg, dcfg);
    const RecoveryReport report = dm.recover(config_of);
    std::printf("\nincarnation 2 recovery:\n");
    std::printf("  snapshot %s (seq %llu), %llu journal records replayed "
                "(%llu packets), %llu torn bytes truncated\n",
                report.snapshot_loaded ? "loaded" : "absent",
                (unsigned long long)report.snapshot_seq,
                (unsigned long long)report.records_replayed,
                (unsigned long long)report.packets_replayed,
                (unsigned long long)report.journal_bytes_truncated);
    std::printf("  %llu sessions recovered, %zu fixes re-emitted, "
                "%llu digest mismatches\n",
                (unsigned long long)report.sessions_recovered,
                report.recovered_fixes.size(),
                (unsigned long long)report.fix_mismatches);
    const SessionId id = dm.manager().session_ids().empty()
                             ? dm.open_session(session_config(feed, mgr_seed))
                             : dm.manager().session_ids().front();
    for (const auto& [rid, fix] : report.recovered_fixes) {
      if (rid == id) got.emplace(fix.durable_round_index, fix);
    }
    std::printf("resuming stream:\n");
    drive(dm, id, feed, got, /*announce=*/true);
  }

  // The verdict: every fix byte-identical to the uncrashed run.
  std::size_t mismatches = want.size() != got.size() ? 1 : 0;
  for (const auto& [round, fix] : want) {
    const auto it = got.find(round);
    if (it == got.end() || std::memcmp(&it->second.raw, &fix.raw,
                                       sizeof(Vec2)) != 0) {
      ++mismatches;
    }
  }
  std::printf("\n%zu/%zu fixes recovered byte-identical to the uncrashed "
              "run — %s\n",
              got.size() - mismatches, want.size(),
              mismatches == 0 ? "exactly-once across the crash"
                              : "MISMATCH (bug!)");
  std::filesystem::remove_all(dir);
  return mismatches == 0 ? 0 : 1;
}
