// Spectrum explorer: visualize what SpotFi's super-resolution sees.
//
// Synthesizes a packet burst for one (target, AP) link in the office
// testbed, prints the ground-truth multipath, renders the joint
// (AoA, ToF) MUSIC pseudospectrum as an ASCII heat map, and prints the
// cluster table with Eq. 8 likelihoods so you can watch the direct-path
// selection at work.
//
//   ./spectrum_explorer [target_x target_y] [ap_index] [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/angles.hpp"
#include "core/ap_processor.hpp"
#include "csi/sanitize.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;

  Vec2 target{6.0, 3.5};
  std::size_t ap_index = 0;
  std::uint64_t seed = 1;
  if (argc >= 3) {
    target.x = std::atof(argv[1]);
    target.y = std::atof(argv[2]);
  }
  if (argc >= 4) ap_index = static_cast<std::size_t>(std::atoi(argv[3]));
  if (argc >= 5) seed = static_cast<std::uint64_t>(std::atoll(argv[4]));

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 15;
  const ExperimentRunner runner(link, office_deployment(), config);
  const auto& deployment = runner.deployment();
  if (ap_index >= deployment.aps.size()) {
    std::fprintf(stderr, "AP index out of range (%zu APs)\n",
                 deployment.aps.size());
    return 1;
  }
  const ArrayPose pose = deployment.aps[ap_index];

  // Ground truth multipath for this link.
  MultipathConfig mp_cfg;
  mp_cfg.carrier_hz = link.carrier_hz;
  const auto paths = enumerate_paths(deployment.plan, deployment.scatterers,
                                     pose, target, mp_cfg);
  std::printf("link: target (%.1f, %.1f) -> AP %zu at (%.1f, %.1f)\n\n",
              target.x, target.y, ap_index, pose.position.x,
              pose.position.y);
  std::printf("ground-truth multipath (strongest first):\n");
  std::printf("  %-8s %-10s %-10s %-8s\n", "kind", "AoA [deg]", "ToF [ns]",
              "gain[dB]");
  for (const auto& p : paths) {
    std::printf("  %-8s %10.1f %10.1f %8.1f\n",
                p.is_direct ? "direct" : "indirect", rad_to_deg(p.aoa_rad),
                p.tof_s * 1e9, p.gain_db);
  }

  // One packet's sanitized spectrum as ASCII art.
  Rng rng(seed);
  const auto captures = runner.simulate_captures(target, rng);
  const auto& packets = captures[ap_index].packets;
  const JointMusicEstimator estimator(link);
  const CMatrix clean = sanitize_tof(packets.front().csi, link).csi;
  const AoaTofSpectrum sp = estimator.spectrum(clean);

  std::printf("\njoint MUSIC pseudospectrum, packet 0 (log scale, "
              "rows = AoA every 5 deg, cols = ToF):\n");
  const char* shades = " .:-=+*#%@";
  double max_log = -1e300, min_log = 1e300;
  for (const double v : sp.values.flat()) {
    max_log = std::max(max_log, std::log10(v));
    min_log = std::min(min_log, std::log10(v));
  }
  for (std::size_t i = 0; i < sp.aoa_grid_rad.size(); i += 5) {
    std::printf("%6.0f ", rad_to_deg(sp.aoa_grid_rad[i]));
    for (std::size_t j = 0; j < sp.tof_grid_s.size(); j += 4) {
      const double f = (std::log10(sp.values(i, j)) - min_log) /
                       std::max(max_log - min_log, 1e-12);
      std::printf("%c", shades[static_cast<int>(f * 9.0)]);
    }
    std::printf("\n");
  }
  std::printf("       ToF %.0f ns ... %.0f ns\n", sp.tof_grid_s.front() * 1e9,
              sp.tof_grid_s.back() * 1e9);

  // Full packet-group processing: cluster table.
  const ApProcessor processor(link, pose, {});
  const ApResult result = processor.process(packets, rng);
  std::printf("\nclusters over %zu packets (Eq. 8; direct pick first):\n",
              packets.size());
  std::printf("  %-10s %-10s %-8s %-10s %-10s %-12s\n", "AoA [deg]",
              "ToF [ns]", "count", "sigma_aoa", "sigma_tof", "likelihood");
  for (const auto& c : result.clusters) {
    std::printf("  %10.1f %10.1f %8zu %10.4f %10.4f %12.4g\n",
                rad_to_deg(c.mean_aoa_rad), c.mean_tof_s * 1e9, c.count,
                c.sigma_aoa, c.sigma_tof, c.likelihood);
  }
  std::printf("\ntrue direct AoA: %.1f deg; SpotFi picked %.1f deg\n",
              rad_to_deg(pose.aoa_of(target)),
              rad_to_deg(result.observation.direct_aoa_rad));
  return 0;
}
