// Edge-case tests for the numerical fault containment layer: the
// NumericsScope telemetry, the regularized retry ladders in the dense
// solvers, eigensolver diagnostics on defective/rank-deficient inputs,
// Levenberg-Marquardt's non-finite containment and per-parameter FD
// scaling, GMM flooring on coincident data, and degenerate GDOP geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/gmm.hpp"
#include "common/rng.hpp"
#include "linalg/eig_general.hpp"
#include "linalg/hermitian_eig.hpp"
#include "linalg/levmar.hpp"
#include "linalg/numerics.hpp"
#include "linalg/solve.hpp"
#include "localize/gdop.hpp"

namespace spotfi {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// --- NumericsScope / counters ---

TEST(NumericsScope, CountsOnlyWhileActive) {
  EXPECT_FALSE(numerics_scope_active());
  count_numerics(&NumericsCounters::cholesky_regularized);  // no-op, no scope
  {
    NumericsScope scope;
    EXPECT_TRUE(numerics_scope_active());
    count_numerics(&NumericsCounters::cholesky_regularized);
    count_numerics(&NumericsCounters::gdop_degenerate, 3);
    EXPECT_EQ(scope.counters().cholesky_regularized, 1u);
    EXPECT_EQ(scope.counters().gdop_degenerate, 3u);
    EXPECT_EQ(scope.counters().total(), 4u);
    EXPECT_TRUE(scope.counters().any());
  }
  EXPECT_FALSE(numerics_scope_active());
}

TEST(NumericsScope, NestedScopesFoldIntoParent) {
  NumericsScope outer;
  count_numerics(&NumericsCounters::lstsq_regularized);
  {
    NumericsScope inner;
    count_numerics(&NumericsCounters::lstsq_regularized);
    count_numerics(&NumericsCounters::eigh_nonconverged);
    // While the inner scope is active, events land there, not in outer.
    EXPECT_EQ(inner.counters().lstsq_regularized, 1u);
    EXPECT_EQ(outer.counters().lstsq_regularized, 1u);
  }
  // Destruction folded the inner tallies into the outer scope.
  EXPECT_EQ(outer.counters().lstsq_regularized, 2u);
  EXPECT_EQ(outer.counters().eigh_nonconverged, 1u);
}

TEST(NumericsCounters, SummaryNamesOnlyNonZero) {
  NumericsCounters c;
  EXPECT_EQ(c.summary(), "");
  c.cholesky_regularized = 2;
  c.gmm_variance_floored = 1;
  const std::string s = c.summary();
  EXPECT_NE(s.find("cholesky-regularized=2"), std::string::npos);
  EXPECT_NE(s.find("gmm-variance-floored=1"), std::string::npos);
  EXPECT_EQ(s.find("lstsq"), std::string::npos);
}

// --- cholesky / solve ladders ---

TEST(RetryLadder, CholeskyRecoversSingularPsdMatrix) {
  // Rank-1 PSD: strictly not positive definite, so the exact factorization
  // fails and the ladder must step in.
  const RMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)cholesky(a), NumericalError);

  NumericsScope scope;
  const RegularizedCholesky rc = cholesky(a, NumericsPolicy::defaults());
  EXPECT_GT(rc.ridge, 0.0);
  EXPECT_GE(rc.attempts, 1);
  EXPECT_GE(scope.counters().cholesky_regularized, 1u);
  // The factor reproduces the damped matrix: L L^T = A + ridge I.
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 2; ++k) s += rc.l(i, k) * rc.l(j, k);
      const double expected = a(i, j) + (i == j ? rc.ridge : 0.0);
      EXPECT_NEAR(s, expected, 1e-9 * (1.0 + std::abs(expected)));
    }
  }
}

TEST(RetryLadder, CholeskyRejectsNonFiniteInput) {
  RMatrix a{{1.0, 0.0}, {0.0, 1.0}};
  a(0, 1) = kNan;
  EXPECT_THROW((void)cholesky(a, NumericsPolicy::defaults()), NumericalError);
}

TEST(RetryLadder, StrictCholeskyCatchesNanPivot) {
  // A NaN on the diagonal must fail the factorization, not propagate.
  RMatrix a{{1.0, 0.0}, {0.0, 1.0}};
  a(1, 1) = kNan;
  EXPECT_THROW((void)cholesky(a), NumericalError);
}

TEST(RetryLadder, LstsqRecoversRankDeficientSystem) {
  // Columns are exact multiples: rank 1, so strict QR refuses.
  const RMatrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const RVector b{1.0, 2.0, 3.0};
  EXPECT_THROW((void)lstsq(a, b), NumericalError);

  NumericsScope scope;
  const RVector x = lstsq(a, b, NumericsPolicy::defaults());
  EXPECT_GE(scope.counters().lstsq_regularized +
                scope.counters().lstsq_pseudoinverse,
            1u);
  // b lies in the column space, so the regularized solution must still
  // reproduce it: A x ~= b.
  for (std::size_t i = 0; i < 3; ++i) {
    double ax = 0.0;
    for (std::size_t j = 0; j < 2; ++j) ax += a(i, j) * x[j];
    EXPECT_NEAR(ax, b[i], 1e-5);
  }
}

TEST(RetryLadder, SolveComplexRegularizesSingularMatrix) {
  const CMatrix a{{cplx(1.0, 0.0), cplx(2.0, 0.0)},
                  {cplx(2.0, 0.0), cplx(4.0, 0.0)}};
  const CVector b{cplx(1.0, 0.0), cplx(2.0, 0.0)};
  EXPECT_THROW((void)solve_complex(a, b), NumericalError);

  NumericsScope scope;
  const CVector x = solve_complex(a, b, NumericsPolicy::defaults());
  EXPECT_GE(scope.counters().solve_regularized, 1u);
  // The rhs is in the range of A; the jittered solve must reproduce it.
  for (std::size_t i = 0; i < 2; ++i) {
    cplx ax{};
    for (std::size_t j = 0; j < 2; ++j) ax += a(i, j) * x[j];
    EXPECT_NEAR(std::abs(ax - b[i]), 0.0, 1e-5);
  }
}

TEST(RetryLadder, SolveComplexRejectsNonFiniteRhs) {
  const CMatrix a{{cplx(1.0, 0.0), cplx{}}, {cplx{}, cplx(1.0, 0.0)}};
  const CVector b{cplx(kNan, 0.0), cplx(1.0, 0.0)};
  EXPECT_THROW((void)solve_complex(a, b, NumericsPolicy::defaults()),
               NumericalError);
}

// --- eigh diagnostics ---

TEST(EighDiagnostics, RankOneOuterProductIsDiagnosedNotThrown) {
  // v v^H: one eigenvalue ||v||^2, the rest exactly zero — the covariance
  // MUSIC sees under a single fully coherent path bundle.
  Rng rng(7);
  const std::size_t n = 6;
  CVector v(n);
  for (auto& e : v) e = cplx(rng.normal(), rng.normal());
  CMatrix a(n, n);
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = v[i] * std::conj(v[j]);
    norm_sq += std::norm(v[i]);
  }

  const HermitianEig eig = eigh(a);
  EXPECT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues.back(), norm_sq, 1e-9 * norm_sq);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    EXPECT_NEAR(eig.eigenvalues[k], 0.0, 1e-9 * norm_sq);
  }
  // Exactly singular: rcond reports it, but that is a diagnostic, not an
  // error — rank deficiency is MUSIC's normal operating regime.
  EXPECT_LT(eig.rcond, 1e-9);
  // Eigenvectors stay orthonormal even for the defective-looking input.
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      cplx dot{};
      for (std::size_t i = 0; i < n; ++i) {
        dot += std::conj(eig.eigenvectors(i, p)) * eig.eigenvectors(i, q);
      }
      EXPECT_NEAR(std::abs(dot), p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(EighDiagnostics, ClusteredEigenvaluesStillConverge) {
  // Nearly equal eigenvalues are the classic Jacobi stress case.
  Rng rng(8);
  const std::size_t n = 5;
  CMatrix q(n, n);
  for (auto& e : q.flat()) e = cplx(rng.normal(), rng.normal());
  // Orthonormalize columns (Gram-Schmidt) to build a unitary basis.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      cplx proj{};
      for (std::size_t i = 0; i < n; ++i) proj += std::conj(q(i, k)) * q(i, j);
      for (std::size_t i = 0; i < n; ++i) q(i, j) -= proj * q(i, k);
    }
    double nv = 0.0;
    for (std::size_t i = 0; i < n; ++i) nv += std::norm(q(i, j));
    nv = std::sqrt(nv);
    for (std::size_t i = 0; i < n; ++i) q(i, j) /= nv;
  }
  const RVector lambda{1.0, 1.0 + 1e-13, 1.0 + 2e-13, 1.0 + 3e-13, 2.0};
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cplx s{};
      for (std::size_t k = 0; k < n; ++k) {
        s += q(i, k) * lambda[k] * std::conj(q(j, k));
      }
      a(i, j) = s;
    }
  }
  // Symmetrize exactly to stay within eigh's Hermitian tolerance.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const cplx avg = 0.5 * (a(i, j) + std::conj(a(j, i)));
      a(i, j) = avg;
      a(j, i) = std::conj(avg);
    }
  }
  const HermitianEig eig = eigh(a);
  EXPECT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues.back(), 2.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues.front(), 1.0, 1e-9);
}

TEST(EighDiagnostics, NanInputReportsNonConvergenceInsteadOfChurning) {
  CMatrix a(4, 4);
  a(1, 2) = cplx(kNan, 0.0);
  NumericsScope scope;
  const HermitianEig eig = eigh(a);
  EXPECT_FALSE(eig.converged);
  EXPECT_EQ(eig.rcond, 0.0);
  EXPECT_TRUE(std::isinf(eig.off_diagonal_residual));
  EXPECT_EQ(scope.counters().eigh_nonconverged, 1u);
}

// --- eig_general diagnostics ---

TEST(EigGeneralDiagnostics, JordanBlockDoesNotThrow) {
  // Nilpotent Jordan block: defective (single eigenvector), the worst
  // case for both QR deflation and inverse iteration. The contract is
  // "no throw, diagnostics populated" — not accuracy.
  const std::size_t n = 4;
  CMatrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = cplx(1.0, 0.0);
  const GeneralEig eig = eig_general(a);
  EXPECT_EQ(eig.eigenvalues.size(), n);
  for (const cplx& ev : eig.eigenvalues) {
    EXPECT_TRUE(std::isfinite(ev.real()) && std::isfinite(ev.imag()));
  }
  EXPECT_TRUE(std::isfinite(eig.max_residual));
}

TEST(EigGeneralDiagnostics, CleanMatrixHasTinyResidual) {
  Rng rng(9);
  CMatrix a(4, 4);
  for (auto& e : a.flat()) e = cplx(rng.normal(), rng.normal());
  const GeneralEig eig = eig_general(a);
  EXPECT_TRUE(eig.converged);
  EXPECT_LT(eig.max_residual, 1e-6);
}

TEST(EigGeneralDiagnostics, NanInputIsPoisonedNotLooped) {
  CMatrix a(3, 3);
  a(0, 0) = cplx(kNan, 0.0);
  NumericsScope scope;
  const GeneralEig eig = eig_general(a);
  EXPECT_FALSE(eig.converged);
  EXPECT_TRUE(std::isinf(eig.max_residual));
  EXPECT_EQ(scope.counters().eig_general_nonconverged, 1u);
}

// --- Levenberg-Marquardt containment ---

TEST(LevMarContainment, NonFiniteStartIsDivergedNotChurned) {
  const ResidualFn f = [](std::span<const double> x) {
    return RVector{x[0] - 1.0, kNan};
  };
  NumericsScope scope;
  const LevMarResult res = levenberg_marquardt(f, RVector{0.0});
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(res.reason.empty());
  EXPECT_GE(scope.counters().levmar_poisoned, 1u);
}

TEST(LevMarContainment, NanWallIsContainedAndResultStaysFinite) {
  // Residual valid only for x < 1; the optimum pull is toward larger x.
  // Trials crossing the wall must be rejected like uphill steps and the
  // returned iterate must stay finite.
  const ResidualFn f = [](std::span<const double> x) {
    if (x[0] >= 1.0) return RVector{kNan, kNan};
    return RVector{10.0 * (x[0] - 5.0), 0.1 * x[0]};
  };
  NumericsScope scope;
  const LevMarResult res = levenberg_marquardt(f, RVector{0.5});
  EXPECT_TRUE(std::isfinite(res.cost));
  EXPECT_TRUE(std::isfinite(res.x[0]));
  EXPECT_LT(res.x[0], 1.0);
  EXPECT_GT(res.nonfinite_trials, 0u);
  EXPECT_EQ(scope.counters().levmar_nonfinite_trials, res.nonfinite_trials);
}

TEST(LevMarContainment, FdScalesResolveTinyParameters) {
  // Root of sin(1e8 * p - 3): the parameter lives at 3e-8. The default
  // FD step (1e-6 * max(1, |p|) = 1e-6) spans 100 radians of the
  // argument — pure aliasing. A per-parameter scale of 1e-8 shrinks the
  // step to ~1e-14, giving an accurate derivative.
  const ResidualFn f = [](std::span<const double> p) {
    return RVector{std::sin(1e8 * p[0] - 3.0)};
  };
  LevMarOptions scaled;
  scaled.fd_scales = RVector{1e-8};
  const LevMarResult good = levenberg_marquardt(f, RVector{2e-8}, scaled);
  EXPECT_TRUE(good.converged);
  EXPECT_NEAR(good.x[0], 3e-8, 1e-10);

  const LevMarResult bad = levenberg_marquardt(f, RVector{2e-8});
  // Whatever the aliased run does, it cannot have tracked the true root
  // with a 1e-6 step; it must not be trusted at the 1e-10 level.
  EXPECT_TRUE(std::isfinite(bad.cost));
  EXPECT_GT(std::abs(bad.x[0] - 3e-8), 1e-9);
}

TEST(LevMarContainment, FdScalesShapeIsValidated) {
  const ResidualFn f = [](std::span<const double> x) {
    return RVector{x[0], x[1]};
  };
  LevMarOptions opts;
  opts.fd_scales = RVector{1.0};  // two parameters, one scale
  EXPECT_THROW(
      (void)levenberg_marquardt(f, RVector{1.0, 2.0}, opts),
      ContractViolation);
}

// --- GMM coincident data ---

TEST(GmmDegenerate, CoincidentPointsFloorVarianceAndCount) {
  RMatrix points(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    points(i, 0) = 0.4;
    points(i, 1) = -1.3;
  }
  Rng rng(11);
  NumericsScope scope;
  const GmmResult gmm = fit_gmm(points, 3, rng);
  EXPECT_GE(scope.counters().gmm_variance_floored, 1u);
  for (const auto& comp : gmm.components) {
    for (const double v : comp.variance) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GT(v, 0.0);
    }
    for (const double m : comp.mean) EXPECT_TRUE(std::isfinite(m));
  }
  EXPECT_TRUE(std::isfinite(gmm.log_likelihood));
}

TEST(GmmDegenerate, SpreadDataDoesNotCount) {
  Rng rng(12);
  RMatrix points(40, 2);
  for (auto& v : points.flat()) v = rng.normal();
  NumericsScope scope;
  (void)fit_gmm(points, 3, rng);
  EXPECT_EQ(scope.counters().gmm_variance_floored, 0u);
  EXPECT_EQ(scope.counters().gmm_nonfinite, 0u);
}

// --- GDOP degenerate geometry ---

TEST(GdopDegenerate, CollinearApsReturnErrorAndCount) {
  // Three APs on the x-axis, query point also on the x-axis: every
  // bearing is parallel, the Fisher information is rank one.
  const std::vector<ArrayPose> aps = {
      {{0.0, 0.0}, 0.0}, {{2.0, 0.0}, 0.0}, {{4.0, 0.0}, 0.0}};
  NumericsScope scope;
  const auto r = try_bearing_gdop(aps, {10.0, 0.0}, 0.02);
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find("degenerate"), std::string::npos);
  EXPECT_EQ(scope.counters().gdop_degenerate, 1u);
  EXPECT_THROW((void)bearing_gdop(aps, {10.0, 0.0}, 0.02), NumericalError);
}

TEST(GdopDegenerate, OffAxisPointIsWellPosed) {
  const std::vector<ArrayPose> aps = {
      {{0.0, 0.0}, 0.0}, {{2.0, 0.0}, 0.0}, {{4.0, 0.0}, 0.0}};
  NumericsScope scope;
  const auto r = try_bearing_gdop(aps, {2.0, 5.0}, 0.02);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->drms_m, 0.0);
  EXPECT_GE(r->major_m, r->minor_m);
  EXPECT_EQ(scope.counters().gdop_degenerate, 0u);
}

}  // namespace
}  // namespace spotfi
