// Tests for the Intel 5300 / csitool compatibility layer: bit-exact
// payload round trips, RSSI/AGC scaling per get_scaled_csi, permutation
// decoding, and framing robustness against corrupt logs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "common/rng.hpp"
#include "csi/intel5300.hpp"
#include "music/estimators.hpp"

namespace spotfi {
namespace {

BfeeRecord random_record(Rng& rng, std::uint8_t n_rx = 3) {
  BfeeRecord rec;
  rec.timestamp_low = static_cast<std::uint32_t>(rng());
  rec.bfee_count = static_cast<std::uint16_t>(rng());
  rec.n_rx = n_rx;
  rec.n_tx = 1;
  rec.rssi_a = 60;
  rec.rssi_b = 58;
  rec.rssi_c = 0;  // absent
  rec.noise = -90;
  rec.agc = 30;
  rec.antenna_sel = 0x24;
  rec.csi = CMatrix(n_rx, 30);
  for (auto& v : rec.csi.flat()) {
    v = cplx(std::floor(rng.uniform(-128.0, 128.0)),
             std::floor(rng.uniform(-128.0, 128.0)));
  }
  return rec;
}

TEST(Csitool, PayloadRoundTripIsBitExact) {
  Rng rng(1);
  std::vector<BfeeRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(random_record(rng));

  std::stringstream ss;
  write_csitool_log(ss, records);
  const auto back = read_csitool_log(ss);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].timestamp_low, records[i].timestamp_low);
    EXPECT_EQ(back[i].bfee_count, records[i].bfee_count);
    EXPECT_EQ(back[i].n_rx, records[i].n_rx);
    EXPECT_EQ(back[i].rssi_a, records[i].rssi_a);
    EXPECT_EQ(back[i].rssi_b, records[i].rssi_b);
    EXPECT_EQ(back[i].noise, records[i].noise);
    EXPECT_EQ(back[i].agc, records[i].agc);
    EXPECT_EQ(back[i].antenna_sel, records[i].antenna_sel);
    // Quantized CSI is integers in [-128, 127]: bit-exact round trip.
    EXPECT_EQ(back[i].csi, records[i].csi);
  }
}

TEST(Csitool, SingleAndDualAntennaRecords) {
  Rng rng(2);
  std::vector<BfeeRecord> records{random_record(rng, 1),
                                  random_record(rng, 2)};
  std::stringstream ss;
  write_csitool_log(ss, records);
  const auto back = read_csitool_log(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].csi.rows(), 1u);
  EXPECT_EQ(back[1].csi.rows(), 2u);
  EXPECT_EQ(back[0].csi, records[0].csi);
  EXPECT_EQ(back[1].csi, records[1].csi);
}

TEST(Csitool, TotalRssMatchesToolFormula) {
  BfeeRecord rec;
  rec.rssi_a = 60;
  rec.rssi_b = 0;
  rec.rssi_c = 0;
  rec.agc = 30;
  // dbm = db(dbinv(60)) - 44 - 30 = 60 - 74.
  EXPECT_NEAR(rec.total_rss_dbm(), -14.0, 1e-9);
  rec.rssi_b = 60;  // two equal antennas: +3 dB
  EXPECT_NEAR(rec.total_rss_dbm(), -11.0, 0.02);
}

TEST(Csitool, NoRssiThrows) {
  BfeeRecord rec;
  EXPECT_THROW(rec.total_rss_dbm(), ContractViolation);
}

TEST(Csitool, PermutationDecoding) {
  BfeeRecord rec;
  rec.antenna_sel = 0x24;  // 0b100100: perm = {0, 1, 2}
  const auto perm = rec.permutation();
  EXPECT_EQ(perm[0], 0u);
  EXPECT_EQ(perm[1], 1u);
  EXPECT_EQ(perm[2], 2u);
  rec.antenna_sel = 0b00'01'10;  // perm = {2, 1, 0}
  const auto swapped = rec.permutation();
  EXPECT_EQ(swapped[0], 2u);
  EXPECT_EQ(swapped[1], 1u);
  EXPECT_EQ(swapped[2], 0u);
}

TEST(Csitool, ScaledCsiPowerMatchesRssi) {
  // After scaling, CSI power per subcarrier should equal the SNR implied
  // by RSSI and noise (modulo the quantization-noise correction).
  Rng rng(3);
  BfeeRecord rec = random_record(rng);
  const CMatrix scaled = rec.scaled_csi();
  double pwr = 0.0;
  for (const auto& v : scaled.flat()) pwr += std::norm(v);
  pwr /= 30.0;  // per subcarrier
  const double rssi_pwr = std::pow(10.0, rec.total_rss_dbm() / 10.0);
  const double noise_pwr = std::pow(10.0, -90.0 / 10.0);
  // SNR-ish: pwr ~= rssi_pwr / (noise + quant); bound loosely above by
  // pure-thermal SNR.
  EXPECT_LE(pwr, rssi_pwr / noise_pwr * 1.001);
  EXPECT_GT(pwr, 0.0);
}

TEST(Csitool, ScaledCsiPreservesPhaseStructure) {
  Rng rng(4);
  const BfeeRecord rec = random_record(rng);
  const CMatrix scaled = rec.scaled_csi();
  for (std::size_t m = 0; m < rec.csi.rows(); ++m) {
    for (std::size_t n = 0; n < rec.csi.cols(); ++n) {
      if (std::abs(rec.csi(m, n)) == 0.0) continue;
      EXPECT_NEAR(std::arg(scaled(m, n)), std::arg(rec.csi(m, n)), 1e-12);
    }
  }
}

TEST(Csitool, MakeBfeeInverseOfScaledCsiUpToGain) {
  // Synthesize a physical CSI matrix, encode, decode, scale: the result
  // must match the original up to one complex gain (quantization noise
  // aside) — i.e. MUSIC sees the same thing.
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  const CsiSynthesizer synth(link, imp);
  PathComponent p;
  p.aoa_rad = deg_to_rad(25.0);
  p.tof_s = 60e-9;
  p.gain_db = -55.0;
  const CMatrix truth =
      synth.ideal_csi(std::span<const PathComponent>(&p, 1));

  const BfeeRecord rec = make_bfee(truth, -50.0, 1234);
  std::stringstream ss;
  write_csitool_log(ss, std::span<const BfeeRecord>(&rec, 1));
  const auto back = read_csitool_log(ss);
  ASSERT_EQ(back.size(), 1u);
  const CMatrix scaled = back[0].scaled_csi();

  // Compare ratios: scaled(m,n) / truth(m,n) should be a constant.
  const cplx ref = scaled(0, 0) / truth(0, 0);
  for (std::size_t m = 0; m < truth.rows(); ++m) {
    for (std::size_t n = 0; n < truth.cols(); ++n) {
      const cplx ratio = scaled(m, n) / truth(m, n);
      EXPECT_LT(std::abs(ratio - ref), 0.03 * std::abs(ref))
          << "m=" << m << " n=" << n;
    }
  }
}

TEST(Csitool, MusicWorksOnDecodedRecords) {
  // End-to-end through the real log format: estimates from the decoded,
  // scaled CSI must match the synthesized path.
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  const CsiSynthesizer synth(link, imp);
  PathComponent p;
  p.aoa_rad = deg_to_rad(-35.0);
  p.tof_s = 90e-9;
  p.gain_db = -50.0;
  p.is_direct = true;
  Rng rng(5);
  const CsiPacket packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);

  const BfeeRecord rec = make_bfee(packet.csi, packet.rssi_dbm);
  std::stringstream ss;
  write_csitool_log(ss, std::span<const BfeeRecord>(&rec, 1));
  const auto back = read_csitool_log(ss);
  const JointMusicEstimator estimator(link);
  const auto estimates = estimator.estimate(back[0].scaled_csi());
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), -35.0, 1.5);
}

TEST(Csitool, SkipsForeignFrames) {
  Rng rng(6);
  const BfeeRecord rec = random_record(rng);
  std::stringstream ss;
  // A foreign frame (code 0xC1, 4 bytes) precedes the bfee frame.
  const std::uint8_t foreign[] = {0x00, 0x05, 0xC1, 1, 2, 3, 4};
  ss.write(reinterpret_cast<const char*>(foreign), sizeof(foreign));
  write_csitool_log(ss, std::span<const BfeeRecord>(&rec, 1));
  const auto back = read_csitool_log(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].csi, rec.csi);
}

TEST(Csitool, TruncatedFrameThrows) {
  Rng rng(7);
  const BfeeRecord rec = random_record(rng);
  std::stringstream ss;
  write_csitool_log(ss, std::span<const BfeeRecord>(&rec, 1));
  std::string blob = ss.str();
  blob.resize(blob.size() - 11);
  std::stringstream cut(blob);
  EXPECT_THROW(read_csitool_log(cut), ParseError);
}

TEST(Csitool, CorruptLengthThrows) {
  Rng rng(8);
  const BfeeRecord rec = random_record(rng);
  std::stringstream ss;
  write_csitool_log(ss, std::span<const BfeeRecord>(&rec, 1));
  std::string blob = ss.str();
  blob[19] = static_cast<char>(0x7F);  // clobber the payload length field
  std::stringstream bad(blob);
  EXPECT_THROW(read_csitool_log(bad), ParseError);
}

TEST(Csitool, ZeroLengthFrameThrows) {
  std::stringstream ss;
  const std::uint8_t hdr[] = {0x00, 0x00};
  ss.write(reinterpret_cast<const char*>(hdr), 2);
  EXPECT_THROW(read_csitool_log(ss), ParseError);
}

TEST(Csitool, MissingFileThrows) {
  EXPECT_THROW(read_csitool_log(std::string("/nonexistent/log.dat")),
               ParseError);
}

TEST(Csitool, MakeBfeeValidatesInput) {
  EXPECT_THROW(make_bfee(CMatrix(3, 20), -50.0), ContractViolation);
  EXPECT_THROW(make_bfee(CMatrix(3, 30), -50.0), ContractViolation);  // zero
}

}  // namespace
}  // namespace spotfi
