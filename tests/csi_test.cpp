// Tests for CSI handling: phase unwrapping, Algorithm 1 sanitization
// (including its key invariance property), smoothed-CSI construction per
// Fig. 4, and the trace format round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "csi/phase.hpp"
#include "csi/sanitize.hpp"
#include "csi/smoothing.hpp"
#include "csi/regrid.hpp"
#include "csi/trace.hpp"
#include "linalg/hermitian_eig.hpp"
#include "music/estimators.hpp"
#include "music/steering.hpp"

namespace spotfi {
namespace {

TEST(Phase, UnwrapRecoversLinearRamp) {
  // Phase ramp of -0.9 rad per step wraps several times over 40 steps.
  std::vector<double> wrapped(40);
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    wrapped[i] = wrap_pi(-0.9 * static_cast<double>(i));
  }
  unwrap_in_place(wrapped);
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    EXPECT_NEAR(wrapped[i], -0.9 * static_cast<double>(i), 1e-9);
  }
}

TEST(Phase, UnwrapIsIdentityWithoutJumps) {
  std::vector<double> phase{0.0, 0.5, 1.0, 0.7, 0.1, -0.4};
  const auto original = phase;
  unwrap_in_place(phase);
  for (std::size_t i = 0; i < phase.size(); ++i) {
    EXPECT_NEAR(phase[i], original[i], 1e-12);
  }
}

TEST(Phase, UnwrappedMatrixRowsIndependent) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  CMatrix csi(link.n_antennas, link.n_subcarriers);
  for (std::size_t m = 0; m < csi.rows(); ++m) {
    for (std::size_t n = 0; n < csi.cols(); ++n) {
      csi(m, n) = std::polar(1.0, -0.8 * static_cast<double>(n) +
                                      0.3 * static_cast<double>(m));
    }
  }
  const RMatrix psi = unwrapped_phase(csi);
  for (std::size_t m = 0; m < psi.rows(); ++m) {
    for (std::size_t n = 1; n < psi.cols(); ++n) {
      EXPECT_NEAR(psi(m, n) - psi(m, n - 1), -0.8, 1e-9);
    }
  }
}

CsiSynthesizer noiseless_synth(double sto_base) {
  ImpairmentConfig imp;
  imp.sto_base_s = sto_base;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 200.0;
  imp.noise_floor_dbm = -300.0;
  imp.rssi_shadowing_db = 0.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  return {LinkConfig::intel5300_40mhz(), imp};
}

std::vector<PathComponent> two_paths() {
  PathComponent p1, p2;
  p1.aoa_rad = deg_to_rad(20.0);
  p1.tof_s = 30e-9;
  p1.gain_db = -3.0;
  p1.phase_rad = 0.4;
  p2.aoa_rad = deg_to_rad(-35.0);
  p2.tof_s = 75e-9;
  p2.gain_db = -8.0;
  p2.phase_rad = -1.1;
  return {p1, p2};
}

TEST(Sanitize, RemovesPureStoCompletely) {
  // Single path: after removing the common linear term, the subcarrier
  // phase slope should be (nearly) flat regardless of STO.
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  PathComponent p;
  p.tof_s = 40e-9;
  p.gain_db = 0.0;
  const auto synth = noiseless_synth(120e-9);
  Rng rng(1);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  const SanitizeResult result = sanitize_tof(packet.csi, link);
  // The fitted STO estimate absorbs path ToF + STO = 160 ns.
  EXPECT_NEAR(result.fitted_sto_s, 160e-9, 1e-12);
  const RMatrix psi = unwrapped_phase(result.csi);
  for (std::size_t n = 1; n < psi.cols(); ++n) {
    EXPECT_NEAR(psi(0, n) - psi(0, n - 1), 0.0, 1e-9);
  }
}

TEST(Sanitize, InvarianceAcrossStoChanges) {
  // The paper's key claim (Sec. 3.2.2): two packets that differ only in
  // STO have identical sanitized phase responses.
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto paths = two_paths();
  const auto synth_a = noiseless_synth(35e-9);
  const auto synth_b = noiseless_synth(190e-9);
  Rng rng(2);
  const auto pkt_a = synth_a.synthesize(paths, 0.0, rng);
  const auto pkt_b = synth_b.synthesize(paths, 0.0, rng);

  const CMatrix clean_a = sanitize_tof(pkt_a.csi, link).csi;
  const CMatrix clean_b = sanitize_tof(pkt_b.csi, link).csi;
  EXPECT_LT((clean_a - clean_b).max_abs(), 1e-6 * clean_a.max_abs());
}

TEST(Sanitize, PreservesMagnitudes) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto synth = noiseless_synth(80e-9);
  Rng rng(3);
  const auto pkt = synth.synthesize(two_paths(), 0.0, rng);
  const CMatrix clean = sanitize_tof(pkt.csi, link).csi;
  for (std::size_t m = 0; m < clean.rows(); ++m) {
    for (std::size_t n = 0; n < clean.cols(); ++n) {
      EXPECT_NEAR(std::abs(clean(m, n)), std::abs(pkt.csi(m, n)), 1e-12);
    }
  }
}

TEST(Sanitize, PreservesAoaInformation) {
  // Sanitization applies the same rotation to every antenna, so relative
  // phases between antennas (the AoA signal) are untouched.
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto synth = noiseless_synth(80e-9);
  Rng rng(4);
  const auto pkt = synth.synthesize(two_paths(), 0.0, rng);
  const CMatrix clean = sanitize_tof(pkt.csi, link).csi;
  for (std::size_t n = 0; n < clean.cols(); ++n) {
    const cplx before = pkt.csi(1, n) / pkt.csi(0, n);
    const cplx after = clean(1, n) / clean(0, n);
    EXPECT_NEAR(std::abs(before - after), 0.0, 1e-9);
  }
}

TEST(Sanitize, RejectsTooSmallInput) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  EXPECT_THROW(sanitize_tof(CMatrix(3, 1), link), ContractViolation);
}

TEST(Smoothing, PaperDimensions) {
  const SmoothingConfig cfg;
  EXPECT_EQ(smoothed_rows(cfg), 30u);
  EXPECT_EQ(smoothed_cols(3, 30, cfg), 32u);
}

TEST(Smoothing, EntriesMatchFig4Layout) {
  // Fill CSI with identifiable values csi(m, n) = m*1000 + n.
  CMatrix csi(3, 30);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t n = 0; n < 30; ++n) {
      csi(m, n) = cplx(static_cast<double>(m * 1000 + n), 0.0);
    }
  }
  const CMatrix x = smoothed_csi(csi);
  ASSERT_EQ(x.rows(), 30u);
  ASSERT_EQ(x.cols(), 32u);
  // Column 0 = antennas {0,1} x subcarriers {0..14}: first row is
  // csi(0, 0), row 15 is csi(1, 0).
  EXPECT_EQ(x(0, 0), csi(0, 0));
  EXPECT_EQ(x(14, 0), csi(0, 14));
  EXPECT_EQ(x(15, 0), csi(1, 0));
  EXPECT_EQ(x(29, 0), csi(1, 14));
  // Column 1 shifts one subcarrier.
  EXPECT_EQ(x(0, 1), csi(0, 1));
  EXPECT_EQ(x(29, 1), csi(1, 15));
  // Column 16 shifts one antenna (antenna-shift-major after all 16
  // subcarrier shifts).
  EXPECT_EQ(x(0, 16), csi(1, 0));
  EXPECT_EQ(x(15, 16), csi(2, 0));
  // Last column: antenna shift 1, subcarrier shift 15.
  EXPECT_EQ(x(0, 31), csi(1, 15));
  EXPECT_EQ(x(29, 31), csi(2, 29));
}

TEST(Smoothing, SteeringVectorColumnScalingProperty) {
  // The property Fig. 3 illustrates: for a single path, each smoothed
  // column is the previous subcarrier-shift column scaled by Omega(tau),
  // and antenna-shifted columns are scaled by Phi(theta).
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.noise_floor_dbm = -300.0;
  const CsiSynthesizer synth(link, imp);
  PathComponent p;
  p.aoa_rad = deg_to_rad(25.0);
  p.tof_s = 55e-9;
  p.gain_db = 0.0;
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const CMatrix x = smoothed_csi(csi);

  const cplx omega = omega_factor(p.tof_s, link);
  const cplx phi = phi_factor(p.aoa_rad, link);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_NEAR(std::abs(x(r, 1) - omega * x(r, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(r, 16) - phi * x(r, 0)), 0.0, 1e-12);
  }
}

TEST(Smoothing, RankEqualsPathCountForFewPaths) {
  // With L paths the smoothed matrix has rank L (the MUSIC requirement).
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  imp.sto_jitter_s = 0.0;
  imp.sto_base_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.noise_floor_dbm = -300.0;
  const CsiSynthesizer synth(link, imp);

  std::vector<PathComponent> paths;
  const double aoas[] = {-50.0, -10.0, 15.0, 45.0, 70.0};
  const double tofs[] = {20e-9, 60e-9, 110e-9, 170e-9, 240e-9};
  for (int l = 0; l < 5; ++l) {
    PathComponent p;
    p.aoa_rad = deg_to_rad(aoas[l]);
    p.tof_s = tofs[l];
    p.gain_db = -3.0 * l;
    p.phase_rad = 0.3 * l;
    paths.push_back(p);

    const CMatrix x = smoothed_csi(synth.ideal_csi(paths));
    // Count numerically nonzero singular values via gram eigenvalues.
    const auto eig = eigh(x.gram());
    const double lambda_max = eig.eigenvalues.back();
    int rank = 0;
    for (double ev : eig.eigenvalues) {
      if (ev > 1e-9 * lambda_max) ++rank;
    }
    EXPECT_EQ(rank, l + 1) << "after adding path " << l;
  }
}

TEST(Smoothing, InvalidSubarrayThrows) {
  SmoothingConfig cfg;
  cfg.sub_len = 31;
  EXPECT_THROW(smoothed_cols(3, 30, cfg), ContractViolation);
  cfg.sub_len = 15;
  cfg.ant_len = 4;
  EXPECT_THROW(smoothed_cols(3, 30, cfg), ContractViolation);
}

TEST(SpatialSmoothing, SnapshotLayout) {
  CMatrix csi(3, 4);
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t n = 0; n < 4; ++n) {
      csi(m, n) = cplx(static_cast<double>(10 * m + n), 0.0);
    }
  }
  const CMatrix x = spatially_smoothed_snapshots(csi, 2);
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), 8u);  // 2 antenna shifts x 4 subcarriers
  EXPECT_EQ(x(0, 0), csi(0, 0));
  EXPECT_EQ(x(1, 0), csi(1, 0));
  EXPECT_EQ(x(0, 4), csi(1, 0));
  EXPECT_EQ(x(1, 4), csi(2, 0));
}

// --- subcarrier grids and regridding ---

/// CSI for one path on an arbitrary (possibly non-uniform) grid: phase at
/// subcarrier k is -2*pi*(offset_k - offset_0)*tof plus the antenna term.
CMatrix csi_on_grid(const SubcarrierGrid& grid, const LinkConfig& link,
                    double aoa_rad, double tof_s) {
  CMatrix csi(link.n_antennas, grid.size());
  const cplx phi = phi_factor(aoa_rad, link);
  cplx ant{1.0, 0.0};
  for (std::size_t m = 0; m < link.n_antennas; ++m) {
    for (std::size_t k = 0; k < grid.size(); ++k) {
      const double df = grid.offset_hz(k) - grid.offset_hz(0);
      csi(m, k) = ant * std::polar(1.0, -2.0 * kPi * df * tof_s);
    }
    ant *= phi;
  }
  return csi;
}

TEST(SubcarrierGrid, Intel5300Grids) {
  const auto g40 = SubcarrierGrid::intel5300_40mhz();
  EXPECT_EQ(g40.size(), 30u);
  EXPECT_TRUE(g40.is_uniform());
  EXPECT_EQ(g40.indices.front(), -58);
  EXPECT_EQ(g40.indices.back(), 58);

  const auto g20 = SubcarrierGrid::intel5300_20mhz();
  EXPECT_EQ(g20.size(), 30u);
  EXPECT_FALSE(g20.is_uniform());
  EXPECT_EQ(g20.indices.front(), -28);
  EXPECT_EQ(g20.indices.back(), 28);
}

TEST(SubcarrierGrid, UniformSpacingMatchesLinkConfig) {
  const auto g40 = SubcarrierGrid::intel5300_40mhz();
  EXPECT_NEAR(g40.offset_hz(1) - g40.offset_hz(0),
              LinkConfig::intel5300_40mhz().subcarrier_spacing_hz, 1e-6);
}

TEST(Regrid, UniformGridIsNearIdentity) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto grid = SubcarrierGrid::intel5300_40mhz();
  const CMatrix csi = csi_on_grid(grid, link, deg_to_rad(20.0), 50e-9);
  const RegridResult out = regrid_csi(csi, grid, link, 30);
  EXPECT_NEAR(out.spacing_hz, link.subcarrier_spacing_hz, 1e-6);
  EXPECT_LT((out.csi - csi).max_abs(), 1e-9);
}

TEST(Regrid, NonUniform20MhzGridBecomesUsable) {
  // Synthesize on the true (non-uniform) 20 MHz report grid, regrid, and
  // check the estimator recovers the path on the regridded data.
  LinkConfig link = LinkConfig::intel5300_20mhz();
  const auto grid = SubcarrierGrid::intel5300_20mhz();
  const double aoa = deg_to_rad(-25.0);
  const double tof = 80e-9;
  const CMatrix raw = csi_on_grid(grid, link, aoa, tof);
  const RegridResult out = regrid_csi(raw, grid, link, 30);

  const JointMusicEstimator estimator(out.link);
  const auto estimates = estimator.estimate(out.csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), -25.0, 1.0);
  EXPECT_NEAR(estimates[0].tof_s * 1e9, 80.0, 5.0);
}

TEST(Regrid, InterpolatedValuesBetweenNeighbours) {
  // Two subcarriers, midpoint target: exact average.
  SubcarrierGrid grid;
  grid.indices = {0, 4};
  LinkConfig link;
  link.n_antennas = 1;
  CMatrix csi(1, 2);
  csi(0, 0) = cplx(1.0, 0.0);
  csi(0, 1) = cplx(0.0, 1.0);
  const RegridResult out = regrid_csi(csi, grid, link, 3);
  EXPECT_NEAR(std::abs(out.csi(0, 1) - cplx(0.5, 0.5)), 0.0, 1e-12);
  EXPECT_EQ(out.csi(0, 0), csi(0, 0));
  EXPECT_EQ(out.csi(0, 2), csi(0, 1));
}

TEST(Regrid, InvalidInputsThrow) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto grid = SubcarrierGrid::intel5300_40mhz();
  EXPECT_THROW(regrid_csi(CMatrix(3, 10), grid, link), ContractViolation);
  SubcarrierGrid unsorted;
  unsorted.indices = {3, 1, 2};
  EXPECT_THROW(regrid_csi(CMatrix(3, 3), unsorted, link),
               ContractViolation);
}

// --- trace format ---

TEST(Trace, RoundTripPreservesShapeAndValues) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto synth = noiseless_synth(50e-9);
  Rng rng(11);
  auto packets = synth.synthesize_burst(two_paths(), 4, 0.1, rng);

  std::stringstream ss;
  write_trace(ss, link, packets);
  const Trace trace = read_trace(ss);

  EXPECT_EQ(trace.link.n_antennas, link.n_antennas);
  EXPECT_EQ(trace.link.n_subcarriers, link.n_subcarriers);
  EXPECT_NEAR(trace.link.carrier_hz, link.carrier_hz, 1.0);
  ASSERT_EQ(trace.packets.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(trace.packets[i].timestamp_s, packets[i].timestamp_s, 1e-9);
    EXPECT_NEAR(trace.packets[i].rssi_dbm, packets[i].rssi_dbm, 0.51);
    // 8-bit I/Q: entries agree to quantization accuracy (~1% of max).
    const double scale = packets[i].csi.max_abs();
    EXPECT_LT((trace.packets[i].csi - packets[i].csi).max_abs(),
              0.02 * scale);
  }
}

TEST(Trace, FileRoundTrip) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto synth = noiseless_synth(10e-9);
  Rng rng(12);
  auto packets = synth.synthesize_burst(two_paths(), 2, 0.05, rng);
  const std::string path = ::testing::TempDir() + "/spotfi_trace_test.dat";
  write_trace(path, link, packets);
  const Trace trace = read_trace(path);
  EXPECT_EQ(trace.packets.size(), 2u);
}

TEST(Trace, RoundTripWithNonDefaultLink) {
  // 20 MHz link with 2 antennas: the header must carry the configuration.
  LinkConfig link = LinkConfig::intel5300_20mhz();
  link.n_antennas = 2;
  CsiPacket packet;
  packet.csi = CMatrix(2, 30);
  for (std::size_t n = 0; n < 30; ++n) {
    packet.csi(0, n) = std::polar(1.0, 0.1 * static_cast<double>(n));
    packet.csi(1, n) = std::polar(0.5, -0.2 * static_cast<double>(n));
  }
  packet.rssi_dbm = -61.0;
  packet.timestamp_s = 3.5;
  std::stringstream ss;
  write_trace(ss, link, std::span<const CsiPacket>(&packet, 1));
  const Trace trace = read_trace(ss);
  EXPECT_EQ(trace.link.n_antennas, 2u);
  EXPECT_NEAR(trace.link.subcarrier_spacing_hz, link.subcarrier_spacing_hz,
              1e-6);
  ASSERT_EQ(trace.packets.size(), 1u);
  EXPECT_NEAR(trace.packets[0].rssi_dbm, -61.0, 0.51);
}

TEST(Trace, BadMagicThrows) {
  std::stringstream ss;
  ss << "NOPE furthermore this is not a trace";
  EXPECT_THROW(read_trace(ss), ParseError);
}

TEST(Trace, TruncatedRecordThrows) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const auto synth = noiseless_synth(10e-9);
  Rng rng(13);
  auto packets = synth.synthesize_burst(two_paths(), 1, 0.05, rng);
  std::stringstream ss;
  write_trace(ss, link, packets);
  std::string blob = ss.str();
  blob.resize(blob.size() - 7);  // chop mid-record
  std::stringstream truncated(blob);
  EXPECT_THROW(read_trace(truncated), ParseError);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace(std::string("/nonexistent/path/file.dat")),
               ParseError);
}

TEST(Trace, ShapeMismatchOnWriteThrows) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  CsiPacket bad;
  bad.csi = CMatrix(2, 30);  // wrong antenna count
  std::stringstream ss;
  EXPECT_THROW(
      write_trace(ss, link, std::span<const CsiPacket>(&bad, 1)),
      ContractViolation);
}

}  // namespace
}  // namespace spotfi
