// Tests for localization: the path-loss model, the Eq. 9 objective and
// solver (including likelihood weighting and joint path-loss fitting),
// and the baselines (AoA triangulation, RSSI trilateration, ArrayTrack
// spectrum fusion).
#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "localize/baselines.hpp"
#include "localize/gdop.hpp"
#include "localize/spotfi_localizer.hpp"

namespace spotfi {
namespace {

TEST(PathLoss, FreeSpaceSlope) {
  PathLossModel model;
  model.p0_dbm = -40.0;
  model.exponent = 2.0;
  EXPECT_DOUBLE_EQ(model.rssi_dbm(1.0), -40.0);
  EXPECT_NEAR(model.rssi_dbm(10.0), -60.0, 1e-12);
  EXPECT_NEAR(model.rssi_dbm(100.0), -80.0, 1e-12);
}

TEST(PathLoss, InverseRoundTrip) {
  PathLossModel model;
  model.p0_dbm = -38.0;
  model.exponent = 2.7;
  for (const double d : {0.5, 1.0, 3.0, 12.0, 40.0}) {
    EXPECT_NEAR(model.distance_m(model.rssi_dbm(d)), d, 1e-9);
  }
}

TEST(PathLoss, ClampsTinyDistances) {
  PathLossModel model;
  EXPECT_DOUBLE_EQ(model.rssi_dbm(0.0), model.rssi_dbm(0.05));
}

/// Builds consistent observations for a target with the given model; APs
/// surround a 16x10 area.
std::vector<ApObservation> consistent_observations(
    Vec2 target, const PathLossModel& model, double likelihood = 1.0) {
  const Vec2 center{8.0, 5.0};
  std::vector<ApObservation> obs;
  for (const Vec2 pos : {Vec2{1.0, 5.0}, Vec2{15.0, 5.0}, Vec2{8.0, 1.0},
                         Vec2{8.0, 9.0}, Vec2{2.0, 1.0}}) {
    ApObservation o;
    o.pose = ArrayPose{pos, (center - pos).angle()};
    o.direct_aoa_rad = o.pose.aoa_of(target);
    o.rssi_dbm = model.rssi_dbm(distance(pos, target));
    o.likelihood = likelihood;
    obs.push_back(o);
  }
  return obs;
}

TEST(SpotFiLocalizer, ExactObservationsGiveExactLocation) {
  const Vec2 truth{6.0, 3.5};
  PathLossModel model;
  model.p0_dbm = -38.0;
  model.exponent = 2.5;
  const auto obs = consistent_observations(truth, model);
  LocalizerConfig cfg;
  cfg.area_max = {16.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_NEAR(est.position.x, truth.x, 0.05);
  EXPECT_NEAR(est.position.y, truth.y, 0.05);
  EXPECT_LT(est.cost, 1e-3);
}

TEST(SpotFiLocalizer, FitsPathLossParametersJointly) {
  // Observations generated with an unusual exponent; Algorithm 2
  // optimizes the model parameters along with the location.
  const Vec2 truth{10.0, 6.0};
  PathLossModel model;
  model.p0_dbm = -45.0;
  model.exponent = 3.2;
  const auto obs = consistent_observations(truth, model);
  LocalizerConfig cfg;
  cfg.area_max = {16.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_NEAR(est.position.x, truth.x, 0.1);
  EXPECT_NEAR(est.position.y, truth.y, 0.1);
  EXPECT_NEAR(est.path_loss.exponent, 3.2, 0.4);
  EXPECT_NEAR(est.path_loss.p0_dbm, -45.0, 2.0);
}

TEST(SpotFiLocalizer, LikelihoodDownWeightsBadAp) {
  const Vec2 truth{6.0, 3.5};
  PathLossModel model;
  auto obs = consistent_observations(truth, model, 3.0);
  // Corrupt one AP's AoA badly but give it a low likelihood.
  obs[2].direct_aoa_rad += deg_to_rad(50.0);
  obs[2].likelihood = 0.1;
  LocalizerConfig cfg;
  cfg.area_max = {16.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_NEAR(est.position.x, truth.x, 0.3);
  EXPECT_NEAR(est.position.y, truth.y, 0.3);
}

TEST(SpotFiLocalizer, ZeroLikelihoodApsIgnored) {
  const Vec2 truth{4.0, 4.0};
  PathLossModel model;
  auto obs = consistent_observations(truth, model);
  obs[0].likelihood = 0.0;
  obs[0].direct_aoa_rad = deg_to_rad(90.0);  // garbage, must be ignored
  LocalizerConfig cfg;
  cfg.area_max = {16.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_NEAR(est.position.x, truth.x, 0.2);
  EXPECT_NEAR(est.position.y, truth.y, 0.2);
}

TEST(SpotFiLocalizer, TooFewObservationsThrow) {
  const SpotFiLocalizer localizer;
  std::vector<ApObservation> obs(1);
  EXPECT_THROW(localizer.locate(obs), ContractViolation);
  std::vector<ApObservation> two(2);
  two[0].likelihood = 0.0;  // only one usable
  EXPECT_THROW(localizer.locate(two), ContractViolation);
}

TEST(SpotFiLocalizer, ObjectiveIsZeroAtTruthWithTrueModel) {
  const Vec2 truth{6.0, 3.5};
  PathLossModel model;
  const auto obs = consistent_observations(truth, model);
  const SpotFiLocalizer localizer;
  EXPECT_NEAR(localizer.objective(obs, truth, model), 0.0, 1e-12);
  EXPECT_GT(localizer.objective(obs, {1.0, 9.0}, model), 1.0);
}

TEST(SpotFiLocalizer, EstimateClampedToArea) {
  // Two APs with parallel bearings pointing out of the area.
  std::vector<ApObservation> obs(2);
  obs[0].pose = ArrayPose{{0.0, 0.0}, 0.0};
  obs[1].pose = ArrayPose{{0.0, 5.0}, 0.0};
  obs[0].direct_aoa_rad = obs[1].direct_aoa_rad = 0.0;
  obs[0].rssi_dbm = obs[1].rssi_dbm = -80.0;  // very far
  LocalizerConfig cfg;
  cfg.area_min = {0.0, 0.0};
  cfg.area_max = {10.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_LE(est.position.x, 10.0 + 1e-9);
  EXPECT_GE(est.position.x, -1e-9);
}

TEST(SpotFiLocalizer, InvalidConfigThrows) {
  LocalizerConfig cfg;
  cfg.area_max = cfg.area_min;
  EXPECT_THROW(SpotFiLocalizer{cfg}, ContractViolation);
  LocalizerConfig bad_exp;
  bad_exp.min_exponent = 3.0;
  bad_exp.max_exponent = 2.0;
  EXPECT_THROW(SpotFiLocalizer{bad_exp}, ContractViolation);
}

// --- baselines ---

TEST(Triangulation, TwoPerpendicularBearings) {
  std::vector<ApObservation> obs(2);
  obs[0].pose = ArrayPose{{0.0, 0.0}, 0.0};            // looks +x
  obs[1].pose = ArrayPose{{5.0, -5.0}, kPi / 2.0};     // looks +y
  const Vec2 truth{5.0, 0.0};
  obs[0].direct_aoa_rad = obs[0].pose.aoa_of(truth);
  obs[1].direct_aoa_rad = obs[1].pose.aoa_of(truth);
  obs[0].likelihood = obs[1].likelihood = 1.0;
  const Vec2 est = triangulate_aoa(obs);
  EXPECT_NEAR(est.x, truth.x, 1e-9);
  EXPECT_NEAR(est.y, truth.y, 1e-9);
}

TEST(Triangulation, WeightsFavorConfidentAps) {
  // Three APs; one has a wrong bearing but tiny weight.
  const Vec2 truth{4.0, 4.0};
  std::vector<ApObservation> obs(3);
  obs[0].pose = ArrayPose{{0.0, 0.0}, 0.0};
  obs[1].pose = ArrayPose{{0.0, 8.0}, 0.0};
  obs[2].pose = ArrayPose{{8.0, 0.0}, kPi};
  for (int i = 0; i < 3; ++i) {
    obs[i].direct_aoa_rad = obs[i].pose.aoa_of(truth);
    obs[i].likelihood = 1.0;
  }
  obs[2].direct_aoa_rad += deg_to_rad(30.0);
  obs[2].likelihood = 0.01;
  const Vec2 est = triangulate_aoa(obs);
  EXPECT_NEAR(est.x, truth.x, 0.15);
  EXPECT_NEAR(est.y, truth.y, 0.15);
}

TEST(Triangulation, DegenerateParallelBearingsThrow) {
  std::vector<ApObservation> obs(2);
  obs[0].pose = ArrayPose{{0.0, 0.0}, 0.0};
  obs[1].pose = ArrayPose{{0.0, 5.0}, 0.0};
  obs[0].direct_aoa_rad = obs[1].direct_aoa_rad = 0.0;  // both look +x
  obs[0].likelihood = obs[1].likelihood = 1.0;
  EXPECT_THROW(triangulate_aoa(obs), NumericalError);
}

TEST(Trilateration, ExactRangesRecoverLocation) {
  const Vec2 truth{3.0, 7.0};
  PathLossModel model;
  RssiTrilaterationConfig cfg;
  cfg.path_loss = model;
  std::vector<ApObservation> obs(4);
  const Vec2 positions[] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0},
                            {10.0, 10.0}};
  for (int i = 0; i < 4; ++i) {
    obs[i].pose = ArrayPose{positions[i], 0.0};
    obs[i].rssi_dbm = model.rssi_dbm(distance(positions[i], truth));
  }
  const Vec2 est = trilaterate_rssi(obs, cfg);
  EXPECT_NEAR(est.x, truth.x, 0.05);
  EXPECT_NEAR(est.y, truth.y, 0.05);
}

TEST(Trilateration, RequiresThreeAps) {
  std::vector<ApObservation> obs(2);
  EXPECT_THROW(trilaterate_rssi(obs), ContractViolation);
}

TEST(SpectrumAt, InterpolatesAndClamps) {
  AoaSpectrum sp;
  sp.aoa_grid_rad = {0.0, 1.0, 2.0};
  sp.values = {10.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(spectrum_at(sp, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(spectrum_at(sp, 1.5), 30.0);
  EXPECT_DOUBLE_EQ(spectrum_at(sp, -3.0), 10.0);
  EXPECT_DOUBLE_EQ(spectrum_at(sp, 9.0), 40.0);
}

TEST(ArrayTrackLocate, PeaksAtBearingIntersection) {
  // Two APs with synthetic spectra peaked at the bearings of the truth.
  const Vec2 truth{5.0, 5.0};
  std::vector<ApSpectrum> spectra(2);
  spectra[0].pose = ArrayPose{{0.0, 0.0}, kPi / 4.0};
  spectra[1].pose = ArrayPose{{10.0, 0.0}, 3.0 * kPi / 4.0};
  for (auto& ap : spectra) {
    const double peak = ap.pose.aoa_of(truth);
    AoaSpectrum sp;
    for (int i = -90; i <= 90; ++i) {
      const double a = deg_to_rad(i);
      sp.aoa_grid_rad.push_back(a);
      const double d = a - peak;
      sp.values.push_back(1.0 / (d * d + 1e-3));
    }
    ap.spectrum = sp;
  }
  ArrayTrackConfig cfg;
  cfg.area_max = {10.0, 10.0};
  const Vec2 est = arraytrack_locate(spectra, cfg);
  EXPECT_NEAR(est.x, truth.x, 0.2);
  EXPECT_NEAR(est.y, truth.y, 0.2);
}

TEST(ArrayTrackLocate, InvalidConfigThrows) {
  std::vector<ApSpectrum> spectra(2);
  ArrayTrackConfig cfg;
  cfg.grid_step_m = 0.0;
  EXPECT_THROW(arraytrack_locate(spectra, cfg), ContractViolation);
}

// --- GDOP ---

TEST(Gdop, PerpendicularBearingsGiveCircularEllipse) {
  // Two APs at equal distance d with orthogonal lines of sight: each
  // bearing constrains one axis with sigma*d.
  const double d = 5.0;
  const double sigma = deg_to_rad(3.0);
  const std::vector<ArrayPose> aps{ArrayPose{{-d, 0.0}, 0.0},
                                   ArrayPose{{0.0, -d}, kPi / 2.0}};
  const GdopResult g = bearing_gdop(aps, {0.0, 0.0}, sigma);
  EXPECT_NEAR(g.major_m, sigma * d, 1e-9);
  EXPECT_NEAR(g.minor_m, sigma * d, 1e-9);
  EXPECT_NEAR(g.drms_m, std::sqrt(2.0) * sigma * d, 1e-9);
}

TEST(Gdop, NearCollinearBearingsBlowUpTheMajorAxis) {
  const double sigma = deg_to_rad(3.0);
  // Two APs almost in line with the target: bearings nearly parallel.
  const std::vector<ArrayPose> good{ArrayPose{{-5.0, 0.0}, 0.0},
                                    ArrayPose{{0.0, -5.0}, kPi / 2.0}};
  const std::vector<ArrayPose> bad{ArrayPose{{-5.0, 0.0}, 0.0},
                                   ArrayPose{{-5.0, 0.4}, 0.0}};
  const GdopResult g_good = bearing_gdop(good, {0.0, 0.0}, sigma);
  const GdopResult g_bad = bearing_gdop(bad, {0.0, 0.0}, sigma);
  EXPECT_GT(g_bad.major_m, 5.0 * g_good.major_m);
}

TEST(Gdop, ErrorGrowsWithRange) {
  const double sigma = deg_to_rad(3.0);
  auto square = [&](double d) {
    const std::vector<ArrayPose> aps{ArrayPose{{-d, 0.0}, 0.0},
                                     ArrayPose{{0.0, -d}, kPi / 2.0}};
    return bearing_gdop(aps, {0.0, 0.0}, sigma).drms_m;
  };
  EXPECT_NEAR(square(10.0) / square(5.0), 2.0, 1e-9);
}

TEST(Gdop, MoreApsReduceError) {
  const double sigma = deg_to_rad(3.0);
  std::vector<ArrayPose> aps{ArrayPose{{-5.0, 0.0}, 0.0},
                             ArrayPose{{0.0, -5.0}, kPi / 2.0}};
  const double two = bearing_gdop(aps, {0.0, 0.0}, sigma).drms_m;
  aps.push_back(ArrayPose{{5.0, 0.0}, kPi});
  aps.push_back(ArrayPose{{0.0, 5.0}, -kPi / 2.0});
  const double four = bearing_gdop(aps, {0.0, 0.0}, sigma).drms_m;
  EXPECT_NEAR(four, two / std::sqrt(2.0), 1e-9);
}

TEST(Gdop, DegenerateGeometryThrows) {
  const std::vector<ArrayPose> collinear{ArrayPose{{-5.0, 0.0}, 0.0},
                                         ArrayPose{{-10.0, 0.0}, 0.0}};
  EXPECT_THROW(bearing_gdop(collinear, {0.0, 0.0}, deg_to_rad(3.0)),
               NumericalError);
  EXPECT_THROW(bearing_gdop({}, {0.0, 0.0}, 0.05), ContractViolation);
  EXPECT_THROW(bearing_gdop(collinear, {0.0, 0.0}, 0.0), ContractViolation);
}

}  // namespace
}  // namespace spotfi
