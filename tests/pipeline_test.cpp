// The stage-pipeline equivalence suite (DESIGN.md §15): the staged
// estimation path must be byte-identical to the monolithic kernels it
// wraps, at every thread count, for every fallback/shed entry stage —
// and the deferred (prepare/execute/complete) round lifecycle plus the
// cross-session batch scheduler must reproduce the serial per-session
// outputs bit for bit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "core/server.hpp"
#include "core/session_manager.hpp"
#include "core/streaming.hpp"
#include "music/steering_cache.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

std::vector<ApCapture> office_captures(std::size_t packets,
                                       unsigned seed = 2024) {
  ExperimentConfig cfg;
  cfg.packets_per_group = packets;
  const ExperimentRunner runner(kLink, office_deployment(), cfg);
  Rng rng(seed);
  return runner.simulate_captures({6.0, 3.5}, rng);
}

ServerConfig office_server_config(std::size_t threads) {
  ServerConfig cfg;
  cfg.num_threads = threads;
  const Deployment dep = office_deployment();
  cfg.localizer.area_min = dep.area_min;
  cfg.localizer.area_max = dep.area_max;
  return cfg;
}

// --- staged composition == monolithic kernel, bit for bit --------------

TEST(StageEquivalence, ComposedMusicStagesMatchEstimateInto) {
  const auto captures = office_captures(3);
  const JointMusicEstimator est(kLink, JointMusicConfig{});
  const std::size_t max_paths = est.config().max_paths;
  Workspace ws;

  for (const auto& packet : captures[0].packets) {
    std::vector<PathEstimate> mono(max_paths);
    std::vector<PathEstimate> staged(max_paths);

    std::size_t n_mono = 0;
    {
      Workspace::Frame frame(ws);
      n_mono = est.estimate_into(ConstCMatrixView(packet.csi), ws, mono);
    }

    // The same packet through the individual stages, composed by hand.
    std::size_t n_staged = 0;
    {
      Workspace::Frame frame(ws);
      StageContext ctx;
      ctx.ws = &ws;
      const SmoothingStage smooth(est);
      const SubspaceStage subspace(est);
      const SpectrumStage spectrum(est);
      const CMatrixView x =
          smooth.run_into(ctx, ConstCMatrixView(packet.csi));
      const SubspacesRef sub = subspace.run_into(ctx, ConstCMatrixView(x));
      n_staged = spectrum.run_into(ctx, SpectrumIn{sub, staged});
    }

    ASSERT_EQ(n_mono, n_staged);
    for (std::size_t i = 0; i < n_mono; ++i) {
      EXPECT_EQ(mono[i].aoa_rad, staged[i].aoa_rad) << i;
      EXPECT_EQ(mono[i].tof_s, staged[i].tof_s) << i;
      EXPECT_EQ(mono[i].power, staged[i].power) << i;
    }
  }
}

// --- entry-stage sweep: 1 vs 4 threads, bitwise -----------------------

void expect_rounds_identical(const LocalizationRound& a,
                             const LocalizationRound& b) {
  EXPECT_EQ(a.location.position.x, b.location.position.x);
  EXPECT_EQ(a.location.position.y, b.location.position.y);
  ASSERT_EQ(a.ap_results.size(), b.ap_results.size());
  for (std::size_t i = 0; i < a.ap_results.size(); ++i) {
    EXPECT_EQ(a.ap_results[i].observation.direct_aoa_rad,
              b.ap_results[i].observation.direct_aoa_rad) << i;
    EXPECT_EQ(a.ap_results[i].observation.likelihood,
              b.ap_results[i].observation.likelihood) << i;
    EXPECT_EQ(a.ap_results[i].observation.rssi_dbm,
              b.ap_results[i].observation.rssi_dbm) << i;
    EXPECT_EQ(a.ap_results[i].observation.has_aoa,
              b.ap_results[i].observation.has_aoa) << i;
  }
  EXPECT_EQ(a.ap_stages, b.ap_stages);
  EXPECT_EQ(a.notes, b.notes);
  EXPECT_EQ(a.rejected_aps, b.rejected_aps);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.numerics.summary(), b.numerics.summary());
}

TEST(StageEquivalence, EveryEntryStageIsThreadCountInvariant) {
  unsetenv("SPOTFI_THREADS");
  const auto captures = office_captures(5);

  // The shed ladder = entry-stage substitution: every rung a degraded
  // round can enter at must be bitwise thread-count invariant, exactly
  // like the full-fidelity path.
  for (const ApStage entry :
       {ApStage::kPrimary, ApStage::kRelaxedMusic, ApStage::kEsprit,
        ApStage::kRssiOnly}) {
    std::optional<LocalizationRound> serial;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ServerConfig cfg = office_server_config(threads);
      cfg.ap.fallback.entry_stage = entry;
      const SpotFiServer server(kLink, cfg);
      Rng rng(99);
      auto result = server.try_localize(captures, rng);
      ASSERT_TRUE(result.has_value())
          << to_string(entry) << ": " << result.error().reason;
      if (threads == 1) {
        serial = std::move(result.value());
      } else {
        expect_rounds_identical(*serial, result.value());
      }
    }
  }
}

// --- per-stage telemetry ----------------------------------------------

TEST(StageTelemetry, RobustRoundCarriesAStageBreakdown) {
  const auto captures = office_captures(4);
  const SpotFiServer server(kLink, office_server_config(1));
  Rng rng(7);
  auto result = server.try_localize(captures, rng);
  ASSERT_TRUE(result.has_value()) << result.error().reason;
  const LocalizationRound& round = result.value();

  const StageBreakdown& bd = round.stage_breakdown;
  EXPECT_TRUE(bd.any());
  // The MUSIC path must attribute work to every phase it runs: the
  // eigendecomposition and the grid sweep (the ROADMAP items-1/2 cost
  // split this telemetry exists to measure), clustering, and fusion.
  EXPECT_GT(bd.seconds[static_cast<std::size_t>(StagePhase::kSubspace)], 0.0);
  EXPECT_GT(bd.seconds[static_cast<std::size_t>(StagePhase::kSpectrum)], 0.0);
  EXPECT_GT(bd.seconds[static_cast<std::size_t>(StagePhase::kCluster)], 0.0);
  EXPECT_GT(bd.seconds[static_cast<std::size_t>(StagePhase::kLocalize)], 0.0);
  for (const double s : bd.seconds) EXPECT_GE(s, 0.0);
  // No single phase can out-peak the whole round's arena footprint.
  for (const std::size_t peak : bd.workspace_peak_bytes) {
    EXPECT_LE(peak, round.workspace_peak_bytes);
  }

  // Per-AP breakdowns rode home on the outcomes and folded into the
  // round: every AP ran MUSIC, so the subspace bucket saw n_aps packets'
  // worth of time — at least as much as any single AP contributed.
  EXPECT_EQ(round.ap_results.size(), captures.size());
}

TEST(StageTelemetry, MeteringIsOptInAndOffByDefaultOnTheStrictPath) {
  const auto captures = office_captures(2);
  ApProcessorConfig cfg;
  const ApProcessor processor(kLink, captures[0].pose, cfg);
  Rng rng(5);
  // The strict path passes no breakdown sink; StageMeter must stay
  // no-op (ApResult carries no breakdown; nothing to check beyond "it
  // runs" — the real assertion is the zero-clock-read contract, pinned
  // by the alloc/perf suites).
  const ApResult result = processor.process(captures[0].packets, rng);
  EXPECT_TRUE(result.observation.has_aoa);
}

// --- steering-table interning across estimator constructions -----------

TEST(SteeringCache, IdenticalEstimatorsShareOneTable) {
  SteeringTableCache::clear();
  const JointMusicConfig cfg;
  const JointMusicEstimator a(kLink, cfg);
  const SteeringCacheStats after_first = SteeringTableCache::stats();
  EXPECT_GE(after_first.misses, 2u);  // one AoA axis, one ToF axis

  const JointMusicEstimator b(kLink, cfg);
  const SteeringCacheStats after_second = SteeringTableCache::stats();
  // The second estimator recomputed nothing: both axes were interned.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GE(after_second.hits, after_first.hits + 2);
  // Shared, not equal: the very same table memory.
  EXPECT_EQ(a.aoa_grid().data(), b.aoa_grid().data());
  EXPECT_EQ(a.tof_grid().data(), b.tof_grid().data());

  // A different grid is a different key — no false sharing.
  JointMusicConfig coarse = cfg;
  coarse.aoa_step_rad *= 2.0;
  const JointMusicEstimator c(kLink, coarse);
  EXPECT_NE(a.aoa_grid().data(), c.aoa_grid().data());
  EXPECT_GT(SteeringTableCache::stats().misses, after_second.misses);
}

// --- deferred round lifecycle ==  push(), bit for bit ------------------

TEST(DeferredRounds, PrepareExecuteCompleteMatchesPush) {
  const auto captures = office_captures(3, 11);
  StreamingConfig cfg;
  cfg.group_size = 3;
  cfg.server.num_threads = 1;
  const Deployment dep = office_deployment();
  cfg.server.localizer.area_min = dep.area_min;
  cfg.server.localizer.area_max = dep.area_max;

  std::vector<LocationFix> direct;
  std::vector<LocationFix> deferred;
  for (const bool use_deferred : {false, true}) {
    StreamingLocalizer localizer(kLink, cfg);
    for (const auto& capture : captures) {
      (void)localizer.add_ap(capture.pose);
    }
    Rng rng(77);
    for (std::size_t p = 0; p < 3; ++p) {
      for (std::size_t a = 0; a < captures.size(); ++a) {
        if (use_deferred) {
          auto pending =
              localizer.push_deferred(a, captures[a].packets[p], rng);
          if (!pending) continue;
          localizer.execute_round(*pending);
          if (auto fix = localizer.complete_round(std::move(*pending))) {
            deferred.push_back(std::move(*fix));
          }
        } else if (auto fix =
                       localizer.push(a, captures[a].packets[p], rng)) {
          direct.push_back(std::move(*fix));
        }
      }
    }
  }
  ASSERT_EQ(direct.size(), 1u);
  ASSERT_EQ(deferred.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].raw.x, deferred[i].raw.x);
    EXPECT_EQ(direct[i].raw.y, deferred[i].raw.y);
    EXPECT_EQ(direct[i].time_s, deferred[i].time_s);
    EXPECT_EQ(direct[i].aps_used, deferred[i].aps_used);
    EXPECT_EQ(direct[i].reasons, deferred[i].reasons);
    EXPECT_EQ(direct[i].degraded, deferred[i].degraded);
  }
}

// --- cross-session batch scheduling ------------------------------------

SessionConfig batch_session(const std::vector<ApCapture>& captures,
                            std::size_t group_size, std::uint64_t seed) {
  SessionConfig cfg;
  cfg.streaming.group_size = group_size;
  const Deployment dep = office_deployment();
  cfg.streaming.server.localizer.area_min = dep.area_min;
  cfg.streaming.server.localizer.area_max = dep.area_max;
  for (const auto& capture : captures) cfg.aps.push_back(capture.pose);
  cfg.seed = seed;
  return cfg;
}

/// The full post-round session state that identical fixes must leave
/// behind: the Kalman tracker folds every raw fix coordinate through
/// its update, so bitwise-equal tracker state + rng state + counters is
/// a byte-identity witness for the fixes themselves (pump_all() reports
/// only a count).
void expect_session_states_identical(const SessionDurableState& a,
                                     const SessionDurableState& b) {
  // Same forks consumed, in the same order.
  EXPECT_EQ(a.rng.s, b.rng.s);
  EXPECT_EQ(a.rng.have_cached_normal, b.rng.have_cached_normal);
  EXPECT_EQ(a.rng.cached_normal, b.rng.cached_normal);
  EXPECT_EQ(a.emitted_fixes, b.emitted_fixes);
  EXPECT_EQ(a.applied_packets, b.applied_packets);
  EXPECT_EQ(a.stats.fixes, b.stats.fixes);
  EXPECT_EQ(a.stats.rounds_full, b.stats.rounds_full);
  EXPECT_EQ(a.stats.rounds_degraded, b.stats.rounds_degraded);
  EXPECT_EQ(a.stats.failed_rounds, b.stats.failed_rounds);
  EXPECT_EQ(a.streaming.fix_count, b.streaming.fix_count);
  EXPECT_EQ(a.streaming.last_fix_time_s, b.streaming.last_fix_time_s);
  EXPECT_EQ(a.streaming.tracker.initialized, b.streaming.tracker.initialized);
  EXPECT_EQ(a.streaming.tracker.last_t, b.streaming.tracker.last_t);
  for (std::size_t i = 0; i < a.streaming.tracker.state.size(); ++i) {
    EXPECT_EQ(a.streaming.tracker.state[i], b.streaming.tracker.state[i]) << i;
  }
  for (std::size_t i = 0; i < a.streaming.tracker.cov.size(); ++i) {
    EXPECT_EQ(a.streaming.tracker.cov[i], b.streaming.tracker.cov[i]) << i;
  }
}

TEST(CrossSessionBatching, TwoSessionsCoalesceIntoOneBatchUnchanged) {
  unsetenv("SPOTFI_THREADS");
  constexpr std::size_t kGroup = 3;
  const auto captures = office_captures(kGroup, 11);
  const auto other = office_captures(kGroup, 12);

  // Reference: each tenant pumped individually on a serial manager,
  // capturing the fixes themselves.
  std::vector<LocationFix> ref1;
  std::vector<LocationFix> ref2;
  SessionDurableState ref_state1;
  SessionDurableState ref_state2;
  {
    SessionManagerConfig mgr_cfg;
    mgr_cfg.num_threads = 1;
    SessionManager manager(kLink, mgr_cfg);
    const SessionId s1 =
        manager.open_session(batch_session(captures, kGroup, 77));
    const SessionId s2 =
        manager.open_session(batch_session(other, kGroup, 78));
    for (std::size_t p = 0; p < kGroup; ++p) {
      for (std::size_t a = 0; a < captures.size(); ++a) {
        ASSERT_TRUE(manager.offer(s1, a, captures[a].packets[p]).admitted());
        ASSERT_TRUE(manager.offer(s2, a, other[a].packets[p]).admitted());
      }
    }
    ref1 = manager.pump(s1);
    ref2 = manager.pump(s2);
    EXPECT_EQ(manager.batched_rounds(), 0u);
    ref_state1 = manager.export_session_state(s1);
    ref_state2 = manager.export_session_state(s2);
  }
  ASSERT_EQ(ref1.size(), 1u);
  ASSERT_EQ(ref2.size(), 1u);

  // Candidate: identical ingest on a pooled manager, drained by ONE
  // pump_all() — both tenants' prepared rounds coalesce into one shared
  // batch and execute concurrently on the pool.
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 4;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId s1 =
      manager.open_session(batch_session(captures, kGroup, 77));
  const SessionId s2 =
      manager.open_session(batch_session(other, kGroup, 78));
  for (std::size_t p = 0; p < kGroup; ++p) {
    for (std::size_t a = 0; a < captures.size(); ++a) {
      ASSERT_TRUE(manager.offer(s1, a, captures[a].packets[p]).admitted());
      ASSERT_TRUE(manager.offer(s2, a, other[a].packets[p]).admitted());
    }
  }
  EXPECT_EQ(manager.pump_all(), 2u);
  // The batching witness: both rounds executed inside one shared batch.
  EXPECT_GE(manager.batched_rounds(), 2u);

  // Per-session outputs unchanged, down to the bit: the tracker state
  // is a pure function of the raw fix coordinates it was fed.
  SessionDurableState got1 = manager.export_session_state(s1);
  SessionDurableState got2 = manager.export_session_state(s2);
  // The batched export reflects the serial ids of its own manager.
  got1.id = ref_state1.id;
  got2.id = ref_state2.id;
  expect_session_states_identical(ref_state1, got1);
  expect_session_states_identical(ref_state2, got2);
  EXPECT_EQ(got1.streaming.last_fix_time_s, ref1[0].time_s);
  EXPECT_EQ(got2.streaming.last_fix_time_s, ref2[0].time_s);
}

}  // namespace
}  // namespace spotfi
