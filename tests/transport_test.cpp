// Tests for the fault-tolerant ingest transport: the deterministic
// lossy-link simulator, the framed ack/retransmit protocol, reconnect
// with backoff, the TransportError taxonomy, exact TransportStats
// partitions, and the SessionManager sink wiring.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/session_manager.hpp"
#include "transport/transport.hpp"

namespace spotfi {
namespace {

/// A tiny distinguishable payload: seq-dependent CSI plus a timestamp.
CsiPacket marked_packet(std::uint64_t mark) {
  CsiPacket p;
  p.csi = CMatrix(1, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    p.csi(0, k) = cplx(static_cast<double>(mark), static_cast<double>(k));
  }
  p.rssi_dbm = -40.0 - static_cast<double>(mark % 7);
  p.timestamp_s = 1e-3 * static_cast<double>(mark);
  return p;
}

/// Sink that records deliveries and can be told to refuse the next N.
struct RecordingSink {
  std::vector<std::pair<std::size_t, CsiPacket>> delivered;
  std::size_t refuse_next = 0;

  TransportSink fn() {
    return [this](std::size_t ap_id, CsiPacket& packet) {
      if (refuse_next > 0) {
        --refuse_next;
        return false;  // packet left intact — backpressure
      }
      delivered.emplace_back(ap_id, std::move(packet));
      return true;
    };
  }
};

/// Drives both endpoints from t0 to t1 in dt steps (sender first, like a
/// capture box whose uplink leads its ack path).
void run_both(TransportSender& sender, TransportReceiver& receiver, double t0,
              double t1, double dt = 0.01) {
  for (double t = t0; t <= t1; t += dt) {
    sender.tick(t);
    receiver.tick(t);
  }
}

TransportConfig quiet_config() {
  TransportConfig cfg;
  cfg.timer_jitter_frac = 0.0;  // deterministic timers for unit tests
  return cfg;
}

// --- LinkSimulator ---------------------------------------------------------

TEST(LinkSimulator, DeliversInOrderWithDeterministicDelay) {
  LinkFaultModel model;
  model.delay_s = 0.05;
  LinkSimulator link(model);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    TransportFrame f;
    f.header.seq = s;
    link.send(LinkDirection::kUplink, std::move(f), 0.0);
  }
  std::vector<TransportFrame> out;
  link.poll(LinkDirection::kUplink, 0.049, out);
  EXPECT_TRUE(out.empty());  // nothing due yet
  link.poll(LinkDirection::kUplink, 0.05, out);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    EXPECT_EQ(out[s - 1].header.seq, s);  // submission-order tie-break
  }
  EXPECT_EQ(link.stats().delivered, 3u);
}

TEST(LinkSimulator, SameSeedReplaysFaultsExactly) {
  LinkFaultModel model;
  model.delay_s = 0.01;
  model.jitter_s = 0.02;
  model.drop_prob = 0.3;
  model.duplicate_prob = 0.2;
  model.reorder_prob = 0.2;
  model.reorder_extra_s = 0.05;
  auto deliveries = [&](std::uint64_t seed) {
    LinkSimulator link(model, seed);
    for (std::uint64_t s = 1; s <= 64; ++s) {
      TransportFrame f;
      f.header.seq = s;
      link.send(LinkDirection::kUplink, std::move(f),
                0.001 * static_cast<double>(s));
    }
    std::vector<TransportFrame> out;
    link.poll(LinkDirection::kUplink, 10.0, out);
    std::vector<std::uint64_t> seqs;
    for (const auto& f : out) seqs.push_back(f.header.seq);
    return seqs;
  };
  const auto a = deliveries(7);
  const auto b = deliveries(7);
  const auto c = deliveries(8);
  EXPECT_EQ(a, b);  // bit-for-bit replay under the same seed
  EXPECT_NE(a, c);  // and a different scenario under a different one
}

TEST(LinkSimulator, DropAllDeliversNothingAndCountsIt) {
  LinkFaultModel model;
  model.drop_prob = 1.0;
  LinkSimulator link(model);
  for (int i = 0; i < 5; ++i) {
    link.send(LinkDirection::kUplink, TransportFrame{}, 0.0);
  }
  std::vector<TransportFrame> out;
  link.poll(LinkDirection::kUplink, 1.0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(link.stats().dropped, 5u);
  EXPECT_EQ(link.stats().submitted, 5u);
}

TEST(LinkSimulator, CorruptionBreaksTheChecksumEveryTime) {
  LinkFaultModel model;
  model.corrupt_prob = 1.0;
  LinkSimulator link(model, 3);
  for (std::uint64_t s = 1; s <= 32; ++s) {
    TransportFrame f;
    f.header.seq = s;
    f.packet = marked_packet(s);
    f.header.checksum = packet_checksum(f.packet);
    link.send(LinkDirection::kUplink, std::move(f), 0.0);
  }
  std::vector<TransportFrame> out;
  link.poll(LinkDirection::kUplink, 1.0, out);
  ASSERT_EQ(out.size(), 32u);
  for (const auto& f : out) {
    // Any single flipped payload bit must be visible to the receiver.
    EXPECT_NE(packet_checksum(f.packet), f.header.checksum)
        << "seq " << f.header.seq;
  }
  EXPECT_EQ(link.stats().corrupted, 32u);
}

TEST(LinkSimulator, DownWindowsBlackholeBothSubmissionAndDelivery) {
  LinkFaultModel model;
  model.delay_s = 0.1;
  model.down_windows = {{1.0, 2.0}};
  LinkSimulator link(model);
  // Submitted before the window but delivered inside it: blackholed.
  link.send(LinkDirection::kUplink, TransportFrame{}, 0.95);
  // Submitted inside the window: blackholed immediately.
  link.send(LinkDirection::kUplink, TransportFrame{}, 1.5);
  // Submitted after the window: delivered.
  link.send(LinkDirection::kUplink, TransportFrame{}, 2.0);
  std::vector<TransportFrame> out;
  link.poll(LinkDirection::kUplink, 3.0, out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(link.stats().disconnect_dropped, 2u);
}

// --- sender/receiver over a perfect wire -----------------------------------

TEST(Transport, DeliversInOrderExactlyOnceOverAPerfectLink) {
  LinkSimulator link(LinkFaultModel{});
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  TransportSender sender(link, cfg);
  TransportReceiver receiver(link, sink.fn(), cfg);

  run_both(sender, receiver, 0.0, 0.1);  // handshake
  ASSERT_TRUE(sender.established());

  for (std::uint64_t m = 1; m <= 10; ++m) {
    CsiPacket p = marked_packet(m);
    auto res = sender.send(m % 2, p, 0.1);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(*res, m);
  }
  run_both(sender, receiver, 0.1, 0.5);

  ASSERT_EQ(sink.delivered.size(), 10u);
  for (std::uint64_t m = 1; m <= 10; ++m) {
    const auto& [ap_id, packet] = sink.delivered[m - 1];
    EXPECT_EQ(ap_id, m % 2);
    // Byte-identical payload: the wire was clean, so the checksummed
    // content arrives exactly as captured.
    EXPECT_EQ(packet_checksum(packet), packet_checksum(marked_packet(m)));
  }
  EXPECT_TRUE(sender.quiescent());
  EXPECT_TRUE(receiver.quiescent());
  EXPECT_EQ(sender.highest_acked(), 10u);
  EXPECT_EQ(receiver.delivered_through(), 10u);

  const TransportStats tx = sender.stats();
  EXPECT_EQ(tx.sent, 10u);
  EXPECT_EQ(tx.acked, 10u);
  EXPECT_EQ(tx.pending, 0u);
  EXPECT_EQ(tx.failed, 0u);
  EXPECT_EQ(tx.retransmissions, 0u);
  const TransportStats rx = receiver.stats();
  EXPECT_EQ(rx.received, 10u);
  EXPECT_EQ(rx.delivered, 10u);
  EXPECT_EQ(rx.duplicates + rx.out_of_window + rx.corrupt + rx.buffered, 0u);
}

TEST(Transport, SendWindowFullRefusesAndLeavesThePacketIntact) {
  LinkSimulator link(LinkFaultModel{});
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  cfg.send_window = 4;
  TransportSender sender(link, cfg);
  // No receiver ticks → no acks → the window can only fill.
  sender.tick(0.0);
  for (std::uint64_t m = 1; m <= 4; ++m) {
    CsiPacket p = marked_packet(m);
    ASSERT_TRUE(sender.send(0, p, 0.0).has_value());
  }
  CsiPacket overflow = marked_packet(99);
  const std::uint64_t before = packet_checksum(overflow);
  auto res = sender.send(0, overflow, 0.0);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().kind, TransportErrorKind::kSendWindowFull);
  // Refusal is non-destructive: the caller still owns the capture.
  EXPECT_EQ(packet_checksum(overflow), before);
  EXPECT_EQ(sender.stats().send_rejected, 1u);
  EXPECT_EQ(sender.stats().sent, 4u);
}

TEST(Transport, RetransmitsWithExponentialBackoffThroughAnOutage) {
  LinkFaultModel model;
  model.down_windows = {{0.95, 1.6}};  // swallows the first transmissions
  LinkSimulator link(model);
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  cfg.rto_initial_s = 0.2;
  cfg.liveness_timeout_s = 10.0;  // keep reconnect out of this test
  TransportSender sender(link, cfg);
  TransportReceiver receiver(link, sink.fn(), cfg);

  run_both(sender, receiver, 0.0, 0.9);
  ASSERT_TRUE(sender.established());
  CsiPacket p = marked_packet(1);
  ASSERT_TRUE(sender.send(0, p, 1.0).has_value());  // blackholed
  run_both(sender, receiver, 1.0, 3.0);

  // Delivered exactly once despite the first copies dying in the window
  // (transmit at 1.0, retransmits at 1.2, 1.6, 2.4 — the rto doubling).
  ASSERT_EQ(sink.delivered.size(), 1u);
  const TransportStats tx = sender.stats();
  EXPECT_GE(tx.retransmissions, 2u);
  EXPECT_EQ(tx.acked, 1u);
  EXPECT_EQ(tx.pending, 0u);
  EXPECT_TRUE(sender.quiescent());
}

// --- receiver classification, driven by hand-built frames ------------------

/// Pushes one kData frame straight onto the uplink.
void inject_data(LinkSimulator& link, std::uint64_t seq, double now_s,
                 bool valid_checksum = true) {
  TransportFrame f;
  f.header.type = FrameType::kData;
  f.header.seq = seq;
  f.header.ap_id = 0;
  f.packet = marked_packet(seq);
  f.header.checksum = packet_checksum(f.packet) + (valid_checksum ? 0 : 1);
  link.send(LinkDirection::kUplink, std::move(f), now_s);
}

/// Highest cumulative_ack the receiver has put on the downlink.
std::uint64_t last_ack(LinkSimulator& link, double now_s) {
  std::vector<TransportFrame> acks;
  link.poll(LinkDirection::kDownlink, now_s, acks);
  std::uint64_t cum = 0;
  for (const auto& f : acks) cum = std::max(cum, f.header.cumulative_ack);
  return cum;
}

TEST(Transport, ReceiverClassifiesEveryArrivalExactlyOnce) {
  LinkSimulator link(LinkFaultModel{});
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  cfg.reorder_window = 2;
  TransportReceiver receiver(link, sink.fn(), cfg);

  inject_data(link, 1, 0.0);
  inject_data(link, 4, 0.0);         // 4 >= 2 + 2 → out of window
  inject_data(link, 3, 0.0);         // buffered (reorder)
  inject_data(link, 1, 0.0);         // below the mark → duplicate
  inject_data(link, 5, 0.0, false);  // corrupted in flight
  receiver.tick(0.1);

  EXPECT_EQ(last_ack(link, 0.2), 1u);  // only seq 1 delivered so far
  TransportStats rx = receiver.stats();
  EXPECT_EQ(rx.received, 5u);
  EXPECT_EQ(rx.delivered, 1u);
  EXPECT_EQ(rx.duplicates, 1u);
  EXPECT_EQ(rx.out_of_window, 1u);
  EXPECT_EQ(rx.corrupt, 1u);
  EXPECT_EQ(rx.buffered, 1u);
  EXPECT_FALSE(receiver.quiescent());

  inject_data(link, 3, 0.3);  // same frame again while buffered
  inject_data(link, 2, 0.3);  // closes the gap → 2 and 3 drain
  receiver.tick(0.4);

  EXPECT_EQ(last_ack(link, 0.5), 3u);  // cumulative ack jumped the gap
  rx = receiver.stats();
  EXPECT_EQ(rx.received, 7u);
  EXPECT_EQ(rx.delivered, 3u);
  EXPECT_EQ(rx.duplicates, 2u);  // the buffered-slot copy counted too
  EXPECT_EQ(rx.buffered, 0u);
  EXPECT_TRUE(receiver.quiescent());
  ASSERT_EQ(sink.delivered.size(), 3u);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    EXPECT_EQ(packet_checksum(sink.delivered[s - 1].second),
              packet_checksum(marked_packet(s)));
  }
  // The exact receive partition.
  EXPECT_EQ(rx.received,
            rx.delivered + rx.duplicates + rx.out_of_window + rx.corrupt +
                rx.buffered);
}

// --- heartbeat liveness, reconnect, and the error taxonomy -----------------

TEST(Transport, ReconnectResumesFromLastAckedFrame) {
  LinkFaultModel model;
  model.down_windows = {{1.0, 4.0}};  // a long mid-run outage
  LinkSimulator link(model);
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  cfg.rto_initial_s = 0.2;
  cfg.heartbeat_interval_s = 0.3;
  cfg.liveness_timeout_s = 1.0;
  TransportSender sender(link, cfg);
  TransportReceiver receiver(link, sink.fn(), cfg);

  run_both(sender, receiver, 0.0, 0.5);
  ASSERT_TRUE(sender.established());
  for (std::uint64_t m = 1; m <= 3; ++m) {
    CsiPacket p = marked_packet(m);
    ASSERT_TRUE(sender.send(0, p, 0.5).has_value());
  }
  run_both(sender, receiver, 0.5, 0.9);
  ASSERT_EQ(sink.delivered.size(), 3u);  // delivered and acked pre-outage

  // Frames sent into the outage: they must survive it.
  for (std::uint64_t m = 4; m <= 6; ++m) {
    CsiPacket p = marked_packet(m);
    ASSERT_TRUE(sender.send(0, p, 1.2).has_value());
  }
  run_both(sender, receiver, 1.2, 2.5);
  // Mid-outage: liveness expired, the sender noticed the loss.
  EXPECT_FALSE(sender.established());
  ASSERT_TRUE(sender.last_error().has_value());
  EXPECT_EQ(sender.last_error()->kind, TransportErrorKind::kConnectionLost);

  run_both(sender, receiver, 2.5, 6.0);
  // Back up: the handshake resumed from cumulative ack 3 and the pending
  // frames were retransmitted — exactly once each into the sink.
  ASSERT_EQ(sink.delivered.size(), 6u);
  for (std::uint64_t m = 1; m <= 6; ++m) {
    EXPECT_EQ(packet_checksum(sink.delivered[m - 1].second),
              packet_checksum(marked_packet(m)));
  }
  const TransportStats tx = sender.stats();
  EXPECT_GE(tx.reconnects, 1u);
  EXPECT_EQ(tx.sent, 6u);
  EXPECT_EQ(tx.acked, 6u);
  EXPECT_EQ(tx.pending, 0u);
  EXPECT_EQ(tx.failed, 0u);
  EXPECT_GE(tx.heartbeats_sent, 1u);
  EXPECT_GE(receiver.stats().connects_seen, 2u);
}

TEST(Transport, ExhaustedReconnectBudgetFailsAllPendingExplicitly) {
  LinkFaultModel model;
  model.down_windows = {{0.5, 1e9}};  // the link never comes back
  LinkSimulator link(model);
  RecordingSink sink;
  TransportConfig cfg = quiet_config();
  cfg.rto_initial_s = 0.1;
  cfg.max_retries = 2;
  cfg.liveness_timeout_s = 0.5;
  cfg.heartbeat_interval_s = 0.2;
  cfg.max_reconnects = 3;
  TransportSender sender(link, cfg);
  TransportReceiver receiver(link, sink.fn(), cfg);

  run_both(sender, receiver, 0.0, 0.4);
  ASSERT_TRUE(sender.established());
  for (std::uint64_t m = 1; m <= 4; ++m) {
    CsiPacket p = marked_packet(m);
    ASSERT_TRUE(sender.send(0, p, 0.6).has_value());  // into the abyss
  }
  run_both(sender, receiver, 0.6, 30.0, 0.05);

  ASSERT_TRUE(sender.failed());
  ASSERT_TRUE(sender.last_error().has_value());
  EXPECT_EQ(sender.last_error()->kind,
            TransportErrorKind::kRetriesExhausted);
  const TransportStats tx = sender.stats();
  // The partition stays exact even in total failure: nothing pending,
  // nothing silently lost — every unacked frame is explicitly failed.
  EXPECT_EQ(tx.sent, 4u);
  EXPECT_EQ(tx.failed, 4u);
  EXPECT_EQ(tx.pending, 0u);
  EXPECT_EQ(tx.sent, tx.acked + tx.pending + tx.failed);

  // And further sends are refused with the terminal taxonomy entry.
  CsiPacket p = marked_packet(9);
  auto res = sender.send(0, p, 31.0);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().kind, TransportErrorKind::kNotConnected);
}

// --- backpressure and the SessionManager sink ------------------------------

TEST(Transport, SinkBackpressureStallsAcksThenRecovers) {
  LinkSimulator link(LinkFaultModel{});
  RecordingSink sink;
  sink.refuse_next = 25;  // session queue "full" for a while
  TransportConfig cfg = quiet_config();
  TransportSender sender(link, cfg);
  TransportReceiver receiver(link, sink.fn(), cfg);

  run_both(sender, receiver, 0.0, 0.1);
  for (std::uint64_t m = 1; m <= 5; ++m) {
    CsiPacket p = marked_packet(m);
    ASSERT_TRUE(sender.send(0, p, 0.1).has_value());
  }
  run_both(sender, receiver, 0.1, 5.0);

  // Every refusal deferred delivery without loss or reorder; once the
  // sink accepted, frames drained in order, exactly once.
  ASSERT_EQ(sink.delivered.size(), 5u);
  for (std::uint64_t m = 1; m <= 5; ++m) {
    EXPECT_EQ(packet_checksum(sink.delivered[m - 1].second),
              packet_checksum(marked_packet(m)));
  }
  EXPECT_GE(receiver.stats().backpressure_deferrals, 25u);
  EXPECT_EQ(receiver.stats().delivered, 5u);
  EXPECT_TRUE(sender.quiescent());
}

TEST(Transport, SessionSinkFeedsOfferAndHandsBackShedPackets) {
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(LinkConfig::intel5300_40mhz(), mgr_cfg);
  SessionConfig scfg;
  scfg.streaming.group_size = 1000;  // rounds never fire in this test
  scfg.overload.queue_capacity = 2;
  scfg.aps.resize(2);
  scfg.aps[0].position = {0.0, 0.0};
  scfg.aps[1].position = {5.0, 0.0};
  const SessionId id = manager.open_session(scfg);

  TransportSink sink = make_session_sink(manager, id);
  CsiPacket a = marked_packet(1);
  CsiPacket b = marked_packet(2);
  CsiPacket c = marked_packet(3);
  EXPECT_TRUE(sink(0, a));
  EXPECT_TRUE(sink(1, b));
  // Queue full: refused, and the payload is handed back intact so the
  // transport can retry instead of dropping an about-to-be-acked frame.
  EXPECT_FALSE(sink(0, c));
  EXPECT_EQ(packet_checksum(c), packet_checksum(marked_packet(3)));

  SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed_packets, 1u);

  // Drain the queue; the retry now succeeds and accounting still
  // partitions: offered == accepted + shed across the retry.
  (void)manager.pump(id);
  EXPECT_TRUE(sink(0, c));
  stats = manager.session_stats(id);
  EXPECT_EQ(stats.offered, 4u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.shed_packets, 1u);
}

}  // namespace
}  // namespace spotfi
